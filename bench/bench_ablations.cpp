// Ablations of the design choices §VI-B calls out:
//
//   A1 speculation    - off: pure ops wait for materialized predicates,
//                       lengthening the stage chain (the paper: speculation
//                       is what let one major program fit Tofino);
//   A2 duplication    - off: multiple lookups of one table on a single
//                       path violate stage locality and the program is
//                       rejected;
//   A3 partitioning   - off: the unrolled per-element accesses of
//                       AGG/CACHE hit one register repeatedly and the
//                       program is rejected.
#include "bench_util.hpp"

namespace {

using namespace netcl;
using namespace netcl::bench;

const char* kDuplicationProbe = R"(
_net_ _lookup_ ncl::kv<unsigned, unsigned> routes[] = {{1,10},{2,20},{3,30},{4,40}};
_kernel(1) void k(unsigned a, unsigned b, unsigned &x, unsigned &y) {
  ncl::lookup(routes, a, x);
  ncl::lookup(routes, b, y);
}
)";

}  // namespace

int main() {
  std::printf("Ablation A1: speculation on/off (stage requirements)\n");
  print_rule(64);
  std::printf("%-7s %16s %16s\n", "APP", "speculation on", "speculation off");
  print_rule(64);
  for (const BenchApp& app : evaluation_apps()) {
    driver::CompileOptions base;
    base.device_id = app.device_id;
    base.defines = app.source.defines;
    base.limits.stages = 48;  // deep hypothetical pipe so "off" still reports
    driver::CompileResult on = driver::compile_netcl(app.source.source, base);
    base.speculation = false;
    driver::CompileResult off = driver::compile_netcl(app.source.source, base);
    std::printf("%-7s %16d %16d%s\n", app.label.c_str(),
                on.ok ? on.allocation.stages_used : -1,
                off.ok ? off.allocation.stages_used : -1,
                off.ok && off.allocation.stages_used > 12 ? "  (would not fit Tofino)" : "");
  }
  std::printf("paper: speculation reduced stage requirements enough to make a major program "
              "fit\n\n");

  std::printf("Ablation A2: lookup-memory duplication on/off\n");
  print_rule(64);
  {
    driver::CompileOptions options;
    options.device_id = 1;
    driver::CompileResult with = driver::compile_netcl(kDuplicationProbe, options);
    options.duplication = false;
    driver::CompileResult without = driver::compile_netcl(kDuplicationProbe, options);
    std::printf("with duplication:    %s (stages %d, SRAM blocks %d)\n",
                with.ok ? "compiles" : "REJECTED", with.ok ? with.allocation.stages_used : 0,
                with.ok ? with.allocation.total.sram : 0);
    std::printf("without duplication: %s\n", without.ok ? "compiles" : "REJECTED");
    if (!without.ok) {
      std::printf("  reason: %s\n",
                  without.errors.substr(0, without.errors.find('\n')).c_str());
    }
  }
  std::printf("paper: duplication removes the single-stage constraint at the cost of extra "
              "copies (can be disabled)\n\n");

  std::printf("Ablation A3: access-based memory partitioning on/off\n");
  print_rule(64);
  for (const char* label : {"AGG", "CACHE"}) {
    const BenchApp app = label == std::string("AGG")
                             ? BenchApp{"AGG", apps::agg_source(), 1}
                             : BenchApp{"CACHE", apps::cache_source(), 1};
    driver::CompileResult with = compile_app(app);
    // Rejection is the expected result here; compile directly to avoid the
    // helper's failure banner.
    driver::CompileOptions no_part;
    no_part.device_id = app.device_id;
    no_part.defines = app.source.defines;
    no_part.partitioning = false;
    driver::CompileResult without = driver::compile_netcl(app.source.source, no_part);
    std::printf("%-7s with partitioning: %s (stages %d); without: %s\n", app.label.c_str(),
                with.ok ? "compiles" : "REJECTED", with.ok ? with.allocation.stages_used : 0,
                without.ok ? "compiles (unexpected!)" : "REJECTED (stage-local memory)");
  }
  std::printf("paper: partitioning splits multi-dimensional arrays on constant outer indices "
              "(the unrolled\nSwitchML slots), which is what makes the access pattern legal\n");
  return write_bench_json("ablations", "none") ? 0 : 1;
}
