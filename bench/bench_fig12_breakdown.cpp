// Fig. 12 reproduction: breakdown of P4 code across constructs.
//
// For each app the complete P4 program is classified by construct:
// headers+parsers, registers/RegisterActions, tables (MATs), actions, and
// control logic; the remainder (runtime, base forwarding, boilerplate) is
// "network plumbing".
//
// Expected shape (paper): well over half the program is packet-processing
// scaffolding (~30% headers/parsing alone); RegisterActions ~13% of
// stateful apps; only ~10% is control logic; NetCL source is a small
// fraction (< 13%) of the P4 and contains only compute.
#include "bench_util.hpp"

int main() {
  using namespace netcl;
  using namespace netcl::bench;

  std::printf("Fig 12: distribution of P4 code across constructs (%% of program LoC)\n");
  print_rule(100);
  std::printf("%-7s %6s | %9s %9s %8s %8s %8s %9s | %10s\n", "APP", "LOC", "hdr+parse",
              "registers", "tables", "actions", "control", "plumbing", "netcl/p4");
  print_rule(100);

  double sum_header_pct = 0;
  double sum_compute_pct = 0;
  int rows = 0;
  for (const BenchApp& app : evaluation_apps()) {
    driver::CompileResult compiled = compile_app(app);
    if (!compiled.ok) return 1;
    const p4::P4Program& p4 = compiled.p4;
    const double total = p4.loc();
    const double headers = count_loc(p4.headers) + count_loc(p4.parsers);
    const double registers = count_loc(p4.registers);
    const double tables = count_loc(p4.tables);
    const double actions = count_loc(p4.actions);
    const double control = count_loc(p4.control);
    const double plumbing =
        count_loc(p4.runtime) + count_loc(p4.base) + count_loc(p4.boilerplate);
    std::printf("%-7s %6.0f | %8.1f%% %8.1f%% %7.1f%% %7.1f%% %7.1f%% %8.1f%% | %9.1f%%\n",
                app.label.c_str(), total, 100 * headers / total, 100 * registers / total,
                100 * tables / total, 100 * actions / total, 100 * control / total,
                100 * plumbing / total, 100.0 * compiled.netcl_loc / total);
    sum_header_pct += 100 * headers / total;
    sum_compute_pct += 100 * (registers + tables + actions + control) / total;
    ++rows;
  }
  print_rule(100);
  std::printf("average: headers+parsing %.1f%% of program; compute-related %.1f%%\n",
              sum_header_pct / rows, sum_compute_pct / rows);
  std::printf("paper: ~30%% headers/parsing, >65%% packet-processing constructs, ~10%% control "
              "logic,\n       only ~52%% compute-related; NetCL source < 13%% of the P4 LoC\n");
  return write_bench_json("fig12_breakdown", "none") ? 0 : 1;
}
