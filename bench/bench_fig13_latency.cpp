// Fig. 13 reproduction: per-packet device processing latency.
//
// Worst-case (no egress bypass) latency from the pipeline model over each
// program's allocated stage count, NetCL-generated vs the handwritten
// baseline.
//
// Expected shape (paper): NetCL within ~9% of handwritten on average,
// every program well below 1 microsecond, CACHE-class latency dominated by
// the fixed pipe traversal.
#include <cmath>

#include "bench_util.hpp"

int main() {
  using namespace netcl;
  using namespace netcl::bench;
  const p4::LatencyModel model;

  std::printf("Fig 13: worst-case per-packet device latency (ns)\n");
  print_rule(64);
  std::printf("%-7s %10s %12s %12s %8s\n", "APP", "stages", "NetCL", "handwritten", "gap");
  print_rule(64);

  double gap_sum = 0;
  int rows = 0;
  for (const BenchApp& app : evaluation_apps()) {
    driver::CompileResult compiled = compile_app(app);
    if (!compiled.ok) return 1;
    const double ours = model.worst_case_ns(compiled.allocation.stages_used);
    const apps::HandwrittenModel hand = apps::handwritten_baseline(app.label, compiled);
    const double gap = 100.0 * (ours - hand.latency_ns) / hand.latency_ns;
    gap_sum += gap;
    ++rows;
    std::printf("%-7s %10d %12.1f %12.1f %+7.1f%%\n", app.label.c_str(),
                compiled.allocation.stages_used, ours, hand.latency_ns, gap);
    if (ours >= 1000.0) {
      std::printf("    WARNING: exceeds the paper's < 1 us bound\n");
    }
  }
  driver::CompileResult empty = compile_empty();
  std::printf("%-7s %10d %12.1f\n", "EMPTY", empty.allocation.stages_used,
              model.worst_case_ns(empty.allocation.stages_used));
  print_rule(64);
  std::printf("average gap: %+.1f%%   (paper: NetCL within %.0f%% of handwritten, all < %.0f ns)\n",
              gap_sum / rows, apps::paper_reference().latency_gap_max_pct,
              apps::paper_reference().latency_max_ns);
  return write_bench_json("fig13_latency", "none") ? 0 : 1;
}
