// Fig. 14 (left) reproduction: end-to-end AGG throughput.
//
// Workers stream SLOT_SIZE=32-element slots through the simulated switch;
// throughput is Aggregated Tensor Elements per second per worker, for 2, 4
// and 6 workers, NetCL-generated vs the handwritten baseline (same
// behavior, handwritten stage count for device latency).
//
// Expected shape (paper): no difference between NetCL and handwritten;
// per-worker throughput does not degrade as workers are added.
#include "apps/agg.hpp"
#include "bench_util.hpp"
#include "obs/metrics.hpp"

int main() {
  using namespace netcl;
  using namespace netcl::bench;

  // Fresh slate so the BENCH json reflects exactly this binary's runs.
  obs::reset_all();

  std::printf("Fig 14 (left): AGG end-to-end throughput (ATE/s per worker)\n");
  print_rule(72);
  std::printf("%-9s %14s %14s %10s %9s\n", "workers", "NetCL", "handwritten", "delta",
              "correct");
  print_rule(72);

  double first_netcl = 0.0;
  for (const int workers : {2, 4, 6}) {
    apps::AggConfig config;
    config.num_workers = workers;
    config.chunks = 192;
    config.slot_size = 32;
    config.num_slots = 64;
    config.window = 16;
    const apps::AggResult netcl_run = apps::run_agg(config);
    if (!netcl_run.ok || !netcl_run.correct) {
      std::fprintf(stderr, "FATAL: AGG run failed: %s\n", netcl_run.error.c_str());
      return 1;
    }
    // Handwritten baseline: identical program semantics, handwritten stage
    // count for the device latency model.
    apps::AggConfig hand_config = config;
    hand_config.stages_override = netcl_run.stages_used;  // same stages for AGG (paper)
    const apps::AggResult hand_run = apps::run_agg(hand_config);
    const double delta =
        100.0 * (netcl_run.ate_per_sec_per_worker - hand_run.ate_per_sec_per_worker) /
        hand_run.ate_per_sec_per_worker;
    std::printf("%-9d %14.3e %14.3e %+9.2f%% %9s\n", workers, netcl_run.ate_per_sec_per_worker,
                hand_run.ate_per_sec_per_worker, delta,
                netcl_run.correct && hand_run.correct ? "yes" : "NO");
    if (first_netcl == 0.0) first_netcl = netcl_run.ate_per_sec_per_worker;
  }
  print_rule(72);
  std::printf("paper: NetCL == handwritten; per-worker ATE/s flat from 2 to 6 workers\n");

  // Cumulative fabric/host/device metrics over all runs above: packet
  // counters, per-computation send/receive counts, and the workers'
  // round-trip latency histograms.
  return write_bench_json("fig14_agg_e2e", "sim") ? 0 : 1;
}
