// Fig. 14 (right) reproduction: CACHE end-to-end response time.
//
// A client issues closed-loop GETs against a KVS server behind the
// in-network cache; the x-axis sweeps the number of cached keys (0% to
// 100% of the key universe), reporting mean response time, NetCL vs the
// handwritten baseline (3 fewer pipeline stages, same behavior).
//
// Expected shape (paper): all-hit response time is several times lower
// than all-miss (paper: ~9.4 us vs ~27 us on their testbed); NetCL and
// handwritten differ by host-side costs only (here: tiny device-latency
// delta).
#include "apps/cache.hpp"
#include "bench_util.hpp"
#include "obs/metrics.hpp"

int main() {
  using namespace netcl;
  using namespace netcl::bench;

  // Fresh slate so the BENCH json reflects exactly this binary's runs.
  obs::reset_all();

  std::printf("Fig 14 (right): CACHE mean response time vs cached keys\n");
  print_rule(86);
  std::printf("%-12s %9s | %12s %12s | %12s %10s\n", "cached keys", "hit rate", "NetCL (us)",
              "hand (us)", "hit us", "miss us");
  print_rule(86);

  const int total_keys = 128;
  for (const int cached : {0, 32, 64, 96, 128}) {
    apps::CacheConfig config;
    config.total_keys = total_keys;
    config.cached_keys = cached;
    config.queries = 384;
    config.val_words = 16;
    const apps::CacheResult netcl_run = apps::run_cache(config);
    if (!netcl_run.ok) {
      std::fprintf(stderr, "FATAL: CACHE run failed: %s\n", netcl_run.error.c_str());
      return 1;
    }
    apps::CacheConfig hand_config = config;
    hand_config.stages_override = std::max(
        1, netcl_run.stages_used - apps::paper_reference().cache_extra_stages_generated);
    const apps::CacheResult hand_run = apps::run_cache(hand_config);
    std::printf("%-12d %8.2f%% | %12.2f %12.2f | %12.2f %10.2f\n", cached,
                100.0 * netcl_run.hit_rate, netcl_run.mean_response_ns / 1000.0,
                hand_run.mean_response_ns / 1000.0, netcl_run.mean_hit_response_ns / 1000.0,
                netcl_run.mean_miss_response_ns / 1000.0);
  }
  print_rule(86);
  std::printf("paper: ~%.1f us all-hit vs ~%.1f us all-miss; NetCL ~= handwritten "
              "(differences are host-side)\n",
              apps::paper_reference().cache_hit_us, apps::paper_reference().cache_miss_us);

  return write_bench_json("fig14_cache_e2e", "sim") ? 0 : 1;
}
