// Microbenchmarks of the compiler itself (google-benchmark): per-phase
// costs on the largest app (AGG at SLOT_SIZE=32), useful for tracking
// compiler performance regressions. Not a paper table; supplements
// Table IV.
#include <benchmark/benchmark.h>

#include "apps/sources.hpp"
#include "bench_util.hpp"
#include "frontend/sema.hpp"
#include "ir/lower_ast.hpp"
#include "p4/p4_printer.hpp"
#include "passes/passes.hpp"

namespace {

using namespace netcl;

const apps::AppSource& agg() {
  static const apps::AppSource app = apps::agg_source();
  return app;
}

void BM_Frontend(benchmark::State& state) {
  for (auto _ : state) {
    SourceBuffer buffer("agg", agg().source);
    DiagnosticEngine diags;
    Program program = analyze_netcl(buffer, diags, agg().defines);
    benchmark::DoNotOptimize(program.functions.size());
  }
}
BENCHMARK(BM_Frontend);

void BM_Lowering(benchmark::State& state) {
  SourceBuffer buffer("agg", agg().source);
  DiagnosticEngine diags;
  Program program = analyze_netcl(buffer, diags, agg().defines);
  for (auto _ : state) {
    ir::LowerOptions options;
    options.device_id = 1;
    auto module = ir::lower_program(program, options, diags);
    benchmark::DoNotOptimize(module->functions().size());
  }
}
BENCHMARK(BM_Lowering);

void BM_PassPipeline(benchmark::State& state) {
  SourceBuffer buffer("agg", agg().source);
  DiagnosticEngine diags;
  Program program = analyze_netcl(buffer, diags, agg().defines);
  for (auto _ : state) {
    state.PauseTiming();
    ir::LowerOptions lower_options;
    lower_options.device_id = 1;
    auto module = ir::lower_program(program, lower_options, diags);
    state.ResumeTiming();
    passes::PassOptions pass_options;
    passes::run_pipeline(*module, pass_options, diags);
    benchmark::DoNotOptimize(module->globals().size());
  }
}
BENCHMARK(BM_PassPipeline);

void BM_P4Emission(benchmark::State& state) {
  SourceBuffer buffer("agg", agg().source);
  DiagnosticEngine diags;
  Program program = analyze_netcl(buffer, diags, agg().defines);
  ir::LowerOptions lower_options;
  lower_options.device_id = 1;
  auto module = ir::lower_program(program, lower_options, diags);
  passes::PassOptions pass_options;
  passes::run_pipeline(*module, pass_options, diags);
  for (auto _ : state) {
    p4::P4Program p4 = p4::emit_p4(*module, p4::P4Dialect::Tna);
    benchmark::DoNotOptimize(p4.loc());
  }
}
BENCHMARK(BM_P4Emission);

}  // namespace

// BENCHMARK_MAIN(), plus the provenance-stamped BENCH json every bench
// binary writes (ISSUE 4).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return netcl::bench::write_bench_json("micro_compiler", "none") ? 0 : 1;
}
