// Observability overhead on the data plane (ISSUE 6 + ISSUE 9).
//
// Reruns the bench_throughput loopback pipeline (batched configuration:
// send_batch() bursts of 32, sendmmsg/recvmmsg syscall batching) across
// three interleaved configurations — everything off, flight recorder on,
// and recorder + 99 Hz sampling profiler — so thermal / scheduler drift
// hits every configuration equally, and keeps the best trial of each.
// The recorder's hot path is one relaxed load when off and a 32-byte ring
// write when on; the profiler costs one SIGPROF unwind per thread per
// 1/99 s. The acceptance bar for both is <= 5% pps cost.
//
// Headline numbers, written as gauges to registry "obs_overhead" and
// dumped to BENCH_obs_overhead.json (CI gates overhead_pct <= 5 and
// profiler_overhead_pct <= 5):
//   off.pps                best packets/s with everything disabled
//   on.pps                 best packets/s with the recorder enabled
//   overhead_pct           100 * (1 - on.pps / off.pps), clamped at 0
//   on.events              flight events in the rings after the run (+ wrap drops)
//   profiler.pps           best packets/s with recorder + 99 Hz profiler
//   profiler_overhead_pct  100 * (1 - profiler.pps / off.pps), clamped at 0
//   profiler.samples       stacks captured while profiled trials ran
//
//   bench_obs_overhead [--packets N] [--trials T] [--smoke]
//
// --smoke caps the run at 2000 packets/trial for CI smoke steps.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "net/udp_transport.hpp"
#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "sim/packet.hpp"

namespace {

using namespace netcl;

constexpr std::size_t kBurst = net::UdpTransport::kMaxBatch;  // 32
constexpr std::size_t kPayloadBytes = 64;

sim::Packet make_packet(std::uint64_t seq) {
  sim::Packet packet;
  packet.has_netcl = true;
  packet.netcl.src = 1;
  packet.netcl.to = 1;
  packet.netcl.comp = 1;
  packet.payload.resize(kPayloadBytes);
  for (std::size_t i = 0; i < kPayloadBytes; ++i) {
    packet.payload[i] = static_cast<std::uint8_t>(seq + i);
  }
  return packet;
}

struct TrialResult {
  bool ok = false;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  double pps = 0.0;
};

TrialResult run_trial(const char* mode, std::uint64_t total_packets) {
  TrialResult result;

  net::UdpTransport::Options rx_options;
  rx_options.metrics_name = std::string("obs_overhead.rx.") + mode;
  rx_options.max_syscall_batch = kBurst;
  net::UdpTransport rx(rx_options);
  if (!rx.valid()) {
    std::fprintf(stderr, "FATAL: rx transport: %s\n", rx.error().c_str());
    return result;
  }

  net::UdpTransport::Options tx_options;
  tx_options.metrics_name = std::string("obs_overhead.tx.") + mode;
  tx_options.peer_host = "127.0.0.1";
  tx_options.peer_port = rx.local_port();
  tx_options.max_syscall_batch = kBurst;
  net::UdpTransport tx(tx_options);
  if (!tx.valid()) {
    std::fprintf(stderr, "FATAL: tx transport: %s\n", tx.error().c_str());
    return result;
  }

  std::uint64_t received = 0;
  rx.set_batch_receiver(
      [&received](std::span<const sim::Packet> batch) { received += batch.size(); });

  std::vector<sim::Packet> batch(kBurst);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t sent = 0;
  while (sent < total_packets) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(kBurst, total_packets - sent));
    for (std::size_t i = 0; i < n; ++i) batch[i] = make_packet(sent + i);
    tx.send_batch({batch.data(), n});
    sent += n;
    while (received < sent) {
      const std::uint64_t before = received;
      rx.poll_once(0);
      if (received == before) break;
    }
  }
  rx.run_until([&] { return received >= sent; }, 200e6);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  result.ok = true;
  result.sent = sent;
  result.received = received;
  result.pps = seconds > 0.0 ? static_cast<double>(received) / seconds : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netcl::bench;

  std::uint64_t total_packets = 100000;
  int trials = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      total_packets = 2000;
    } else if (std::strcmp(argv[i], "--packets") == 0 && i + 1 < argc) {
      total_packets = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--packets N] [--trials T] [--smoke]\n", argv[0]);
      return 2;
    }
  }
  trials = std::max(trials, 1);

  obs::reset_all();
  auto& recorder = obs::FlightRecorder::instance();
  recorder.set_process_label("bench_obs_overhead");

  std::printf("Flight-recorder overhead: %llu packets/trial, %d trials/config, "
              "batched loopback pipeline\n",
              static_cast<unsigned long long>(total_packets), trials);
  print_rule(72);
  std::printf("%-10s %6s %12s %12s\n", "recorder", "trial", "pps", "received");
  print_rule(72);

  // Warm-up (recorder off): page in buffers, spin up the socket path.
  recorder.set_enabled(false);
  if (!run_trial("warmup", std::min<std::uint64_t>(total_packets, 2000)).ok) return 1;

  // Configurations interleave within each trial round: 0 = everything
  // off, 1 = flight recorder on, 2 = recorder + 99 Hz profiler (ISSUE 9).
  auto& profiler = obs::Profiler::instance();
  TrialResult best[3];
  static constexpr const char* kModeNames[3] = {"off", "on", "profiler"};
  for (int trial = 0; trial < trials; ++trial) {
    for (int mode = 0; mode < 3; ++mode) {
      recorder.set_enabled(mode != 0);
      if (mode == 2) {
        profiler.start(obs::Profiler::kDefaultHz);
      } else {
        profiler.stop();
      }
      const TrialResult r = run_trial(kModeNames[mode], total_packets);
      if (!r.ok) return 1;
      if (r.received != r.sent) {
        std::fprintf(stderr, "FATAL: packets lost on loopback (%llu/%llu)\n",
                     static_cast<unsigned long long>(r.received),
                     static_cast<unsigned long long>(r.sent));
        return 1;
      }
      std::printf("%-10s %6d %12.3e %12llu\n", kModeNames[mode], trial, r.pps,
                  static_cast<unsigned long long>(r.received));
      if (r.pps > best[mode].pps) best[mode] = r;
    }
  }
  profiler.stop();
  std::uint64_t profiler_samples = profiler.sample_count();
  // Smoke runs give the profiled trials only a few ms of CPU — often not
  // enough for 99 Hz CPU-time sampling to land a single stack. Prove
  // liveness separately, outside the timed trials, so the CI gate on
  // profiler.samples is meaningful at any --packets size.
  if (profiler_samples == 0) {
    profiler.start(obs::Profiler::kDefaultHz);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    volatile std::uint64_t sink = 0;
    while (profiler.sample_count() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      for (int i = 0; i < 100000; ++i) sink = sink * 31 + static_cast<std::uint64_t>(i);
    }
    profiler.stop();
    profiler_samples = profiler.sample_count();
  }
  recorder.set_enabled(true);
  print_rule(72);

  const TrialResult& best_off = best[0];
  const TrialResult& best_on = best[1];
  const TrialResult& best_profiled = best[2];
  const double overhead_pct =
      best_off.pps > 0.0 ? std::max(0.0, 100.0 * (1.0 - best_on.pps / best_off.pps)) : 0.0;
  const double profiler_overhead_pct =
      best_off.pps > 0.0 ? std::max(0.0, 100.0 * (1.0 - best_profiled.pps / best_off.pps))
                         : 0.0;
  std::printf("best off %.3e pps, best on %.3e pps -> overhead %.2f%% "
              "(ISSUE 6 target: <= 5%%)\n",
              best_off.pps, best_on.pps, overhead_pct);
  std::printf("best profiled %.3e pps -> overhead %.2f%% at %d Hz, %llu samples "
              "(ISSUE 9 target: <= 5%%)\n",
              best_profiled.pps, profiler_overhead_pct, obs::Profiler::kDefaultHz,
              static_cast<unsigned long long>(profiler_samples));

  obs::MetricsRegistry summary("obs_overhead");
  summary.gauge("off.pps").set(best_off.pps);
  summary.gauge("on.pps").set(best_on.pps);
  summary.gauge("overhead_pct").set(overhead_pct);
  // Evidence the recorder was actually live during the enabled trials:
  // events still in the rings plus everything lost to wrap.
  summary.gauge("on.events")
      .set(static_cast<double>(recorder.snapshot().size() + recorder.dropped_events()));
  summary.gauge("profiler.pps").set(best_profiled.pps);
  summary.gauge("profiler_overhead_pct").set(profiler_overhead_pct);
  // Evidence the profiler was live: stacks captured across profiled trials.
  summary.gauge("profiler.samples").set(static_cast<double>(profiler_samples));
  return write_bench_json("obs_overhead", "udp") ? 0 : 1;
}
