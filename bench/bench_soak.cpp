// Chaos soak (ISSUE 8): mixed valid + garbage + flood traffic against a
// live multi-tenant daemon, with fault injection, asserting the overload
// model holds end to end:
//
//   * fairness — with tenant policing on, a 10x flood from one tenant
//     leaves a co-resident >= 80% of its baseline delivery ratio;
//   * control-plane isolation — ping p99 stays under 10 ms while the
//     data plane is being flooded and garbage connections churn;
//   * perimeter accounting — malformed datagrams and policer/queue sheds
//     are counted, never crashes;
//   * bounded memory — RSS growth over the whole soak stays bounded
//     (an unbounded ingress queue or per-source map would blow this);
//   * crash recovery — inject_crash/inject_restart mid-soak, and the
//     daemon comes back serving both planes.
//
// Phases: baseline (victim alone) -> chaos (flood + garbage + slowloris
// + hostile control frames) -> fault (crash, restart, recover). Fairness
// compares chaos to baseline at the same offered victim rate.
//
// Usage: bench_soak [--smoke] [--seconds S]
//   --smoke    short run for CI (~4 s total)
//   --seconds  chaos-phase duration (default 6, smoke 2)
//
// Exit code 0 with every assertion met, 1 otherwise (the assertions are
// in-binary so CI needs no JSON parsing to fail; the numbers still land
// in BENCH_soak.json for trend tracking).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/control.hpp"
#include "net/swd_server.hpp"
#include "net/wire.hpp"
#include "sim/switch.hpp"
#include "support/hashes.hpp"

namespace netcl {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

long max_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

/// One raw UDP "host": connected socket, nonblocking receive drain.
class UdpHost {
 public:
  explicit UdpHost(std::uint16_t server_port) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server_port);
    ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    timeval timeout{0, 2000};  // 2 ms: drain, don't stall the pacer
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  }
  ~UdpHost() {
    if (fd_ >= 0) ::close(fd_);
  }
  UdpHost(const UdpHost&) = delete;
  UdpHost& operator=(const UdpHost&) = delete;

  void send(const std::vector<std::uint8_t>& datagram) {
    (void)::send(fd_, datagram.data(), datagram.size(), 0);
  }
  /// Receives and counts every pending well-formed response.
  std::size_t drain() {
    std::uint8_t buffer[4096];
    std::size_t received = 0;
    for (;;) {
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), MSG_DONTWAIT);
      if (n <= 0) break;
      sim::Packet packet;
      if (net::deserialize_packet({buffer, static_cast<std::size_t>(n)}, packet)) ++received;
    }
    return received;
  }

 private:
  int fd_ = -1;
};

std::vector<std::uint8_t> calc_datagram(const KernelSpec& spec, std::uint16_t src_host,
                                        std::uint8_t comp, std::uint64_t a, std::uint64_t b) {
  sim::Packet packet;
  packet.has_netcl = true;
  packet.netcl.src = src_host;
  packet.netcl.to = 1;
  packet.netcl.comp = comp;
  sim::ArgValues args = sim::make_args(spec);
  args[0][0] = apps::kCalcAdd;
  args[1][0] = a;
  args[2][0] = b;
  packet.payload = sim::encode_args(spec, args);
  packet.netcl.len = static_cast<std::uint16_t>(packet.payload.size());
  return net::serialize_packet(packet);
}

std::vector<std::uint8_t> garbage_datagram(SplitMix64& rng) {
  std::vector<std::uint8_t> bytes(1 + rng.next_below(96));
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
  // Half the garbage starts with valid magic so it dies deeper in the
  // parser (bad version, length overruns, trailer inconsistencies).
  if (rng.next_below(2) == 0 && bytes.size() >= 4) {
    bytes[0] = 'N';
    bytes[1] = 'C';
    bytes[2] = 'L';
  }
  return bytes;
}

/// Opens a control connection, writes hostile bytes, reads whatever comes
/// back, closes. Exercises the typed-reject + close path under churn.
void hostile_control_poke(std::uint16_t port, SplitMix64& rng) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    const std::vector<std::uint8_t> junk = garbage_datagram(rng);
    (void)::send(fd, junk.data(), junk.size(), MSG_NOSIGNAL);
    timeval timeout{0, 50000};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    std::uint8_t buffer[256];
    (void)::recv(fd, buffer, sizeof(buffer), 0);
  }
  ::close(fd);
}

struct PhaseResult {
  std::size_t sent = 0;
  std::size_t delivered = 0;

  [[nodiscard]] double ratio() const {
    return sent == 0 ? 0.0 : static_cast<double>(delivered) / static_cast<double>(sent);
  }
};

struct SoakConfig {
  double baseline_s = 2.0;
  double chaos_s = 6.0;
  std::size_t victim_pps = 2000;
  std::size_t flood_factor = 10;
  std::size_t garbage_pps = 200;
};

/// Paces the victim at cfg.victim_pps; when `flood` is set, the flooder
/// offers flood_factor x that and the garbage host sprays malformed
/// datagrams alongside. Returns the victim's send/delivery counts.
PhaseResult run_phase(const SoakConfig& cfg, double duration_s, net::SwdServer& server,
                      const KernelSpec& spec1, const KernelSpec& spec2, UdpHost& victim,
                      UdpHost& flooder, UdpHost& garbage, bool flood, SplitMix64& rng) {
  PhaseResult result;
  const auto start = Clock::now();
  const double tick_s = 0.005;  // 5 ms pacing quantum
  const auto victim_per_tick =
      static_cast<std::size_t>(static_cast<double>(cfg.victim_pps) * tick_s);
  std::uint64_t sequence = 0;
  std::size_t tick = 0;
  while (seconds_since(start) < duration_s) {
    for (std::size_t i = 0; i < victim_per_tick; ++i) {
      victim.send(calc_datagram(spec1, 1, 1, sequence++, 1));
      ++result.sent;
    }
    if (flood) {
      for (std::size_t i = 0; i < victim_per_tick * cfg.flood_factor; ++i) {
        flooder.send(calc_datagram(spec2, 2, 2, sequence++, 2));
      }
      const auto garbage_per_tick =
          static_cast<std::size_t>(static_cast<double>(cfg.garbage_pps) * tick_s);
      for (std::size_t i = 0; i < std::max<std::size_t>(garbage_per_tick, 1); ++i) {
        garbage.send(garbage_datagram(rng));
      }
      if (tick % 40 == 0) hostile_control_poke(server.control_port(), rng);
    }
    result.delivered += victim.drain();
    (void)flooder.drain();
    (void)garbage.drain();
    std::this_thread::sleep_for(std::chrono::duration<double>(tick_s));
    ++tick;
  }
  // Let in-flight responses land before closing the books.
  const auto settle = Clock::now();
  while (seconds_since(settle) < 0.3) {
    result.delivered += victim.drain();
    (void)flooder.drain();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return result;
}

}  // namespace
}  // namespace netcl

int main(int argc, char** argv) {
  using namespace netcl;

  SoakConfig cfg;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      cfg.baseline_s = 1.0;
      cfg.chaos_s = 2.0;
      cfg.victim_pps = 1000;
    } else if (arg == "--seconds" && i + 1 < argc) {
      cfg.chaos_s = std::stod(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: bench_soak [--smoke] [--seconds S]\n");
      return 2;
    }
  }

  // Two calc tenants behind per-tenant policing: the victim's full rate
  // fits its bucket twice over; the flooder's 10x offered load does not.
  KernelSpec spec1, spec2;
  auto device = std::make_unique<sim::SwitchDevice>(1);
  {
    apps::AppSource app = apps::calc_source();
    driver::CompileOptions options;
    options.defines = app.defines;
    options.defines["COMP"] = 1;
    driver::CompileResult compiled = driver::compile_netcl(app.source, options);
    if (!compiled.ok) {
      std::fprintf(stderr, "FATAL: compile: %s\n", compiled.errors.c_str());
      return 1;
    }
    spec1 = compiled.specs.at(1);
    if (device->load_program(1, driver::make_artifact(std::move(compiled), "victim"))) return 1;
    options.defines["COMP"] = 2;
    compiled = driver::compile_netcl(app.source, options);
    if (!compiled.ok) return 1;
    spec2 = compiled.specs.at(2);
    if (device->load_program(2, driver::make_artifact(std::move(compiled), "flooder"))) return 1;
  }

  net::SwdOptions options;
  options.tenant_rate_pps = 2.0 * static_cast<double>(cfg.victim_pps);
  options.tenant_burst = static_cast<double>(cfg.victim_pps) / 4.0;
  options.read_deadline_seconds = 1.0;
  net::SwdServer server(std::move(device), options);
  if (!server.valid()) {
    std::fprintf(stderr, "FATAL: %s\n", server.error().c_str());
    return 1;
  }
  std::thread serving([&] { server.run(); });

  const long rss_before_kb = max_rss_kb();
  SplitMix64 rng(0x50AB5EED);
  UdpHost victim(server.udp_port());
  UdpHost flooder(server.udp_port());
  UdpHost garbage(server.udp_port());

  std::printf("bench_soak: %s run — baseline %.1fs, chaos %.1fs, victim %zu pps, "
              "flood %zux, policer %.0f pps/tenant\n",
              smoke ? "smoke" : "full", cfg.baseline_s, cfg.chaos_s, cfg.victim_pps,
              cfg.flood_factor, options.tenant_rate_pps);

  // --- baseline: victim alone ----------------------------------------------
  const PhaseResult baseline = run_phase(cfg, cfg.baseline_s, server, spec1, spec2, victim,
                                         flooder, garbage, /*flood=*/false, rng);

  // --- chaos: 10x flood + garbage + hostile control + slowloris -------------
  // One persistent slowloris connection held open across the whole phase.
  const int slow_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.control_port());
    if (::connect(slow_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      const std::uint8_t partial[3] = {'N', 'C', 1};
      (void)::send(slow_fd, partial, sizeof(partial), MSG_NOSIGNAL);
    }
  }

  // Control-plane latency probe, concurrent with the flood.
  std::atomic<bool> probing{true};
  std::vector<double> ping_ms;
  std::thread prober([&] {
    net::ControlClient client("127.0.0.1", server.control_port());
    while (probing.load(std::memory_order_relaxed)) {
      std::uint16_t device_id = 0;
      const auto start = Clock::now();
      if (client.ping(device_id)) ping_ms.push_back(seconds_since(start) * 1e3);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  const PhaseResult chaos = run_phase(cfg, cfg.chaos_s, server, spec1, spec2, victim, flooder,
                                      garbage, /*flood=*/true, rng);
  probing.store(false);
  prober.join();
  ::close(slow_fd);

  // --- fault: crash mid-service, restart, recover ---------------------------
  server.inject_crash();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  victim.send(calc_datagram(spec1, 1, 1, 0, 0));  // vanishes into the crash
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.inject_restart();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::size_t recovered = 0;
  for (int attempt = 0; attempt < 50 && recovered == 0; ++attempt) {
    victim.send(calc_datagram(spec1, 1, 1, 7, 8));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    recovered += victim.drain();
  }
  net::ControlClient post_fault("127.0.0.1", server.control_port());
  std::uint16_t post_fault_device = 0;
  const bool control_recovered = post_fault.ping(post_fault_device);

  server.stop();
  serving.join();
  const long rss_after_kb = max_rss_kb();

  // --- verdicts -------------------------------------------------------------
  std::sort(ping_ms.begin(), ping_ms.end());
  const double ping_p99 =
      ping_ms.empty() ? 1e9 : ping_ms[ping_ms.size() * 99 / 100 == ping_ms.size()
                                          ? ping_ms.size() - 1
                                          : ping_ms.size() * 99 / 100];
  const double fairness =
      baseline.ratio() <= 0.0 ? 0.0 : chaos.ratio() / baseline.ratio();
  const double rss_delta_mb =
      static_cast<double>(rss_after_kb - rss_before_kb) / 1024.0;

  obs::MetricsRegistry registry("bench_soak");
  registry.gauge("baseline.sent").set(static_cast<double>(baseline.sent));
  registry.gauge("baseline.delivered").set(static_cast<double>(baseline.delivered));
  registry.gauge("chaos.sent").set(static_cast<double>(chaos.sent));
  registry.gauge("chaos.delivered").set(static_cast<double>(chaos.delivered));
  registry.gauge("fairness_ratio").set(fairness);
  registry.gauge("ping.p99_ms").set(ping_p99);
  registry.gauge("ping.samples").set(static_cast<double>(ping_ms.size()));
  registry.gauge("rss_delta_mb").set(rss_delta_mb);
  registry.gauge("packets.malformed").set(static_cast<double>(server.packets_malformed.value()));
  registry.gauge("packets.shed_policer")
      .set(static_cast<double>(server.packets_shed_policer.value()));
  registry.gauge("packets.shed_queue")
      .set(static_cast<double>(server.packets_shed_queue.value()));
  registry.gauge("control.malformed").set(static_cast<double>(server.control_malformed.value()));
  registry.gauge("connections.reaped_slow")
      .set(static_cast<double>(server.connections_reaped_slow.value()));
  registry.gauge("fault.recovered").set(recovered > 0 ? 1.0 : 0.0);

  std::printf("baseline: %zu/%zu delivered (%.3f)\n", baseline.delivered, baseline.sent,
              baseline.ratio());
  std::printf("chaos:    %zu/%zu delivered (%.3f)  fairness %.3f\n", chaos.delivered,
              chaos.sent, chaos.ratio(), fairness);
  std::printf("control:  ping p99 %.2f ms over %zu samples\n", ping_p99, ping_ms.size());
  std::printf("perimeter: %llu malformed, %llu policer-shed, %llu queue-shed, "
              "%llu control-malformed, %llu slow-reaped\n",
              static_cast<unsigned long long>(server.packets_malformed.value()),
              static_cast<unsigned long long>(server.packets_shed_policer.value()),
              static_cast<unsigned long long>(server.packets_shed_queue.value()),
              static_cast<unsigned long long>(server.control_malformed.value()),
              static_cast<unsigned long long>(server.connections_reaped_slow.value()));
  std::printf("memory:   maxrss delta %.1f MB; fault recovery: data %s, control %s\n",
              rss_delta_mb, recovered > 0 ? "ok" : "FAILED",
              control_recovered ? "ok" : "FAILED");

  int failures = 0;
  const auto check = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "SOAK FAIL: %s\n", what);
      ++failures;
    }
  };
  check(baseline.ratio() > 0.9, "baseline delivery ratio > 0.9");
  check(fairness >= 0.8, "victim retains >= 80% of baseline under 10x flood");
  check(ping_p99 < 10.0, "control ping p99 < 10 ms under flood");
  check(!ping_ms.empty(), "latency probe collected samples");
  check(server.packets_malformed.value() > 0, "garbage was counted as malformed");
  check(server.packets_shed_policer.value() > 0, "flood was policed");
  check(server.control_malformed.value() > 0, "hostile control frames were rejected");
  check(server.connections_reaped_slow.value() > 0, "slowloris connection was reaped");
  check(rss_delta_mb < 256.0, "maxrss growth bounded (< 256 MB)");
  check(recovered > 0, "data plane recovered after crash+restart");
  check(control_recovered, "control plane recovered after crash+restart");

  if (!bench::write_bench_json("soak", "udp")) return 1;
  if (failures != 0) {
    std::fprintf(stderr, "bench_soak: %d assertion(s) failed\n", failures);
    return 1;
  }
  std::printf("bench_soak: all assertions held\n");
  return 0;
}
