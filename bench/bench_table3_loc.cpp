// Table III reproduction: lines of code, NetCL vs P4.
//
// The NetCL column counts the application's NetCL-C device code. The P4
// column counts the complete P4_16 program a P4 programmer must own for the
// same functionality — here, the full program our backend emits (headers,
// parsers, registers, tables, actions, control, runtime, forwarding),
// which stands in for the authors' handwritten P4_16 rewrites. The paper's
// published columns are printed alongside for reference.
//
// Expected shape: NetCL is O(10) LoC, P4 is O(100); geometric-mean
// reduction of roughly an order of magnitude (paper: 8.14x / 11.93x).
#include <cmath>

#include "bench_util.hpp"

int main() {
  using namespace netcl;
  using namespace netcl::bench;

  std::printf("Table III: lines of code (NetCL vs P4)\n");
  print_rule();
  std::printf("%-7s %8s %12s %10s | %8s %8s %8s\n", "APP", "NETCL", "P4(emitted)", "REDUCTION",
              "ref:NCL", "ref:P4*", "ref:P4");
  print_rule();

  double log_sum = 0.0;
  int rows = 0;
  const auto& reference = apps::paper_reference();
  for (const BenchApp& app : evaluation_apps()) {
    driver::CompileResult compiled = compile_app(app);
    if (!compiled.ok) return 1;
    const int netcl_loc = compiled.netcl_loc;
    const int p4_loc = compiled.p4.loc();
    const double reduction = static_cast<double>(p4_loc) / netcl_loc;
    log_sum += std::log(reduction);
    ++rows;

    const apps::PaperLocRow* ref = nullptr;
    for (const apps::PaperLocRow& row : reference.loc) {
      if (app.label == row.app) ref = &row;
    }
    std::printf("%-7s %8d %12d %9.2fx | %8d %8d %8d\n", app.label.c_str(), netcl_loc, p4_loc,
                reduction, ref != nullptr ? ref->netcl : 0, ref != nullptr ? ref->p4_star : 0,
                ref != nullptr ? ref->p4 : 0);
  }
  print_rule();
  std::printf("GEOMEAN reduction: %.2fx   (paper: %.2fx vs P4*, %.2fx vs P4)\n",
              std::exp(log_sum / rows), reference.loc_geomean_reduction_p4_star,
              reference.loc_geomean_reduction_p4);
  return write_bench_json("table3_loc", "none") ? 0 : 1;
}
