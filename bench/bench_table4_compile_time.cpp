// Table IV reproduction: compilation times.
//
// The paper reports ncc (their LLVM-based compiler) finishing in < 1 s for
// every app, with > 98% of total time spent in Intel's proprietary bf-p4c.
// Our split: "ncc" = frontend + middle end; "backend" = P4 emission +
// stage allocation, the part standing in for bf-p4c. Uses google-benchmark
// for robust timing, then prints the per-app table (average of 5 runs,
// like the paper).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace netcl;
using namespace netcl::bench;

void compile_benchmark(benchmark::State& state, const BenchApp& app) {
  for (auto _ : state) {
    driver::CompileResult result = compile_app(app);
    benchmark::DoNotOptimize(result.ok);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const BenchApp& app : evaluation_apps()) {
    benchmark::RegisterBenchmark(("compile/" + app.label).c_str(),
                                 [app](benchmark::State& state) {
                                   compile_benchmark(state, app);
                                 });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\nTable IV: compilation times (seconds, average of 5 runs)\n");
  print_rule();
  std::printf("%-7s %10s %12s %10s %12s\n", "APP", "ncc", "backend", "total", "ncc share");
  print_rule();
  for (const BenchApp& app : evaluation_apps()) {
    double frontend = 0.0;
    double backend = 0.0;
    const int runs = 5;
    for (int i = 0; i < runs; ++i) {
      driver::CompileResult result = compile_app(app);
      if (!result.ok) return 1;
      frontend += result.frontend_seconds;
      backend += result.backend_seconds;
    }
    frontend /= runs;
    backend /= runs;
    std::printf("%-7s %10.4f %12.4f %10.4f %11.1f%%\n", app.label.c_str(), frontend, backend,
                frontend + backend, 100.0 * frontend / (frontend + backend));
  }
  print_rule();
  std::printf("paper: ncc < %.0f s for every app; the P4 backend dominates total time\n",
              netcl::apps::paper_reference().ncc_max_seconds);
  return write_bench_json("table4_compile_time", "none") ? 0 : 1;
}
