// Table V reproduction: Tofino resource utilization of generated vs
// handwritten P4.
//
// For each app: stage count, then SRAM/TCAM/SALU/VLIW usage as a
// percentage of the pipe budget (PIPE TOTAL) and of a single stage's
// budget (WORST STAGE) — NetCL-generated next to the derived handwritten
// baseline, plus the EMPTY (runtime + base program only) column.
//
// Expected shape (paper): every app fits 12 stages; usage is modest and in
// line with handwritten; generated AGG uses no TCAM while handwritten
// SwitchML does; generated CACHE needs ~3 more stages than handwritten
// (sub+MSB min-chain).
#include "bench_util.hpp"

namespace {

using namespace netcl;
using namespace netcl::bench;

struct Percentages {
  double sram, tcam, salu, vliw;
};

Percentages pipe_totals(const p4::StageUsage& usage, const p4::StageLimits& limits) {
  const double stages = limits.stages;
  return {100.0 * usage.sram / (limits.sram_blocks * stages),
          100.0 * usage.tcam / (limits.tcam_blocks * stages),
          100.0 * usage.salus / (limits.salus * stages),
          100.0 * usage.vliw / (limits.vliw_slots * stages)};
}

Percentages stage_worst(const p4::StageUsage& usage, const p4::StageLimits& limits) {
  return {100.0 * usage.sram / limits.sram_blocks, 100.0 * usage.tcam / limits.tcam_blocks,
          100.0 * usage.salus / limits.salus, 100.0 * usage.vliw / limits.vliw_slots};
}

void print_row(const char* label, int stages, const Percentages& total,
               const Percentages& worst) {
  std::printf("%-12s %6d | %6.1f %6.1f %6.1f %6.1f | %6.1f %6.1f %6.1f %6.1f\n", label, stages,
              total.sram, total.tcam, total.salu, total.vliw, worst.sram, worst.tcam,
              worst.salu, worst.vliw);
}

}  // namespace

int main() {
  const p4::StageLimits limits;
  std::printf("Table V: Tofino resource utilization (%% of budget)\n");
  std::printf("%-12s %6s | %27s | %27s\n", "", "", "PIPE TOTAL", "WORST STAGE");
  std::printf("%-12s %6s | %6s %6s %6s %6s | %6s %6s %6s %6s\n", "APP", "STAGES", "SRAM",
              "TCAM", "SALU", "VLIW", "SRAM", "TCAM", "SALU", "VLIW");
  print_rule(92);

  for (const BenchApp& app : evaluation_apps()) {
    driver::CompileResult compiled = compile_app(app);
    if (!compiled.ok) return 1;
    print_row((app.label + " (ncl)").c_str(), compiled.allocation.stages_used,
              pipe_totals(compiled.allocation.total, limits),
              stage_worst(compiled.allocation.worst, limits));
    const apps::HandwrittenModel hand = apps::handwritten_baseline(app.label, compiled);
    print_row((app.label + " (hand)").c_str(), hand.stages, pipe_totals(hand.total, limits),
              stage_worst(hand.worst, limits));
    if (app.label == "AGG" && compiled.allocation.total.tcam == 0) {
      std::printf("    note: generated AGG uses no TCAM (condition folded into SALU); "
                  "handwritten uses ternary MATs\n");
    }
  }

  driver::CompileResult empty = compile_empty();
  if (!empty.ok) return 1;
  print_row("EMPTY", empty.allocation.stages_used, pipe_totals(empty.allocation.total, limits),
            stage_worst(empty.allocation.worst, limits));
  print_rule(92);
  std::printf("paper: all applications fit a 12-stage Tofino pipe; generated usage in line "
              "with handwritten;\n       CACHE generated needs +%d stages (cms min-chain)\n",
              apps::paper_reference().cache_extra_stages_generated);
  return write_bench_json("table5_resources", "none") ? 0 : 1;
}
