// Table VI reproduction: local memory and PHV occupancy.
//
// For each app: the bits of compiler temporaries that survive across
// stages, the kernel-data header bits, the NetCL shim header, and the
// resulting worst-case PHV occupancy — against the derived handwritten
// baseline.
//
// Expected shape (paper): NetCL adds the shim header + structurization
// locals; worst-case PHV stays within a couple of percent of handwritten
// except for tiny programs (CALC), where the fixed overhead dominates.
#include "bench_util.hpp"

int main() {
  using namespace netcl;
  using namespace netcl::bench;
  const p4::StageLimits limits;

  std::printf("Table VI: local memory (bits) and worst-case PHV occupancy\n");
  print_rule(96);
  std::printf("%-7s %10s %10s %10s %10s | %9s %9s %8s\n", "APP", "locals", "hdr(data)",
              "hdr(shim)", "base+meta", "PHV(ncl)", "PHV(hand)", "delta");
  print_rule(96);

  for (const BenchApp& app : evaluation_apps()) {
    driver::CompileResult compiled = compile_app(app);
    if (!compiled.ok) return 1;
    const p4::PhvUsage& phv = compiled.phv;
    const apps::HandwrittenModel hand = apps::handwritten_baseline(app.label, compiled);
    const double ours = phv.occupancy_pct(limits);
    std::printf("%-7s %10d %10d %10d %10d | %8.1f%% %8.1f%% %+7.1f%%\n", app.label.c_str(),
                phv.local_var_bits, phv.header_bits, phv.netcl_header_bits,
                phv.base_program_bits + phv.metadata_bits, ours, hand.worst_phv_pct,
                ours - hand.worst_phv_pct);
  }

  driver::CompileResult empty = compile_empty();
  const double empty_pct = empty.phv.occupancy_pct(limits);
  std::printf("%-7s %10d %10d %10d %10d | %8.1f%%\n", "EMPTY", empty.phv.local_var_bits,
              empty.phv.header_bits, empty.phv.netcl_header_bits,
              empty.phv.base_program_bits + empty.phv.metadata_bits, empty_pct);
  print_rule(96);
  std::printf("paper: worst-case PHV within ~%.0f%% of handwritten, except small programs "
              "(CALC ~+%.0f%%) where\nthe shim header and base program dominate\n",
              apps::paper_reference().phv_gap_typical_pct,
              apps::paper_reference().phv_gap_calc_pct);
  return write_bench_json("table6_phv", "none") ? 0 : 1;
}
