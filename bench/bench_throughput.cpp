// Transport v2 data-plane throughput (ISSUE 5): batched vs per-packet.
//
// Two UdpTransports on loopback: the sender pushes AGG-shaped packets
// (12-byte NetCL header + 64-byte payload, the wire shape of one AGG
// contribution row) and the receiver drains them through the batch
// receiver. Two configurations of the identical pipeline:
//
//   per_packet  send() one packet at a time, max_syscall_batch = 1 — the
//               v1 API shape: one sendto-equivalent syscall per datagram
//               on both sides;
//   batched     send_batch() of 32, max_syscall_batch = 32 — one
//               sendmmsg/recvmmsg syscall moves up to 32 datagrams.
//
// Headline numbers, written as gauges to registry "throughput" and dumped
// to BENCH_throughput.json (CI asserts batched pps >= per-packet pps):
//   <mode>.pps                  end-to-end packets/s (received / elapsed)
//   <mode>.syscalls_per_packet  tx-side syscalls per packet sent
//   batched_vs_per_packet_speedup
//
//   bench_throughput [--packets N] [--smoke]
//
// --smoke caps the run at 2000 packets per mode for CI smoke steps.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "net/udp_transport.hpp"
#include "obs/metrics.hpp"
#include "sim/packet.hpp"

namespace {

using namespace netcl;

constexpr std::size_t kBurst = net::UdpTransport::kMaxBatch;  // 32
constexpr std::size_t kPayloadBytes = 64;

sim::Packet make_packet(std::uint64_t seq) {
  sim::Packet packet;
  packet.has_netcl = true;
  packet.netcl.src = 1;
  packet.netcl.to = 1;
  packet.netcl.comp = 1;
  packet.payload.resize(kPayloadBytes);
  for (std::size_t i = 0; i < kPayloadBytes; ++i) {
    packet.payload[i] = static_cast<std::uint8_t>(seq + i);
  }
  return packet;
}

struct ModeResult {
  bool ok = false;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  double seconds = 0.0;
  double pps = 0.0;
  double tx_syscalls_per_packet = 0.0;
};

ModeResult run_mode(const char* mode, bool batched, std::uint64_t total_packets) {
  ModeResult result;

  net::UdpTransport::Options rx_options;
  rx_options.metrics_name = std::string("throughput.rx.") + mode;
  rx_options.max_syscall_batch = batched ? kBurst : 1;
  net::UdpTransport rx(rx_options);
  if (!rx.valid()) {
    std::fprintf(stderr, "FATAL: rx transport: %s\n", rx.error().c_str());
    return result;
  }

  net::UdpTransport::Options tx_options;
  tx_options.metrics_name = std::string("throughput.tx.") + mode;
  tx_options.peer_host = "127.0.0.1";
  tx_options.peer_port = rx.local_port();
  tx_options.max_syscall_batch = batched ? kBurst : 1;
  net::UdpTransport tx(tx_options);
  if (!tx.valid()) {
    std::fprintf(stderr, "FATAL: tx transport: %s\n", tx.error().c_str());
    return result;
  }

  std::uint64_t received = 0;
  rx.set_batch_receiver(
      [&received](std::span<const sim::Packet> batch) { received += batch.size(); });

  std::vector<sim::Packet> batch(kBurst);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t sent = 0;
  while (sent < total_packets) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(kBurst, total_packets - sent));
    for (std::size_t i = 0; i < n; ++i) batch[i] = make_packet(sent + i);
    if (batched) {
      tx.send_batch({batch.data(), n});
    } else {
      for (std::size_t i = 0; i < n; ++i) tx.send(std::move(batch[i]));
    }
    sent += n;
    // Flow control: drain the receiver after every burst so the loopback
    // socket buffer never overflows. One poll normally catches the whole
    // burst; stop early instead of spinning if a datagram really vanished.
    while (received < sent) {
      const std::uint64_t before = received;
      rx.poll_once(0);
      if (received == before) break;
    }
  }
  // Late stragglers (if any poll above bailed early).
  rx.run_until([&] { return received >= sent; }, 200e6);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  result.ok = true;
  result.sent = sent;
  result.received = received;
  result.seconds = seconds;
  result.pps = seconds > 0.0 ? static_cast<double>(received) / seconds : 0.0;
  result.tx_syscalls_per_packet =
      sent > 0 ? static_cast<double>(tx.send_syscalls.value()) / static_cast<double>(sent)
               : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netcl::bench;

  std::uint64_t total_packets = 100000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      total_packets = 2000;
    } else if (std::strcmp(argv[i], "--packets") == 0 && i + 1 < argc) {
      total_packets = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--packets N] [--smoke]\n", argv[0]);
      return 2;
    }
  }

  obs::reset_all();
  std::printf("Transport v2 throughput: %llu AGG-shaped packets/mode, %zu-byte payload\n",
              static_cast<unsigned long long>(total_packets), kPayloadBytes);
  print_rule(72);
  std::printf("%-12s %12s %12s %10s %14s\n", "mode", "pps", "received", "seconds",
              "tx syscalls/p");
  print_rule(72);

  const ModeResult per_packet = run_mode("per_packet", false, total_packets);
  const ModeResult batched = run_mode("batched", true, total_packets);
  if (!per_packet.ok || !batched.ok) return 1;
  for (const auto& [mode, r] :
       {std::pair<const char*, const ModeResult&>{"per_packet", per_packet},
        std::pair<const char*, const ModeResult&>{"batched", batched}}) {
    std::printf("%-12s %12.3e %12llu %10.3f %14.3f\n", mode, r.pps,
                static_cast<unsigned long long>(r.received), r.seconds,
                r.tx_syscalls_per_packet);
  }
  print_rule(72);
  const double speedup = per_packet.pps > 0.0 ? batched.pps / per_packet.pps : 0.0;
  std::printf("batched vs per-packet speedup: %.2fx (ISSUE 5 target: >= 2x full run)\n",
              speedup);

  obs::MetricsRegistry summary("throughput");
  summary.gauge("per_packet.pps").set(per_packet.pps);
  summary.gauge("per_packet.syscalls_per_packet").set(per_packet.tx_syscalls_per_packet);
  summary.gauge("batched.pps").set(batched.pps);
  summary.gauge("batched.syscalls_per_packet").set(batched.tx_syscalls_per_packet);
  summary.gauge("batched_vs_per_packet_speedup").set(speedup);

  // Delivery sanity: a bench that lost packets measured the wrong thing.
  if (per_packet.received != per_packet.sent || batched.received != batched.sent) {
    std::fprintf(stderr, "FATAL: packets lost on loopback (per_packet %llu/%llu, "
                 "batched %llu/%llu)\n",
                 static_cast<unsigned long long>(per_packet.received),
                 static_cast<unsigned long long>(per_packet.sent),
                 static_cast<unsigned long long>(batched.received),
                 static_cast<unsigned long long>(batched.sent));
    return 1;
  }
  return write_bench_json("throughput", "udp") ? 0 : 1;
}
