// Shared helpers for the table/figure reproduction benchmarks.
//
// Each bench binary regenerates one table or figure of the paper's
// evaluation (§VII): it compiles the four applications exactly as the tests
// do, then prints the same rows/series the paper reports, side by side with
// the published reference values where those exist.
#pragma once

#include <cstdio>
#include <ctime>
#include <map>
#include <string>
#include <vector>

#include "apps/handwritten.hpp"
#include "apps/sources.hpp"
#include "driver/compiler.hpp"
#include "obs/metrics.hpp"

// Injected by bench/CMakeLists.txt (git rev-parse at configure time);
// "unknown" outside a git checkout.
#ifndef NETCL_GIT_SHA
#define NETCL_GIT_SHA "unknown"
#endif

namespace netcl::bench {

struct BenchApp {
  std::string label;       // row label (paper naming: AGG, CACHE, PACC, ...)
  apps::AppSource source;  // program text + defines
  int device_id = 1;       // which device's code this row measures
};

/// The paper's evaluation set. P4xos contributes three rows (acceptor,
/// learner, leader), matching Table III/V.
inline std::vector<BenchApp> evaluation_apps() {
  std::vector<BenchApp> result;
  result.push_back({"AGG", apps::agg_source(), 1});
  result.push_back({"CACHE", apps::cache_source(), 1});
  result.push_back({"PACC", apps::paxos_source(), apps::kPaxosAcceptors[0]});
  result.push_back({"PLRN", apps::paxos_source(), apps::kPaxosLearnerDevice});
  result.push_back({"PLDR", apps::paxos_source(), apps::kPaxosLeaderDevice});
  result.push_back({"CALC", apps::calc_source(), 1});
  return result;
}

/// Compiles one app for its device (TNA by default). Aborts the bench with
/// a message on failure — every app is expected to fit.
inline driver::CompileResult compile_app(const BenchApp& app,
                                         passes::Target target = passes::Target::Tna,
                                         bool speculation = true, bool duplication = true,
                                         bool partitioning = true) {
  driver::CompileOptions options;
  options.device_id = app.device_id;
  options.defines = app.source.defines;
  options.target = target;
  options.speculation = speculation;
  options.duplication = duplication;
  options.partitioning = partitioning;
  driver::CompileResult result = driver::compile_netcl(app.source.source, options);
  if (!result.ok) {
    std::fprintf(stderr, "FATAL: %s failed to compile:\n%s\n", app.label.c_str(),
                 result.errors.c_str());
  }
  return result;
}

/// The EMPTY program: just the NetCL runtime + base forwarding program.
inline driver::CompileResult compile_empty() {
  driver::CompileOptions options;
  options.device_id = 1;
  return driver::compile_netcl("_kernel(1) void noop(unsigned x) { return ncl::pass(); }",
                               options);
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Provenance stamped into every BENCH_*.json (ISSUE 4): the commit the
/// numbers came from, when they were taken, and which transport carried
/// the traffic ("sim" for fabric runs, "udp" for real-socket runs,
/// "none" for compile-only benches).
inline std::map<std::string, std::string> bench_meta(const std::string& transport) {
  std::map<std::string, std::string> meta;
  meta["git_sha"] = NETCL_GIT_SHA;
  meta["transport"] = transport;
  char stamp[sizeof "2026-01-01T00:00:00Z"] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  if (gmtime_r(&now, &utc) != nullptr) {
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &utc);
  }
  meta["timestamp_utc"] = stamp;
  return meta;
}

/// Dumps the retained+live metric registries to BENCH_<name>.json with the
/// provenance header; CI archives these as artifacts. False (with a
/// message) on I/O failure so benches can fail loudly.
inline bool write_bench_json(const std::string& name, const std::string& transport) {
  const std::string path = "BENCH_" + name + ".json";
  if (!obs::dump(path, bench_meta(transport))) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("metrics: %s\n", path.c_str());
  return true;
}

}  // namespace netcl::bench
