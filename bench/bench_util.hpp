// Shared helpers for the table/figure reproduction benchmarks.
//
// Each bench binary regenerates one table or figure of the paper's
// evaluation (§VII): it compiles the four applications exactly as the tests
// do, then prints the same rows/series the paper reports, side by side with
// the published reference values where those exist.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "apps/handwritten.hpp"
#include "apps/sources.hpp"
#include "driver/compiler.hpp"

namespace netcl::bench {

struct BenchApp {
  std::string label;       // row label (paper naming: AGG, CACHE, PACC, ...)
  apps::AppSource source;  // program text + defines
  int device_id = 1;       // which device's code this row measures
};

/// The paper's evaluation set. P4xos contributes three rows (acceptor,
/// learner, leader), matching Table III/V.
inline std::vector<BenchApp> evaluation_apps() {
  std::vector<BenchApp> result;
  result.push_back({"AGG", apps::agg_source(), 1});
  result.push_back({"CACHE", apps::cache_source(), 1});
  result.push_back({"PACC", apps::paxos_source(), apps::kPaxosAcceptors[0]});
  result.push_back({"PLRN", apps::paxos_source(), apps::kPaxosLearnerDevice});
  result.push_back({"PLDR", apps::paxos_source(), apps::kPaxosLeaderDevice});
  result.push_back({"CALC", apps::calc_source(), 1});
  return result;
}

/// Compiles one app for its device (TNA by default). Aborts the bench with
/// a message on failure — every app is expected to fit.
inline driver::CompileResult compile_app(const BenchApp& app,
                                         passes::Target target = passes::Target::Tna,
                                         bool speculation = true, bool duplication = true,
                                         bool partitioning = true) {
  driver::CompileOptions options;
  options.device_id = app.device_id;
  options.defines = app.source.defines;
  options.target = target;
  options.speculation = speculation;
  options.duplication = duplication;
  options.partitioning = partitioning;
  driver::CompileResult result = driver::compile_netcl(app.source.source, options);
  if (!result.ok) {
    std::fprintf(stderr, "FATAL: %s failed to compile:\n%s\n", app.label.c_str(),
                 result.errors.c_str());
  }
  return result;
}

/// The EMPTY program: just the NetCL runtime + base forwarding program.
inline driver::CompileResult compile_empty() {
  driver::CompileOptions options;
  options.device_id = 1;
  return driver::compile_netcl("_kernel(1) void noop(unsigned x) { return ncl::pass(); }",
                               options);
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace netcl::bench
