# Empty dependencies file for bench_fig14_agg_e2e.
# This may be replaced when dependencies are built.
