# Empty dependencies file for bench_fig14_cache_e2e.
# This may be replaced when dependencies are built.
