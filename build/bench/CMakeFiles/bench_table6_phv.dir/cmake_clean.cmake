file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_phv.dir/bench_table6_phv.cpp.o"
  "CMakeFiles/bench_table6_phv.dir/bench_table6_phv.cpp.o.d"
  "bench_table6_phv"
  "bench_table6_phv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_phv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
