# Empty compiler generated dependencies file for bench_table6_phv.
# This may be replaced when dependencies are built.
