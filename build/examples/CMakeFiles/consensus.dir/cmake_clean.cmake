file(REMOVE_RECURSE
  "CMakeFiles/consensus.dir/consensus.cpp.o"
  "CMakeFiles/consensus.dir/consensus.cpp.o.d"
  "consensus"
  "consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
