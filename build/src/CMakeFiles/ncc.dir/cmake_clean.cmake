file(REMOVE_RECURSE
  "CMakeFiles/ncc.dir/driver/ncc_main.cpp.o"
  "CMakeFiles/ncc.dir/driver/ncc_main.cpp.o.d"
  "ncc"
  "ncc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
