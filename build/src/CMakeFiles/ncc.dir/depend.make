# Empty dependencies file for ncc.
# This may be replaced when dependencies are built.
