file(REMOVE_RECURSE
  "CMakeFiles/netcl_apps.dir/apps/agg.cpp.o"
  "CMakeFiles/netcl_apps.dir/apps/agg.cpp.o.d"
  "CMakeFiles/netcl_apps.dir/apps/cache.cpp.o"
  "CMakeFiles/netcl_apps.dir/apps/cache.cpp.o.d"
  "CMakeFiles/netcl_apps.dir/apps/calc.cpp.o"
  "CMakeFiles/netcl_apps.dir/apps/calc.cpp.o.d"
  "CMakeFiles/netcl_apps.dir/apps/handwritten.cpp.o"
  "CMakeFiles/netcl_apps.dir/apps/handwritten.cpp.o.d"
  "CMakeFiles/netcl_apps.dir/apps/paxos.cpp.o"
  "CMakeFiles/netcl_apps.dir/apps/paxos.cpp.o.d"
  "CMakeFiles/netcl_apps.dir/apps/sources.cpp.o"
  "CMakeFiles/netcl_apps.dir/apps/sources.cpp.o.d"
  "libnetcl_apps.a"
  "libnetcl_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcl_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
