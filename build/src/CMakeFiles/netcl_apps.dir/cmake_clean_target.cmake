file(REMOVE_RECURSE
  "libnetcl_apps.a"
)
