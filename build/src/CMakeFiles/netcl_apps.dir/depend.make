# Empty dependencies file for netcl_apps.
# This may be replaced when dependencies are built.
