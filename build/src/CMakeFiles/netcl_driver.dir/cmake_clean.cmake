file(REMOVE_RECURSE
  "CMakeFiles/netcl_driver.dir/driver/compiler.cpp.o"
  "CMakeFiles/netcl_driver.dir/driver/compiler.cpp.o.d"
  "libnetcl_driver.a"
  "libnetcl_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcl_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
