file(REMOVE_RECURSE
  "libnetcl_driver.a"
)
