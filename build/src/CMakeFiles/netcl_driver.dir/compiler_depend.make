# Empty compiler generated dependencies file for netcl_driver.
# This may be replaced when dependencies are built.
