
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/ast.cpp" "src/CMakeFiles/netcl_frontend.dir/frontend/ast.cpp.o" "gcc" "src/CMakeFiles/netcl_frontend.dir/frontend/ast.cpp.o.d"
  "/root/repo/src/frontend/lexer.cpp" "src/CMakeFiles/netcl_frontend.dir/frontend/lexer.cpp.o" "gcc" "src/CMakeFiles/netcl_frontend.dir/frontend/lexer.cpp.o.d"
  "/root/repo/src/frontend/parser.cpp" "src/CMakeFiles/netcl_frontend.dir/frontend/parser.cpp.o" "gcc" "src/CMakeFiles/netcl_frontend.dir/frontend/parser.cpp.o.d"
  "/root/repo/src/frontend/sema.cpp" "src/CMakeFiles/netcl_frontend.dir/frontend/sema.cpp.o" "gcc" "src/CMakeFiles/netcl_frontend.dir/frontend/sema.cpp.o.d"
  "/root/repo/src/frontend/token.cpp" "src/CMakeFiles/netcl_frontend.dir/frontend/token.cpp.o" "gcc" "src/CMakeFiles/netcl_frontend.dir/frontend/token.cpp.o.d"
  "/root/repo/src/frontend/type.cpp" "src/CMakeFiles/netcl_frontend.dir/frontend/type.cpp.o" "gcc" "src/CMakeFiles/netcl_frontend.dir/frontend/type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netcl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
