file(REMOVE_RECURSE
  "CMakeFiles/netcl_frontend.dir/frontend/ast.cpp.o"
  "CMakeFiles/netcl_frontend.dir/frontend/ast.cpp.o.d"
  "CMakeFiles/netcl_frontend.dir/frontend/lexer.cpp.o"
  "CMakeFiles/netcl_frontend.dir/frontend/lexer.cpp.o.d"
  "CMakeFiles/netcl_frontend.dir/frontend/parser.cpp.o"
  "CMakeFiles/netcl_frontend.dir/frontend/parser.cpp.o.d"
  "CMakeFiles/netcl_frontend.dir/frontend/sema.cpp.o"
  "CMakeFiles/netcl_frontend.dir/frontend/sema.cpp.o.d"
  "CMakeFiles/netcl_frontend.dir/frontend/token.cpp.o"
  "CMakeFiles/netcl_frontend.dir/frontend/token.cpp.o.d"
  "CMakeFiles/netcl_frontend.dir/frontend/type.cpp.o"
  "CMakeFiles/netcl_frontend.dir/frontend/type.cpp.o.d"
  "libnetcl_frontend.a"
  "libnetcl_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcl_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
