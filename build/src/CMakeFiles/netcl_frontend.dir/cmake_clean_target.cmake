file(REMOVE_RECURSE
  "libnetcl_frontend.a"
)
