# Empty compiler generated dependencies file for netcl_frontend.
# This may be replaced when dependencies are built.
