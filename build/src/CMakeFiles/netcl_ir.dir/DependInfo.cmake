
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cpp" "src/CMakeFiles/netcl_ir.dir/ir/builder.cpp.o" "gcc" "src/CMakeFiles/netcl_ir.dir/ir/builder.cpp.o.d"
  "/root/repo/src/ir/dominators.cpp" "src/CMakeFiles/netcl_ir.dir/ir/dominators.cpp.o" "gcc" "src/CMakeFiles/netcl_ir.dir/ir/dominators.cpp.o.d"
  "/root/repo/src/ir/eval.cpp" "src/CMakeFiles/netcl_ir.dir/ir/eval.cpp.o" "gcc" "src/CMakeFiles/netcl_ir.dir/ir/eval.cpp.o.d"
  "/root/repo/src/ir/function.cpp" "src/CMakeFiles/netcl_ir.dir/ir/function.cpp.o" "gcc" "src/CMakeFiles/netcl_ir.dir/ir/function.cpp.o.d"
  "/root/repo/src/ir/instruction.cpp" "src/CMakeFiles/netcl_ir.dir/ir/instruction.cpp.o" "gcc" "src/CMakeFiles/netcl_ir.dir/ir/instruction.cpp.o.d"
  "/root/repo/src/ir/lower_ast.cpp" "src/CMakeFiles/netcl_ir.dir/ir/lower_ast.cpp.o" "gcc" "src/CMakeFiles/netcl_ir.dir/ir/lower_ast.cpp.o.d"
  "/root/repo/src/ir/module.cpp" "src/CMakeFiles/netcl_ir.dir/ir/module.cpp.o" "gcc" "src/CMakeFiles/netcl_ir.dir/ir/module.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/netcl_ir.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/netcl_ir.dir/ir/printer.cpp.o.d"
  "/root/repo/src/ir/verifier.cpp" "src/CMakeFiles/netcl_ir.dir/ir/verifier.cpp.o" "gcc" "src/CMakeFiles/netcl_ir.dir/ir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netcl_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netcl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
