file(REMOVE_RECURSE
  "CMakeFiles/netcl_ir.dir/ir/builder.cpp.o"
  "CMakeFiles/netcl_ir.dir/ir/builder.cpp.o.d"
  "CMakeFiles/netcl_ir.dir/ir/dominators.cpp.o"
  "CMakeFiles/netcl_ir.dir/ir/dominators.cpp.o.d"
  "CMakeFiles/netcl_ir.dir/ir/eval.cpp.o"
  "CMakeFiles/netcl_ir.dir/ir/eval.cpp.o.d"
  "CMakeFiles/netcl_ir.dir/ir/function.cpp.o"
  "CMakeFiles/netcl_ir.dir/ir/function.cpp.o.d"
  "CMakeFiles/netcl_ir.dir/ir/instruction.cpp.o"
  "CMakeFiles/netcl_ir.dir/ir/instruction.cpp.o.d"
  "CMakeFiles/netcl_ir.dir/ir/lower_ast.cpp.o"
  "CMakeFiles/netcl_ir.dir/ir/lower_ast.cpp.o.d"
  "CMakeFiles/netcl_ir.dir/ir/module.cpp.o"
  "CMakeFiles/netcl_ir.dir/ir/module.cpp.o.d"
  "CMakeFiles/netcl_ir.dir/ir/printer.cpp.o"
  "CMakeFiles/netcl_ir.dir/ir/printer.cpp.o.d"
  "CMakeFiles/netcl_ir.dir/ir/verifier.cpp.o"
  "CMakeFiles/netcl_ir.dir/ir/verifier.cpp.o.d"
  "libnetcl_ir.a"
  "libnetcl_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcl_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
