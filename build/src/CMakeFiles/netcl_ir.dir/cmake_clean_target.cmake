file(REMOVE_RECURSE
  "libnetcl_ir.a"
)
