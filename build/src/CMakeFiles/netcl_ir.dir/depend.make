# Empty dependencies file for netcl_ir.
# This may be replaced when dependencies are built.
