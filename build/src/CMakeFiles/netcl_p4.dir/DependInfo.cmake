
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p4/latency.cpp" "src/CMakeFiles/netcl_p4.dir/p4/latency.cpp.o" "gcc" "src/CMakeFiles/netcl_p4.dir/p4/latency.cpp.o.d"
  "/root/repo/src/p4/lower_pipeline.cpp" "src/CMakeFiles/netcl_p4.dir/p4/lower_pipeline.cpp.o" "gcc" "src/CMakeFiles/netcl_p4.dir/p4/lower_pipeline.cpp.o.d"
  "/root/repo/src/p4/p4_printer.cpp" "src/CMakeFiles/netcl_p4.dir/p4/p4_printer.cpp.o" "gcc" "src/CMakeFiles/netcl_p4.dir/p4/p4_printer.cpp.o.d"
  "/root/repo/src/p4/phv.cpp" "src/CMakeFiles/netcl_p4.dir/p4/phv.cpp.o" "gcc" "src/CMakeFiles/netcl_p4.dir/p4/phv.cpp.o.d"
  "/root/repo/src/p4/resources.cpp" "src/CMakeFiles/netcl_p4.dir/p4/resources.cpp.o" "gcc" "src/CMakeFiles/netcl_p4.dir/p4/resources.cpp.o.d"
  "/root/repo/src/p4/stage_alloc.cpp" "src/CMakeFiles/netcl_p4.dir/p4/stage_alloc.cpp.o" "gcc" "src/CMakeFiles/netcl_p4.dir/p4/stage_alloc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netcl_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netcl_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netcl_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netcl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
