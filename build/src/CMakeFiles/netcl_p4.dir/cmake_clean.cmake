file(REMOVE_RECURSE
  "CMakeFiles/netcl_p4.dir/p4/latency.cpp.o"
  "CMakeFiles/netcl_p4.dir/p4/latency.cpp.o.d"
  "CMakeFiles/netcl_p4.dir/p4/lower_pipeline.cpp.o"
  "CMakeFiles/netcl_p4.dir/p4/lower_pipeline.cpp.o.d"
  "CMakeFiles/netcl_p4.dir/p4/p4_printer.cpp.o"
  "CMakeFiles/netcl_p4.dir/p4/p4_printer.cpp.o.d"
  "CMakeFiles/netcl_p4.dir/p4/phv.cpp.o"
  "CMakeFiles/netcl_p4.dir/p4/phv.cpp.o.d"
  "CMakeFiles/netcl_p4.dir/p4/resources.cpp.o"
  "CMakeFiles/netcl_p4.dir/p4/resources.cpp.o.d"
  "CMakeFiles/netcl_p4.dir/p4/stage_alloc.cpp.o"
  "CMakeFiles/netcl_p4.dir/p4/stage_alloc.cpp.o.d"
  "libnetcl_p4.a"
  "libnetcl_p4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcl_p4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
