file(REMOVE_RECURSE
  "libnetcl_p4.a"
)
