# Empty dependencies file for netcl_p4.
# This may be replaced when dependencies are built.
