src/CMakeFiles/netcl_p4.dir/p4/latency.cpp.o: \
 /root/repo/src/p4/latency.cpp /usr/include/stdc-predef.h \
 /root/repo/src/p4/latency.hpp
