
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passes/dce.cpp" "src/CMakeFiles/netcl_passes.dir/passes/dce.cpp.o" "gcc" "src/CMakeFiles/netcl_passes.dir/passes/dce.cpp.o.d"
  "/root/repo/src/passes/hoist.cpp" "src/CMakeFiles/netcl_passes.dir/passes/hoist.cpp.o" "gcc" "src/CMakeFiles/netcl_passes.dir/passes/hoist.cpp.o.d"
  "/root/repo/src/passes/lower_patterns.cpp" "src/CMakeFiles/netcl_passes.dir/passes/lower_patterns.cpp.o" "gcc" "src/CMakeFiles/netcl_passes.dir/passes/lower_patterns.cpp.o.d"
  "/root/repo/src/passes/mem_legality.cpp" "src/CMakeFiles/netcl_passes.dir/passes/mem_legality.cpp.o" "gcc" "src/CMakeFiles/netcl_passes.dir/passes/mem_legality.cpp.o.d"
  "/root/repo/src/passes/simplify.cpp" "src/CMakeFiles/netcl_passes.dir/passes/simplify.cpp.o" "gcc" "src/CMakeFiles/netcl_passes.dir/passes/simplify.cpp.o.d"
  "/root/repo/src/passes/sroa.cpp" "src/CMakeFiles/netcl_passes.dir/passes/sroa.cpp.o" "gcc" "src/CMakeFiles/netcl_passes.dir/passes/sroa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netcl_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netcl_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netcl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
