file(REMOVE_RECURSE
  "CMakeFiles/netcl_passes.dir/passes/dce.cpp.o"
  "CMakeFiles/netcl_passes.dir/passes/dce.cpp.o.d"
  "CMakeFiles/netcl_passes.dir/passes/hoist.cpp.o"
  "CMakeFiles/netcl_passes.dir/passes/hoist.cpp.o.d"
  "CMakeFiles/netcl_passes.dir/passes/lower_patterns.cpp.o"
  "CMakeFiles/netcl_passes.dir/passes/lower_patterns.cpp.o.d"
  "CMakeFiles/netcl_passes.dir/passes/mem_legality.cpp.o"
  "CMakeFiles/netcl_passes.dir/passes/mem_legality.cpp.o.d"
  "CMakeFiles/netcl_passes.dir/passes/simplify.cpp.o"
  "CMakeFiles/netcl_passes.dir/passes/simplify.cpp.o.d"
  "CMakeFiles/netcl_passes.dir/passes/sroa.cpp.o"
  "CMakeFiles/netcl_passes.dir/passes/sroa.cpp.o.d"
  "libnetcl_passes.a"
  "libnetcl_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcl_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
