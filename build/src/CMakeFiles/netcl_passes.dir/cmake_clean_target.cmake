file(REMOVE_RECURSE
  "libnetcl_passes.a"
)
