# Empty dependencies file for netcl_passes.
# This may be replaced when dependencies are built.
