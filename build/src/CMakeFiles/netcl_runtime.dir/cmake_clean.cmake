file(REMOVE_RECURSE
  "CMakeFiles/netcl_runtime.dir/runtime/host.cpp.o"
  "CMakeFiles/netcl_runtime.dir/runtime/host.cpp.o.d"
  "CMakeFiles/netcl_runtime.dir/runtime/message.cpp.o"
  "CMakeFiles/netcl_runtime.dir/runtime/message.cpp.o.d"
  "libnetcl_runtime.a"
  "libnetcl_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcl_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
