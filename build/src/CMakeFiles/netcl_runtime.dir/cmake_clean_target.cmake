file(REMOVE_RECURSE
  "libnetcl_runtime.a"
)
