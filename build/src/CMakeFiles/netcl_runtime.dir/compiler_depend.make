# Empty compiler generated dependencies file for netcl_runtime.
# This may be replaced when dependencies are built.
