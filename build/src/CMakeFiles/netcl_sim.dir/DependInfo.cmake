
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/fabric.cpp" "src/CMakeFiles/netcl_sim.dir/sim/fabric.cpp.o" "gcc" "src/CMakeFiles/netcl_sim.dir/sim/fabric.cpp.o.d"
  "/root/repo/src/sim/packet.cpp" "src/CMakeFiles/netcl_sim.dir/sim/packet.cpp.o" "gcc" "src/CMakeFiles/netcl_sim.dir/sim/packet.cpp.o.d"
  "/root/repo/src/sim/registers.cpp" "src/CMakeFiles/netcl_sim.dir/sim/registers.cpp.o" "gcc" "src/CMakeFiles/netcl_sim.dir/sim/registers.cpp.o.d"
  "/root/repo/src/sim/switch.cpp" "src/CMakeFiles/netcl_sim.dir/sim/switch.cpp.o" "gcc" "src/CMakeFiles/netcl_sim.dir/sim/switch.cpp.o.d"
  "/root/repo/src/sim/table.cpp" "src/CMakeFiles/netcl_sim.dir/sim/table.cpp.o" "gcc" "src/CMakeFiles/netcl_sim.dir/sim/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netcl_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netcl_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netcl_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netcl_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netcl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
