file(REMOVE_RECURSE
  "CMakeFiles/netcl_sim.dir/sim/fabric.cpp.o"
  "CMakeFiles/netcl_sim.dir/sim/fabric.cpp.o.d"
  "CMakeFiles/netcl_sim.dir/sim/packet.cpp.o"
  "CMakeFiles/netcl_sim.dir/sim/packet.cpp.o.d"
  "CMakeFiles/netcl_sim.dir/sim/registers.cpp.o"
  "CMakeFiles/netcl_sim.dir/sim/registers.cpp.o.d"
  "CMakeFiles/netcl_sim.dir/sim/switch.cpp.o"
  "CMakeFiles/netcl_sim.dir/sim/switch.cpp.o.d"
  "CMakeFiles/netcl_sim.dir/sim/table.cpp.o"
  "CMakeFiles/netcl_sim.dir/sim/table.cpp.o.d"
  "libnetcl_sim.a"
  "libnetcl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
