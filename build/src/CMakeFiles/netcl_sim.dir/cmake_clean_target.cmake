file(REMOVE_RECURSE
  "libnetcl_sim.a"
)
