# Empty compiler generated dependencies file for netcl_sim.
# This may be replaced when dependencies are built.
