file(REMOVE_RECURSE
  "CMakeFiles/netcl_support.dir/support/diagnostics.cpp.o"
  "CMakeFiles/netcl_support.dir/support/diagnostics.cpp.o.d"
  "CMakeFiles/netcl_support.dir/support/hashes.cpp.o"
  "CMakeFiles/netcl_support.dir/support/hashes.cpp.o.d"
  "CMakeFiles/netcl_support.dir/support/source.cpp.o"
  "CMakeFiles/netcl_support.dir/support/source.cpp.o.d"
  "libnetcl_support.a"
  "libnetcl_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcl_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
