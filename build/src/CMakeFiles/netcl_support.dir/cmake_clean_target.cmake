file(REMOVE_RECURSE
  "libnetcl_support.a"
)
