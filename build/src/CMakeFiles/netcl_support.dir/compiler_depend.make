# Empty compiler generated dependencies file for netcl_support.
# This may be replaced when dependencies are built.
