file(REMOVE_RECURSE
  "CMakeFiles/test_p4.dir/p4/test_backend.cpp.o"
  "CMakeFiles/test_p4.dir/p4/test_backend.cpp.o.d"
  "test_p4"
  "test_p4.pdb"
  "test_p4[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
