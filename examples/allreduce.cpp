// In-network AllReduce (SwitchML-style, paper Fig. 7 / §VII AGG).
//
// Six workers aggregate gradient chunks through a top-of-rack switch, with
// 2% packet loss on every link to demonstrate the protocol's reliability
// mechanisms (slot versioning + retransmission + kept results).
#include <cstdio>

#include "apps/agg.hpp"

int main() {
  using namespace netcl::apps;

  std::printf("In-network AllReduce: 6 workers x 128 chunks x 32 elements, 2%% loss\n\n");
  AggConfig config;
  config.num_workers = 6;
  config.chunks = 128;
  config.slot_size = 32;
  config.num_slots = 64;
  config.window = 16;
  config.loss = 0.02;
  config.retransmit_ns = 150000.0;

  const AggResult result = run_agg(config);
  if (!result.ok) {
    std::fprintf(stderr, "failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("kernel pipeline stages : %d\n", result.stages_used);
  std::printf("aggregates correct     : %s\n", result.correct ? "yes" : "NO");
  std::printf("packets lost           : %llu\n",
              static_cast<unsigned long long>(result.packets_lost));
  std::printf("retransmissions        : %llu\n",
              static_cast<unsigned long long>(result.retransmissions));
  std::printf("simulated time         : %.3f ms\n", result.sim_seconds * 1e3);
  std::printf("throughput             : %.3e aggregated elements/s per worker\n",
              result.ate_per_sec_per_worker);
  return result.correct ? 0 : 1;
}
