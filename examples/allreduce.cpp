// In-network AllReduce (SwitchML-style, paper Fig. 7 / §VII AGG).
//
// Six workers aggregate gradient chunks through a top-of-rack switch, with
// 2% packet loss on every link to demonstrate the protocol's reliability
// mechanisms (slot versioning + retransmission + kept results).
#include <cstdio>
#include <cstring>

#include "apps/agg.hpp"

int main(int argc, char** argv) {
  using namespace netcl::apps;

  std::printf("In-network AllReduce: 6 workers x 128 chunks x 32 elements, 2%% loss\n\n");
  AggConfig config;
  config.num_workers = 6;
  config.chunks = 128;
  config.slot_size = 32;
  config.num_slots = 64;
  config.window = 16;
  config.loss = 0.02;
  config.retransmit_ns = 150000.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry") == 0) {
      config.telemetry = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      config.trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--transport") == 0 && i + 1 < argc) {
      config.transport_uri = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--telemetry] [--trace-out <file>] [--transport <uri>]\n",
                   argv[0]);
      return 2;
    }
  }

  const AggResult result = run_agg(config);
  if (!result.ok) {
    std::fprintf(stderr, "failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("kernel pipeline stages : %d\n", result.stages_used);
  std::printf("aggregates correct     : %s\n", result.correct ? "yes" : "NO");
  std::printf("packets lost           : %llu\n",
              static_cast<unsigned long long>(result.packets_lost));
  std::printf("retransmissions        : %llu\n",
              static_cast<unsigned long long>(result.retransmissions));
  std::printf("simulated time         : %.3f ms\n", result.sim_seconds * 1e3);
  std::printf("throughput             : %.3e aggregated elements/s per worker\n",
              result.ate_per_sec_per_worker);
  if (config.telemetry || !config.trace_out.empty()) {
    std::printf("telemetry spans        : %llu\n",
                static_cast<unsigned long long>(result.telemetry_spans));
  }
  if (!config.trace_out.empty()) {
    std::printf("trace written          : %s\n", config.trace_out.c_str());
  }
  return result.correct ? 0 : 1;
}
