// The in-network calculator (P4 tutorial / §VII CALC): the switch computes
// arithmetic on in-flight messages and reflects the result.
#include <cstdio>
#include <cstring>

#include "apps/calc.hpp"

int main(int argc, char** argv) {
  using namespace netcl::apps;

  std::printf("In-network calculator: 96 random operations\n\n");
  CalcConfig config;
  config.operations = 96;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry") == 0) {
      config.telemetry = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      config.trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--transport") == 0 && i + 1 < argc) {
      config.transport_uri = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--telemetry] [--trace-out <file>] [--transport <uri>]\n",
                   argv[0]);
      return 2;
    }
  }
  const CalcResult result = run_calc(config);
  if (!result.ok) {
    std::fprintf(stderr, "failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("answered   : %d (all reflected by the switch)\n", result.answered);
  std::printf("correct    : %d\n", result.correct);
  std::printf("dropped    : %d (unknown opcodes)\n", result.dropped_unknown);
  std::printf("stages     : %d\n", result.stages_used);
  if (config.telemetry || !config.trace_out.empty()) {
    std::printf("spans      : %llu\n",
                static_cast<unsigned long long>(result.telemetry_spans));
  }
  if (!config.trace_out.empty()) {
    std::printf("trace      : %s\n", config.trace_out.c_str());
  }
  return result.answered == result.correct ? 0 : 1;
}
