// The in-network calculator (P4 tutorial / §VII CALC): the switch computes
// arithmetic on in-flight messages and reflects the result.
#include <cstdio>

#include "apps/calc.hpp"

int main() {
  using namespace netcl::apps;

  std::printf("In-network calculator: 96 random operations\n\n");
  CalcConfig config;
  config.operations = 96;
  const CalcResult result = run_calc(config);
  if (!result.ok) {
    std::fprintf(stderr, "failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("answered   : %d (all reflected by the switch)\n", result.answered);
  std::printf("correct    : %d\n", result.correct);
  std::printf("dropped    : %d (unknown opcodes)\n", result.dropped_unknown);
  std::printf("stages     : %d\n", result.stages_used);
  return result.answered == result.correct ? 0 : 1;
}
