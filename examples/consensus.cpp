// In-network consensus (P4xos, paper Fig. 11 / §VII).
//
// One computation, three kernels, five switches: the leader sequences
// client requests, three acceptors vote, the learner delivers to the
// application host on majority — consensus entirely inside the network.
#include <cstdio>
#include <cstring>

#include "apps/paxos.hpp"

int main(int argc, char** argv) {
  using namespace netcl::apps;

  std::printf("In-network Paxos: 48 requests through leader -> 3 acceptors -> learner\n\n");
  PaxosConfig config;
  config.requests = 48;
  config.num_acceptors = 3;
  config.majority = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry") == 0) {
      config.telemetry = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      config.trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--transport") == 0 && i + 1 < argc) {
      config.transport_uri = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--telemetry] [--trace-out <file>] [--transport <uri>]\n",
                   argv[0]);
      return 2;
    }
  }

  const PaxosResult result = run_paxos(config);
  if (!result.ok) {
    std::fprintf(stderr, "failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("delivered              : %d / %d\n", result.delivered, config.requests);
  std::printf("duplicate deliveries   : %d\n", result.duplicate_deliveries);
  std::printf("values intact          : %s\n", result.values_intact ? "yes" : "NO");
  std::printf("instances sequential   : %s\n", result.instances_sequential ? "yes" : "NO");
  std::printf("stages (ldr/acc/lrn)   : %d / %d / %d\n", result.leader_stages,
              result.acceptor_stages, result.learner_stages);
  std::printf("simulated time         : %.3f ms\n", result.sim_seconds * 1e3);
  if (config.telemetry || !config.trace_out.empty()) {
    std::printf("telemetry spans        : %llu\n",
                static_cast<unsigned long long>(result.telemetry_spans));
  }
  if (!config.trace_out.empty()) {
    std::printf("trace written          : %s\n", config.trace_out.c_str());
  }
  const bool ok = result.delivered == config.requests && result.duplicate_deliveries == 0 &&
                  result.values_intact && result.instances_sequential;
  return ok ? 0 : 1;
}
