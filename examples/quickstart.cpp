// Quickstart: the paper's running example (Figures 4 and 6) end to end.
//
// A key-value store server sits behind a programmable switch. The NetCL
// kernel caches hot keys in the switch: GET requests for cached keys are
// answered by the network itself (reflect), misses continue to the server.
//
// This walks the full NetCL workflow: write device code, compile it for a
// device (ncc), deploy onto a simulated switch, wire a topology, and talk
// to it with the host runtime's message API.
#include <cstdio>

#include "driver/compiler.hpp"
#include "runtime/host.hpp"

using namespace netcl;

// Device code: a read-only in-network cache with a count-min sketch for
// hot-key detection (paper Fig. 4, verbatim modulo the GET_REQ define).
static const char* kDeviceCode = R"(
#define CMS_HASHES 3
#define THRESH 128
#define GET_REQ 1

_managed_ unsigned cms[CMS_HASHES][65536];

_net_ void sketch(unsigned k, unsigned &hot) {
  unsigned c[CMS_HASHES];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k)], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k)], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k)], 1);
  for (auto i = 1; i < CMS_HASHES; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  hot = c[0] > THRESH ? c[0] : 0;
}

_net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42}, {2,42},
                                                      {3,42}, {4,42}};

_kernel(1) _at(1) void query(char op, unsigned k, unsigned &v,
                             char &hit, unsigned &hot) {
  if (op == GET_REQ) {
    hit = ncl::lookup(cache, k, v);
    return hit ? ncl::reflect() : sketch(k, hot);
  }
}
)";

int main() {
  // 1. Compile for device 1 (this is what `ncc --device 1` does).
  driver::CompileOptions options;
  options.device_id = 1;
  driver::CompileResult compiled = driver::compile_netcl(kDeviceCode, options);
  if (!compiled.ok) {
    std::fprintf(stderr, "compile failed:\n%s\n", compiled.errors.c_str());
    return 1;
  }
  std::printf("compiled: %d NetCL LoC -> %d P4 LoC, %d pipeline stages\n", compiled.netcl_loc,
              compiled.p4.loc(), compiled.allocation.stages_used);

  // 2. Build the topology: client (host 1) and KVS server (host 2) attached
  //    to the switch (device 1).
  const KernelSpec spec = compiled.specs.at(1);
  sim::Fabric fabric;
  runtime::HostRuntime client(fabric, 1);
  runtime::HostRuntime server(fabric, 2);
  client.register_spec(1, spec);
  server.register_spec(1, spec);
  fabric.add_device(driver::make_device(std::move(compiled), 1));
  fabric.connect(sim::host_ref(1), sim::device_ref(1));
  fabric.connect(sim::host_ref(2), sim::device_ref(1));

  // 3. Server: answers cache misses.
  server.on_receive([&](const runtime::Message& message, sim::ArgValues& args) {
    std::printf("  [server] miss for key %llu (hot=%llu), answering\n",
                static_cast<unsigned long long>(args[1][0]),
                static_cast<unsigned long long>(args[4][0]));
    sim::ArgValues reply = args;
    reply[2][0] = 1000 + args[1][0];  // the authoritative value
    server.send(runtime::Message(2, message.src, 1, 0), reply);
  });

  // 4. Client: query a cached key (2) and an uncached key (9).
  client.on_receive([&](const runtime::Message&, sim::ArgValues& args) {
    std::printf("  [client] key %llu -> value %llu (%s), rtt %.0f ns\n",
                static_cast<unsigned long long>(args[1][0]),
                static_cast<unsigned long long>(args[2][0]),
                args[3][0] != 0 ? "cache hit" : "server", fabric.now());
  });

  for (const unsigned key : {2u, 9u}) {
    sim::ArgValues args = sim::make_args(spec);
    args[0][0] = 1;  // GET_REQ
    args[1][0] = key;
    std::printf("[client] GET %u through device 1\n", key);
    client.send(runtime::Message(1, 2, 1, 1), args);
    fabric.run();
  }

  // 5. The cms threshold is _managed_ memory: read a counter from the host
  //    side over the control plane.
  runtime::DeviceConnection connection(fabric, 1);
  std::uint64_t count = 0;
  if (const runtime::Error err =
          connection.managed_read_e("cms", count, {0, xor16_u64(9, 4)});
      !err.ok()) {
    std::fprintf(stderr, "[host] managed_read failed: %s\n", err.to_string().c_str());
    return 1;
  }
  std::printf("[host] cms[0][...] for the missed key is now %llu (via ncl::managed_read)\n",
              static_cast<unsigned long long>(count));
  return 0;
}
