// A new application written against the NetCL API (not from the paper):
// in-network flow telemetry. The switch keeps per-flow packet counters and
// a heavy-hitter set; probes addressed to the device read back statistics
// without touching any end host. Demonstrates: multiple kernels on one
// device, range-match lookup memory, rand-based sampling, and managed
// counters read over the control plane.
#include <cstdio>

#include "driver/compiler.hpp"
#include "runtime/host.hpp"

using namespace netcl;

static const char* kDeviceCode = R"(
#define PROBE 7

_managed_ unsigned flow_packets[4096];
_managed_ unsigned flow_bytes[4096];
_net_ unsigned total;

// Classify packet sizes into buckets with a range lookup.
_net_ _lookup_ ncl::rv<unsigned, unsigned> size_class[] = {
  {{0, 127}, 0}, {{128, 511}, 1}, {{512, 1023}, 2}, {{1024, 9000}, 3}
};
_net_ unsigned size_histogram[4];

// Computation 1: per-packet accounting, executed on the data path.
_kernel(1) _at(1) void account(unsigned flow, unsigned bytes, char &sampled) {
  unsigned idx = ncl::crc16(flow) & 4095;
  ncl::atomic_add(&flow_packets[idx], 1);
  ncl::atomic_add(&flow_bytes[idx], bytes);
  ncl::atomic_inc(&total);
  unsigned bucket = 0;
  if (ncl::lookup(size_class, bytes, bucket)) {
    ncl::atomic_add(&size_histogram[bucket & 3], 1);
  }
  // Sample roughly 1/16 of packets toward the collector.
  sampled = ncl::rand<u8>() < 16 ? 1 : 0;
  return ncl::pass();
}

// Computation 2: telemetry probe — the switch answers directly.
_kernel(2) _at(1) void probe(unsigned flow, unsigned &packets) {
  packets = flow_packets[ncl::crc16(flow) & 4095];
  return ncl::reflect();
}
)";

int main() {
  driver::CompileOptions options;
  options.device_id = 1;
  driver::CompileResult compiled = driver::compile_netcl(kDeviceCode, options);
  if (!compiled.ok) {
    std::fprintf(stderr, "compile failed:\n%s\n", compiled.errors.c_str());
    return 1;
  }
  std::printf("telemetry kernels compiled: %d stages, %d P4 LoC\n",
              compiled.allocation.stages_used, compiled.p4.loc());

  const KernelSpec account_spec = compiled.specs.at(1);
  const KernelSpec probe_spec = compiled.specs.at(2);
  sim::Fabric fabric;
  runtime::HostRuntime sender(fabric, 1);
  runtime::HostRuntime sink(fabric, 2);
  runtime::HostRuntime collector(fabric, 3);
  for (runtime::HostRuntime* host : {&sender, &sink, &collector}) {
    host->register_spec(1, account_spec);
    host->register_spec(2, probe_spec);
  }
  fabric.add_device(driver::make_device(std::move(compiled), 1));
  for (std::uint16_t h : {1, 2, 3}) fabric.connect(sim::host_ref(h), sim::device_ref(1));

  // Traffic: 3 flows with different rates and sizes.
  int sampled = 0;
  sink.on_receive([&](const runtime::Message&, sim::ArgValues& args) {
    if (args[2][0] != 0) ++sampled;
  });
  SplitMix64 rng(11);
  const unsigned flows[3] = {101, 202, 303};
  const unsigned rates[3] = {200, 60, 20};
  for (int f = 0; f < 3; ++f) {
    for (unsigned i = 0; i < rates[f]; ++i) {
      sim::ArgValues args = sim::make_args(account_spec);
      args[0][0] = flows[f];
      args[1][0] = 64 + rng.next_below(1400);
      sender.send(runtime::Message(1, 2, 1, 1), args);
    }
  }
  fabric.run();
  std::printf("forwarded %u packets; %d sampled toward the collector\n", 280u, sampled);

  // Probe flow statistics straight from the switch (computation 2).
  collector.on_receive([&](const runtime::Message&, sim::ArgValues& args) {
    std::printf("  probe: flow %llu -> %llu packets (answered by the switch)\n",
                static_cast<unsigned long long>(args[0][0]),
                static_cast<unsigned long long>(args[1][0]));
  });
  for (const unsigned flow : flows) {
    sim::ArgValues args = sim::make_args(probe_spec);
    args[0][0] = flow;
    collector.send(runtime::Message(3, 2, 2, 1), args);
  }
  fabric.run();

  // Control plane: read the size histogram and totals.
  runtime::DeviceConnection connection(fabric, 1);
  std::uint64_t count = 0;
  std::printf("size histogram (via debug/control plane):");
  for (std::uint64_t b = 0; b < 4; ++b) {
    fabric.device(1)->debug_read("size_histogram", {b}, count);
    std::printf(" [%llu]=%llu", static_cast<unsigned long long>(b),
                static_cast<unsigned long long>(count));
  }
  std::uint64_t bytes = 0;
  if (const runtime::Error err = connection.managed_read_e(
          "flow_bytes", bytes, {static_cast<std::uint64_t>(crc16_u64(101, 4) & 4095)});
      !err.ok()) {
    std::fprintf(stderr, "managed_read failed: %s\n", err.to_string().c_str());
    return 1;
  }
  std::printf("\nflow 101 accumulated %llu bytes (ncl::managed_read)\n",
              static_cast<unsigned long long>(bytes));
  return 0;
}
