// CALC over real loopback UDP: the same kernel, host code, and packets as
// the simulated run, but carried by UdpTransport and served by the
// netcl-swd daemon engine instead of the discrete-event fabric.
//
//   udp_calc [--ops N] [--connect HOST:PORT] [--control-port P]
//            [--timeout-ms T] [--telemetry] [--trace-out FILE]
//
// With no --connect, an SwdServer runs in-process on a background thread
// (ephemeral ports). With --connect, the data plane points at an already
// running daemon, e.g.:
//
//   netcl-swd examples/kernels/calc.ncl --port 9700 --control-port 9701 &
//   udp_calc --connect 127.0.0.1:9700 --control-port 9701
//
// --timeout-ms (default 2000) bounds the wait for each operation's
// response; an unreachable daemon therefore fails fast with a clear
// diagnostic and exit code 1 instead of hanging.
//
// --telemetry turns on in-band telemetry (ISSUE 4): every request carries
// the INT flag, the daemon appends per-hop stamps, and the responses are
// folded into end-to-end spans. The daemon clock is aligned to the host
// transport clock with one bracketed control-plane PING (the daemon's
// control port — known for the embedded daemon, --control-port otherwise).
// --trace-out writes the merged host+device Chrome-trace JSON and implies
// --telemetry.
//
// Every operation is executed twice — once through the simulated fabric,
// once over UDP — and the reflected payloads must be byte-identical.
// Exit 0 on full agreement, 1 otherwise.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "apps/sources.hpp"
#include "driver/compiler.hpp"
#include "net/factory.hpp"
#include "net/swd_server.hpp"
#include "net/udp_transport.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "runtime/host.hpp"
#include "sim/fabric.hpp"

namespace {

struct Op {
  std::uint64_t code, a, b;
};

netcl::driver::CompileResult compile_calc() {
  netcl::apps::AppSource app = netcl::apps::calc_source();
  netcl::driver::CompileOptions options;
  options.device_id = 1;
  options.defines = app.defines;
  return netcl::driver::compile_netcl(app.source, options);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netcl;

  int num_ops = 32;
  int timeout_ms = 2000;
  std::string connect_host;
  std::uint16_t connect_port = 0;
  std::uint16_t control_port = 0;
  bool telemetry = false;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ops" && i + 1 < argc) {
      num_ops = std::atoi(argv[++i]);
    } else if (arg == "--telemetry") {
      telemetry = true;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
      telemetry = true;
    } else if (arg == "--control-port" && i + 1 < argc) {
      control_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      timeout_ms = std::atoi(argv[++i]);
      if (timeout_ms <= 0) {
        std::fprintf(stderr, "--timeout-ms wants a positive integer\n");
        return 1;
      }
    } else if (arg == "--connect" && i + 1 < argc) {
      const std::string target = argv[++i];
      const std::size_t colon = target.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--connect wants HOST:PORT, got '%s'\n", target.c_str());
        return 1;
      }
      connect_host = target.substr(0, colon);
      connect_port = static_cast<std::uint16_t>(std::atoi(target.c_str() + colon + 1));
    } else {
      std::fprintf(stderr,
                   "usage: udp_calc [--ops N] [--connect HOST:PORT] [--control-port P] "
                   "[--timeout-ms T] [--telemetry] [--trace-out FILE]\n");
      return arg == "--help" || arg == "-h" ? 0 : 1;
    }
  }

  driver::CompileResult compiled = compile_calc();
  if (!compiled.ok) {
    std::fprintf(stderr, "compile failed:\n%s", compiled.errors.c_str());
    return 1;
  }
  const KernelSpec spec = compiled.specs.at(1);

  SplitMix64 rng(7);
  std::vector<Op> ops;
  for (int i = 0; i < num_ops; ++i) {
    ops.push_back({1 + rng.next_below(5), rng.next() & 0xFFFFFFFF, rng.next() & 0xFFFFFFFF});
  }

  // --- reference run through the simulated fabric ---------------------------
  std::vector<std::vector<std::uint8_t>> sim_results;
  {
    driver::CompileResult sim_compiled = compile_calc();
    sim::Fabric fabric(7);
    fabric.add_device(driver::make_device(std::move(sim_compiled), 1));
    runtime::HostRuntime host(fabric, 1);
    host.register_spec(1, spec);
    fabric.connect(sim::host_ref(1), sim::device_ref(1));
    host.on_receive([&](const runtime::Message&, sim::ArgValues& args) {
      sim_results.push_back(sim::encode_args(spec, args));
    });
    for (const Op& op : ops) {
      sim::ArgValues args = sim::make_args(spec);
      args[0][0] = op.code;
      args[1][0] = op.a;
      args[2][0] = op.b;
      host.send(runtime::Message(1, 0, 1, 1), args);
    }
    fabric.run();
  }
  if (sim_results.size() != ops.size()) {
    std::fprintf(stderr, "simulated run answered %zu of %zu ops\n", sim_results.size(),
                 ops.size());
    return 1;
  }

  // --- the same ops over real UDP -------------------------------------------
  std::unique_ptr<net::SwdServer> server;
  std::thread serving;
  if (connect_host.empty()) {
    server = std::make_unique<net::SwdServer>(driver::make_device(std::move(compiled), 1),
                                              net::SwdOptions{});
    if (!server->valid()) {
      std::fprintf(stderr, "embedded daemon: %s\n", server->error().c_str());
      return 1;
    }
    connect_host = "127.0.0.1";
    connect_port = server->udp_port();
    if (control_port == 0) control_port = server->control_port();
    serving = std::thread([&] { server->run(); });
    std::printf("embedded netcl-swd: udp %u, control %u\n", server->udp_port(),
                server->control_port());
  }

  // The URI factory (ISSUE 5) is the one place transports are built; the
  // same string with a sim:// scheme would route through the fabric.
  std::string transport_error;
  std::unique_ptr<net::Transport> transport_ptr = net::make_transport(
      "udp://" + connect_host + ":" + std::to_string(connect_port), {}, &transport_error);
  if (transport_ptr == nullptr) {
    std::fprintf(stderr, "udp transport: %s\n", transport_error.c_str());
    if (server != nullptr) {
      server->stop();
      serving.join();
    }
    return 1;
  }
  auto& transport = static_cast<net::UdpTransport&>(*transport_ptr);
  int rc = 0;

  // Telemetry (ISSUE 4): run-local tracer/collector; the run is untouched
  // when telemetry is off.
  obs::Tracer trace;
  obs::MetricsRegistry telemetry_metrics("udp_calc.telemetry");
  std::unique_ptr<obs::SpanCollector> collector;
  if (telemetry && rc == 0) {
    if (!trace_out.empty()) trace.enable();
    collector = std::make_unique<obs::SpanCollector>(trace, telemetry_metrics);
    if (control_port != 0) {
      // Bracketed PINGs align the daemon's stamp clock to the host
      // transport clock; the midpoint estimator's error is bounded by half
      // the round trip, so take the best (smallest-RTT) of a few exchanges
      // — the first one pays for connection setup.
      runtime::DeviceConnection control(connect_host, control_port);
      obs::ClockAlignment best;
      double best_rtt_ns = 0.0;
      for (int probe = 0; control.valid() && probe < 5; ++probe) {
        runtime::PingInfo info;
        const double ping_send_ns = transport.now_ns();
        // Typed form (ISSUE 5): a failed heartbeat says why it failed.
        if (const runtime::Error err = control.ping_e(info); !err.ok()) {
          std::fprintf(stderr, "udp_calc: clock-alignment ping failed: %s\n",
                       err.to_string().c_str());
          break;
        }
        const double ping_recv_ns = transport.now_ns();
        const double rtt_ns = ping_recv_ns - ping_send_ns;
        if (!best.valid || rtt_ns < best_rtt_ns) {
          best = obs::align_clocks(ping_send_ns, ping_recv_ns,
                                   static_cast<double>(info.device_clock_ns));
          best_rtt_ns = rtt_ns;
        }
      }
      if (best.valid) {
        collector->set_clock_offset(control.device_id(), best.offset_ns);
        std::printf("clock alignment: device %u offset %+.0f ns (best rtt %.0f ns)\n",
                    control.device_id(), best.offset_ns, best_rtt_ns);
      } else {
        std::fprintf(stderr,
                     "telemetry: control ping to %s:%u failed; device spans keep "
                     "their own clockbase\n",
                     connect_host.c_str(), control_port);
      }
    } else {
      std::fprintf(stderr,
                   "telemetry: no control port known (pass --control-port with "
                   "--connect); device spans keep their own clockbase\n");
    }
  }

  std::vector<std::vector<std::uint8_t>> udp_results;
  if (rc == 0) {
    runtime::HostRuntime host(transport, 1);
    host.register_spec(1, spec);
    if (collector != nullptr) host.enable_telemetry(collector.get());
    host.on_receive([&](const runtime::Message&, sim::ArgValues& args) {
      udp_results.push_back(sim::encode_args(spec, args));
    });
    for (std::size_t i = 0; i < ops.size() && rc == 0; ++i) {
      sim::ArgValues args = sim::make_args(spec);
      args[0][0] = ops[i].code;
      args[1][0] = ops[i].a;
      args[2][0] = ops[i].b;
      host.send(runtime::Message(1, 0, 1, 1), args);
      // One op in flight at a time keeps result order deterministic.
      if (!transport.run_until([&] { return udp_results.size() > i; },
                               static_cast<double>(timeout_ms) * 1e6)) {
        if (i == 0) {
          // Nothing ever answered: almost certainly no daemon at the
          // address, not a lossy network. Fail fast and say so.
          std::fprintf(stderr,
                       "no response from daemon at %s:%u within %d ms — is netcl-swd "
                       "running there? (see --timeout-ms)\n",
                       connect_host.c_str(), connect_port, timeout_ms);
        } else {
          std::fprintf(stderr, "timed out after %d ms waiting for op %zu of %zu\n",
                       timeout_ms, i + 1, ops.size());
        }
        rc = 1;
      }
    }
  }

  if (server != nullptr) {
    server->stop();
    serving.join();
  }

  if (rc == 0) {
    const bool identical = udp_results == sim_results;
    std::printf("ops        : %d\n", num_ops);
    std::printf("udp answers: %zu\n", udp_results.size());
    std::printf("byte-identical to simulated fabric: %s\n", identical ? "yes" : "NO");
    if (!identical) rc = 1;
  }
  if (collector != nullptr) {
    std::printf("telemetry spans: %llu\n",
                static_cast<unsigned long long>(collector->spans()));
    if (!trace_out.empty()) {
      if (trace.write(trace_out)) {
        std::printf("trace written  : %s\n", trace_out.c_str());
      } else {
        std::fprintf(stderr, "could not write trace to %s\n", trace_out.c_str());
        rc = 1;
      }
    }
  }

  std::printf("\n--- transport metrics (obs::dump) ---\n%s", obs::dump_string().c_str());
  return rc;
}
