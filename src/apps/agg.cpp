#include "apps/agg.hpp"

#include <algorithm>
#include <span>

#include "apps/sources.hpp"
#include "net/factory.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "runtime/host.hpp"
#include "runtime/retransmit.hpp"

namespace netcl::apps {

using runtime::HostRuntime;
using runtime::Message;
using runtime::RetransmitWindow;
using sim::ArgValues;

namespace {

struct WorkerState {
  std::unique_ptr<HostRuntime> runtime;
  std::unique_ptr<RetransmitWindow> window;
};

struct Harness {
  AggConfig config;
  int stride = 1;  // active slots; chunk c and c+stride share a slot
  std::vector<WorkerState> workers;
  bool value_mismatch = false;
  double done_time_ns = 0.0;
  int workers_finished = 0;

  [[nodiscard]] std::uint64_t expected_element(int chunk, int i) const {
    // Sum over workers w of (chunk * 1000 + i + w + 1).
    const auto w = static_cast<std::uint64_t>(config.num_workers);
    return (static_cast<std::uint64_t>(chunk) * 1000 + static_cast<std::uint64_t>(i)) * w +
           w * (w + 1) / 2;
  }
  [[nodiscard]] std::uint64_t expected_exp(int chunk) const {
    std::uint64_t max_exp = 0;
    for (int w = 0; w < config.num_workers; ++w) {
      max_exp = std::max(max_exp, static_cast<std::uint64_t>((w + chunk) & 0xF));
    }
    return max_exp;
  }
};

ArgValues contribution(const Harness& harness, const KernelSpec& spec, int worker, int chunk) {
  const AggConfig& config = harness.config;
  const int slot = chunk % harness.stride;
  const int ver = (chunk / harness.stride) & 1;
  ArgValues args = sim::make_args(spec);
  args[0][0] = static_cast<std::uint64_t>(ver);
  args[1][0] = static_cast<std::uint64_t>(slot);                            // bmp_idx
  args[2][0] = static_cast<std::uint64_t>(ver * config.num_slots + slot);   // agg_idx
  args[3][0] = 1ULL << worker;                                              // mask
  args[4][0] = static_cast<std::uint64_t>((worker + chunk) & 0xF);          // exp
  for (int i = 0; i < config.slot_size; ++i) {
    args[5][static_cast<std::size_t>(i)] =
        static_cast<std::uint64_t>(chunk) * 1000 + static_cast<std::uint64_t>(i) +
        static_cast<std::uint64_t>(worker) + 1;
  }
  return args;
}

}  // namespace

AggResult run_agg(const AggConfig& config) {
  AggResult result;
  AppSource app = agg_source(config.num_workers, config.num_slots, config.slot_size);

  driver::CompileOptions options;
  options.device_id = 1;
  options.defines = app.defines;
  driver::CompileResult compiled = driver::compile_netcl(app.source, options);
  if (!compiled.ok) {
    result.error = compiled.errors;
    return result;
  }
  const KernelSpec spec = compiled.specs.at(1);
  result.stages_used = compiled.allocation.stages_used;

  sim::Fabric fabric(config.seed);
  if (config.stages_override > 0) {
    // Model a different (e.g. handwritten) program's stage count: same
    // behavior, different pipeline latency.
    compiled.allocation.stages_used = config.stages_override;
  }
  fabric.add_device(driver::make_device(std::move(compiled), 1));

  Harness harness;
  harness.config = config;
  harness.stride = std::min({config.window, config.chunks, config.num_slots});
  harness.workers.resize(static_cast<std::size_t>(config.num_workers));

  sim::LinkConfig link;
  link.gbps = config.link_gbps;
  link.latency_ns = config.link_latency_ns;
  link.loss_probability = config.loss;
  link.duplicate_probability = config.duplicate_probability;
  link.reorder_probability = config.reorder_probability;

  // Telemetry (ISSUE 4): a run-local tracer/collector, so seeded runs
  // without telemetry touch none of this machinery.
  const bool telemetry = config.telemetry || !config.trace_out.empty();
  obs::Tracer trace;
  obs::MetricsRegistry telemetry_metrics("agg.telemetry");
  std::unique_ptr<obs::SpanCollector> collector;
  if (telemetry) {
    if (!config.trace_out.empty()) trace.enable();
    collector = std::make_unique<obs::SpanCollector>(trace, telemetry_metrics);
  }

  std::vector<sim::NodeRef> group;
  for (int w = 0; w < config.num_workers; ++w) {
    WorkerState& state = harness.workers[static_cast<std::size_t>(w)];
    // Transport routing goes through the URI factory (ISSUE 5), the same
    // path udp_calc takes to real sockets.
    net::TransportContext context;
    context.fabric = &fabric;
    context.host_id = static_cast<std::uint16_t>(w + 1);
    std::string transport_error;
    auto transport = net::make_transport(config.transport_uri, context, &transport_error);
    if (transport == nullptr) {
      result.error = "transport '" + config.transport_uri + "': " + transport_error;
      return result;
    }
    state.runtime = std::make_unique<HostRuntime>(std::move(transport),
                                                  static_cast<std::uint16_t>(w + 1));
    state.runtime->register_spec(1, spec);
    if (collector != nullptr) state.runtime->enable_telemetry(collector.get());
    fabric.connect(sim::host_ref(static_cast<std::uint16_t>(w + 1)), sim::device_ref(1), link);
    group.push_back(sim::host_ref(static_cast<std::uint16_t>(w + 1)));
  }
  fabric.set_multicast_group(1, kAggMulticastGroup, group);

  for (int w = 0; w < config.num_workers; ++w) {
    const int worker = w;
    WorkerState& state = harness.workers[static_cast<std::size_t>(w)];
    RetransmitWindow::Config window_config;
    window_config.chunks = config.chunks;
    // The harness stride also caps at num_slots (the device's physical
    // limit), so pass the combined value rather than the raw window.
    window_config.window = harness.stride;
    window_config.retransmit_ns = config.retransmit_ns;
    state.window = std::make_unique<RetransmitWindow>(
        state.runtime->transport(), window_config,
        [&harness, &spec, worker](int chunk, int /*slot*/, bool /*is_retransmission*/) {
          WorkerState& s = harness.workers[static_cast<std::size_t>(worker)];
          s.runtime->send(Message(static_cast<std::uint16_t>(worker + 1), 0, 1, 1),
                          contribution(harness, spec, worker, chunk));
        });
    // Window priming emits the first window-full as one send_batch (ISSUE
    // 5): same packets, same order, one transport call — retransmissions
    // and the acknowledge_slot chains stay on the per-chunk path above.
    state.window->set_batch_start([&harness, &spec, worker](std::span<const int> chunks) {
      WorkerState& s = harness.workers[static_cast<std::size_t>(worker)];
      std::vector<HostRuntime::Outbound> batch;
      batch.reserve(chunks.size());
      for (const int chunk : chunks) {
        batch.push_back({Message(static_cast<std::uint16_t>(worker + 1), 0, 1, 1),
                         contribution(harness, spec, worker, chunk)});
      }
      s.runtime->send_batch(batch);
    });

    state.runtime->on_receive([&harness, worker](const Message&, ArgValues& args) {
      Harness& h = harness;
      WorkerState& s = h.workers[static_cast<std::size_t>(worker)];
      const int slot = static_cast<int>(args[1][0]);
      const int chunk = s.window->chunk_for_slot(slot);
      if (chunk < 0 || s.window->is_done(chunk)) return;
      // Validate the aggregate; premature results (a Figure 7 hazard
      // under early retransmission) are ignored, not completions.
      for (int i = 0; i < h.config.slot_size; ++i) {
        if (args[5][static_cast<std::size_t>(i)] !=
            (h.expected_element(chunk, i) & 0xFFFFFFFF)) {
          return;
        }
      }
      if (args[4][0] != h.expected_exp(chunk)) h.value_mismatch = true;
      // acknowledge_slot also launches chunk + stride through this slot
      // (SwitchML's alternating-bit chaining).
      s.window->acknowledge_slot(slot);
      if (s.window->complete()) {
        ++h.workers_finished;
        if (h.workers_finished == h.config.num_workers) {
          h.done_time_ns = s.runtime->transport().now_ns();
        }
      }
    });
  }

  if (config.crash_at_ns > 0.0) {
    fabric.schedule(config.crash_at_ns, [](sim::Fabric& f) { f.crash_device(1); });
  }
  if (config.restart_at_ns > 0.0) {
    fabric.schedule(config.restart_at_ns, [](sim::Fabric& f) { f.restart_device(1); });
  }

  // Prime the windows: one in-flight chunk per active slot. Chunk c and
  // c + stride share a slot with alternating versions, so every chunk is
  // eventually sent through the per-slot chains.
  for (WorkerState& state : harness.workers) state.window->start();

  fabric.run(60e9);  // 60 simulated seconds hard stop

  result.ok = true;
  result.correct = !harness.value_mismatch && harness.workers_finished == config.num_workers;
  for (const WorkerState& state : harness.workers) {
    result.retransmissions += state.window->retransmissions();
  }
  result.packets_lost = fabric.packets_dropped_loss;
  result.packets_duplicated = fabric.packets_duplicated;
  if (collector != nullptr) {
    result.telemetry_spans = collector->spans();
    if (!config.trace_out.empty()) trace.write(config.trace_out);
  }
  result.sim_seconds = harness.done_time_ns * 1e-9;
  if (result.sim_seconds > 0) {
    result.ate_per_sec_per_worker =
        static_cast<double>(config.chunks) * config.slot_size / result.sim_seconds;
  }
  return result;
}

}  // namespace netcl::apps
