#include "apps/agg.hpp"

#include "apps/sources.hpp"
#include "runtime/host.hpp"

namespace netcl::apps {

using runtime::HostRuntime;
using runtime::Message;
using sim::ArgValues;

namespace {

struct WorkerState {
  std::unique_ptr<HostRuntime> runtime;
  int completed = 0;
  std::vector<bool> done;                 // per chunk
  std::vector<int> slot_chunk;            // slot -> in-flight chunk
};

struct Harness {
  AggConfig config;
  int stride = 1;  // active slots; chunk c and c+stride share a slot
  std::vector<WorkerState> workers;
  bool value_mismatch = false;
  std::uint64_t retransmissions = 0;
  double done_time_ns = 0.0;
  int workers_finished = 0;

  [[nodiscard]] std::uint64_t expected_element(int chunk, int i) const {
    // Sum over workers w of (chunk * 1000 + i + w + 1).
    const auto w = static_cast<std::uint64_t>(config.num_workers);
    return (static_cast<std::uint64_t>(chunk) * 1000 + static_cast<std::uint64_t>(i)) * w +
           w * (w + 1) / 2;
  }
  [[nodiscard]] std::uint64_t expected_exp(int chunk) const {
    std::uint64_t max_exp = 0;
    for (int w = 0; w < config.num_workers; ++w) {
      max_exp = std::max(max_exp, static_cast<std::uint64_t>((w + chunk) & 0xF));
    }
    return max_exp;
  }
};

ArgValues contribution(const Harness& harness, const KernelSpec& spec, int worker, int chunk) {
  const AggConfig& config = harness.config;
  const int slot = chunk % harness.stride;
  const int ver = (chunk / harness.stride) & 1;
  ArgValues args = sim::make_args(spec);
  args[0][0] = static_cast<std::uint64_t>(ver);
  args[1][0] = static_cast<std::uint64_t>(slot);                            // bmp_idx
  args[2][0] = static_cast<std::uint64_t>(ver * config.num_slots + slot);   // agg_idx
  args[3][0] = 1ULL << worker;                                              // mask
  args[4][0] = static_cast<std::uint64_t>((worker + chunk) & 0xF);          // exp
  for (int i = 0; i < config.slot_size; ++i) {
    args[5][static_cast<std::size_t>(i)] =
        static_cast<std::uint64_t>(chunk) * 1000 + static_cast<std::uint64_t>(i) +
        static_cast<std::uint64_t>(worker) + 1;
  }
  return args;
}

void send_chunk(Harness& harness, const KernelSpec& spec, int worker, int chunk,
                bool is_retransmission) {
  WorkerState& state = harness.workers[static_cast<std::size_t>(worker)];
  const int slot = chunk % harness.stride;
  state.slot_chunk[static_cast<std::size_t>(slot)] = chunk;
  if (is_retransmission) ++harness.retransmissions;
  state.runtime->send(Message(static_cast<std::uint16_t>(worker + 1), 0, 1, 1),
                      contribution(harness, spec, worker, chunk));
  // Arm the retransmission timer.
  state.runtime->fabric().schedule(
      harness.config.retransmit_ns, [&harness, &spec, worker, chunk](sim::Fabric&) {
        WorkerState& s = harness.workers[static_cast<std::size_t>(worker)];
        if (!s.done[static_cast<std::size_t>(chunk)]) {
          send_chunk(harness, spec, worker, chunk, /*is_retransmission=*/true);
        }
      });
}

}  // namespace

AggResult run_agg(const AggConfig& config) {
  AggResult result;
  AppSource app = agg_source(config.num_workers, config.num_slots, config.slot_size);

  driver::CompileOptions options;
  options.device_id = 1;
  options.defines = app.defines;
  driver::CompileResult compiled = driver::compile_netcl(app.source, options);
  if (!compiled.ok) {
    result.error = compiled.errors;
    return result;
  }
  const KernelSpec spec = compiled.specs.at(1);
  result.stages_used = compiled.allocation.stages_used;

  sim::Fabric fabric(config.seed);
  if (config.stages_override > 0) {
    // Model a different (e.g. handwritten) program's stage count: same
    // behavior, different pipeline latency.
    compiled.allocation.stages_used = config.stages_override;
  }
  fabric.add_device(driver::make_device(std::move(compiled), 1));

  Harness harness;
  harness.config = config;
  harness.workers.resize(static_cast<std::size_t>(config.num_workers));

  sim::LinkConfig link;
  link.gbps = config.link_gbps;
  link.latency_ns = config.link_latency_ns;
  link.loss_probability = config.loss;

  std::vector<sim::NodeRef> group;
  for (int w = 0; w < config.num_workers; ++w) {
    WorkerState& state = harness.workers[static_cast<std::size_t>(w)];
    state.runtime = std::make_unique<HostRuntime>(fabric, static_cast<std::uint16_t>(w + 1));
    state.runtime->register_spec(1, spec);
    state.done.assign(static_cast<std::size_t>(config.chunks), false);
    state.slot_chunk.assign(static_cast<std::size_t>(config.num_slots), -1);
    fabric.connect(sim::host_ref(static_cast<std::uint16_t>(w + 1)), sim::device_ref(1), link);
    group.push_back(sim::host_ref(static_cast<std::uint16_t>(w + 1)));
  }
  fabric.set_multicast_group(1, kAggMulticastGroup, group);

  for (int w = 0; w < config.num_workers; ++w) {
    const int worker = w;
    harness.workers[static_cast<std::size_t>(w)].runtime->on_receive(
        [&harness, &spec, worker](const Message&, ArgValues& args) {
          Harness& h = harness;
          WorkerState& state = h.workers[static_cast<std::size_t>(worker)];
          const int slot = static_cast<int>(args[1][0]);
          const int chunk = state.slot_chunk[static_cast<std::size_t>(slot)];
          if (chunk < 0 || state.done[static_cast<std::size_t>(chunk)]) return;
          // Validate the aggregate; premature results (a Figure 7 hazard
          // under early retransmission) are ignored, not completions.
          for (int i = 0; i < h.config.slot_size; ++i) {
            if (args[5][static_cast<std::size_t>(i)] !=
                (h.expected_element(chunk, i) & 0xFFFFFFFF)) {
              return;
            }
          }
          if (args[4][0] != h.expected_exp(chunk)) h.value_mismatch = true;
          state.done[static_cast<std::size_t>(chunk)] = true;
          ++state.completed;
          if (state.completed == h.config.chunks) {
            ++h.workers_finished;
            if (h.workers_finished == h.config.num_workers) {
              h.done_time_ns = state.runtime->fabric().now();
            }
          }
          // Per-slot pipelining (SwitchML's alternating-bit rule): the next
          // chunk on this slot may go out only now that this one finished.
          const int next = chunk + h.stride;
          if (next < h.config.chunks) {
            send_chunk(h, spec, worker, next, false);
          }
        });
  }

  // Prime the windows: one in-flight chunk per active slot. Chunk c and
  // c + stride share a slot with alternating versions, so every chunk is
  // eventually sent through the per-slot chains.
  harness.stride = std::min({config.window, config.chunks, config.num_slots});
  for (int w = 0; w < config.num_workers; ++w) {
    for (int c = 0; c < harness.stride; ++c) {
      send_chunk(harness, spec, w, c, false);
    }
  }

  fabric.run(60e9);  // 60 simulated seconds hard stop

  result.ok = true;
  result.correct = !harness.value_mismatch && harness.workers_finished == config.num_workers;
  result.retransmissions = harness.retransmissions;
  result.packets_lost = fabric.packets_dropped_loss;
  result.sim_seconds = harness.done_time_ns * 1e-9;
  if (result.sim_seconds > 0) {
    result.ate_per_sec_per_worker =
        static_cast<double>(config.chunks) * config.slot_size / result.sim_seconds;
  }
  return result;
}

}  // namespace netcl::apps
