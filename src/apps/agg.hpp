// AGG: the SwitchML-style in-network AllReduce workload (paper §VII and
// Fig. 14 left).
//
// N workers stream slots of SLOT_SIZE 32-bit values to a top-of-rack
// switch running the AGG kernel. The switch aggregates; the last
// contribution triggers a multicast of the result to all workers.
// Reliability follows SwitchML: two slot versions (alternating-bit) and
// retransmission timers; a retransmitted contribution for a completed slot
// is answered from the kept result (kernel line `cnt == 0 -> reflect`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "driver/compiler.hpp"

namespace netcl::apps {

struct AggConfig {
  int num_workers = 2;
  int num_slots = 64;    // per version
  int slot_size = 32;    // values per packet (the paper's current limit)
  int chunks = 256;      // slots each worker contributes over the run
  int window = 8;        // outstanding slots per worker
  double loss = 0.0;     // per-link loss probability
  double duplicate_probability = 0.0;  // per-link duplicate probability
  double reorder_probability = 0.0;    // per-link reorder-jitter probability
  double retransmit_ns = 200000.0;
  double link_gbps = 100.0;
  double link_latency_ns = 500.0;
  /// Override the device pipeline stage count (to model the handwritten
  /// P4 program's latency); 0 = use the compiler's allocation.
  int stages_override = 0;
  std::uint64_t seed = 1;
  /// Fault injection (ISSUE 3), both 0 = off: crash the switch at
  /// crash_at_ns and power-cycle it (registers zeroed, generation bumped)
  /// at restart_at_ns. In-flight aggregation state is lost; the workload
  /// must self-heal through retransmission.
  double crash_at_ns = 0.0;
  double restart_at_ns = 0.0;
  /// In-band telemetry (ISSUE 4): stamp INT hops on every message and
  /// collect end-to-end spans. Off by default — a telemetry-off run is
  /// byte-identical to pre-telemetry builds.
  bool telemetry = false;
  /// Write the merged multi-process Chrome-trace JSON here after the run
  /// (implies telemetry; empty = no trace file).
  std::string trace_out;
  /// Transport factory URI (ISSUE 5): every worker HostRuntime is built
  /// through net::make_transport. The in-process workload needs the
  /// discrete-event fabric, so only "sim://..." resolves here, but the
  /// plumbing is the same one udp_calc uses for real sockets.
  std::string transport_uri = "sim://fabric";
};

struct AggResult {
  bool ok = false;
  std::string error;
  bool correct = false;        // every worker saw every correct aggregate
  double sim_seconds = 0.0;
  double ate_per_sec_per_worker = 0.0;  // aggregated tensor elements /s/worker
  std::uint64_t retransmissions = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t packets_duplicated = 0;
  int stages_used = 0;
  std::uint64_t telemetry_spans = 0;  // round trips folded into the collector
};

/// Compiles the AGG kernel and runs the workload on the simulated fabric.
[[nodiscard]] AggResult run_agg(const AggConfig& config);

}  // namespace netcl::apps
