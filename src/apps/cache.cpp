#include "apps/cache.hpp"

#include <cstdio>
#include <cstdlib>

#include "apps/sources.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "runtime/host.hpp"

namespace netcl::apps {

using runtime::DeviceConnection;
using runtime::Error;
using runtime::HostRuntime;
using runtime::Message;
using sim::ArgValues;

namespace {

std::uint64_t value_word(int key, int word) {
  return static_cast<std::uint64_t>(key) * 100 + static_cast<std::uint64_t>(word);
}

}  // namespace

CacheResult run_cache(const CacheConfig& config) {
  CacheResult result;
  AppSource app = cache_source(config.capacity, config.val_words);

  driver::CompileOptions options;
  options.device_id = 1;
  options.defines = app.defines;
  driver::CompileResult compiled = driver::compile_netcl(app.source, options);
  if (!compiled.ok) {
    result.error = compiled.errors;
    return result;
  }
  const KernelSpec spec = compiled.specs.at(1);
  result.stages_used = compiled.allocation.stages_used;
  if (config.stages_override > 0) {
    compiled.allocation.stages_used = config.stages_override;
  }

  sim::Fabric fabric(config.seed);
  HostRuntime client(fabric, 1);
  HostRuntime server(fabric, 2);
  client.register_spec(1, spec);
  server.register_spec(1, spec);
  fabric.add_device(driver::make_device(std::move(compiled), 1));

  // Telemetry (ISSUE 4): run-local tracer/collector; nothing is touched
  // when telemetry is off, keeping seeded runs byte-identical.
  const bool telemetry = config.telemetry || !config.trace_out.empty();
  obs::Tracer trace;
  obs::MetricsRegistry telemetry_metrics("cache.telemetry");
  std::unique_ptr<obs::SpanCollector> collector;
  if (telemetry) {
    if (!config.trace_out.empty()) trace.enable();
    collector = std::make_unique<obs::SpanCollector>(trace, telemetry_metrics);
    client.enable_telemetry(collector.get());
    server.enable_telemetry(collector.get());
  }

  sim::LinkConfig link;
  link.gbps = config.link_gbps;
  link.latency_ns = config.link_latency_ns;
  fabric.connect(sim::host_ref(1), sim::device_ref(1), link);
  fabric.connect(sim::host_ref(2), sim::device_ref(1), link);

  // The storage controller populates the cache over the control plane. The
  // typed forms (ISSUE 5) make a bad memory name or table key loud instead
  // of a silent false.
  DeviceConnection controller(fabric, 1);
  auto must = [](const Error& err) {
    if (!err.ok()) {
      std::fprintf(stderr, "cache: control-plane populate failed: %s\n",
                   err.to_string().c_str());
      std::abort();
    }
  };
  must(controller.managed_write_e("thresh", config.hot_threshold));
  const std::uint32_t full_mask =
      config.val_words >= 32 ? 0xFFFFFFFFu : (1u << config.val_words) - 1;
  for (int key = 0; key < config.cached_keys; ++key) {
    const auto idx = static_cast<std::uint64_t>(key);
    must(controller.insert_e("KeyIndex", static_cast<std::uint64_t>(key), idx));
    must(controller.insert_e("WordMask", static_cast<std::uint64_t>(key), full_mask));
    for (int word = 0; word < config.val_words; ++word) {
      must(controller.managed_write_e("Values", value_word(key, word),
                                      {static_cast<std::uint64_t>(word), idx}));
    }
    must(controller.managed_write_e("Valid", 1, {idx}));
  }

  // KVS server: answer misses after a fixed processing delay; count hot
  // reports.
  server.on_receive([&](const Message& message, ArgValues& args) {
    if (args[0][0] != static_cast<std::uint64_t>(kGetReq)) return;
    if (args[4][0] != 0) ++result.hot_reports;
    const auto key = static_cast<int>(args[1][0]);
    ArgValues reply = args;
    reply[0][0] = kCacheResponse;
    for (int word = 0; word < config.val_words; ++word) {
      reply[2][static_cast<std::size_t>(word)] = value_word(key, word) & 0xFFFFFFFF;
    }
    const std::uint16_t requester = message.src;
    fabric.schedule(config.server_think_ns, [&, reply, requester](sim::Fabric&) {
      // Respond directly to the requester; no computation on the way back.
      server.send(Message(2, requester, 1, 0), reply);
    });
  });

  // Client: closed-loop queries.
  struct ClientState {
    int sent = 0;
    double sent_time_ns = 0.0;
    int current_key = 0;
    int completed = 0;
    double total_ns = 0.0;
    double hit_ns = 0.0;
    double miss_ns = 0.0;
    int hits = 0;
    int misses = 0;
    bool value_error = false;
  } state;
  SplitMix64 rng(config.seed * 7919 + 1);

  auto send_next = [&]() {
    state.current_key = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(config.total_keys)));
    ArgValues args = sim::make_args(spec);
    args[0][0] = kGetReq;
    args[1][0] = static_cast<std::uint64_t>(state.current_key);
    state.sent_time_ns = fabric.now();
    ++state.sent;
    client.send(Message(1, 2, 1, 1), args);
  };

  client.on_receive([&](const Message&, ArgValues& args) {
    const bool was_hit = args[3][0] != 0;
    const double rtt = fabric.now() - state.sent_time_ns;
    state.total_ns += rtt;
    if (was_hit) {
      ++state.hits;
      state.hit_ns += rtt;
    } else {
      ++state.misses;
      state.miss_ns += rtt;
    }
    for (int word = 0; word < config.val_words; ++word) {
      if (args[2][static_cast<std::size_t>(word)] !=
          (value_word(state.current_key, word) & 0xFFFFFFFF)) {
        state.value_error = true;
      }
    }
    if (++state.completed < config.queries) send_next();
  });

  send_next();
  fabric.run(60e9);

  if (state.completed != config.queries || state.value_error) {
    result.error = state.value_error ? "value mismatch in cache responses"
                                     : "client did not complete all queries";
    return result;
  }
  result.ok = true;
  result.mean_response_ns = state.total_ns / state.completed;
  result.mean_hit_response_ns = state.hits > 0 ? state.hit_ns / state.hits : 0.0;
  result.mean_miss_response_ns = state.misses > 0 ? state.miss_ns / state.misses : 0.0;
  result.hit_rate = static_cast<double>(state.hits) / state.completed;
  std::uint64_t device_hits = 0;
  if (sim::SwitchDevice* device = fabric.device(1)) {
    device->debug_read("Hits", {}, device_hits);
  }
  result.device_hits = device_hits;
  if (collector != nullptr) {
    result.telemetry_spans = collector->spans();
    if (!config.trace_out.empty()) trace.write(config.trace_out);
  }
  return result;
}

}  // namespace netcl::apps
