// CACHE: the NetCache-style in-network KV cache workload (paper §VII and
// Fig. 14 right).
//
// One client queries a KVS server through a switch running the CACHE
// kernel. The storage controller (host side) populates the cache via the
// managed-memory control plane. Response time is measured per query; the
// hit path is answered by the switch (reflect), the miss path pays the
// extra round trip to the server plus server-side processing.
#pragma once

#include <cstdint>
#include <string>

#include "driver/compiler.hpp"

namespace netcl::apps {

struct CacheConfig {
  int capacity = 128;     // cache lines
  int val_words = 16;     // 4-byte words per line
  int cached_keys = 64;   // keys the controller inserts (<= capacity)
  int total_keys = 256;   // key universe the client samples
  int queries = 512;
  double link_gbps = 100.0;
  double link_latency_ns = 2000.0;  // host <-> switch
  double server_think_ns = 8000.0;  // KVS server per-request processing
  std::uint32_t hot_threshold = 128;
  int stages_override = 0;  // model another program's latency
  std::uint64_t seed = 99;
  /// In-band telemetry (ISSUE 4): stamp INT hops on every message and
  /// collect end-to-end spans. Off by default — a telemetry-off run is
  /// byte-identical to pre-telemetry builds.
  bool telemetry = false;
  /// Write the merged Chrome-trace JSON here after the run (implies
  /// telemetry; empty = no trace file).
  std::string trace_out;
};

struct CacheResult {
  bool ok = false;
  std::string error;
  double mean_response_ns = 0.0;
  double mean_hit_response_ns = 0.0;
  double mean_miss_response_ns = 0.0;
  double hit_rate = 0.0;
  std::uint64_t device_hits = 0;  // the kernel's Hits counter
  int hot_reports = 0;            // GETs marked hot by the cms+bloom path
  int stages_used = 0;
  std::uint64_t telemetry_spans = 0;  // round trips folded into the collector
};

[[nodiscard]] CacheResult run_cache(const CacheConfig& config);

}  // namespace netcl::apps
