#include "apps/calc.hpp"

#include "apps/sources.hpp"
#include "net/factory.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "runtime/host.hpp"

namespace netcl::apps {

using runtime::HostRuntime;
using runtime::Message;
using sim::ArgValues;

CalcResult run_calc(const CalcConfig& config) {
  CalcResult result;
  AppSource app = calc_source();

  driver::CompileOptions options;
  options.device_id = 1;
  options.defines = app.defines;
  driver::CompileResult compiled = driver::compile_netcl(app.source, options);
  if (!compiled.ok) {
    result.error = compiled.errors;
    return result;
  }
  const KernelSpec spec = compiled.specs.at(1);
  result.stages_used = compiled.allocation.stages_used;

  sim::Fabric fabric(config.seed);
  net::TransportContext context;
  context.fabric = &fabric;
  context.host_id = 1;
  std::string transport_error;
  auto transport = net::make_transport(config.transport_uri, context, &transport_error);
  if (transport == nullptr) {
    result.error = "transport '" + config.transport_uri + "': " + transport_error;
    return result;
  }
  HostRuntime client(std::move(transport), 1);
  client.register_spec(1, spec);
  fabric.add_device(driver::make_device(std::move(compiled), 1));
  fabric.connect(sim::host_ref(1), sim::device_ref(1));

  // Telemetry (ISSUE 4): run-local tracer/collector; nothing is touched
  // when telemetry is off, keeping seeded runs byte-identical.
  const bool telemetry = config.telemetry || !config.trace_out.empty();
  obs::Tracer trace;
  obs::MetricsRegistry telemetry_metrics("calc.telemetry");
  std::unique_ptr<obs::SpanCollector> collector;
  if (telemetry) {
    if (!config.trace_out.empty()) trace.enable();
    collector = std::make_unique<obs::SpanCollector>(trace, telemetry_metrics);
    client.enable_telemetry(collector.get());
  }

  struct Query {
    std::uint64_t op;
    std::uint64_t a;
    std::uint64_t b;
  };
  SplitMix64 rng(config.seed);
  std::vector<Query> queries;
  for (int i = 0; i < config.operations; ++i) {
    // One in eight queries uses an unknown opcode, which the kernel drops.
    const std::uint64_t op = rng.next_below(8) == 0 ? 99 : 1 + rng.next_below(5);
    queries.push_back({op, rng.next() & 0xFFFFFFFF, rng.next() & 0xFFFFFFFF});
  }

  auto expected = [](const Query& q) -> std::uint64_t {
    switch (q.op) {
      case kCalcAdd: return (q.a + q.b) & 0xFFFFFFFF;
      case kCalcSub: return (q.a - q.b) & 0xFFFFFFFF;
      case kCalcAnd: return q.a & q.b;
      case kCalcOr: return q.a | q.b;
      case kCalcXor: return q.a ^ q.b;
      default: return 0;
    }
  };

  std::size_t cursor = 0;
  auto send_current = [&]() {
    while (cursor < queries.size() && queries[cursor].op == 99) {
      // Unknown ops would be dropped; send them anyway to exercise the
      // drop path, but do not wait on them.
      ArgValues args = sim::make_args(spec);
      args[0][0] = queries[cursor].op;
      args[1][0] = queries[cursor].a;
      args[2][0] = queries[cursor].b;
      client.send(Message(1, 2, 1, 1), args);
      ++result.dropped_unknown;
      ++cursor;
    }
    if (cursor >= queries.size()) return;
    ArgValues args = sim::make_args(spec);
    args[0][0] = queries[cursor].op;
    args[1][0] = queries[cursor].a;
    args[2][0] = queries[cursor].b;
    client.send(Message(1, 2, 1, 1), args);
  };

  client.on_receive([&](const Message&, ArgValues& args) {
    ++result.answered;
    if (args[3][0] == expected(queries[cursor])) ++result.correct;
    ++cursor;
    send_current();
  });

  send_current();
  fabric.run(10e9);
  if (collector != nullptr) {
    result.telemetry_spans = collector->spans();
    if (!config.trace_out.empty()) trace.write(config.trace_out);
  }
  result.ok = result.error.empty();
  return result;
}

}  // namespace netcl::apps
