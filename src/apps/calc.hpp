// CALC: the P4-tutorial in-network calculator (paper §VII).
#pragma once

#include <cstdint>
#include <string>

#include "driver/compiler.hpp"

namespace netcl::apps {

struct CalcConfig {
  int operations = 128;
  std::uint64_t seed = 3;
};

struct CalcResult {
  bool ok = false;
  std::string error;
  int answered = 0;
  int correct = 0;
  int dropped_unknown = 0;  // unknown opcodes are dropped by the kernel
  int stages_used = 0;
};

[[nodiscard]] CalcResult run_calc(const CalcConfig& config);

}  // namespace netcl::apps
