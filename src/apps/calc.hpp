// CALC: the P4-tutorial in-network calculator (paper §VII).
#pragma once

#include <cstdint>
#include <string>

#include "driver/compiler.hpp"

namespace netcl::apps {

struct CalcConfig {
  int operations = 128;
  std::uint64_t seed = 3;
  /// In-band telemetry (ISSUE 4): stamp INT hops on every message and
  /// collect end-to-end spans. Off by default — a telemetry-off run is
  /// byte-identical to pre-telemetry builds.
  bool telemetry = false;
  /// Write the merged Chrome-trace JSON here after the run (implies
  /// telemetry; empty = no trace file).
  std::string trace_out;
  /// Transport factory URI (ISSUE 5); see AggConfig::transport_uri.
  std::string transport_uri = "sim://fabric";
};

struct CalcResult {
  bool ok = false;
  std::string error;
  int answered = 0;
  int correct = 0;
  int dropped_unknown = 0;  // unknown opcodes are dropped by the kernel
  int stages_used = 0;
  std::uint64_t telemetry_spans = 0;  // round trips folded into the collector
};

[[nodiscard]] CalcResult run_calc(const CalcConfig& config);

}  // namespace netcl::apps
