#include "apps/handwritten.hpp"

#include <algorithm>

#include "p4/latency.hpp"

namespace netcl::apps {

const PaperReference& paper_reference() {
  static const PaperReference reference;
  return reference;
}

HandwrittenModel handwritten_baseline(const std::string& app,
                                      const driver::CompileResult& compiled) {
  HandwrittenModel model;
  model.stages = compiled.allocation.stages_used;
  model.total = compiled.allocation.total;
  model.worst = compiled.allocation.worst;

  if (app == "CACHE") {
    // A human writes the count-min-sketch min as one MAT rather than the
    // generated chain of subtractions and MSB checks: 3 fewer stages, one
    // extra table, a little TCAM for the ternary min ranges.
    model.stages = std::max(1, model.stages - paper_reference().cache_extra_stages_generated);
    model.total.vliw = std::max(0, model.total.vliw - 4);
    model.total.tables += 1;
    model.total.tcam += 1;
    model.worst.tcam = std::max(model.worst.tcam, 1);
  } else if (app == "AGG") {
    // Handwritten SwitchML uses ternary MATs for the conditional
    // aggregation decisions; the generated code keeps the condition inside
    // the SALU (the paper notes the generated AGG uses no TCAM).
    model.total.tcam += 2;
    model.worst.tcam = std::max(model.worst.tcam, 1);
  }

  // Handwritten code carries no NetCL shim header and no structurization
  // locals; subtract both from the PHV budget (Table VI's shape).
  const p4::StageLimits limits;
  const double ours_pct = compiled.phv.occupancy_pct(limits);
  const double shim_pct = 100.0 * compiled.phv.netcl_header_bits / limits.phv_bits;
  const double locals_pct = 100.0 * compiled.phv.local_var_bits / limits.phv_bits;
  model.worst_phv_pct = std::max(0.0, ours_pct - shim_pct - 0.5 * locals_pct);
  model.local_var_bits = compiled.phv.local_var_bits / 2;

  p4::LatencyModel latency;
  model.latency_ns = latency.worst_case_ns(model.stages);
  return model;
}

}  // namespace netcl::apps
