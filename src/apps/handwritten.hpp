// Handwritten-P4 baselines for the paper's comparisons.
//
// The paper compares NetCL-generated P4 against handwritten P4_16 the
// authors wrote themselves (plus the published P4* code). We cannot ship
// the authors' programs, so this module provides two things:
//
//  1. `paper_reference()`: the published numbers from Tables III-VI,
//     embedded as the comparison target for EXPERIMENTS.md (paper-vs-
//     measured reporting).
//
//  2. `handwritten_baseline()`: a *derived* handwritten profile built from
//     our own compiled result by applying the paper's documented
//     qualitative deltas mechanically:
//       - CACHE: a human implements the count-min-sketch min-chain with a
//         single MAT, saving the 3 stages the generated sub+MSB chain
//         needs (§VII "Resources");
//       - AGG: handwritten SwitchML evaluates the cond_add/cond_dec
//         conditions with ternary MATs, consuming TCAM that the generated
//         code avoids by folding the condition into the SALU (§VII);
//       - PHV: handwritten code works directly over L4 and generates no
//         structurization locals, so it saves the NetCL shim header plus
//         the compiler temporaries (§VII, Table VI).
//     The result is the baseline row of Tables V/VI and Figs. 13/14.
#pragma once

#include <string>

#include "driver/compiler.hpp"

namespace netcl::apps {

/// One row of the paper's Table III (lines of code).
struct PaperLocRow {
  const char* app;
  int netcl;
  int p4_star;  // published code
  int p4;       // authors' P4_16 rewrite
};

/// Published reference values (paper §VII).
struct PaperReference {
  // Table III.
  PaperLocRow loc[7] = {
      {"AGG", 38, 1139, 686},  {"CACHE", 91, 692, 723}, {"P4XOS", 74, 381, 901},
      {"PACC", 38, 230, 573},  {"PLRN", 33, 241, 436},  {"PLDR", 26, 214, 276},
      {"CALC", 25, 139, 234},
  };
  double loc_geomean_reduction_p4_star = 8.14;
  double loc_geomean_reduction_p4 = 11.93;

  // Table IV (seconds): ncc always < 1 s; bf-p4c dominates (> 98%).
  double ncc_max_seconds = 1.0;
  double ncc_fraction_max = 0.02;

  // Table V/Fig 13 qualitative anchors.
  int cache_extra_stages_generated = 3;  // generated CACHE needs +3 stages
  bool agg_generated_uses_tcam = false;  // handwritten does, generated not
  double latency_gap_max_pct = 9.0;      // NetCL within 9% of handwritten
  double latency_max_ns = 1000.0;        // all programs < 1 us

  // Table VI anchors: worst-case PHV within ~2% of handwritten except CALC
  // (+12%, base-program dominated).
  double phv_gap_typical_pct = 2.0;
  double phv_gap_calc_pct = 12.5;

  // Fig 14 anchors: all-hit ~9.1/9.4 us; all-miss ~26/27 us.
  double cache_hit_us = 9.4;
  double cache_miss_us = 27.0;
};

[[nodiscard]] const PaperReference& paper_reference();

/// The derived handwritten-P4 baseline profile for one app.
struct HandwrittenModel {
  int stages = 0;
  p4::StageUsage total;
  p4::StageUsage worst;
  double worst_phv_pct = 0.0;
  int local_var_bits = 0;
  double latency_ns = 0.0;
};

/// Derives a handwritten profile from a compiled NetCL result.
/// `app` is one of "AGG", "CACHE", "PACC", "PLRN", "PLDR", "CALC".
[[nodiscard]] HandwrittenModel handwritten_baseline(const std::string& app,
                                                    const driver::CompileResult& compiled);

}  // namespace netcl::apps
