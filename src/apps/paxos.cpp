#include "apps/paxos.hpp"

#include <map>
#include <set>

#include "apps/sources.hpp"
#include "net/factory.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "runtime/host.hpp"

namespace netcl::apps {

using runtime::HostRuntime;
using runtime::Message;
using sim::ArgValues;

PaxosResult run_paxos(const PaxosConfig& config) {
  PaxosResult result;
  AppSource app = paxos_source(config.majority, config.val_words);

  sim::Fabric fabric(config.seed);

  // Compile once per device (the paper's per-device compilation, §III).
  auto compile_for = [&](int device_id, int* stages) -> std::unique_ptr<sim::SwitchDevice> {
    driver::CompileOptions options;
    options.device_id = device_id;
    options.defines = app.defines;
    driver::CompileResult compiled = driver::compile_netcl(app.source, options);
    if (!compiled.ok) {
      result.error = compiled.errors;
      return nullptr;
    }
    if (stages != nullptr) *stages = compiled.allocation.stages_used;
    return driver::make_device(std::move(compiled),
                               static_cast<std::uint16_t>(device_id));
  };

  // Grab the spec from a throwaway leader compile.
  KernelSpec spec;
  {
    driver::CompileOptions options;
    options.device_id = kPaxosLeaderDevice;
    options.defines = app.defines;
    driver::CompileResult compiled = driver::compile_netcl(app.source, options);
    if (!compiled.ok) {
      result.error = compiled.errors;
      return result;
    }
    spec = compiled.specs.at(1);
  }

  auto leader = compile_for(kPaxosLeaderDevice, &result.leader_stages);
  auto learner = compile_for(kPaxosLearnerDevice, &result.learner_stages);
  if (leader == nullptr || learner == nullptr) return result;
  fabric.add_device(std::move(leader));
  fabric.add_device(std::move(learner));

  std::vector<sim::NodeRef> acceptor_group;
  for (int a = 0; a < config.num_acceptors && a < 3; ++a) {
    const int id = kPaxosAcceptors[a];
    auto acceptor = compile_for(id, &result.acceptor_stages);
    if (acceptor == nullptr) return result;
    fabric.add_device(std::move(acceptor));
    acceptor_group.push_back(sim::device_ref(static_cast<std::uint16_t>(id)));
  }
  fabric.set_multicast_group(kPaxosLeaderDevice, kPaxosAcceptorGroup, acceptor_group);

  auto transport_for = [&](std::uint16_t host_id) {
    net::TransportContext context;
    context.fabric = &fabric;
    context.host_id = host_id;
    std::string transport_error;
    auto transport = net::make_transport(config.transport_uri, context, &transport_error);
    if (transport == nullptr) {
      result.error = "transport '" + config.transport_uri + "': " + transport_error;
    }
    return transport;
  };
  auto proposer_transport = transport_for(1);
  auto application_transport = transport_for(2);
  if (proposer_transport == nullptr || application_transport == nullptr) return result;
  HostRuntime proposer(std::move(proposer_transport), 1);
  HostRuntime application(std::move(application_transport), 2);
  proposer.register_spec(1, spec);
  application.register_spec(1, spec);

  // Telemetry (ISSUE 4): run-local tracer/collector; nothing is touched
  // when telemetry is off, keeping seeded runs byte-identical.
  const bool telemetry = config.telemetry || !config.trace_out.empty();
  obs::Tracer trace;
  obs::MetricsRegistry telemetry_metrics("paxos.telemetry");
  std::unique_ptr<obs::SpanCollector> collector;
  if (telemetry) {
    if (!config.trace_out.empty()) trace.enable();
    collector = std::make_unique<obs::SpanCollector>(trace, telemetry_metrics);
    proposer.enable_telemetry(collector.get());
    application.enable_telemetry(collector.get());
  }

  sim::LinkConfig link;
  link.latency_ns = config.link_latency_ns;
  link.gbps = config.link_gbps;
  fabric.connect(sim::host_ref(1), sim::device_ref(kPaxosLeaderDevice), link);
  for (const sim::NodeRef acceptor : acceptor_group) {
    fabric.connect(sim::device_ref(kPaxosLeaderDevice), acceptor, link);
    fabric.connect(acceptor, sim::device_ref(kPaxosLearnerDevice), link);
  }
  fabric.connect(sim::device_ref(kPaxosLearnerDevice), sim::host_ref(2), link);

  // Application host: record deliveries.
  std::map<std::uint64_t, std::vector<std::uint64_t>> delivered;
  std::set<std::uint64_t> seen_instances;
  application.on_receive([&](const Message&, ArgValues& args) {
    if (args[0][0] != static_cast<std::uint64_t>(kPaxosDeliver)) return;
    const std::uint64_t instance = args[1][0];
    if (!seen_instances.insert(instance).second) {
      ++result.duplicate_deliveries;
      return;
    }
    delivered[instance] = args[4];
    ++result.delivered;
  });

  // Proposer: closed-loop pipeline of requests.
  std::map<std::uint64_t, std::vector<std::uint64_t>> proposals;
  for (int r = 0; r < config.requests; ++r) {
    ArgValues args = sim::make_args(spec);
    args[0][0] = kPaxosRequest;
    args[2][0] = 1;  // round
    for (int w = 0; w < config.val_words; ++w) {
      args[4][static_cast<std::size_t>(w)] =
          static_cast<std::uint64_t>(r) * 17 + static_cast<std::uint64_t>(w);
    }
    // Instances are assigned by the leader starting at 1 and arriving in
    // submission order over the single proposer link.
    proposals[static_cast<std::uint64_t>(r) + 1] = args[4];
    proposer.send(Message(1, 2, 1, kPaxosLeaderDevice), args);
  }

  fabric.run(60e9);
  result.sim_seconds = fabric.now() * 1e-9;

  result.values_intact = true;
  for (const auto& [instance, value] : delivered) {
    const auto it = proposals.find(instance);
    if (it == proposals.end() || it->second != value) result.values_intact = false;
  }
  result.instances_sequential = true;
  std::uint64_t expect = 1;
  for (const std::uint64_t instance : seen_instances) {
    if (instance != expect++) result.instances_sequential = false;
  }
  if (collector != nullptr) {
    result.telemetry_spans = collector->spans();
    if (!config.trace_out.empty()) trace.write(config.trace_out);
  }
  result.ok = result.error.empty();
  return result;
}

}  // namespace netcl::apps
