// PAXOS: the P4xos consensus workload (paper §VII, Fig. 11).
//
// A proposer host submits requests to the leader switch, which sequences
// them (Instance counter) and multicasts phase-2A to three acceptor
// switches; each acceptor votes (VRound promise check) and forwards
// phase-2B to the learner switch, which counts votes and delivers to the
// application host on majority — exactly once per instance.
#pragma once

#include <cstdint>
#include <string>

#include "driver/compiler.hpp"

namespace netcl::apps {

struct PaxosConfig {
  int requests = 64;
  int num_acceptors = 3;  // fixed topology uses up to 3
  int majority = 2;
  int val_words = 8;
  double link_latency_ns = 1000.0;
  double link_gbps = 100.0;
  std::uint64_t seed = 5;
  /// In-band telemetry (ISSUE 4): stamp INT hops across the whole
  /// leader → acceptors → learner chain and collect delivery spans. Off
  /// by default — a telemetry-off run is byte-identical.
  bool telemetry = false;
  /// Write the merged Chrome-trace JSON here after the run (implies
  /// telemetry; empty = no trace file).
  std::string trace_out;
  /// Transport factory URI (ISSUE 5); see AggConfig::transport_uri.
  std::string transport_uri = "sim://fabric";
};

struct PaxosResult {
  bool ok = false;
  std::string error;
  int delivered = 0;          // instances delivered to the application
  int duplicate_deliveries = 0;
  bool values_intact = false; // delivered values match proposals
  bool instances_sequential = false;
  double sim_seconds = 0.0;
  int leader_stages = 0;
  int acceptor_stages = 0;
  int learner_stages = 0;
  std::uint64_t telemetry_spans = 0;  // delivery spans folded into the collector
};

[[nodiscard]] PaxosResult run_paxos(const PaxosConfig& config);

}  // namespace netcl::apps
