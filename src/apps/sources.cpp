#include "apps/sources.hpp"

namespace netcl::apps {

AppSource agg_source(int num_workers, int num_slots, int slot_size) {
  AppSource app;
  app.name = "AGG";
  app.defines = {{"COMP", 1},
                 {"NUM_SLOTS", static_cast<std::uint64_t>(num_slots)},
                 {"SLOT_SIZE", static_cast<std::uint64_t>(slot_size)},
                 {"NUM_WORKERS", static_cast<std::uint64_t>(num_workers)}};
  // Figure 7 of the paper, plus the SwitchML max-exponent step: each packet
  // carries the block's exponent; the switch keeps the running maximum and
  // returns it with the aggregated values.
  app.source = R"(
_net_ uint16_t Bitmap[2][NUM_SLOTS];
_net_ uint32_t Agg[SLOT_SIZE][NUM_SLOTS * 2];
_net_ uint8_t Count[NUM_SLOTS * 2];
_net_ uint8_t MaxExp[NUM_SLOTS * 2];

_kernel(COMP) _at(1) void allreduce(uint8_t ver, uint16_t bmp_idx,
                                 uint16_t agg_idx, uint16_t mask,
                                 uint8_t &exp,
                                 uint32_t _spec(SLOT_SIZE) *v) {
  uint16_t bitmap;
  if (ver == 0) {
    bitmap = ncl::atomic_or(&Bitmap[0][bmp_idx], mask);
    ncl::atomic_and(&Bitmap[1][bmp_idx], ~mask);
  } else {
    ncl::atomic_and(&Bitmap[0][bmp_idx], ~mask);
    bitmap = ncl::atomic_or(&Bitmap[1][bmp_idx], mask);
  }

  if (bitmap == 0) {                         // slot starts now
    for (auto i = 0; i < SLOT_SIZE; ++i)
      Agg[i][agg_idx] = v[i];
    MaxExp[agg_idx] = exp;
    Count[agg_idx] = NUM_WORKERS - 1;
  } else {
    auto seen = bitmap & mask;
    for (auto i = 0; i < SLOT_SIZE; ++i)
      v[i] = ncl::atomic_cond_add_new(Agg[i][agg_idx], !seen, v[i]);
    exp = ncl::atomic_cond_max_new(&MaxExp[agg_idx], !seen, exp);

    auto cnt = ncl::atomic_cond_dec(&Count[agg_idx], !seen);
    if (cnt == 0)                            // slot finished earlier
      return ncl::reflect();
    if (cnt == 1)                            // slot finished
      return ncl::multicast(42);
  }
  return ncl::drop();
}
)";
  return app;
}

AppSource cache_source(int capacity, int val_words, int cms_cols) {
  AppSource app;
  app.name = "CACHE";
  app.defines = {{"COMP", 1},
                 {"CACHE_CAPACITY", static_cast<std::uint64_t>(capacity)},
                 {"VAL_WORDS", static_cast<std::uint64_t>(val_words)},
                 {"CMS_COLS", static_cast<std::uint64_t>(cms_cols)},
                 {"GET_REQ", 1},
                 {"PUT_REQ", 2},
                 {"DEL_REQ", 3}};
  // NetCache: two-step cacheline access (key -> index MAT, index -> value
  // registers), word-mask line sharing, validity bit for write-back,
  // count-min sketch + bloom filter hot-key reporting via an extra header
  // field. The cache contents (KeyIndex/WordMask/Values/Valid) are
  // _managed_: the storage server's controller populates them.
  app.source = R"(
_managed_ _lookup_ ncl::kv<uint64_t, uint16_t> KeyIndex[CACHE_CAPACITY];
_managed_ _lookup_ ncl::kv<uint64_t, uint32_t> WordMask[CACHE_CAPACITY];
_managed_ uint32_t Values[VAL_WORDS][CACHE_CAPACITY];
_managed_ uint8_t Valid[CACHE_CAPACITY];
_net_ uint32_t Hits;
_managed_ uint32_t cms[3][CMS_COLS];
_net_ uint8_t Bloom[3][CMS_COLS];
_managed_ uint32_t thresh;

_net_ void hot_check(uint64_t k, char &hot) {
  unsigned c[3];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k) & (CMS_COLS - 1)], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k) & (CMS_COLS - 1)], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k) & (CMS_COLS - 1)], 1);
  for (auto i = 1; i < 3; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  if (c[0] > thresh) {
    uint8_t b0 = ncl::atomic_or(&Bloom[0][ncl::xor16(k) & (CMS_COLS - 1)], 1);
    uint8_t b1 = ncl::atomic_or(&Bloom[1][ncl::crc32<16>(k) & (CMS_COLS - 1)], 1);
    uint8_t b2 = ncl::atomic_or(&Bloom[2][ncl::crc16(k) & (CMS_COLS - 1)], 1);
    hot = (b0 != 0 && b1 != 0 && b2 != 0) ? 0 : 1;   // report each hot key once
  }
}

_kernel(COMP) _at(1) void query(char op, uint64_t k,
                             uint32_t _spec(VAL_WORDS) *v,
                             char &hit, char &hot) {
  uint16_t idx = 0;
  uint32_t mask = 0;
  char found = ncl::lookup(KeyIndex, k, idx);
  if (op == GET_REQ) {
    if (found) {
      if (Valid[idx] == 1) {
        ncl::lookup(WordMask, k, mask);
        for (auto w = 0; w < VAL_WORDS; ++w)
          if (ncl::bit_chk(mask, w))
            v[w] = Values[w][idx];
        hit = 1;
        ncl::atomic_inc(&Hits);
        return ncl::reflect();
      }
    }
    hot_check(k, hot);
    return ncl::pass();
  }
  if (op == PUT_REQ) {
    if (found) {                           // write-back: update the line
      for (auto w = 0; w < VAL_WORDS; ++w)
        Values[w][idx] = v[w];
      Valid[idx] = 1;
    }
    return ncl::pass();
  }
  if (op == DEL_REQ) {
    if (found)
      Valid[idx] = 0;                      // invalidate
    return ncl::pass();
  }
  return ncl::pass();
}
)";
  return app;
}

AppSource paxos_source(int majority, int val_words) {
  AppSource app;
  app.name = "PAXOS";
  app.defines = {{"COMP", 1},
                 {"MAJORITY", static_cast<std::uint64_t>(majority)},
                 {"VAL_WORDS", static_cast<std::uint64_t>(val_words)},
                 {"PAXOS_REQUEST", 2},
                 {"PAXOS_2A", 3},
                 {"PAXOS_2B", 4},
                 {"PAXOS_DELIVER", 5},
                 {"LEADER", 1},
                 {"LEARNER", 3}};
  // Three kernels of one computation at three locations (paper Fig. 11).
  // The leader sequences requests, multicasts phase-2A to the acceptor
  // group; acceptors vote (VRound check) and forward 2B to the learner;
  // the learner counts votes and delivers on majority.
  app.source = R"(
_at(LEADER) _net_ uint32_t Instance;
_at(LEARNER) _net_ uint8_t VoteHistory[65536];
_at(11,12,13) _net_ uint16_t VRound[65536];
_at(11,12,13,LEARNER) _net_ uint16_t Round[65536];
_at(11,12,13,LEARNER) _net_ uint32_t Value[VAL_WORDS][65536];

_at(LEADER) _kernel(COMP) void leader(uint8_t &type, uint32_t &instance,
                                   uint16_t round, uint8_t &acpt,
                                   uint32_t _spec(VAL_WORDS) *v) {
  if (type == PAXOS_REQUEST) {
    instance = ncl::atomic_add_new(&Instance, 1);
    type = PAXOS_2A;
    return ncl::multicast(10);
  }
  return ncl::drop();
}

_at(11,12,13) _kernel(COMP) void acceptor(uint8_t &type, uint32_t &instance,
                                       uint16_t round, uint8_t &acpt,
                                       uint32_t _spec(VAL_WORDS) *v) {
  if (type == PAXOS_2A) {
    uint16_t idx = instance & 65535;
    uint16_t newround = ncl::atomic_max_new(&VRound[idx], round);
    if (newround == round) {               // promise not violated: vote
      Round[idx] = round;
      for (auto w = 0; w < VAL_WORDS; ++w)
        Value[w][idx] = v[w];
      type = PAXOS_2B;
      acpt = device.id;
      return ncl::send_to_device(LEARNER);
    }
  }
  return ncl::drop();
}

_at(LEARNER) _kernel(COMP) void learner(uint8_t &type, uint32_t &instance,
                                     uint16_t round, uint8_t &acpt,
                                     uint32_t _spec(VAL_WORDS) *v) {
  if (type == PAXOS_2B) {
    uint16_t idx = instance & 65535;
    uint8_t votes = ncl::atomic_add_new(&VoteHistory[idx], 1);
    if (votes == MAJORITY) {               // quorum: deliver exactly once
      Round[idx] = round;
      for (auto w = 0; w < VAL_WORDS; ++w)
        Value[w][idx] = v[w];
      type = PAXOS_DELIVER;
      return ncl::pass();
    }
    return ncl::drop();
  }
  return ncl::drop();
}
)";
  return app;
}

AppSource calc_source() {
  AppSource app;
  app.name = "CALC";
  app.defines = {{"COMP", 1},
                 {"OP_ADD", 1}, {"OP_SUB", 2}, {"OP_AND", 3}, {"OP_OR", 4}, {"OP_XOR", 5}};
  app.source = R"(
_kernel(COMP) _at(1) void calc(uint8_t op, uint32_t a, uint32_t b,
                            uint32_t &result) {
  if (op == OP_ADD) { result = a + b; return ncl::reflect(); }
  if (op == OP_SUB) { result = a - b; return ncl::reflect(); }
  if (op == OP_AND) { result = a & b; return ncl::reflect(); }
  if (op == OP_OR)  { result = a | b; return ncl::reflect(); }
  if (op == OP_XOR) { result = a ^ b; return ncl::reflect(); }
  return ncl::drop();
}
)";
  return app;
}

}  // namespace netcl::apps
