// NetCL-C device sources for the paper's four evaluation applications
// (§VII, Table III):
//
//   AGG    - SwitchML streaming aggregation (Fig. 7 plus the max-exponent
//            quantization step the paper adds),
//   CACHE  - NetCache with GET/PUT/DEL, a validity bit (write-back), the
//            two-step key->index->cacheline lookup, word-mask cache-line
//            sharing, hit counting, and the count-min-sketch + bloom-filter
//            hot-key report path,
//   PAXOS  - P4xos: leader / acceptor / learner kernels of one computation
//            placed at three locations (Fig. 11),
//   CALC   - the P4 tutorial calculator.
//
// Sources are parameterized through #define-style macros; the accessors
// return both the text and the default define set so the driver, tests,
// benchmarks and examples all compile identical programs.
#pragma once

#include <string>

#include "frontend/lexer.hpp"

namespace netcl::apps {

struct AppSource {
  std::string name;
  std::string source;
  DefineMap defines;
  int computation = 1;
};

/// SwitchML-style streaming AllReduce. Defaults: NUM_SLOTS=64,
/// SLOT_SIZE=32 (the paper's per-packet element count), NUM_WORKERS=2.
[[nodiscard]] AppSource agg_source(int num_workers = 2, int num_slots = 64,
                                   int slot_size = 32);

/// NetCache-style KV cache. Defaults: capacity 128 lines, VAL_WORDS=16
/// 4-byte words per line (64 B values), CMS_COLS=65536, THRESH handled at
/// runtime via the _managed_ `thresh`.
[[nodiscard]] AppSource cache_source(int capacity = 128, int val_words = 16,
                                     int cms_cols = 65536);

/// P4xos. Device ids: leader 1, acceptors 11/12/13, learner 3;
/// MAJORITY = 2 of 3 by default. Multicast group 10 (leader -> acceptors)
/// must be configured on the leader device.
[[nodiscard]] AppSource paxos_source(int majority = 2, int val_words = 8);

/// The P4 tutorial calculator (ADD/SUB/AND/OR/XOR, reflected to sender).
[[nodiscard]] AppSource calc_source();

/// Message type / opcode constants shared with host code.
inline constexpr int kGetReq = 1;
inline constexpr int kPutReq = 2;
inline constexpr int kDelReq = 3;
inline constexpr int kCacheResponse = 9;

inline constexpr int kPaxosRequest = 2;
inline constexpr int kPaxos2A = 3;
inline constexpr int kPaxos2B = 4;
inline constexpr int kPaxosDeliver = 5;
inline constexpr int kPaxosLeaderDevice = 1;
inline constexpr int kPaxosLearnerDevice = 3;
inline constexpr int kPaxosAcceptorGroup = 10;
inline constexpr int kPaxosAcceptors[3] = {11, 12, 13};

inline constexpr int kCalcAdd = 1;
inline constexpr int kCalcSub = 2;
inline constexpr int kCalcAnd = 3;
inline constexpr int kCalcOr = 4;
inline constexpr int kCalcXor = 5;

inline constexpr int kAggMulticastGroup = 42;

}  // namespace netcl::apps
