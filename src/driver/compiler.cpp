#include "driver/compiler.hpp"

#include <chrono>

#include "frontend/sema.hpp"
#include "ir/lower_ast.hpp"
#include "ir/verifier.hpp"
#include "obs/trace.hpp"
#include "p4/latency.hpp"

namespace netcl::driver {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

int module_insts(const ir::Module* module) {
  if (module == nullptr) return 0;
  std::size_t n = 0;
  for (const auto& fn : module->functions()) n += fn->instruction_count();
  return static_cast<int>(n);
}

/// Runs `body` as one observed driver phase (trace span + PassStat). The
/// module pointer is re-read after the body so phases that create the
/// module still report its size.
template <typename Body>
void observed_phase(obs::CompileReport& report, const std::string& name,
                    const std::unique_ptr<ir::Module>& module, Body&& body) {
  const int before = module_insts(module.get());
  obs::TraceSpan span(obs::tracer(), "driver", name);
  const auto start = std::chrono::steady_clock::now();
  body();
  const double seconds = seconds_since(start);
  const int after = module_insts(module.get());
  if (span.active()) span.arg("insts_delta", std::to_string(after - before));
  report.add_pass(name, seconds, before, after);
}

std::map<std::string, int> usage_map(const p4::StageUsage& usage) {
  return {{"sram", usage.sram},   {"tcam", usage.tcam}, {"salu", usage.salus},
          {"vliw", usage.vliw},   {"hash", usage.hash}, {"tables", usage.tables}};
}

/// Copies the rendered diagnostics (one per line) into the report.
void record_diagnostics(obs::CompileReport& report, const std::string& rendered) {
  std::size_t begin = 0;
  while (begin < rendered.size()) {
    std::size_t end = rendered.find('\n', begin);
    if (end == std::string::npos) end = rendered.size();
    if (end > begin) report.diagnostics.emplace_back(rendered.substr(begin, end - begin));
    begin = end + 1;
  }
}

}  // namespace

CompileResult compile_netcl(const std::string& source, const CompileOptions& options) {
  CompileResult result;
  obs::TraceSpan compile_span(obs::tracer(), "driver", "compile_netcl");
  result.netcl_loc = count_loc(source);
  result.report.netcl_loc = result.netcl_loc;

  const auto frontend_start = std::chrono::steady_clock::now();
  SourceBuffer buffer("<netcl>", source);
  DiagnosticEngine diags;
  Program program;
  observed_phase(result.report, "frontend.parse+sema", result.module,
                 [&] { program = analyze_netcl(buffer, diags, options.defines); });
  if (diags.has_errors()) {
    result.errors = diags.render_all(&buffer);
    record_diagnostics(result.report, result.errors);
    return result;
  }

  // Record every computation's specification for host runtimes.
  for (const FunctionDecl* kernel : program.kernels()) {
    result.specs.try_emplace(kernel->computation, make_kernel_spec(*kernel));
  }

  ir::LowerOptions lower_options;
  lower_options.device_id = options.device_id;
  observed_phase(result.report, "frontend.lower_ast", result.module,
                 [&] { result.module = ir::lower_program(program, lower_options, diags); });
  if (diags.has_errors()) {
    result.errors = diags.render_all(&buffer);
    record_diagnostics(result.report, result.errors);
    return result;
  }

  passes::PassOptions pass_options;
  pass_options.target = options.target;
  pass_options.speculation = options.speculation;
  pass_options.hoisting = options.hoisting;
  pass_options.duplication = options.duplication;
  pass_options.partitioning = options.partitioning;
  pass_options.report = &result.report;
  passes::run_pipeline(*result.module, pass_options, diags);
  if (diags.has_errors()) {
    result.errors = diags.render_all(&buffer);
    record_diagnostics(result.report, result.errors);
    return result;
  }
  bool verify_failed = false;
  observed_phase(result.report, "ir.verify", result.module, [&] {
    if (auto violations = ir::verify(*result.module); !violations.empty()) {
      for (const std::string& v : violations) result.errors += v + "\n";
      verify_failed = true;
    }
  });
  if (verify_failed) {
    record_diagnostics(result.report, result.errors);
    return result;
  }
  result.frontend_seconds = seconds_since(frontend_start);

  // Backend: P4 text must be emitted before linearization (the linearizer
  // rewrites phi uses in place).
  const auto backend_start = std::chrono::steady_clock::now();
  observed_phase(result.report, "backend.emit_p4", result.module, [&] {
    result.p4 = p4::emit_p4(*result.module,
                            options.target == passes::Target::Tna ? p4::P4Dialect::Tna
                                                                  : p4::P4Dialect::V1Model);
  });
  p4::LinearizeOptions linearize_options;
  linearize_options.speculation = options.speculation;
  observed_phase(result.report, "backend.linearize", result.module, [&] {
    result.kernels = p4::linearize_module(*result.module, linearize_options);
  });

  bool allocation_failed = false;
  observed_phase(result.report, "backend.stage_alloc", result.module, [&] {
    if (options.target == passes::Target::Tna) {
      result.allocation = p4::allocate_stages(result.kernels, *result.module, options.limits,
                                              options.base_stages);
      if (!result.allocation.fits) {
        result.errors = "TNA stage allocation failed: " + result.allocation.error;
        allocation_failed = true;
      }
    } else {
      // The software switch has no stage budget; report dependence depth.
      p4::StageLimits unbounded = options.limits;
      unbounded.stages = 1 << 16;
      result.allocation = p4::allocate_stages(result.kernels, *result.module, unbounded,
                                              options.base_stages);
    }
  });
  if (allocation_failed) {
    record_diagnostics(result.report, result.errors);
    return result;
  }
  observed_phase(result.report, "backend.phv", result.module,
                 [&] { result.phv = p4::compute_phv(result.kernels); });
  result.backend_seconds = seconds_since(backend_start);
  result.ok = true;

  result.report.ok = true;
  result.report.p4_loc = result.p4.loc();
  result.report.frontend_seconds = result.frontend_seconds;
  result.report.backend_seconds = result.backend_seconds;
  result.report.stages_used = result.allocation.stages_used;
  result.report.phv_bits = result.phv.total_bits();
  result.report.phv_occupancy_pct = result.phv.occupancy_pct(options.limits);
  result.report.worst_latency_ns =
      p4::LatencyModel{}.worst_case_ns(result.allocation.stages_used);
  result.report.pipe_total = usage_map(result.allocation.total);
  result.report.worst_stage = usage_map(result.allocation.worst);
  // Per-stage rows (ISSUE 7): the exact accounting admission control will
  // charge this program when it is loaded as a tenant.
  result.report.per_stage.reserve(result.allocation.per_stage.size());
  for (const p4::StageUsage& usage : result.allocation.per_stage) {
    result.report.per_stage.push_back(usage_map(usage));
  }
  return result;
}

std::unique_ptr<sim::SwitchDevice> make_device(CompileResult&& result, std::uint16_t device_id) {
  return std::make_unique<sim::SwitchDevice>(device_id, std::move(result.module),
                                             std::move(result.kernels),
                                             result.allocation.stages_used);
}

sim::ProgramArtifact make_artifact(CompileResult&& result, const std::string& name) {
  sim::ProgramArtifact artifact;
  artifact.name = name.empty() ? "program" : name;
  artifact.module = std::move(result.module);
  artifact.kernels = std::move(result.kernels);
  artifact.stages_used = result.allocation.stages_used;
  artifact.per_stage = std::move(result.allocation.per_stage);
  return artifact;
}

sim::ProgramCompiler artifact_compiler(const CompileOptions& base_options) {
  return [base_options](const std::string& source,
                        const std::map<std::string, std::uint64_t>& defines,
                        std::uint16_t device_id,
                        sim::ProgramArtifact& out) -> runtime::Error {
    CompileOptions options = base_options;
    options.device_id = device_id;
    for (const auto& [name, value] : defines) options.defines[name] = value;
    CompileResult result = compile_netcl(source, options);
    if (!result.ok) {
      return {runtime::ErrorKind::kRejected, "kernel compile failed:\n" + result.errors};
    }
    out = make_artifact(std::move(result), "");
    return {};
  };
}

}  // namespace netcl::driver
