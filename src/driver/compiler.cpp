#include "driver/compiler.hpp"

#include <chrono>

#include "frontend/sema.hpp"
#include "ir/lower_ast.hpp"
#include "ir/verifier.hpp"

namespace netcl::driver {

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}
}  // namespace

CompileResult compile_netcl(const std::string& source, const CompileOptions& options) {
  CompileResult result;
  result.netcl_loc = count_loc(source);

  const auto frontend_start = std::chrono::steady_clock::now();
  SourceBuffer buffer("<netcl>", source);
  DiagnosticEngine diags;
  Program program = analyze_netcl(buffer, diags, options.defines);
  if (diags.has_errors()) {
    result.errors = diags.render_all(&buffer);
    return result;
  }

  // Record every computation's specification for host runtimes.
  for (const FunctionDecl* kernel : program.kernels()) {
    result.specs.try_emplace(kernel->computation, make_kernel_spec(*kernel));
  }

  ir::LowerOptions lower_options;
  lower_options.device_id = options.device_id;
  result.module = ir::lower_program(program, lower_options, diags);
  if (diags.has_errors()) {
    result.errors = diags.render_all(&buffer);
    return result;
  }

  passes::PassOptions pass_options;
  pass_options.target = options.target;
  pass_options.speculation = options.speculation;
  pass_options.hoisting = options.hoisting;
  pass_options.duplication = options.duplication;
  pass_options.partitioning = options.partitioning;
  passes::run_pipeline(*result.module, pass_options, diags);
  if (diags.has_errors()) {
    result.errors = diags.render_all(&buffer);
    return result;
  }
  if (auto violations = ir::verify(*result.module); !violations.empty()) {
    for (const std::string& v : violations) result.errors += v + "\n";
    return result;
  }
  result.frontend_seconds = seconds_since(frontend_start);

  // Backend: P4 text must be emitted before linearization (the linearizer
  // rewrites phi uses in place).
  const auto backend_start = std::chrono::steady_clock::now();
  result.p4 = p4::emit_p4(*result.module,
                          options.target == passes::Target::Tna ? p4::P4Dialect::Tna
                                                                : p4::P4Dialect::V1Model);
  p4::LinearizeOptions linearize_options;
  linearize_options.speculation = options.speculation;
  result.kernels = p4::linearize_module(*result.module, linearize_options);

  if (options.target == passes::Target::Tna) {
    result.allocation =
        p4::allocate_stages(result.kernels, *result.module, options.limits, options.base_stages);
    if (!result.allocation.fits) {
      result.errors = "TNA stage allocation failed: " + result.allocation.error;
      return result;
    }
  } else {
    // The software switch has no stage budget; report dependence depth.
    p4::StageLimits unbounded = options.limits;
    unbounded.stages = 1 << 16;
    result.allocation =
        p4::allocate_stages(result.kernels, *result.module, unbounded, options.base_stages);
  }
  result.phv = p4::compute_phv(result.kernels);
  result.backend_seconds = seconds_since(backend_start);
  result.ok = true;
  return result;
}

std::unique_ptr<sim::SwitchDevice> make_device(CompileResult&& result, std::uint16_t device_id) {
  return std::make_unique<sim::SwitchDevice>(device_id, std::move(result.module),
                                             std::move(result.kernels),
                                             result.allocation.stages_used);
}

}  // namespace netcl::driver
