// The ncc compilation driver: NetCL-C source -> per-device artifacts.
//
// One compile_netcl() call performs the per-device pipeline of Fig. 8:
// frontend (parse + sema), AST lowering for the device, the middle-end
// pass pipeline, P4 emission, linearization, TNA stage allocation, and the
// PHV report. The result carries everything downstream consumers need:
// the P4 text (inspection / LoC), the executable pipeline (simulator), the
// resource/latency reports (benchmarks), and the kernel specifications of
// the whole program (host runtimes need specs even for kernels placed on
// other devices).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "frontend/lexer.hpp"
#include "obs/report.hpp"
#include "p4/p4_printer.hpp"
#include "p4/phv.hpp"
#include "p4/pipeline.hpp"
#include "p4/stage_alloc.hpp"
#include "passes/passes.hpp"
#include "sim/switch.hpp"

namespace netcl::driver {

struct CompileOptions {
  int device_id = 1;
  passes::Target target = passes::Target::Tna;
  bool speculation = true;
  bool hoisting = true;
  bool duplication = true;
  bool partitioning = true;
  DefineMap defines;
  p4::StageLimits limits;
  /// Stages the base/runtime program occupies before generated code.
  int base_stages = 1;
};

struct CompileResult {
  bool ok = false;
  std::string errors;  // rendered diagnostics when !ok

  std::unique_ptr<ir::Module> module;
  std::vector<p4::KernelProgram> kernels;
  p4::P4Program p4;
  p4::AllocationResult allocation;  // meaningful for the TNA target
  p4::PhvUsage phv;
  std::map<int, KernelSpec> specs;  // every computation in the program

  int netcl_loc = 0;              // LoC of the NetCL-C source
  double frontend_seconds = 0.0;  // parse + sema + lower + passes (ncc)
  double backend_seconds = 0.0;   // P4 emission + allocation (bf-p4c proxy)

  /// Structured per-pass timings, IR-size deltas, resource/PHV usage, and
  /// diagnostics — filled for successful and failed compiles alike
  /// (ncc --stats renders it; benches ingest the JSON form).
  obs::CompileReport report;
};

/// Compiles `source` for one device.
[[nodiscard]] CompileResult compile_netcl(const std::string& source,
                                          const CompileOptions& options);

/// Builds a simulated switch from a successful compile (consumes the
/// module and kernel programs).
[[nodiscard]] std::unique_ptr<sim::SwitchDevice> make_device(CompileResult&& result,
                                                             std::uint16_t device_id);

/// Packages a successful compile as a loadable tenant program (consumes
/// the module, kernels, and per-stage accounting). The per-stage rows are
/// what the device's admission controller charges the tenant (ISSUE 7).
[[nodiscard]] sim::ProgramArtifact make_artifact(CompileResult&& result,
                                                 const std::string& name);

/// A sim::ProgramCompiler closure over compile_netcl: what netcl-swd (and
/// tests) inject so devices can compile-and-load kernels at runtime. The
/// per-request defines overlay `base_options.defines`; the device id is
/// taken from the target device, not the options.
[[nodiscard]] sim::ProgramCompiler artifact_compiler(const CompileOptions& base_options = {});

}  // namespace netcl::driver
