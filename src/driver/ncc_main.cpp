// ncc: the NetCL compiler CLI.
//
//   ncc [options] <source.ncl>
//     --device <id>      compile for device id (default 1)
//     --target tna|v1    backend (default tna)
//     --no-speculation   disable speculation (§VI-B)
//     --no-duplication   disable lookup-memory duplication
//     --no-partitioning  disable access-based memory partitioning
//     --no-hoisting      disable common-computation hoisting
//     -D NAME=VALUE      predefine an integer macro
//     --emit-ir          print the optimized IR
//     --report           print resource / PHV / latency reports
//     --stats[=json]     print the structured CompileReport (per-pass
//                        timings + IR-size deltas) as text or JSON
//     --trace-out <file> write a Chrome trace-event JSON of the compile
//                        (open in chrome://tracing or ui.perfetto.dev)
//     --version          print the version and exit
//
// Exit codes: 0 success, 1 compile/input/output failure, 2 usage error.
#include <fstream>
#include <iostream>
#include <sstream>

#include "driver/compiler.hpp"
#include "ir/printer.hpp"
#include "obs/trace.hpp"
#include "p4/latency.hpp"

namespace {

constexpr const char* kVersion = "ncc (netcl) 0.2.0";

void print_usage() {
  std::cerr << "usage: ncc [--device N] [--target tna|v1] [--no-speculation]\n"
               "           [--no-duplication] [--no-partitioning] [--no-hoisting]\n"
               "           [-D NAME=VALUE] [--emit-ir] [--report] [--stats[=json]]\n"
               "           [--trace-out <file>] [--version] <source.ncl>\n";
}

/// Parses a long value or fails with a usage error (exit 2).
bool parse_number(const std::string& flag, const std::string& text, std::uint64_t& out) {
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return true;
  } catch (const std::exception&) {
    std::cerr << "ncc: invalid number '" << text << "' for " << flag << "\n";
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  netcl::driver::CompileOptions options;
  std::string path;
  std::string trace_path;
  bool emit_ir = false;
  bool report = false;
  bool stats = false;
  bool stats_json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--device" && i + 1 < argc) {
      std::uint64_t device = 0;
      if (!parse_number(arg, argv[++i], device)) return 2;
      options.device_id = static_cast<int>(device);
    } else if (arg == "--target" && i + 1 < argc) {
      const std::string target = argv[++i];
      if (target == "tna") {
        options.target = netcl::passes::Target::Tna;
      } else if (target == "v1" || target == "v1model") {
        options.target = netcl::passes::Target::V1Model;
      } else {
        std::cerr << "unknown target '" << target << "'\n";
        return 2;
      }
    } else if (arg == "--no-speculation") {
      options.speculation = false;
    } else if (arg == "--no-duplication") {
      options.duplication = false;
    } else if (arg == "--no-partitioning") {
      options.partitioning = false;
    } else if (arg == "--no-hoisting") {
      options.hoisting = false;
    } else if (arg == "-D" && i + 1 < argc) {
      const std::string define = argv[++i];
      const std::size_t eq = define.find('=');
      if (eq == std::string::npos) {
        options.defines[define] = 1;
      } else {
        std::uint64_t value = 0;
        if (!parse_number("-D", define.substr(eq + 1), value)) return 2;
        options.defines[define.substr(0, eq)] = value;
      }
    } else if (arg == "--emit-ir") {
      emit_ir = true;
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--stats=json") {
      stats = true;
      stats_json = true;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--version") {
      std::cout << kVersion << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      print_usage();
      return 2;
    }
  }

  if (path.empty()) {
    print_usage();
    return 2;
  }
  std::ifstream file(path);
  if (!file) {
    std::cerr << "ncc: cannot open '" << path << "'\n";
    return 1;
  }
  std::ostringstream text;
  text << file.rdbuf();
  if (file.bad()) {
    std::cerr << "ncc: error reading '" << path << "'\n";
    return 1;
  }

  if (!trace_path.empty()) netcl::obs::tracer().enable();

  netcl::driver::CompileResult result = netcl::driver::compile_netcl(text.str(), options);

  if (!trace_path.empty() && !netcl::obs::tracer().write(trace_path)) {
    std::cerr << "ncc: cannot write trace to '" << trace_path << "'\n";
    return 1;
  }

  if (!result.ok) {
    // --stats=json still emits a machine-readable (ok=false) report so
    // tooling sees the diagnostics and whatever passes did run.
    if (stats_json) std::cout << result.report.to_json() << "\n";
    std::cerr << result.errors;
    return 1;
  }

  if (stats) {
    std::cout << (stats_json ? result.report.to_json() + "\n" : result.report.to_text());
  } else if (emit_ir) {
    std::cout << netcl::ir::print(*result.module);
  } else if (report) {
    std::cout << "netcl loc:       " << result.netcl_loc << "\n";
    std::cout << "generated p4 loc:" << result.p4.loc() << "\n";
    std::cout << "stages used:     " << result.allocation.stages_used << "\n";
    std::cout << "pipe total:      " << netcl::p4::to_string(result.allocation.total) << "\n";
    std::cout << "worst stage:     " << netcl::p4::to_string(result.allocation.worst) << "\n";
    std::cout << "phv:             " << result.phv.total_bits() << " bits ("
              << result.phv.occupancy_pct(options.limits) << "%)\n";
    netcl::p4::LatencyModel latency;
    std::cout << "latency (worst): " << latency.worst_case_ns(result.allocation.stages_used)
              << " ns\n";
    std::cout << "ncc time:        " << result.frontend_seconds + result.backend_seconds
              << " s\n";
  } else {
    std::cout << result.p4.full();
  }
  if (!std::cout.good()) {
    std::cerr << "ncc: error writing output\n";
    return 1;
  }
  return 0;
}
