// ncc: the NetCL compiler CLI.
//
//   ncc [options] <source.ncl>
//     --device <id>      compile for device id (default 1)
//     --target tna|v1    backend (default tna)
//     --no-speculation   disable speculation (§VI-B)
//     --no-duplication   disable lookup-memory duplication
//     --no-partitioning  disable access-based memory partitioning
//     --no-hoisting      disable common-computation hoisting
//     -D NAME=VALUE      predefine an integer macro
//     --emit-ir          print the optimized IR
//     --report           print resource / PHV / latency reports
#include <fstream>
#include <iostream>
#include <sstream>

#include "driver/compiler.hpp"
#include "ir/printer.hpp"
#include "p4/latency.hpp"

namespace {

void print_usage() {
  std::cerr << "usage: ncc [--device N] [--target tna|v1] [--no-speculation]\n"
               "           [--no-duplication] [--no-partitioning] [--no-hoisting]\n"
               "           [-D NAME=VALUE] [--emit-ir] [--report] <source.ncl>\n";
}

}  // namespace

int main(int argc, char** argv) {
  netcl::driver::CompileOptions options;
  std::string path;
  bool emit_ir = false;
  bool report = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--device" && i + 1 < argc) {
      options.device_id = std::stoi(argv[++i]);
    } else if (arg == "--target" && i + 1 < argc) {
      const std::string target = argv[++i];
      if (target == "tna") {
        options.target = netcl::passes::Target::Tna;
      } else if (target == "v1" || target == "v1model") {
        options.target = netcl::passes::Target::V1Model;
      } else {
        std::cerr << "unknown target '" << target << "'\n";
        return 2;
      }
    } else if (arg == "--no-speculation") {
      options.speculation = false;
    } else if (arg == "--no-duplication") {
      options.duplication = false;
    } else if (arg == "--no-partitioning") {
      options.partitioning = false;
    } else if (arg == "--no-hoisting") {
      options.hoisting = false;
    } else if (arg == "-D" && i + 1 < argc) {
      const std::string define = argv[++i];
      const std::size_t eq = define.find('=');
      if (eq == std::string::npos) {
        options.defines[define] = 1;
      } else {
        options.defines[define.substr(0, eq)] =
            std::stoull(define.substr(eq + 1));
      }
    } else if (arg == "--emit-ir") {
      emit_ir = true;
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      print_usage();
      return 2;
    }
  }

  if (path.empty()) {
    print_usage();
    return 2;
  }
  std::ifstream file(path);
  if (!file) {
    std::cerr << "ncc: cannot open '" << path << "'\n";
    return 1;
  }
  std::ostringstream text;
  text << file.rdbuf();

  netcl::driver::CompileResult result = netcl::driver::compile_netcl(text.str(), options);
  if (!result.ok) {
    std::cerr << result.errors;
    return 1;
  }

  if (emit_ir) {
    std::cout << netcl::ir::print(*result.module);
  } else if (report) {
    std::cout << "netcl loc:       " << result.netcl_loc << "\n";
    std::cout << "generated p4 loc:" << result.p4.loc() << "\n";
    std::cout << "stages used:     " << result.allocation.stages_used << "\n";
    std::cout << "pipe total:      " << netcl::p4::to_string(result.allocation.total) << "\n";
    std::cout << "worst stage:     " << netcl::p4::to_string(result.allocation.worst) << "\n";
    std::cout << "phv:             " << result.phv.total_bits() << " bits ("
              << result.phv.occupancy_pct(options.limits) << "%)\n";
    netcl::p4::LatencyModel latency;
    std::cout << "latency (worst): " << latency.worst_case_ns(result.allocation.stages_used)
              << " ns\n";
    std::cout << "ncc time:        " << result.frontend_seconds + result.backend_seconds
              << " s\n";
  } else {
    std::cout << result.p4.full();
  }
  return 0;
}
