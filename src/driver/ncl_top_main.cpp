// ncl-top: live terminal dashboard over a netcl-swd --metrics-port
// Prometheus scrape endpoint (ISSUE 4).
//
//   ncl-top --port 9464 [--host 127.0.0.1] [--interval 1.0] [--once]
//           [--control-port P]
//
// Each tick scrapes the endpoint with a plain HTTP/1.0 GET, parses the
// text exposition, and redraws: every series' current value plus its rate
// since the previous scrape (counters only — gauges show value alone).
// --once scrapes a single time, prints without screen control, and exits
// nonzero if the scrape failed or was not well-formed Prometheus text —
// which is what the CI smoke step runs.
//
// Panels above the raw series listing (each renders only when its series
// exist): per-tenant execution stats with per-interval packet/shed rates
// (ISSUE 7/9), malformed-source attribution with rates (ISSUE 8), the
// per-tenant SLO panel (error-budget bar + multi-window burn rates +
// burn-state arrows, from the netcl_slo_* series; ISSUE 9), and
// interpolated latency quantiles computed from _bucket series the same
// way obs::Histogram::quantile interpolates (ISSUE 9).
//
// With --control-port, pressing `d` fetches the daemon's flight-recorder
// events over the kFlightDump control op and writes a clock-aligned
// postmortem (flightdump_ncl-top_*.jsonl + .trace.json) on the operator's
// machine (ISSUE 6); `q` quits. A persistent control connection also
// feeds a hot-frames panel each tick (kProfileDump, text-only) whenever
// the daemon runs with --profile.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <termios.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/control.hpp"
#include "obs/flightrec.hpp"

namespace {

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// netcl-swd control-plane port; enables the `d` flight-dump keybinding.
  std::uint16_t control_port = 0;
  double interval_s = 1.0;
  bool once = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: ncl-top --port <metrics-port> [--host <ipv4>] "
               "[--interval <seconds>] [--once] [--control-port <port>]\n");
}

/// Puts the controlling terminal into non-canonical, no-echo mode for the
/// interactive keybindings ('d' = flight dump, 'q' = quit) and restores it
/// on destruction. A non-tty stdin (CI pipes) leaves everything alone.
class RawTerminal {
 public:
  RawTerminal() {
    if (::isatty(STDIN_FILENO) != 1) return;
    if (::tcgetattr(STDIN_FILENO, &saved_) != 0) return;
    termios raw = saved_;
    raw.c_lflag &= ~static_cast<tcflag_t>(ICANON | ECHO);
    raw.c_cc[VMIN] = 0;
    raw.c_cc[VTIME] = 0;
    active_ = ::tcsetattr(STDIN_FILENO, TCSANOW, &raw) == 0;
  }
  ~RawTerminal() {
    if (active_) ::tcsetattr(STDIN_FILENO, TCSANOW, &saved_);
  }
  RawTerminal(const RawTerminal&) = delete;
  RawTerminal& operator=(const RawTerminal&) = delete;

 private:
  termios saved_{};
  bool active_ = false;
};

/// Waits up to `timeout_s` for one keypress; returns it, or 0 on timeout.
char poll_key(double timeout_s) {
  pollfd pfd{STDIN_FILENO, POLLIN, 0};
  const int timeout_ms = static_cast<int>(std::max(timeout_s, 0.0) * 1000.0);
  if (::poll(&pfd, 1, timeout_ms) <= 0 || (pfd.revents & POLLIN) == 0) return 0;
  char key = 0;
  return ::read(STDIN_FILENO, &key, 1) == 1 ? key : 0;
}

/// The `d` keybinding: fetch the daemon's recent flight events over the
/// control plane and write a merged, clock-aligned postmortem locally.
void flight_dump(const Options& options) {
  if (options.control_port == 0) {
    std::fprintf(stderr, "ncl-top: flight dump needs --control-port\n");
    return;
  }
  netcl::net::ControlClient client(options.host, options.control_port);
  netcl::net::ControlClient::FlightDumpResult result;
  if (!client.flight_dump(0, result)) {
    std::fprintf(stderr, "ncl-top: kFlightDump request to %s:%u failed\n",
                 options.host.c_str(), options.control_port);
    return;
  }
  netcl::obs::FlightStream daemon;
  daemon.process = "netcl-swd";
  daemon.offset_ns = result.offset_ns;
  daemon.events = std::move(result.events);
  const std::string base =
      netcl::obs::FlightRecorder::instance().trigger_dump("keypress", {daemon});
  if (base.empty()) {
    std::fprintf(stderr, "ncl-top: flight dump suppressed (rate limit)\n");
  } else {
    std::fprintf(stderr, "ncl-top: wrote %s.jsonl and %s.trace.json (%zu daemon events)\n",
                 base.c_str(), base.c_str(), daemon.events.size());
  }
}

/// Sleeps one refresh interval while watching stdin for keybindings.
/// Returns false when the user pressed `q`. Non-tty stdin (pipes, CI)
/// degrades to a plain sleep so EOF never busy-loops.
bool wait_for_tick(const Options& options) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(options.interval_s);
  if (::isatty(STDIN_FILENO) != 1) {
    std::this_thread::sleep_until(deadline);
    return true;
  }
  for (;;) {
    const double remaining =
        std::chrono::duration<double>(deadline - std::chrono::steady_clock::now()).count();
    if (remaining <= 0.0) return true;
    const char key = poll_key(remaining);
    if (key == 'q') return false;
    if (key == 'd') flight_dump(options);
  }
}

/// One blocking HTTP/1.0 GET; returns false on any socket failure. `body`
/// receives everything past the header block.
bool scrape(const Options& options, std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request = "GET /metrics HTTP/1.0\r\nHost: " + options.host + "\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) < 0) {
    ::close(fd);
    return false;
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t split = response.find("\r\n\r\n");
  if (split == std::string::npos || response.compare(0, 5, "HTTP/") != 0) return false;
  body = response.substr(split + 4);
  return true;
}

struct Series {
  double value = 0.0;
  bool counter = false;  // from the preceding # TYPE line
};

/// Parses the exposition into series-name -> value. False when a
/// non-comment line is not "name[{labels}] value".
bool parse(const std::string& body, std::map<std::string, Series>& out) {
  std::map<std::string, bool> family_is_counter;
  std::size_t pos = 0;
  bool saw_sample = false;
  while (pos < body.size()) {
    std::size_t end = body.find('\n', pos);
    if (end == std::string::npos) end = body.size();
    const std::string line = body.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <family> <type>"
      if (line.compare(0, 7, "# TYPE ") == 0) {
        const std::size_t space = line.find(' ', 7);
        if (space != std::string::npos) {
          family_is_counter[line.substr(7, space - 7)] =
              line.compare(space + 1, std::string::npos, "counter") == 0;
        }
      }
      continue;
    }
    const std::size_t value_at = line.rfind(' ');
    if (value_at == std::string::npos || value_at == 0) return false;
    const std::string name = line.substr(0, value_at);
    char* parsed_end = nullptr;
    const double value = std::strtod(line.c_str() + value_at + 1, &parsed_end);
    if (parsed_end == line.c_str() + value_at + 1) return false;
    std::string family = name.substr(0, name.find('{'));
    Series series;
    series.value = value;
    series.counter = family_is_counter[family];
    out[name] = series;
    saw_sample = true;
  }
  return saw_sample;
}

/// Extracts a label value from a series name ("...{...,tenant=\"2\",...}").
/// Empty when the label is absent.
std::string label_value(const std::string& series, const std::string& label) {
  const std::string needle = label + "=\"";
  const std::size_t at = series.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + needle.size();
  const std::size_t end = series.find('"', begin);
  return end == std::string::npos ? "" : series.substr(begin, end - begin);
}

/// Delta of one series since the previous scrape, clamped non-negative
/// (restarts reset counters); 0 when the series is new.
double series_delta(const std::map<std::string, Series>& prev, const std::string& name,
                    double now_value) {
  const auto it = prev.find(name);
  return it == prev.end() ? 0.0 : std::max(0.0, now_value - it->second.value);
}

/// The per-tenant view (ISSUE 7): netcl-swd mirrors each tenant's execution
/// stats into series carrying a tenant label; fold them into one row per
/// tenant above the raw series listing. Per-interval rates (ISSUE 9) sit
/// next to the cumulative totals so a live flood is visible without mental
/// subtraction.
void render_tenants(const std::map<std::string, Series>& now,
                    const std::map<std::string, Series>& prev, double dt_s) {
  // tenant id -> metric suffix ("packets_processed") -> (value, delta).
  std::map<std::string, std::map<std::string, std::pair<double, double>>> tenants;
  for (const auto& [name, series] : now) {
    const std::string tenant = label_value(name, "tenant");
    if (tenant.empty()) continue;
    const std::size_t brace = name.find('{');
    std::string family = name.substr(0, brace);
    const std::string prefix = "netcl_tenant_";
    if (family.compare(0, prefix.size(), prefix) == 0) family.erase(0, prefix.size());
    tenants[tenant][family] = {series.value, series_delta(prev, name, series.value)};
  }
  if (tenants.empty()) return;
  std::printf("%-8s %7s %12s %10s %12s %10s %10s %10s %10s\n", "tenant", "stages",
              "packets", "pkts/s", "kernels", "drops", "mcasts", "shed", "shed/s");
  for (const auto& [tenant, metrics] : tenants) {
    auto metric = [&](const char* key) {
      const auto it = metrics.find(key);
      return it == metrics.end() ? 0.0 : it->second.first;
    };
    auto rate = [&](const char* key) {
      const auto it = metrics.find(key);
      return it == metrics.end() || dt_s <= 0.0 ? 0.0 : it->second.second / dt_s;
    };
    // "shed" = packets this tenant lost to overload control (ISSUE 8):
    // its own policer budget plus drop-oldest queue overflow.
    std::printf("%-8s %7.0f %12.0f %10.1f %12.0f %10.0f %10.0f %10.0f %10.1f\n",
                tenant.c_str(), metric("stages_used"), metric("packets_processed"),
                rate("packets_processed"), metric("kernels_executed"),
                metric("drops_action"), metric("multicasts"),
                metric("shed_policer") + metric("shed_queue"),
                rate("shed_policer") + rate("shed_queue"));
  }
  std::printf("\n");
}

/// Hostile-traffic attribution (ISSUE 8): the daemon mirrors its top
/// malformed-datagram sources into series carrying a `source` label.
void render_malformed_sources(const std::map<std::string, Series>& now,
                              const std::map<std::string, Series>& prev, double dt_s) {
  std::map<std::string, std::pair<double, double>> sources;  // value, delta
  for (const auto& [name, series] : now) {
    const std::string source = label_value(name, "source");
    if (!source.empty()) {
      sources[source] = {series.value, series_delta(prev, name, series.value)};
    }
  }
  if (sources.empty()) return;
  std::printf("%-24s %12s %12s\n", "malformed source", "datagrams", "dgrams/s");
  for (const auto& [source, counts] : sources) {
    std::printf("%-24s %12.0f %12.1f\n", source.c_str(), counts.first,
                dt_s > 0.0 ? counts.second / dt_s : 0.0);
  }
  std::printf("\n");
}

/// The per-tenant SLO panel (ISSUE 9): error-budget bar, burn-state
/// arrows, and the short/long/slow burn rates, all straight from the
/// netcl_slo_* series the daemon exports.
void render_slo(const std::map<std::string, Series>& now) {
  struct Row {
    double budget = 1.0;
    double state = 0.0;
    double p99 = 0.0;
    double objective_ns = 0.0;
    double objective_avail = 0.0;
    std::map<std::string, double> burn;  // window name -> burn rate
  };
  std::map<std::string, Row> rows;
  for (const auto& [name, series] : now) {
    if (name.compare(0, 10, "netcl_slo_") != 0) continue;
    const std::string tenant = label_value(name, "tenant");
    if (tenant.empty()) continue;
    Row& row = rows[tenant];
    const std::string family = name.substr(0, name.find('{'));
    if (family == "netcl_slo_budget_remaining") row.budget = series.value;
    else if (family == "netcl_slo_state") row.state = series.value;
    else if (family == "netcl_slo_observed_p99_ns") row.p99 = series.value;
    else if (family == "netcl_slo_objective_latency_ns") row.objective_ns = series.value;
    else if (family == "netcl_slo_objective_availability") row.objective_avail = series.value;
    else if (family == "netcl_slo_burn_rate") row.burn[label_value(name, "window")] = series.value;
  }
  if (rows.empty()) return;
  std::printf("%-8s %-10s %-18s %22s %12s %16s\n", "tenant", "slo", "budget",
              "burn short/long/slow", "p99 ns", "objective");
  for (const auto& [tenant, row] : rows) {
    // kOk / kSlowBurn / kFastBurn as exported by the slo.state gauge.
    const char* state = row.state >= 2.0 ? "FAST ^^" : row.state >= 1.0 ? "slow ^" : "ok";
    char bar[16];
    const int filled = static_cast<int>(std::max(0.0, std::min(1.0, row.budget)) * 10.0);
    for (int i = 0; i < 10; ++i) bar[i] = i < filled ? '#' : '-';
    bar[10] = '\0';
    auto burn = [&](const char* window) {
      const auto it = row.burn.find(window);
      return it == row.burn.end() ? 0.0 : it->second;
    };
    char objective[48];
    std::snprintf(objective, sizeof(objective), "%.0fns @ %.5g", row.objective_ns,
                  row.objective_avail);
    std::printf("%-8s %-10s [%s] %3.0f%% %7.1f/%6.1f/%6.1f %12.0f %16s\n", tenant.c_str(),
                state, bar, row.budget * 100.0, burn("short"), burn("long"), burn("slow"),
                row.p99, objective);
  }
  std::printf("\n");
}

/// Interpolated quantiles from the cumulative _bucket series (ISSUE 9) —
/// the scrape-side mirror of obs::Histogram::quantile: rank into the
/// bucket, then linear interpolation between the bucket's bounds. Only
/// *_ns histograms are shown (the latency families).
void render_quantiles(const std::map<std::string, Series>& now) {
  struct Dist {
    std::vector<std::pair<double, double>> cum;  // (ceiling, cumulative); +Inf last
  };
  std::map<std::string, Dist> dists;
  for (const auto& [name, series] : now) {
    const std::size_t at = name.find("_bucket{");
    if (at == std::string::npos) continue;
    const std::string base = name.substr(0, at);
    if (base.size() < 3 || base.compare(base.size() - 3, 3, "_ns") != 0) continue;
    const std::string le = label_value(name, "le");
    if (le.empty()) continue;
    std::string key = base.substr(6);  // strip "netcl_"
    const std::string registry = label_value(name, "registry");
    const std::string tenant = label_value(name, "tenant");
    if (!registry.empty()) key += " [" + registry + (tenant.empty() ? "" : "/t" + tenant) + "]";
    const double ceiling =
        le == "+Inf" ? std::numeric_limits<double>::infinity() : std::atof(le.c_str());
    dists[key].cum.push_back({ceiling, series.value});
  }
  if (dists.empty()) return;
  bool header = false;
  for (auto& [key, dist] : dists) {
    std::sort(dist.cum.begin(), dist.cum.end());
    const double total = dist.cum.empty() ? 0.0 : dist.cum.back().second;
    if (total <= 0.0) continue;
    auto quantile = [&](double q) {
      const double rank = q * total;
      double lo = 0.0;
      double below = 0.0;
      for (const auto& [ceiling, cumulative] : dist.cum) {
        if (cumulative >= rank && cumulative > below) {
          // The +Inf bucket has no upper bound to interpolate toward;
          // clamp to the last finite ceiling like Histogram::quantile
          // clamps to max().
          if (ceiling == std::numeric_limits<double>::infinity()) return lo;
          return lo + (rank - below) / (cumulative - below) * (ceiling - lo);
        }
        below = cumulative;
        if (ceiling != std::numeric_limits<double>::infinity()) lo = ceiling;
      }
      return lo;
    };
    if (!header) {
      std::printf("%-44s %12s %12s %12s %10s\n", "latency (interpolated)", "p50", "p90",
                  "p99", "count");
      header = true;
    }
    std::printf("%-44s %12.0f %12.0f %12.0f %10.0f\n", key.c_str(), quantile(0.50),
                quantile(0.90), quantile(0.99), total);
  }
  if (header) std::printf("\n");
}

/// The hot-path panel (ISSUE 9): asks the daemon for its folded-stack
/// profile over the persistent control connection (text-only — no file is
/// written) and shows the hottest leaf frames. Silent when the daemon
/// runs without --profile.
void render_hot_frames(netcl::net::ControlClient& client) {
  netcl::net::ControlClient::ProfileDumpResult result;
  if (!client.profile_dump(netcl::net::kProfileReturnText, result)) return;
  if (result.hz == 0 || result.folded.empty()) return;
  std::map<std::string, double> leaves;
  double total = 0.0;
  std::size_t pos = 0;
  while (pos < result.folded.size()) {
    std::size_t end = result.folded.find('\n', pos);
    if (end == std::string::npos) end = result.folded.size();
    const std::string line = result.folded.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) continue;
    const double count = std::atof(line.c_str() + space + 1);
    const std::size_t semi = line.rfind(';', space - 1);
    const std::string leaf =
        line.substr(semi == std::string::npos ? 0 : semi + 1,
                    space - (semi == std::string::npos ? 0 : semi + 1));
    leaves[leaf] += count;
    total += count;
  }
  if (total <= 0.0) return;
  std::vector<std::pair<double, std::string>> ranked;
  ranked.reserve(leaves.size());
  for (const auto& [leaf, count] : leaves) ranked.emplace_back(count, leaf);
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("hot frames (%llu samples @ %u Hz, %llu stacks)\n",
              static_cast<unsigned long long>(result.samples), result.hz,
              static_cast<unsigned long long>(result.distinct_stacks));
  const std::size_t top = std::min<std::size_t>(5, ranked.size());
  for (std::size_t i = 0; i < top; ++i) {
    std::printf("  %5.1f%% %-70s\n", ranked[i].first / total * 100.0,
                ranked[i].second.c_str());
  }
  std::printf("\n");
}

void render(const std::map<std::string, Series>& now, const std::map<std::string, Series>& prev,
            double dt_s, const Options& options, netcl::net::ControlClient* control) {
  if (!options.once) std::printf("\033[2J\033[H");
  const char* keys = options.once ? ""
                     : options.control_port != 0 ? ", q quit / d flight-dump"
                                                 : ", q to quit";
  std::printf("ncl-top — %s:%u  (%zu series%s)\n", options.host.c_str(), options.port,
              now.size(), keys);
  render_tenants(now, prev, dt_s);
  render_malformed_sources(now, prev, dt_s);
  render_slo(now);
  render_quantiles(now);
  if (control != nullptr) render_hot_frames(*control);
  std::printf("%-64s %14s %12s\n", "series", "value", "rate/s");
  for (const auto& [name, series] : now) {
    char rate[32] = "";
    if (series.counter && dt_s > 0.0) {
      const auto it = prev.find(name);
      if (it != prev.end()) {
        std::snprintf(rate, sizeof(rate), "%.1f",
                      std::max(0.0, (series.value - it->second.value) / dt_s));
      }
    }
    std::printf("%-64s %14.0f %12s\n", name.c_str(), series.value, rate);
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) {
        usage();
        return 2;
      }
      options.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) {
        usage();
        return 2;
      }
      options.host = v;
    } else if (arg == "--interval") {
      const char* v = next();
      if (v == nullptr) {
        usage();
        return 2;
      }
      options.interval_s = std::atof(v);
    } else if (arg == "--control-port") {
      const char* v = next();
      if (v == nullptr) {
        usage();
        return 2;
      }
      options.control_port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--once") {
      options.once = true;
    } else {
      usage();
      return 2;
    }
  }
  if (options.port == 0) {
    usage();
    return 2;
  }
  netcl::obs::FlightRecorder::instance().set_process_label("ncl-top");
  std::unique_ptr<RawTerminal> raw_terminal;
  if (!options.once) raw_terminal = std::make_unique<RawTerminal>();
  // Persistent control connection for the hot-frames panel; the `d`
  // flight-dump keybinding keeps its own short-lived connection.
  std::unique_ptr<netcl::net::ControlClient> control;
  if (options.control_port != 0) {
    control = std::make_unique<netcl::net::ControlClient>(options.host, options.control_port);
  }

  std::map<std::string, Series> prev;
  auto prev_at = std::chrono::steady_clock::now();
  for (;;) {
    std::string body;
    if (!scrape(options, body)) {
      std::fprintf(stderr, "ncl-top: scrape of %s:%u failed\n", options.host.c_str(),
                   options.port);
      if (options.once) return 1;
      if (!wait_for_tick(options)) return 0;
      continue;
    }
    std::map<std::string, Series> now;
    if (!parse(body, now)) {
      std::fprintf(stderr, "ncl-top: response is not well-formed Prometheus text\n");
      if (options.once) return 1;
      if (!wait_for_tick(options)) return 0;
      continue;
    }
    const auto now_at = std::chrono::steady_clock::now();
    render(now, prev, std::chrono::duration<double>(now_at - prev_at).count(), options,
           control.get());
    if (options.once) return 0;
    prev = std::move(now);
    prev_at = now_at;
    if (!wait_for_tick(options)) return 0;
  }
}
