// netcl-swd: the NetCL software device daemon.
//
//   netcl-swd [options] <source.ncl> [<source2.ncl> ...]
//     --device <id>        serve as device id (default 1)
//     --port <p>           UDP data-plane port (default 0 = kernel-assigned)
//     --control-port <p>   TCP control-plane port (default 0 = kernel-assigned)
//     -D NAME=VALUE        predefine an integer macro
//     --max-seconds <s>    exit after s wall-clock seconds (CI hard stop)
//     --max-tenants <n>    cap co-resident tenants (default 0 = unlimited)
//     --generation <g>     report generation g in PONGs (default: derived
//                          from the wall clock, so restarts are detectable)
//     --idle-timeout <s>   reap control connections idle for s seconds
//                          (default 300; 0 disables)
//     --metrics-port <p>   serve a Prometheus text scrape endpoint on this
//                          plain-TCP port (0 = kernel-assigned; off when
//                          the flag is absent)
//     --tenant-rate <pps>  police each tenant's data-plane traffic to this
//                          many packets/second (default 0 = unpoliced)
//     --tenant-burst <n>   token-bucket depth in packets (default: one
//                          second's worth, i.e. --tenant-rate)
//     --ingress-queue <n>  bounded drop-oldest ingress queue capacity
//                          (default 1024)
//     --read-deadline <s>  reap control connections stalled mid-frame for
//                          s seconds (slowloris defence; default 10,
//                          0 disables)
//     --profile[=hz]       continuous sampling CPU profiler (ISSUE 9);
//                          default 99 Hz. SIGUSR1 or the kProfileDump
//                          control op writes profile_netcl-swd_<n>.folded
//                          next to the flight dumps
//     --slo T:P99NS:AVAIL  per-tenant SLO objective (repeatable): tenant T
//                          must serve packets under P99NS ns with AVAIL
//                          availability (e.g. 1:50000:0.999). Exported as
//                          netcl_slo_* series; fast burn triggers a
//                          flight-recorder postmortem
//     --quiet              suppress the shutdown stats line
//
// Multi-tenant serving (ISSUE 7): each positional source compiles
// independently and loads as its own tenant (ids 1, 2, ... in argument
// order) through admission control, so the co-resident aggregate is
// guaranteed to fit the stage budget. More kernels can be loaded, swapped,
// and unloaded at runtime over the control plane (netcl-ctl / kLoadKernel).
//
// SIGUSR2 writes a flight-recorder postmortem (flightdump_netcl-swd_*.jsonl
// + .trace.json, into $NETCL_FLIGHT_DIR or the working directory); the
// kFlightDump control op ships the same events to a host instead.
//
// On startup it prints one parseable ready line followed by one line per
// resident tenant:
//
//   netcl-swd: device <id> ready (udp <port>, control <port>) [<admission summary>]
//   netcl-swd:   tenant <t> '<name>': <s> stages, worst <resource row>
//
// Exit codes: 0 clean shutdown (signal or --max-seconds), 1 compile/input/
// admission/socket failure, 2 usage error.
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>

#include "driver/compiler.hpp"
#include "net/swd_server.hpp"
#include "obs/flightrec.hpp"
#include "obs/profiler.hpp"

namespace {

netcl::net::SwdServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

void print_usage() {
  std::cerr << "usage: netcl-swd [--device N] [--port P] [--control-port P]\n"
               "                 [-D NAME=VALUE] [--max-seconds S] [--max-tenants N]\n"
               "                 [--generation G] [--idle-timeout S] [--metrics-port P]\n"
               "                 [--tenant-rate PPS] [--tenant-burst N] [--ingress-queue N]\n"
               "                 [--read-deadline S] [--profile[=HZ]] [--slo T:P99NS:AVAIL]\n"
               "                 [--quiet] <source.ncl> [<source2.ncl> ...]\n";
}

bool parse_number(const std::string& flag, const std::string& text, std::uint64_t& out) {
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return true;
  } catch (const std::exception&) {
    std::cerr << "netcl-swd: invalid number '" << text << "' for " << flag << "\n";
    return false;
  }
}

/// Parses a --slo value "tenant:p99_ns:availability", e.g. "1:50000:0.999".
/// The latency threshold may be 0 (availability-only objective).
bool parse_slo(const std::string& text, netcl::sim::TenantId& tenant,
               netcl::obs::SloObjective& objective) {
  const std::size_t first = text.find(':');
  const std::size_t second = first == std::string::npos ? std::string::npos
                                                        : text.find(':', first + 1);
  if (first == std::string::npos || second == std::string::npos) return false;
  try {
    std::size_t used = 0;
    const std::string tenant_text = text.substr(0, first);
    tenant = static_cast<netcl::sim::TenantId>(std::stoul(tenant_text, &used));
    if (used != tenant_text.size()) return false;
    const std::string latency_text = text.substr(first + 1, second - first - 1);
    objective.latency_threshold_ns = std::stod(latency_text, &used);
    if (used != latency_text.size()) return false;
    const std::string avail_text = text.substr(second + 1);
    objective.availability_target = std::stod(avail_text, &used);
    if (used != avail_text.size()) return false;
  } catch (const std::exception&) {
    return false;
  }
  return objective.latency_threshold_ns >= 0.0 && objective.availability_target > 0.0 &&
         objective.availability_target < 1.0;
}

/// "examples/kernels/calc.ncl" -> "calc" (the operator-facing tenant name).
std::string tenant_name(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base.resize(dot);
  return base.empty() ? path : base;
}

}  // namespace

int main(int argc, char** argv) {
  netcl::driver::CompileOptions options;
  netcl::net::SwdOptions swd;
  swd.verbose = true;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t value = 0;
    if (arg == "--device" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      options.device_id = static_cast<int>(value);
    } else if (arg == "--port" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      swd.udp_port = static_cast<std::uint16_t>(value);
    } else if (arg == "--control-port" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      swd.control_port = static_cast<std::uint16_t>(value);
    } else if (arg == "--max-seconds" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      swd.max_seconds = static_cast<double>(value);
    } else if (arg == "--max-tenants" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      swd.max_tenants = static_cast<std::size_t>(value);
    } else if (arg == "--generation" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      swd.generation = static_cast<std::uint32_t>(value);
    } else if (arg == "--idle-timeout" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      swd.idle_timeout_seconds = static_cast<double>(value);
    } else if (arg == "--metrics-port" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      swd.metrics_port = static_cast<int>(static_cast<std::uint16_t>(value));
    } else if (arg == "--tenant-rate" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      swd.tenant_rate_pps = static_cast<double>(value);
    } else if (arg == "--tenant-burst" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      swd.tenant_burst = static_cast<double>(value);
    } else if (arg == "--ingress-queue" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      swd.ingress_queue_capacity = static_cast<std::size_t>(value);
    } else if (arg == "--read-deadline" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      swd.read_deadline_seconds = static_cast<double>(value);
    } else if (arg == "--profile" || arg.rfind("--profile=", 0) == 0) {
      if (arg == "--profile") {
        swd.profile_hz = netcl::obs::Profiler::kDefaultHz;
      } else {
        if (!parse_number("--profile", arg.substr(10), value) || value == 0) {
          if (value == 0) std::cerr << "netcl-swd: --profile rate must be > 0\n";
          return 2;
        }
        swd.profile_hz = static_cast<int>(value);
      }
    } else if (arg == "--slo" && i + 1 < argc) {
      netcl::sim::TenantId tenant = 0;
      netcl::obs::SloObjective objective;
      if (!parse_slo(argv[++i], tenant, objective)) {
        std::cerr << "netcl-swd: invalid --slo '" << argv[i]
                  << "' (want TENANT:P99_NS:AVAILABILITY, availability in (0,1))\n";
        return 2;
      }
      swd.slo_objectives[tenant] = objective;
    } else if (arg == "-D" && i + 1 < argc) {
      const std::string define = argv[++i];
      const std::size_t eq = define.find('=');
      if (eq == std::string::npos) {
        options.defines[define] = 1;
      } else {
        if (!parse_number("-D", define.substr(eq + 1), value)) return 2;
        options.defines[define.substr(0, eq)] = value;
      }
    } else if (arg == "--quiet") {
      swd.verbose = false;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      // Each positional source becomes its own tenant; loading the same
      // file twice would just collide on computation ids at admission time,
      // so reject it up front with a clearer message (ISSUE 7).
      for (const std::string& seen : paths) {
        if (seen == arg) {
          std::cerr << "netcl-swd: duplicate source '" << arg
                    << "' (each positional source loads once, as its own tenant)\n";
          return 2;
        }
      }
      paths.push_back(arg);
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      print_usage();
      return 2;
    }
  }

  if (paths.empty()) {
    print_usage();
    return 2;
  }
  if (swd.max_tenants != 0 && paths.size() > swd.max_tenants) {
    std::cerr << "netcl-swd: " << paths.size() << " sources but --max-tenants "
              << swd.max_tenants << "\n";
    return 2;
  }

  // One device, one tenant per source, every load admission-controlled —
  // the same path runtime kLoadKernel requests take.
  const auto device_id = static_cast<std::uint16_t>(options.device_id);
  auto device = std::make_unique<netcl::sim::SwitchDevice>(device_id);
  device->set_max_tenants(swd.max_tenants);
  device->set_stage_limits(options.limits, options.base_stages);
  netcl::sim::TenantId next_tenant = 1;
  for (const std::string& path : paths) {
    std::ifstream file(path);
    if (!file) {
      std::cerr << "netcl-swd: cannot open '" << path << "'\n";
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    netcl::driver::CompileResult compiled =
        netcl::driver::compile_netcl(text.str(), options);
    if (!compiled.ok) {
      std::cerr << "netcl-swd: compile failed for '" << path << "':\n" << compiled.errors;
      return 1;
    }
    netcl::sim::ProgramArtifact artifact =
        netcl::driver::make_artifact(std::move(compiled), tenant_name(path));
    if (netcl::runtime::Error err = device->load_program(next_tenant, std::move(artifact))) {
      std::cerr << "netcl-swd: cannot load '" << path << "' as tenant " << next_tenant
                << ": " << err.message << "\n";
      return 1;
    }
    ++next_tenant;
  }

  // Runtime kernel loads (kLoadKernel) compile with the same options the
  // command line established (-D defines, stage limits, target).
  swd.compiler = netcl::driver::artifact_compiler(options);

  netcl::net::SwdServer server(std::move(device), swd);
  if (!server.valid()) {
    std::cerr << "netcl-swd: " << server.error() << "\n";
    return 1;
  }

  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  // Flight recorder (ISSUE 6): label this process's event stream, and let
  // SIGUSR2 request a postmortem dump (written by the poll loop, into
  // $NETCL_FLIGHT_DIR or the working directory).
  netcl::obs::FlightRecorder::instance().set_process_label("netcl-swd");
  netcl::obs::FlightRecorder::install_signal_handler();
  // Profiler (ISSUE 9): SIGUSR1 requests a folded-stack profile dump the
  // same way SIGUSR2 requests a flight dump. Installed even without
  // --profile so the signal is never fatal; the dump just reports 0 Hz.
  netcl::obs::Profiler::install_signal_handler();

  std::cout << "netcl-swd: device " << device_id << " ready (udp " << server.udp_port()
            << ", control " << server.control_port();
  if (server.metrics_port() != 0) std::cout << ", metrics " << server.metrics_port();
  std::cout << ") [" << server.device().admission().summary() << "]" << std::endl;
  for (const netcl::sim::TenantInfo& info : server.device().tenant_table()) {
    std::cout << "netcl-swd:   tenant " << info.id << " '" << info.name << "': "
              << info.stages_used << (info.stages_used == 1 ? " stage" : " stages")
              << ", worst " << info.usage << std::endl;
  }
  if (swd.profile_hz > 0) {
    std::cout << "netcl-swd: profiling at " << swd.profile_hz
              << " Hz (SIGUSR1 or kProfileDump writes .folded)" << std::endl;
  }
  for (const auto& [tenant, objective] : swd.slo_objectives) {
    std::cout << "netcl-swd:   slo tenant " << tenant << ": p99 "
              << objective.latency_threshold_ns << " ns, availability "
              << objective.availability_target << std::endl;
  }
  server.run();
  return 0;
}
