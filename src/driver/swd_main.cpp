// netcl-swd: the NetCL software device daemon.
//
//   netcl-swd [options] <source.ncl>
//     --device <id>        serve as device id (default 1)
//     --port <p>           UDP data-plane port (default 0 = kernel-assigned)
//     --control-port <p>   TCP control-plane port (default 0 = kernel-assigned)
//     -D NAME=VALUE        predefine an integer macro
//     --max-seconds <s>    exit after s wall-clock seconds (CI hard stop)
//     --generation <g>     report generation g in PONGs (default: derived
//                          from the wall clock, so restarts are detectable)
//     --idle-timeout <s>   reap control connections idle for s seconds
//                          (default 300; 0 disables)
//     --metrics-port <p>   serve a Prometheus text scrape endpoint on this
//                          plain-TCP port (0 = kernel-assigned; off when
//                          the flag is absent)
//     --quiet              suppress the shutdown stats line
//
// SIGUSR2 writes a flight-recorder postmortem (flightdump_netcl-swd_*.jsonl
// + .trace.json, into $NETCL_FLIGHT_DIR or the working directory); the
// kFlightDump control op ships the same events to a host instead.
//
// Compiles the NetCL-C source for the device (exactly what ncc does),
// loads the artifact into the sim::SwitchDevice execution engine, and
// serves NetCL packets on UDP plus control-plane requests on TCP. On
// startup it prints one parseable line:
//
//   netcl-swd: device <id> ready (udp <port>, control <port>)
//
// Exit codes: 0 clean shutdown (signal or --max-seconds), 1 compile/input/
// socket failure, 2 usage error.
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>

#include "driver/compiler.hpp"
#include "net/swd_server.hpp"
#include "obs/flightrec.hpp"

namespace {

netcl::net::SwdServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

void print_usage() {
  std::cerr << "usage: netcl-swd [--device N] [--port P] [--control-port P]\n"
               "                 [-D NAME=VALUE] [--max-seconds S] [--generation G]\n"
               "                 [--idle-timeout S] [--metrics-port P] [--quiet]\n"
               "                 <source.ncl>\n";
}

bool parse_number(const std::string& flag, const std::string& text, std::uint64_t& out) {
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return true;
  } catch (const std::exception&) {
    std::cerr << "netcl-swd: invalid number '" << text << "' for " << flag << "\n";
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  netcl::driver::CompileOptions options;
  netcl::net::SwdOptions swd;
  swd.verbose = true;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t value = 0;
    if (arg == "--device" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      options.device_id = static_cast<int>(value);
    } else if (arg == "--port" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      swd.udp_port = static_cast<std::uint16_t>(value);
    } else if (arg == "--control-port" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      swd.control_port = static_cast<std::uint16_t>(value);
    } else if (arg == "--max-seconds" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      swd.max_seconds = static_cast<double>(value);
    } else if (arg == "--generation" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      swd.generation = static_cast<std::uint32_t>(value);
    } else if (arg == "--idle-timeout" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      swd.idle_timeout_seconds = static_cast<double>(value);
    } else if (arg == "--metrics-port" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      swd.metrics_port = static_cast<int>(static_cast<std::uint16_t>(value));
    } else if (arg == "-D" && i + 1 < argc) {
      const std::string define = argv[++i];
      const std::size_t eq = define.find('=');
      if (eq == std::string::npos) {
        options.defines[define] = 1;
      } else {
        if (!parse_number("-D", define.substr(eq + 1), value)) return 2;
        options.defines[define.substr(0, eq)] = value;
      }
    } else if (arg == "--quiet") {
      swd.verbose = false;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      print_usage();
      return 2;
    }
  }

  if (path.empty()) {
    print_usage();
    return 2;
  }
  std::ifstream file(path);
  if (!file) {
    std::cerr << "netcl-swd: cannot open '" << path << "'\n";
    return 1;
  }
  std::ostringstream text;
  text << file.rdbuf();

  netcl::driver::CompileResult compiled =
      netcl::driver::compile_netcl(text.str(), options);
  if (!compiled.ok) {
    std::cerr << "netcl-swd: compile failed:\n" << compiled.errors;
    return 1;
  }
  const auto device_id = static_cast<std::uint16_t>(options.device_id);
  netcl::net::SwdServer server(netcl::driver::make_device(std::move(compiled), device_id),
                               swd);
  if (!server.valid()) {
    std::cerr << "netcl-swd: " << server.error() << "\n";
    return 1;
  }

  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  // Flight recorder (ISSUE 6): label this process's event stream, and let
  // SIGUSR2 request a postmortem dump (written by the poll loop, into
  // $NETCL_FLIGHT_DIR or the working directory).
  netcl::obs::FlightRecorder::instance().set_process_label("netcl-swd");
  netcl::obs::FlightRecorder::install_signal_handler();

  std::cout << "netcl-swd: device " << device_id << " ready (udp " << server.udp_port()
            << ", control " << server.control_port();
  if (server.metrics_port() != 0) std::cout << ", metrics " << server.metrics_port();
  std::cout << ")" << std::endl;
  server.run();
  return 0;
}
