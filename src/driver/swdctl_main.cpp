// netcl-ctl: operator CLI for a running netcl-swd daemon's kernel
// lifecycle (ISSUE 7). Talks the TCP control protocol; the daemon does the
// compiling, so this binary ships source bytes, not artifacts.
//
//   netcl-ctl [--host H] --control-port P load <tenant> <source.ncl>
//             [--name NAME] [--replace] [-D NAME=VALUE]
//   netcl-ctl [--host H] --control-port P unload <tenant>
//   netcl-ctl [--host H] --control-port P list
//   netcl-ctl [--host H] --control-port P profile [--text] [--no-file]
//
// `profile` asks the daemon for a folded-stack CPU profile (ISSUE 9): by
// default the daemon writes profile_netcl-swd_<n>.folded next to its
// flight dumps; --text streams the folded stacks to stdout instead
// (pipe into flamegraph.pl), and --no-file skips the daemon-side write.
//
// `load --replace` performs the daemon half of a hitless swap: the resident
// tenant's program is replaced without disturbing co-resident tenants
// (hosts replay their journals via DeviceConnection::resync afterwards).
//
// Exit codes: 0 success, 1 transport failure (daemon unreachable / timed
// out), 2 usage error, 3 the daemon rejected the operation (admission over
// budget, compile diagnostics, unknown tenant — the typed error body is
// printed in full).
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "net/control.hpp"

namespace {

void print_usage() {
  std::cerr
      << "usage: netcl-ctl [--host H] --control-port P load <tenant> <source.ncl>\n"
         "                 [--name NAME] [--replace] [-D NAME=VALUE]\n"
         "       netcl-ctl [--host H] --control-port P unload <tenant>\n"
         "       netcl-ctl [--host H] --control-port P list\n"
         "       netcl-ctl [--host H] --control-port P profile [--text] [--no-file]\n";
}

bool parse_number(const std::string& flag, const std::string& text, std::uint64_t& out) {
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return true;
  } catch (const std::exception&) {
    std::cerr << "netcl-ctl: invalid number '" << text << "' for " << flag << "\n";
    return false;
  }
}

int exit_code_for(const netcl::runtime::Error& err) {
  return err.kind == netcl::runtime::ErrorKind::kRejected ? 3 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t control_port = 0;
  std::string command;
  std::vector<std::string> operands;
  std::string name;
  bool replace = false;
  bool profile_text = false;
  bool profile_no_file = false;
  std::map<std::string, std::uint64_t> defines;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t value = 0;
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--control-port" && i + 1 < argc) {
      if (!parse_number(arg, argv[++i], value)) return 2;
      control_port = static_cast<std::uint16_t>(value);
    } else if (arg == "--name" && i + 1 < argc) {
      name = argv[++i];
    } else if (arg == "--replace") {
      replace = true;
    } else if (arg == "--text") {
      profile_text = true;
    } else if (arg == "--no-file") {
      profile_no_file = true;
    } else if (arg == "-D" && i + 1 < argc) {
      const std::string define = argv[++i];
      const std::size_t eq = define.find('=');
      if (eq == std::string::npos) {
        defines[define] = 1;
      } else {
        if (!parse_number("-D", define.substr(eq + 1), value)) return 2;
        defines[define.substr(0, eq)] = value;
      }
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      if (command.empty()) {
        command = arg;
      } else {
        operands.push_back(arg);
      }
    } else {
      std::cerr << "netcl-ctl: unknown option '" << arg << "'\n";
      print_usage();
      return 2;
    }
  }

  if (control_port == 0 || command.empty()) {
    print_usage();
    return 2;
  }

  netcl::net::ControlClient client(host, control_port);
  if (!client.connected() && !client.connect_now()) {
    std::cerr << "netcl-ctl: cannot connect to " << host << ":" << control_port << "\n";
    return 1;
  }

  if (command == "load") {
    if (operands.size() != 2) {
      print_usage();
      return 2;
    }
    std::uint64_t tenant = 0;
    if (!parse_number("tenant", operands[0], tenant)) return 2;
    std::ifstream file(operands[1]);
    if (!file) {
      std::cerr << "netcl-ctl: cannot open '" << operands[1] << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << file.rdbuf();
    if (name.empty()) {
      const std::size_t slash = operands[1].find_last_of('/');
      name = slash == std::string::npos ? operands[1] : operands[1].substr(slash + 1);
    }
    std::uint16_t stages = 0;
    std::string summary;
    const netcl::runtime::Error err =
        client.load_kernel(static_cast<std::uint32_t>(tenant), name, text.str(), defines,
                           replace, &stages, &summary);
    if (err) {
      std::cerr << "netcl-ctl: " << (replace ? "swap" : "load") << " rejected: "
                << err.message << "\n";
      return exit_code_for(err);
    }
    std::cout << "netcl-ctl: tenant " << tenant << " " << (replace ? "swapped" : "loaded")
              << " '" << name << "' (" << stages << (stages == 1 ? " stage" : " stages")
              << "); " << summary << "\n";
    return 0;
  }

  if (command == "unload") {
    if (operands.size() != 1) {
      print_usage();
      return 2;
    }
    std::uint64_t tenant = 0;
    if (!parse_number("tenant", operands[0], tenant)) return 2;
    const netcl::runtime::Error err = client.unload_kernel(static_cast<std::uint32_t>(tenant));
    if (err) {
      std::cerr << "netcl-ctl: unload rejected: " << err.message << "\n";
      return exit_code_for(err);
    }
    std::cout << "netcl-ctl: tenant " << tenant << " unloaded\n";
    return 0;
  }

  if (command == "list") {
    if (!operands.empty()) {
      print_usage();
      return 2;
    }
    std::vector<netcl::net::KernelInfo> kernels;
    if (const netcl::runtime::Error err = client.list_kernels(kernels)) {
      std::cerr << "netcl-ctl: list failed: " << err.message << "\n";
      return exit_code_for(err);
    }
    if (kernels.empty()) {
      std::cout << "no resident tenants\n";
      return 0;
    }
    for (const netcl::net::KernelInfo& info : kernels) {
      std::cout << "tenant " << info.tenant << " '" << info.name << "': "
                << info.stages_used << (info.stages_used == 1 ? " stage" : " stages")
                << ", computations [";
      for (std::size_t i = 0; i < info.computations.size(); ++i) {
        if (i > 0) std::cout << ", ";
        std::cout << info.computations[i];
      }
      std::cout << "], worst " << info.usage << ", packets "
                << info.packets_processed << ", kernels " << info.kernels_executed
                << ", drops " << info.drops_action << "\n";
    }
    return 0;
  }

  if (command == "profile") {
    if (!operands.empty()) {
      print_usage();
      return 2;
    }
    std::uint8_t flags = 0;
    if (!profile_no_file) flags |= netcl::net::kProfileWriteFile;
    if (profile_text) flags |= netcl::net::kProfileReturnText;
    netcl::net::ControlClient::ProfileDumpResult result;
    if (!client.profile_dump(flags, result)) {
      std::cerr << "netcl-ctl: profile dump failed: " << client.last_error().message
                << "\n";
      return 1;
    }
    // With --text the folded stacks go to stdout (flamegraph.pl-ready);
    // the human summary moves to stderr so the pipe stays clean.
    std::ostream& info = profile_text ? std::cerr : std::cout;
    if (result.hz == 0) {
      info << "netcl-ctl: profiler is off (start the daemon with --profile)\n";
    }
    info << "netcl-ctl: " << result.samples << " samples, " << result.distinct_stacks
         << " distinct stacks at " << result.hz << " Hz";
    if (!result.path.empty()) info << ", wrote " << result.path;
    info << "\n";
    if (profile_text) std::cout << result.folded;
    return 0;
  }

  std::cerr << "netcl-ctl: unknown command '" << command << "'\n";
  print_usage();
  return 2;
}
