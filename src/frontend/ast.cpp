#include "frontend/ast.hpp"

namespace netcl {

std::string to_string(ActionKind kind) {
  switch (kind) {
    case ActionKind::None: return "none";
    case ActionKind::Drop: return "drop";
    case ActionKind::SendToHost: return "send_to_host";
    case ActionKind::SendToDevice: return "send_to_device";
    case ActionKind::Multicast: return "multicast";
    case ActionKind::Reflect: return "reflect";
    case ActionKind::ReflectLong: return "reflect_long";
    case ActionKind::Pass: return "pass";
  }
  return "?";
}

std::string to_string(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Rem: return "%";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    case BinaryOp::And: return "&";
    case BinaryOp::Or: return "|";
    case BinaryOp::Xor: return "^";
    case BinaryOp::LogicalAnd: return "&&";
    case BinaryOp::LogicalOr: return "||";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
  }
  return "?";
}

std::optional<std::int64_t> evaluate_const_expr(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::IntLit:
      return static_cast<std::int64_t>(static_cast<const IntLitExpr&>(expr).value);
    case ExprKind::Unary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      const auto operand = evaluate_const_expr(*unary.operand);
      if (!operand.has_value()) return std::nullopt;
      switch (unary.op) {
        case UnaryOp::Neg: return -*operand;
        case UnaryOp::BitNot: return ~*operand;
        case UnaryOp::LogicalNot: return *operand == 0 ? 1 : 0;
        case UnaryOp::AddrOf: return std::nullopt;
      }
      return std::nullopt;
    }
    case ExprKind::Binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      const auto lhs = evaluate_const_expr(*binary.lhs);
      const auto rhs = evaluate_const_expr(*binary.rhs);
      if (!lhs.has_value() || !rhs.has_value()) return std::nullopt;
      switch (binary.op) {
        case BinaryOp::Add: return *lhs + *rhs;
        case BinaryOp::Sub: return *lhs - *rhs;
        case BinaryOp::Mul: return *lhs * *rhs;
        case BinaryOp::Div: return *rhs == 0 ? std::optional<std::int64_t>() : *lhs / *rhs;
        case BinaryOp::Rem: return *rhs == 0 ? std::optional<std::int64_t>() : *lhs % *rhs;
        case BinaryOp::Shl: return *lhs << (*rhs & 63);
        case BinaryOp::Shr: return *lhs >> (*rhs & 63);
        case BinaryOp::And: return *lhs & *rhs;
        case BinaryOp::Or: return *lhs | *rhs;
        case BinaryOp::Xor: return *lhs ^ *rhs;
        case BinaryOp::LogicalAnd: return (*lhs != 0 && *rhs != 0) ? 1 : 0;
        case BinaryOp::LogicalOr: return (*lhs != 0 || *rhs != 0) ? 1 : 0;
        case BinaryOp::Eq: return *lhs == *rhs ? 1 : 0;
        case BinaryOp::Ne: return *lhs != *rhs ? 1 : 0;
        case BinaryOp::Lt: return *lhs < *rhs ? 1 : 0;
        case BinaryOp::Le: return *lhs <= *rhs ? 1 : 0;
        case BinaryOp::Gt: return *lhs > *rhs ? 1 : 0;
        case BinaryOp::Ge: return *lhs >= *rhs ? 1 : 0;
      }
      return std::nullopt;
    }
    case ExprKind::Ternary: {
      const auto& ternary = static_cast<const TernaryExpr&>(expr);
      const auto cond = evaluate_const_expr(*ternary.cond);
      if (!cond.has_value()) return std::nullopt;
      return evaluate_const_expr(*cond != 0 ? *ternary.then_expr : *ternary.else_expr);
    }
    default:
      return std::nullopt;
  }
}

const FunctionDecl* Program::find_function(std::string_view name) const {
  for (const auto& fn : functions) {
    if (fn->name == name) return fn.get();
  }
  return nullptr;
}

const GlobalDecl* Program::find_global(std::string_view name) const {
  for (const auto& g : globals) {
    if (g->name == name) return g.get();
  }
  return nullptr;
}

std::vector<const FunctionDecl*> Program::kernels() const {
  std::vector<const FunctionDecl*> result;
  for (const auto& fn : functions) {
    if (fn->is_kernel) result.push_back(fn.get());
  }
  return result;
}

}  // namespace netcl
