// Abstract syntax tree for NetCL-C device code.
//
// The tree is produced by the Parser and annotated in place by Sema (types,
// resolved declarations, device-library call info). Ownership is by
// std::unique_ptr down the tree; non-owning back references (e.g.
// VarRefExpr::decl) point into the same Program and never outlive it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "frontend/type.hpp"
#include "support/source.hpp"

namespace netcl {

class Expr;
class Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

// ---------------------------------------------------------------------------
// Device library identification
// ---------------------------------------------------------------------------

enum class AtomicOpKind : std::uint8_t {
  Add, SAdd, Sub, SSub, Or, And, Xor, Inc, Dec, Min, Max, Cas,
};

enum class HashKind : std::uint8_t { Crc16, Crc32, Xor16, Identity };

enum class ActionKind : std::uint8_t {
  None,         // fell off the end: implicit pass()
  Drop,
  SendToHost,
  SendToDevice,
  Multicast,
  Reflect,
  ReflectLong,
  Pass,
};

[[nodiscard]] std::string to_string(ActionKind kind);

/// What a call expression resolved to: a user net function or one entry of
/// the `ncl::` device library.
enum class DeviceOp : std::uint8_t {
  None,       // user net function
  AtomicRMW,  // ncl::atomic_[cond_]op[_new]
  Lookup,     // ncl::lookup(table, key[, out])
  Hash,       // ncl::crc16 / crc32 / xor16 / identity, optional <W> slice
  SAdd,       // saturating add (pure, non-atomic)
  SSub,
  BitChk,     // ncl::bit_chk(v, bit) -> bool
  Rand,       // ncl::rand<uW>()
  Min,
  Max,
  Bswap,
  Clz,
  Action,     // declarative forwarding, Table II
};

struct DeviceCallInfo {
  DeviceOp op = DeviceOp::None;
  AtomicOpKind atomic_op = AtomicOpKind::Add;
  bool atomic_cond = false;  // ncl::atomic_cond_*: op applies only if cond != 0
  bool atomic_new = false;   // *_new: yields the post-operation memory value
  HashKind hash = HashKind::Crc16;
  ActionKind action = ActionKind::None;
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct Decl {
  std::string name;
  SourceLoc loc;
};

/// Kernel / net-function parameter. Scalars may be by-value or by-reference;
/// pointer parameters carry a _spec element count; array parameters keep
/// their declared extent (no array-to-pointer decay per §V-A).
struct ParamDecl : Decl {
  ScalarType type;
  bool by_ref = false;
  bool is_pointer = false;
  int spec = 1;  // element count (array extent, _spec value, or 1)
};

/// Local variable declared inside a function body. `array_size == 0` means
/// scalar. `type_is_auto` marks `auto` declarations whose type Sema infers.
struct LocalDecl : Decl {
  ScalarType type;
  int array_size = 0;
  bool type_is_auto = false;
  ExprPtr init;  // may be null (value then undefined, per §V-B)
};

struct FunctionDecl;

/// One entry of a _lookup_ array initializer, normalized by Sema.
struct LookupEntry {
  std::uint64_t key_lo = 0;
  std::uint64_t key_hi = 0;  // == key_lo for exact/set entries
  std::uint64_t value = 0;
};

/// Global (device) memory declaration: _net_ and/or _managed_, optionally
/// _lookup_, with an _at location set (empty = location-less, present on
/// every device compiled for).
struct GlobalDecl : Decl {
  ScalarType elem_type;
  std::vector<std::int64_t> dims;  // empty = scalar
  bool is_net = false;
  bool is_managed = false;
  bool is_lookup = false;
  LookupKind lookup_kind = LookupKind::Set;
  ScalarType key_type;    // for kv/rv elements
  ScalarType value_type;  // for kv/rv elements
  std::vector<std::uint16_t> locations;
  std::vector<LookupEntry> entries;  // lookup initializer, normalized

  [[nodiscard]] std::int64_t element_count() const {
    std::int64_t n = 1;
    for (const std::int64_t d : dims) n *= d;
    return n;
  }
};

/// A kernel (_kernel(c)) or net function (_net_).
struct FunctionDecl : Decl {
  bool is_kernel = false;
  int computation = 0;  // for kernels
  std::vector<std::uint16_t> locations;
  std::vector<ParamDecl> params;
  StmtPtr body;  // always a BlockStmt
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  IntLit,
  VarRef,
  Index,
  Unary,
  Binary,
  Ternary,
  Call,
  Builtin,
};

enum class UnaryOp : std::uint8_t { Neg, LogicalNot, BitNot, AddrOf };

enum class BinaryOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem,
  Shl, Shr,
  And, Or, Xor,
  LogicalAnd, LogicalOr,
  Eq, Ne, Lt, Le, Gt, Ge,
};

[[nodiscard]] std::string to_string(BinaryOp op);

/// device.id, msg.src, msg.dst, msg.from, msg.to (Table I builtins).
enum class BuiltinKind : std::uint8_t { DeviceId, MsgSrc, MsgDst, MsgFrom, MsgTo };

class Expr {
 public:
  ExprKind kind;
  SourceLoc loc;
  ScalarType type;  // set by Sema

  explicit Expr(ExprKind k, SourceLoc l) : kind(k), loc(l) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;
};

class IntLitExpr final : public Expr {
 public:
  std::uint64_t value;
  IntLitExpr(SourceLoc l, std::uint64_t v) : Expr(ExprKind::IntLit, l), value(v) {}
};

class VarRefExpr final : public Expr {
 public:
  std::string name;
  // Exactly one of these is set by Sema (or none for unresolved errors):
  const ParamDecl* param = nullptr;
  const LocalDecl* local = nullptr;
  const GlobalDecl* global = nullptr;
  VarRefExpr(SourceLoc l, std::string n) : Expr(ExprKind::VarRef, l), name(std::move(n)) {}
};

class IndexExpr final : public Expr {
 public:
  ExprPtr base;
  ExprPtr index;
  IndexExpr(SourceLoc l, ExprPtr b, ExprPtr i)
      : Expr(ExprKind::Index, l), base(std::move(b)), index(std::move(i)) {}
};

class UnaryExpr final : public Expr {
 public:
  UnaryOp op;
  ExprPtr operand;
  UnaryExpr(SourceLoc l, UnaryOp o, ExprPtr e)
      : Expr(ExprKind::Unary, l), op(o), operand(std::move(e)) {}
};

class BinaryExpr final : public Expr {
 public:
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
  BinaryExpr(SourceLoc l, BinaryOp o, ExprPtr a, ExprPtr b)
      : Expr(ExprKind::Binary, l), op(o), lhs(std::move(a)), rhs(std::move(b)) {}
};

class TernaryExpr final : public Expr {
 public:
  ExprPtr cond;
  ExprPtr then_expr;
  ExprPtr else_expr;
  TernaryExpr(SourceLoc l, ExprPtr c, ExprPtr t, ExprPtr e)
      : Expr(ExprKind::Ternary, l), cond(std::move(c)), then_expr(std::move(t)),
        else_expr(std::move(e)) {}
};

class CallExpr final : public Expr {
 public:
  std::string callee;            // spelled name, e.g. "ncl::atomic_or"
  std::vector<ExprPtr> args;
  int width_arg = 0;             // explicit <W> template argument, 0 if absent
  DeviceCallInfo device;         // resolved by Sema
  const FunctionDecl* net_callee = nullptr;  // for user net functions
  CallExpr(SourceLoc l, std::string name)
      : Expr(ExprKind::Call, l), callee(std::move(name)) {}
};

class BuiltinExpr final : public Expr {
 public:
  BuiltinKind builtin;
  BuiltinExpr(SourceLoc l, BuiltinKind b) : Expr(ExprKind::Builtin, l), builtin(b) {}
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  Block,
  Decl,
  Expr,
  Assign,
  If,
  For,
  Return,
};

class Stmt {
 public:
  StmtKind kind;
  SourceLoc loc;
  explicit Stmt(StmtKind k, SourceLoc l) : kind(k), loc(l) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;
};

class BlockStmt final : public Stmt {
 public:
  std::vector<StmtPtr> body;
  explicit BlockStmt(SourceLoc l) : Stmt(StmtKind::Block, l) {}
};

/// One declaration statement may introduce several locals
/// (`unsigned k = 2, v = 0;`).
class DeclStmt final : public Stmt {
 public:
  std::vector<std::unique_ptr<LocalDecl>> decls;
  explicit DeclStmt(SourceLoc l) : Stmt(StmtKind::Decl, l) {}
};

class ExprStmt final : public Stmt {
 public:
  ExprPtr expr;
  ExprStmt(SourceLoc l, ExprPtr e) : Stmt(StmtKind::Expr, l), expr(std::move(e)) {}
};

/// `target op= value`. `op == std::nullopt` encodes plain assignment. The
/// parser desugars `x++` / `x--` to `x += 1` / `x -= 1`.
class AssignStmt final : public Stmt {
 public:
  ExprPtr target;
  bool compound = false;
  BinaryOp op = BinaryOp::Add;  // meaningful only when compound
  ExprPtr value;
  AssignStmt(SourceLoc l, ExprPtr t, ExprPtr v)
      : Stmt(StmtKind::Assign, l), target(std::move(t)), value(std::move(v)) {}
};

class IfStmt final : public Stmt {
 public:
  ExprPtr cond;
  StmtPtr then_stmt;
  StmtPtr else_stmt;  // may be null
  explicit IfStmt(SourceLoc l) : Stmt(StmtKind::If, l) {}
};

class ForStmt final : public Stmt {
 public:
  StmtPtr init;   // DeclStmt or AssignStmt, may be null
  ExprPtr cond;   // may be null (rejected later: must be unrollable)
  StmtPtr step;   // AssignStmt, may be null
  StmtPtr body;
  explicit ForStmt(SourceLoc l) : Stmt(StmtKind::For, l) {}
};

class ReturnStmt final : public Stmt {
 public:
  ExprPtr value;  // null for bare `return;`
  explicit ReturnStmt(SourceLoc l) : Stmt(StmtKind::Return, l) {}
};

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

/// Evaluates a constant integer expression (literals, unary -/~/!, binary
/// arithmetic). Returns std::nullopt if the expression is not constant.
/// Used for array extents and by the loop unroller.
[[nodiscard]] std::optional<std::int64_t> evaluate_const_expr(const Expr& expr);

/// A parsed translation unit: the device-side portion of one NetCL program.
struct Program {
  std::vector<std::unique_ptr<GlobalDecl>> globals;
  std::vector<std::unique_ptr<FunctionDecl>> functions;

  [[nodiscard]] const FunctionDecl* find_function(std::string_view name) const;
  [[nodiscard]] const GlobalDecl* find_global(std::string_view name) const;
  [[nodiscard]] std::vector<const FunctionDecl*> kernels() const;
};

}  // namespace netcl
