#include "frontend/lexer.hpp"

#include <cctype>
#include <string>

namespace netcl {

Lexer::Lexer(const SourceBuffer& buffer, DiagnosticEngine& diags, DefineMap defines)
    : text_(buffer.text()), diags_(diags), defines_(std::move(defines)) {
  injected_.reserve(defines_.size());
  for (const auto& [name, value] : defines_) injected_.insert(name);
}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> tokens;
  for (;;) {
    Token token = next();
    const bool done = token.is(TokenKind::End);
    tokens.push_back(std::move(token));
    if (done) break;
  }
  return tokens;
}

char Lexer::peek(int ahead) const {
  const std::size_t index = pos_ + static_cast<std::size_t>(ahead);
  return index < text_.size() ? text_[index] : '\0';
}

char Lexer::advance() {
  const char c = text_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

void Lexer::skip_whitespace_and_comments() {
  for (;;) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0') advance();
    } else if (c == '/' && peek(1) == '*') {
      const SourceLoc loc = location();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          diags_.error(loc, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::lex_number(SourceLoc loc) {
  std::string spelling;
  std::uint64_t value = 0;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    spelling.push_back(advance());
    spelling.push_back(advance());
    while (std::isxdigit(static_cast<unsigned char>(peek())) != 0) {
      const char c = advance();
      spelling.push_back(c);
      const int digit = std::isdigit(static_cast<unsigned char>(c)) != 0
                            ? c - '0'
                            : std::tolower(static_cast<unsigned char>(c)) - 'a' + 10;
      value = value * 16 + static_cast<std::uint64_t>(digit);
    }
  } else if (peek() == '0' && (peek(1) == 'b' || peek(1) == 'B')) {
    spelling.push_back(advance());
    spelling.push_back(advance());
    while (peek() == '0' || peek() == '1') {
      const char c = advance();
      spelling.push_back(c);
      value = value * 2 + static_cast<std::uint64_t>(c - '0');
    }
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      const char c = advance();
      spelling.push_back(c);
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
  }
  // Swallow integer suffixes (u, U, l, L, combinations).
  while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L') {
    spelling.push_back(advance());
  }
  return Token{TokenKind::IntLiteral, loc, std::move(spelling), value};
}

Token Lexer::lex_identifier(SourceLoc loc) {
  std::string spelling;
  while (std::isalnum(static_cast<unsigned char>(peek())) != 0 || peek() == '_') {
    spelling.push_back(advance());
  }
  const TokenKind kind = keyword_kind(spelling);
  if (kind == TokenKind::Identifier) {
    if (const auto it = defines_.find(spelling); it != defines_.end()) {
      return Token{TokenKind::IntLiteral, loc, std::move(spelling), it->second};
    }
  }
  return Token{kind, loc, std::move(spelling), 0};
}

void Lexer::lex_directive(SourceLoc loc) {
  advance();  // '#'
  std::string directive;
  while (std::isalpha(static_cast<unsigned char>(peek())) != 0) directive.push_back(advance());
  if (directive != "define") {
    diags_.error(loc, "unsupported preprocessor directive '#" + directive + "'");
    while (peek() != '\n' && peek() != '\0') advance();
    return;
  }
  while (peek() == ' ' || peek() == '\t') advance();
  std::string name;
  while (std::isalnum(static_cast<unsigned char>(peek())) != 0 || peek() == '_') {
    name.push_back(advance());
  }
  while (peek() == ' ' || peek() == '\t') advance();
  if (name.empty() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
    diags_.error(loc, "#define requires a name and an integer value");
    while (peek() != '\n' && peek() != '\0') advance();
    return;
  }
  const Token value = lex_number(location());
  // An in-source #define is the kernel's baked-in default; a driver-injected
  // definition of the same name (ncc -D, per-tenant load defines) wins.
  if (injected_.count(name) == 0) defines_[name] = value.value;
}

Token Lexer::lex_char_literal(SourceLoc loc) {
  advance();  // opening quote
  std::uint64_t value = 0;
  if (peek() == '\\') {
    advance();
    switch (const char esc = advance(); esc) {
      case 'n': value = '\n'; break;
      case 't': value = '\t'; break;
      case '0': value = 0; break;
      case '\\': value = '\\'; break;
      case '\'': value = '\''; break;
      default:
        diags_.error(loc, "unknown escape sequence in character literal");
        value = static_cast<std::uint64_t>(esc);
        break;
    }
  } else if (peek() != '\0') {
    value = static_cast<std::uint64_t>(advance());
  }
  if (!match('\'')) diags_.error(loc, "unterminated character literal");
  return Token{TokenKind::CharLiteral, loc, "", value};
}

Token Lexer::next() {
  skip_whitespace_and_comments();
  const SourceLoc loc = location();
  const char c = peek();
  if (c == '\0') return Token{TokenKind::End, loc, "", 0};
  if (c == '#') {
    lex_directive(loc);
    return next();
  }
  if (std::isdigit(static_cast<unsigned char>(c)) != 0) return lex_number(loc);
  if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') return lex_identifier(loc);
  if (c == '\'') return lex_char_literal(loc);

  advance();
  auto simple = [&](TokenKind kind) { return Token{kind, loc, "", 0}; };
  switch (c) {
    case '(': return simple(TokenKind::LParen);
    case ')': return simple(TokenKind::RParen);
    case '{': return simple(TokenKind::LBrace);
    case '}': return simple(TokenKind::RBrace);
    case '[': return simple(TokenKind::LBracket);
    case ']': return simple(TokenKind::RBracket);
    case ',': return simple(TokenKind::Comma);
    case ';': return simple(TokenKind::Semicolon);
    case '?': return simple(TokenKind::Question);
    case '~': return simple(TokenKind::Tilde);
    case '.': return simple(TokenKind::Dot);
    case ':': return simple(match(':') ? TokenKind::ColonColon : TokenKind::Colon);
    case '+':
      if (match('+')) return simple(TokenKind::PlusPlus);
      return simple(match('=') ? TokenKind::PlusEqual : TokenKind::Plus);
    case '-':
      if (match('-')) return simple(TokenKind::MinusMinus);
      if (match('>')) return simple(TokenKind::Arrow);
      return simple(match('=') ? TokenKind::MinusEqual : TokenKind::Minus);
    case '*': return simple(match('=') ? TokenKind::StarEqual : TokenKind::Star);
    case '/': return simple(match('=') ? TokenKind::SlashEqual : TokenKind::Slash);
    case '%': return simple(match('=') ? TokenKind::PercentEqual : TokenKind::Percent);
    case '^': return simple(match('=') ? TokenKind::CaretEqual : TokenKind::Caret);
    case '!': return simple(match('=') ? TokenKind::BangEqual : TokenKind::Bang);
    case '=': return simple(match('=') ? TokenKind::EqualEqual : TokenKind::Equal);
    case '&':
      if (match('&')) return simple(TokenKind::AmpAmp);
      return simple(match('=') ? TokenKind::AmpEqual : TokenKind::Amp);
    case '|':
      if (match('|')) return simple(TokenKind::PipePipe);
      return simple(match('=') ? TokenKind::PipeEqual : TokenKind::Pipe);
    case '<':
      if (match('<')) return simple(match('=') ? TokenKind::LessLessEqual : TokenKind::LessLess);
      return simple(match('=') ? TokenKind::LessEqual : TokenKind::Less);
    case '>':
      if (match('>')) {
        return simple(match('=') ? TokenKind::GreaterGreaterEqual : TokenKind::GreaterGreater);
      }
      return simple(match('=') ? TokenKind::GreaterEqual : TokenKind::Greater);
    default:
      diags_.error(loc, std::string("unexpected character '") + c + "'");
      return next();
  }
}

}  // namespace netcl
