// Hand-written lexer for NetCL-C.
//
// Besides plain tokens the lexer understands `#define NAME <int>` object
// macros (the paper's applications configure themselves with SLOT_SIZE,
// CMS_HASHES, ... this way) and substitutes defined names with integer
// literal tokens. Additional definitions may be injected by the driver
// (-D style); injected definitions take precedence over in-source
// `#define`s, so a kernel's baked-in default (`#define COMP 1`) can be
// overridden per tenant at load time (ISSUE 7).
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "frontend/token.hpp"
#include "support/diagnostics.hpp"

namespace netcl {

using DefineMap = std::unordered_map<std::string, std::uint64_t>;

class Lexer {
 public:
  Lexer(const SourceBuffer& buffer, DiagnosticEngine& diags, DefineMap defines = {});

  /// Lexes the whole buffer. The returned vector always ends with an End
  /// token. Lexical errors are reported to the DiagnosticEngine and the
  /// offending characters skipped.
  [[nodiscard]] std::vector<Token> lex_all();

 private:
  [[nodiscard]] Token next();
  [[nodiscard]] char peek(int ahead = 0) const;
  char advance();
  [[nodiscard]] bool match(char expected);
  void skip_whitespace_and_comments();
  [[nodiscard]] SourceLoc location() const { return {line_, column_}; }

  Token lex_number(SourceLoc loc);
  Token lex_identifier(SourceLoc loc);
  Token lex_char_literal(SourceLoc loc);
  void lex_directive(SourceLoc loc);

  std::string_view text_;
  DiagnosticEngine& diags_;
  DefineMap defines_;
  /// Names seeded through the constructor (driver -D); a later in-source
  /// #define of the same name is ignored, command line wins.
  std::unordered_set<std::string> injected_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
};

}  // namespace netcl
