#include "frontend/parser.hpp"

#include <utility>

namespace netcl {

Parser::Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
    : tokens_(std::move(tokens)), diags_(diags) {}

const Token& Parser::peek(int ahead) const {
  const std::size_t index = pos_ + static_cast<std::size_t>(ahead);
  return index < tokens_.size() ? tokens_[index] : tokens_.back();
}

const Token& Parser::advance() {
  const Token& token = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return token;
}

bool Parser::accept(TokenKind kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind kind, const char* context) {
  if (accept(kind)) return true;
  diags_.error(peek().loc, std::string("expected '") + std::string(to_string(kind)) + "' " +
                               context + ", found '" +
                               (peek().kind == TokenKind::Identifier
                                    ? peek().text
                                    : std::string(to_string(peek().kind))) +
                               "'");
  return false;
}

void Parser::synchronize_to_decl() {
  while (!check(TokenKind::End)) {
    if (accept(TokenKind::Semicolon)) return;
    if (check(TokenKind::RBrace)) {
      advance();
      return;
    }
    advance();
  }
}

void Parser::synchronize_to_stmt() {
  while (!check(TokenKind::End) && !check(TokenKind::RBrace)) {
    if (accept(TokenKind::Semicolon)) return;
    advance();
  }
}

// ---------------------------------------------------------------------------
// Specifiers and types
// ---------------------------------------------------------------------------

Parser::Specifiers Parser::parse_specifiers() {
  Specifiers specs;
  specs.loc = peek().loc;
  for (;;) {
    if (accept(TokenKind::KwStatic) || accept(TokenKind::KwConst)) continue;
    if (check(TokenKind::KwKernel)) {
      advance();
      specs.is_kernel = true;
      expect(TokenKind::LParen, "after _kernel");
      if (check(TokenKind::IntLiteral)) {
        specs.computation = static_cast<int>(advance().value);
      } else {
        diags_.error(peek().loc, "_kernel requires a computation id");
      }
      expect(TokenKind::RParen, "after computation id");
    } else if (accept(TokenKind::KwNet)) {
      specs.is_net = true;
    } else if (accept(TokenKind::KwManaged)) {
      specs.is_managed = true;
    } else if (accept(TokenKind::KwLookup)) {
      specs.is_lookup = true;
    } else if (check(TokenKind::KwAt)) {
      advance();
      specs.has_at = true;
      expect(TokenKind::LParen, "after _at");
      do {
        if (check(TokenKind::IntLiteral)) {
          specs.locations.push_back(static_cast<std::uint16_t>(advance().value));
        } else {
          diags_.error(peek().loc, "_at requires integer device ids");
          break;
        }
      } while (accept(TokenKind::Comma));
      expect(TokenKind::RParen, "after _at location list");
    } else {
      break;
    }
  }
  return specs;
}

bool Parser::at_type_start() const {
  switch (peek().kind) {
    case TokenKind::KwBool:
    case TokenKind::KwChar:
    case TokenKind::KwInt:
    case TokenKind::KwUnsigned:
    case TokenKind::KwSigned:
    case TokenKind::KwShort:
    case TokenKind::KwLong:
    case TokenKind::KwVoid:
      return true;
    case TokenKind::Identifier: {
      if (peek().text == "ncl" && peek(1).is(TokenKind::ColonColon) &&
          (peek(2).is_identifier("kv") || peek(2).is_identifier("rv"))) {
        return true;
      }
      ScalarType ignored;
      // A type alias only starts a declaration when followed by a
      // declarator, never by an operator or '('.
      return scalar_type_from_name(peek().text, ignored) &&
             (peek(1).is(TokenKind::Identifier) || peek(1).is(TokenKind::Star) ||
              peek(1).is(TokenKind::Amp) || peek(1).is(TokenKind::KwSpec));
    }
    default:
      return false;
  }
}

Parser::ParsedType Parser::parse_type() {
  ParsedType result;
  const SourceLoc loc = peek().loc;
  switch (peek().kind) {
    case TokenKind::KwVoid:
      advance();
      result.is_void = true;
      result.valid = true;
      return result;
    case TokenKind::KwBool:
      advance();
      result.scalar = kBool;
      result.valid = true;
      return result;
    case TokenKind::KwChar:
      advance();
      result.scalar = kU8;
      result.valid = true;
      return result;
    case TokenKind::KwInt:
      advance();
      result.scalar = kI32;
      result.valid = true;
      return result;
    case TokenKind::KwShort:
      advance();
      accept(TokenKind::KwInt);
      result.scalar = kI16;
      result.valid = true;
      return result;
    case TokenKind::KwLong:
      advance();
      accept(TokenKind::KwLong);
      accept(TokenKind::KwInt);
      result.scalar = kI64;
      result.valid = true;
      return result;
    case TokenKind::KwSigned:
      advance();
      if (accept(TokenKind::KwChar)) {
        result.scalar = kI8;
      } else if (accept(TokenKind::KwShort)) {
        accept(TokenKind::KwInt);
        result.scalar = kI16;
      } else if (accept(TokenKind::KwLong)) {
        accept(TokenKind::KwLong);
        accept(TokenKind::KwInt);
        result.scalar = kI64;
      } else {
        accept(TokenKind::KwInt);
        result.scalar = kI32;
      }
      result.valid = true;
      return result;
    case TokenKind::KwUnsigned:
      advance();
      if (accept(TokenKind::KwChar)) {
        result.scalar = kU8;
      } else if (accept(TokenKind::KwShort)) {
        accept(TokenKind::KwInt);
        result.scalar = kU16;
      } else if (accept(TokenKind::KwLong)) {
        accept(TokenKind::KwLong);
        accept(TokenKind::KwInt);
        result.scalar = kU64;
      } else {
        accept(TokenKind::KwInt);
        result.scalar = kU32;
      }
      result.valid = true;
      return result;
    case TokenKind::Identifier: {
      if (peek().text == "ncl" && peek(1).is(TokenKind::ColonColon)) {
        advance();  // ncl
        advance();  // ::
        if (!check(TokenKind::Identifier)) {
          diags_.error(loc, "expected 'kv' or 'rv' after 'ncl::'");
          return result;
        }
        const std::string record = advance().text;
        if (record != "kv" && record != "rv") {
          diags_.error(loc, "unknown ncl type 'ncl::" + record + "'");
          return result;
        }
        result.is_lookup_record = true;
        result.lookup_kind = record == "kv" ? LookupKind::Exact : LookupKind::Range;
        expect(TokenKind::Less, "after lookup record type");
        const ParsedType key = parse_type();
        expect(TokenKind::Comma, "between lookup record type arguments");
        const ParsedType value = parse_type();
        expect(TokenKind::Greater, "after lookup record type arguments");
        if (!key.valid || !value.valid || key.is_lookup_record || value.is_lookup_record ||
            key.is_void || value.is_void) {
          diags_.error(loc, "lookup record type arguments must be scalar types");
          return result;
        }
        result.key_type = key.scalar;
        result.value_type = value.scalar;
        result.scalar = value.scalar;
        result.valid = true;
        return result;
      }
      ScalarType scalar;
      if (scalar_type_from_name(peek().text, scalar)) {
        advance();
        result.scalar = scalar;
        result.valid = true;
        return result;
      }
      diags_.error(loc, "unknown type '" + peek().text + "'");
      return result;
    }
    default:
      diags_.error(loc, "expected a type");
      return result;
  }
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

Program Parser::parse_program() {
  Program program;
  while (!check(TokenKind::End)) {
    parse_top_level_decl(program);
  }
  return program;
}

void Parser::parse_top_level_decl(Program& program) {
  const Specifiers specs = parse_specifiers();
  const SourceLoc loc = peek().loc;

  if (check(TokenKind::KwVoid)) {
    advance();
    if (!check(TokenKind::Identifier)) {
      diags_.error(loc, "expected function name after 'void'");
      synchronize_to_decl();
      return;
    }
    std::string name = advance().text;
    auto fn = parse_function(specs, loc, std::move(name));
    if (fn != nullptr) program.functions.push_back(std::move(fn));
    return;
  }

  const ParsedType type = parse_type();
  if (!type.valid) {
    synchronize_to_decl();
    return;
  }
  // One or more comma-separated declarators.
  do {
    if (!check(TokenKind::Identifier)) {
      diags_.error(peek().loc, "expected declarator name");
      synchronize_to_decl();
      return;
    }
    std::string name = advance().text;
    auto global = parse_global(specs, type, loc, std::move(name));
    if (global != nullptr) program.globals.push_back(std::move(global));
  } while (accept(TokenKind::Comma));
  expect(TokenKind::Semicolon, "after global declaration");
}

std::unique_ptr<FunctionDecl> Parser::parse_function(const Specifiers& specs, SourceLoc loc,
                                                     std::string name) {
  auto fn = std::make_unique<FunctionDecl>();
  fn->name = std::move(name);
  fn->loc = loc;
  fn->is_kernel = specs.is_kernel;
  fn->computation = specs.computation;
  fn->locations = specs.locations;
  if (!specs.is_kernel && !specs.is_net) {
    diags_.error(loc, "function '" + fn->name + "' must be declared _kernel(c) or _net_");
  }
  if (specs.is_kernel && specs.is_net) {
    diags_.error(loc, "'" + fn->name + "' cannot be both _kernel and _net_");
  }
  if (specs.is_lookup || specs.is_managed) {
    diags_.error(loc, "_lookup_/_managed_ do not apply to functions");
  }

  expect(TokenKind::LParen, "after function name");
  if (!check(TokenKind::RParen)) {
    do {
      fn->params.push_back(parse_param());
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after parameter list");
  fn->body = parse_block();
  return fn;
}

ParamDecl Parser::parse_param() {
  ParamDecl param;
  param.loc = peek().loc;
  const ParsedType type = parse_type();
  if (!type.valid || type.is_void || type.is_lookup_record) {
    diags_.error(param.loc, "parameters must have fundamental scalar types");
  }
  param.type = type.scalar;
  if (check(TokenKind::KwSpec)) {
    advance();
    expect(TokenKind::LParen, "after _spec");
    const ExprPtr extent = parse_expr();
    if (const auto value = evaluate_const_expr(*extent); value.has_value()) {
      param.spec = static_cast<int>(*value);
    } else {
      diags_.error(extent->loc, "_spec requires an integer element count");
    }
    expect(TokenKind::RParen, "after _spec value");
  }
  if (accept(TokenKind::Star)) {
    param.is_pointer = true;
  } else if (accept(TokenKind::Amp)) {
    param.by_ref = true;
  }
  if (check(TokenKind::Identifier)) {
    param.name = advance().text;
  } else {
    diags_.error(peek().loc, "expected parameter name");
  }
  if (accept(TokenKind::LBracket)) {
    const ExprPtr extent = parse_expr();
    if (const auto value = evaluate_const_expr(*extent); value.has_value()) {
      param.spec = static_cast<int>(*value);
      param.is_pointer = true;  // arrays behave like sized pointers
    } else {
      diags_.error(extent->loc, "array parameters require a constant extent");
    }
    expect(TokenKind::RBracket, "after array extent");
  }
  return param;
}

std::unique_ptr<GlobalDecl> Parser::parse_global(const Specifiers& specs, const ParsedType& type,
                                                 SourceLoc loc, std::string name) {
  auto global = std::make_unique<GlobalDecl>();
  global->name = std::move(name);
  global->loc = loc;
  global->is_net = specs.is_net;
  global->is_managed = specs.is_managed;
  global->is_lookup = specs.is_lookup;
  global->locations = specs.locations;
  global->elem_type = type.scalar;
  if (type.is_lookup_record) {
    global->lookup_kind = type.lookup_kind;
    global->key_type = type.key_type;
    global->value_type = type.value_type;
  }

  if (specs.is_kernel) {
    diags_.error(loc, "_kernel does not apply to memory declarations");
  }
  if (!specs.is_net && !specs.is_managed) {
    diags_.error(loc, "global memory '" + global->name + "' must be _net_ or _managed_");
  }
  if (type.is_lookup_record && !specs.is_lookup) {
    diags_.error(loc, "kv/rv element types are only allowed in _lookup_ arrays");
  }
  if (type.is_void) {
    diags_.error(loc, "global memory cannot have void type");
  }

  bool size_from_init = false;
  while (accept(TokenKind::LBracket)) {
    if (check(TokenKind::RBracket)) {
      size_from_init = true;  // `cache[] = {...}`
      global->dims.push_back(0);
    } else {
      const ExprPtr extent = parse_expr();
      const auto value = evaluate_const_expr(*extent);
      if (value.has_value()) {
        global->dims.push_back(*value);
      } else {
        diags_.error(extent->loc, "array extents must be integer constants");
      }
    }
    expect(TokenKind::RBracket, "after array extent");
  }

  if (global->is_lookup && global->dims.empty()) {
    diags_.error(loc, "_lookup_ memory must be an array");
  }
  if (global->is_lookup && global->dims.size() > 1) {
    diags_.error(loc, "_lookup_ arrays must be one-dimensional");
  }

  if (accept(TokenKind::Equal)) {
    if (!global->is_lookup) {
      diags_.error(peek().loc, "only _lookup_ arrays may have initializers "
                               "(global memory is zero-initialized)");
      // Skip the initializer for recovery.
      int depth = 0;
      while (!check(TokenKind::End)) {
        if (check(TokenKind::LBrace)) ++depth;
        if (check(TokenKind::RBrace) && --depth == 0) {
          advance();
          break;
        }
        if (depth == 0 && check(TokenKind::Semicolon)) break;
        advance();
      }
    } else {
      parse_lookup_initializer(*global);
    }
  }
  if (size_from_init) {
    global->dims[0] = static_cast<std::int64_t>(global->entries.size());
    if (global->entries.empty()) {
      diags_.error(loc, "unsized lookup array requires a non-empty initializer");
    }
  }
  return global;
}

void Parser::parse_lookup_initializer(GlobalDecl& global) {
  // Accepts {e0, e1, ...} where each entry is:
  //   Set:   INT
  //   Exact: {K, V}
  //   Range: {{LO, HI}, V}
  auto parse_int = [&]() -> std::uint64_t {
    bool negate = accept(TokenKind::Minus);
    if (!check(TokenKind::IntLiteral) && !check(TokenKind::CharLiteral)) {
      diags_.error(peek().loc, "lookup initializer entries must be integer constants");
      return 0;
    }
    const std::uint64_t v = advance().value;
    return negate ? static_cast<std::uint64_t>(-static_cast<std::int64_t>(v)) : v;
  };

  if (!expect(TokenKind::LBrace, "to begin lookup initializer")) return;
  if (accept(TokenKind::RBrace)) return;
  do {
    LookupEntry entry;
    switch (global.lookup_kind) {
      case LookupKind::Set:
        entry.key_lo = entry.key_hi = parse_int();
        entry.value = 1;
        break;
      case LookupKind::Exact:
        expect(TokenKind::LBrace, "to begin kv entry");
        entry.key_lo = entry.key_hi = parse_int();
        expect(TokenKind::Comma, "between key and value");
        entry.value = parse_int();
        expect(TokenKind::RBrace, "after kv entry");
        break;
      case LookupKind::Range:
        expect(TokenKind::LBrace, "to begin rv entry");
        expect(TokenKind::LBrace, "to begin range");
        entry.key_lo = parse_int();
        expect(TokenKind::Comma, "between range bounds");
        entry.key_hi = parse_int();
        expect(TokenKind::RBrace, "after range");
        expect(TokenKind::Comma, "between range and value");
        entry.value = parse_int();
        expect(TokenKind::RBrace, "after rv entry");
        break;
    }
    global.entries.push_back(entry);
  } while (accept(TokenKind::Comma) && !check(TokenKind::RBrace));
  expect(TokenKind::RBrace, "to end lookup initializer");
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

StmtPtr Parser::parse_block() {
  const SourceLoc loc = peek().loc;
  auto block = std::make_unique<BlockStmt>(loc);
  if (!expect(TokenKind::LBrace, "to begin block")) return block;
  while (!check(TokenKind::RBrace) && !check(TokenKind::End)) {
    StmtPtr stmt = parse_statement();
    if (stmt != nullptr) block->body.push_back(std::move(stmt));
  }
  expect(TokenKind::RBrace, "to end block");
  return block;
}

StmtPtr Parser::parse_statement() {
  switch (peek().kind) {
    case TokenKind::LBrace:
      return parse_block();
    case TokenKind::KwIf:
      return parse_if();
    case TokenKind::KwFor:
      return parse_for();
    case TokenKind::KwReturn:
      return parse_return();
    case TokenKind::KwWhile:
      diags_.error(peek().loc, "while loops are not supported in device code; "
                               "use a fully unrollable for loop");
      synchronize_to_stmt();
      return nullptr;
    case TokenKind::KwGoto:
      diags_.error(peek().loc, "goto is not allowed in device code");
      synchronize_to_stmt();
      return nullptr;
    case TokenKind::KwBreak:
    case TokenKind::KwContinue:
      diags_.error(peek().loc, "break/continue are not supported in device code");
      synchronize_to_stmt();
      return nullptr;
    case TokenKind::Semicolon:
      advance();
      return nullptr;
    default: {
      StmtPtr stmt = parse_simple_statement();
      expect(TokenKind::Semicolon, "after statement");
      return stmt;
    }
  }
}

StmtPtr Parser::parse_simple_statement() {
  if (check(TokenKind::KwAuto) || at_type_start()) return parse_decl_statement();
  return parse_expr_or_assign_statement();
}

StmtPtr Parser::parse_decl_statement() {
  const SourceLoc loc = peek().loc;
  auto stmt = std::make_unique<DeclStmt>(loc);

  bool is_auto = false;
  ScalarType type = kI32;
  if (accept(TokenKind::KwAuto)) {
    is_auto = true;
  } else {
    const ParsedType parsed = parse_type();
    if (!parsed.valid || parsed.is_void || parsed.is_lookup_record) {
      diags_.error(loc, "local variables must have fundamental scalar types");
    } else {
      type = parsed.scalar;
    }
  }

  do {
    auto decl = std::make_unique<LocalDecl>();
    decl->loc = peek().loc;
    decl->type = type;
    decl->type_is_auto = is_auto;
    if (check(TokenKind::Identifier)) {
      decl->name = advance().text;
    } else {
      diags_.error(peek().loc, "expected local variable name");
      synchronize_to_stmt();
      return stmt;
    }
    if (accept(TokenKind::LBracket)) {
      const ExprPtr extent = parse_expr();
      if (const auto value = evaluate_const_expr(*extent); value.has_value() && *value > 0) {
        decl->array_size = static_cast<int>(*value);
      } else {
        diags_.error(decl->loc, "local array extents must be positive integer constants");
      }
      expect(TokenKind::RBracket, "after local array extent");
      if (accept(TokenKind::LBracket)) {
        diags_.error(decl->loc, "local arrays must be one-dimensional");
        (void)parse_expr();
        expect(TokenKind::RBracket, "after local array extent");
      }
    }
    if (accept(TokenKind::Equal)) decl->init = parse_expr();
    stmt->decls.push_back(std::move(decl));
  } while (accept(TokenKind::Comma));
  return stmt;
}

StmtPtr Parser::parse_expr_or_assign_statement() {
  const SourceLoc loc = peek().loc;
  // Prefix increment/decrement.
  if (check(TokenKind::PlusPlus) || check(TokenKind::MinusMinus)) {
    const bool inc = advance().kind == TokenKind::PlusPlus;
    ExprPtr target = parse_postfix();
    auto assign = std::make_unique<AssignStmt>(loc, std::move(target),
                                               std::make_unique<IntLitExpr>(loc, 1));
    assign->compound = true;
    assign->op = inc ? BinaryOp::Add : BinaryOp::Sub;
    return assign;
  }

  ExprPtr expr = parse_expr();
  auto make_compound = [&](BinaryOp op) -> StmtPtr {
    advance();
    auto assign = std::make_unique<AssignStmt>(loc, std::move(expr), parse_expr());
    assign->compound = true;
    assign->op = op;
    return assign;
  };
  switch (peek().kind) {
    case TokenKind::Equal: {
      advance();
      return std::make_unique<AssignStmt>(loc, std::move(expr), parse_expr());
    }
    case TokenKind::PlusEqual: return make_compound(BinaryOp::Add);
    case TokenKind::MinusEqual: return make_compound(BinaryOp::Sub);
    case TokenKind::StarEqual: return make_compound(BinaryOp::Mul);
    case TokenKind::SlashEqual: return make_compound(BinaryOp::Div);
    case TokenKind::PercentEqual: return make_compound(BinaryOp::Rem);
    case TokenKind::AmpEqual: return make_compound(BinaryOp::And);
    case TokenKind::PipeEqual: return make_compound(BinaryOp::Or);
    case TokenKind::CaretEqual: return make_compound(BinaryOp::Xor);
    case TokenKind::LessLessEqual: return make_compound(BinaryOp::Shl);
    case TokenKind::GreaterGreaterEqual: return make_compound(BinaryOp::Shr);
    case TokenKind::PlusPlus:
    case TokenKind::MinusMinus: {
      const bool inc = advance().kind == TokenKind::PlusPlus;
      auto assign = std::make_unique<AssignStmt>(loc, std::move(expr),
                                                 std::make_unique<IntLitExpr>(loc, 1));
      assign->compound = true;
      assign->op = inc ? BinaryOp::Add : BinaryOp::Sub;
      return assign;
    }
    default:
      return std::make_unique<ExprStmt>(loc, std::move(expr));
  }
}

StmtPtr Parser::parse_if() {
  const SourceLoc loc = peek().loc;
  advance();  // if
  auto stmt = std::make_unique<IfStmt>(loc);
  expect(TokenKind::LParen, "after 'if'");
  stmt->cond = parse_expr();
  expect(TokenKind::RParen, "after if condition");
  stmt->then_stmt = parse_statement();
  if (accept(TokenKind::KwElse)) stmt->else_stmt = parse_statement();
  return stmt;
}

StmtPtr Parser::parse_for() {
  const SourceLoc loc = peek().loc;
  advance();  // for
  auto stmt = std::make_unique<ForStmt>(loc);
  expect(TokenKind::LParen, "after 'for'");
  if (!accept(TokenKind::Semicolon)) {
    stmt->init = parse_simple_statement();
    expect(TokenKind::Semicolon, "after for-init");
  }
  if (!check(TokenKind::Semicolon)) stmt->cond = parse_expr();
  expect(TokenKind::Semicolon, "after for-condition");
  if (!check(TokenKind::RParen)) stmt->step = parse_simple_statement();
  expect(TokenKind::RParen, "after for-step");
  stmt->body = parse_statement();
  return stmt;
}

StmtPtr Parser::parse_return() {
  const SourceLoc loc = peek().loc;
  advance();  // return
  auto stmt = std::make_unique<ReturnStmt>(loc);
  if (!check(TokenKind::Semicolon)) stmt->value = parse_expr();
  expect(TokenKind::Semicolon, "after return statement");
  return stmt;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

namespace {

/// Binary operator precedence; higher binds tighter. Returns -1 for tokens
/// that are not binary operators.
int binary_precedence(TokenKind kind) {
  switch (kind) {
    case TokenKind::PipePipe: return 1;
    case TokenKind::AmpAmp: return 2;
    case TokenKind::Pipe: return 3;
    case TokenKind::Caret: return 4;
    case TokenKind::Amp: return 5;
    case TokenKind::EqualEqual:
    case TokenKind::BangEqual: return 6;
    case TokenKind::Less:
    case TokenKind::LessEqual:
    case TokenKind::Greater:
    case TokenKind::GreaterEqual: return 7;
    case TokenKind::LessLess:
    case TokenKind::GreaterGreater: return 8;
    case TokenKind::Plus:
    case TokenKind::Minus: return 9;
    case TokenKind::Star:
    case TokenKind::Slash:
    case TokenKind::Percent: return 10;
    default: return -1;
  }
}

BinaryOp binary_op_for(TokenKind kind) {
  switch (kind) {
    case TokenKind::PipePipe: return BinaryOp::LogicalOr;
    case TokenKind::AmpAmp: return BinaryOp::LogicalAnd;
    case TokenKind::Pipe: return BinaryOp::Or;
    case TokenKind::Caret: return BinaryOp::Xor;
    case TokenKind::Amp: return BinaryOp::And;
    case TokenKind::EqualEqual: return BinaryOp::Eq;
    case TokenKind::BangEqual: return BinaryOp::Ne;
    case TokenKind::Less: return BinaryOp::Lt;
    case TokenKind::LessEqual: return BinaryOp::Le;
    case TokenKind::Greater: return BinaryOp::Gt;
    case TokenKind::GreaterEqual: return BinaryOp::Ge;
    case TokenKind::LessLess: return BinaryOp::Shl;
    case TokenKind::GreaterGreater: return BinaryOp::Shr;
    case TokenKind::Plus: return BinaryOp::Add;
    case TokenKind::Minus: return BinaryOp::Sub;
    case TokenKind::Star: return BinaryOp::Mul;
    case TokenKind::Slash: return BinaryOp::Div;
    case TokenKind::Percent: return BinaryOp::Rem;
    default: return BinaryOp::Add;
  }
}

}  // namespace

ExprPtr Parser::parse_ternary() {
  ExprPtr cond = parse_binary(1);
  if (!accept(TokenKind::Question)) return cond;
  const SourceLoc loc = peek().loc;
  ExprPtr then_expr = parse_expr();
  expect(TokenKind::Colon, "in ternary expression");
  ExprPtr else_expr = parse_expr();
  return std::make_unique<TernaryExpr>(loc, std::move(cond), std::move(then_expr),
                                       std::move(else_expr));
}

ExprPtr Parser::parse_binary(int min_precedence) {
  ExprPtr lhs = parse_unary();
  for (;;) {
    const int precedence = binary_precedence(peek().kind);
    if (precedence < min_precedence) return lhs;
    const SourceLoc loc = peek().loc;
    const BinaryOp op = binary_op_for(advance().kind);
    ExprPtr rhs = parse_binary(precedence + 1);
    lhs = std::make_unique<BinaryExpr>(loc, op, std::move(lhs), std::move(rhs));
  }
}

ExprPtr Parser::parse_unary() {
  const SourceLoc loc = peek().loc;
  switch (peek().kind) {
    case TokenKind::Minus:
      advance();
      return std::make_unique<UnaryExpr>(loc, UnaryOp::Neg, parse_unary());
    case TokenKind::Bang:
      advance();
      return std::make_unique<UnaryExpr>(loc, UnaryOp::LogicalNot, parse_unary());
    case TokenKind::Tilde:
      advance();
      return std::make_unique<UnaryExpr>(loc, UnaryOp::BitNot, parse_unary());
    case TokenKind::Amp:
      advance();
      return std::make_unique<UnaryExpr>(loc, UnaryOp::AddrOf, parse_unary());
    case TokenKind::Plus:
      advance();
      return parse_unary();
    case TokenKind::Star:
      diags_.error(loc, "pointer dereference is not allowed in device code");
      advance();
      return parse_unary();
    default:
      return parse_postfix();
  }
}

ExprPtr Parser::parse_postfix() {
  ExprPtr expr = parse_primary();
  for (;;) {
    if (check(TokenKind::LBracket)) {
      const SourceLoc loc = advance().loc;
      ExprPtr index = parse_expr();
      expect(TokenKind::RBracket, "after index expression");
      expr = std::make_unique<IndexExpr>(loc, std::move(expr), std::move(index));
    } else {
      return expr;
    }
  }
}

ExprPtr Parser::parse_call(SourceLoc loc, std::string name) {
  auto call = std::make_unique<CallExpr>(loc, std::move(name));
  // Optional <W> width argument (ncl::crc32<16>(k), ncl::rand<u8>()).
  if (check(TokenKind::Less)) {
    if (peek(1).is(TokenKind::IntLiteral) && peek(2).is(TokenKind::Greater)) {
      advance();
      call->width_arg = static_cast<int>(advance().value);
      advance();
    } else if (peek(1).is(TokenKind::Identifier) && peek(2).is(TokenKind::Greater)) {
      advance();
      ScalarType t;
      if (scalar_type_from_name(peek().text, t)) {
        call->width_arg = t.bits;
      } else {
        diags_.error(peek().loc, "expected a width or scalar type argument");
      }
      advance();
      advance();
    }
  }
  expect(TokenKind::LParen, "to begin call arguments");
  if (!check(TokenKind::RParen)) {
    do {
      call->args.push_back(parse_expr());
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to end call arguments");
  return call;
}

ExprPtr Parser::parse_primary() {
  const SourceLoc loc = peek().loc;
  switch (peek().kind) {
    case TokenKind::IntLiteral:
    case TokenKind::CharLiteral:
      return std::make_unique<IntLitExpr>(loc, advance().value);
    case TokenKind::KwTrue:
      advance();
      return std::make_unique<IntLitExpr>(loc, 1);
    case TokenKind::KwFalse:
      advance();
      return std::make_unique<IntLitExpr>(loc, 0);
    case TokenKind::LParen: {
      advance();
      ExprPtr expr = parse_expr();
      expect(TokenKind::RParen, "after parenthesized expression");
      return expr;
    }
    case TokenKind::Identifier: {
      std::string name = advance().text;
      // Qualified device library names: ncl::foo, ncl::tna::foo, ncl::v1::foo.
      while (check(TokenKind::ColonColon)) {
        advance();
        if (!check(TokenKind::Identifier)) {
          diags_.error(peek().loc, "expected identifier after '::'");
          break;
        }
        name += "::" + advance().text;
      }
      // Builtins: device.id, msg.src/dst/from/to.
      if (check(TokenKind::Dot)) {
        if (name == "device" || name == "msg") {
          advance();
          if (!check(TokenKind::Identifier)) {
            diags_.error(peek().loc, "expected member name after '.'");
            return std::make_unique<IntLitExpr>(loc, 0);
          }
          const std::string member = advance().text;
          if (name == "device" && member == "id") {
            return std::make_unique<BuiltinExpr>(loc, BuiltinKind::DeviceId);
          }
          if (name == "msg") {
            if (member == "src") return std::make_unique<BuiltinExpr>(loc, BuiltinKind::MsgSrc);
            if (member == "dst") return std::make_unique<BuiltinExpr>(loc, BuiltinKind::MsgDst);
            if (member == "from") return std::make_unique<BuiltinExpr>(loc, BuiltinKind::MsgFrom);
            if (member == "to") return std::make_unique<BuiltinExpr>(loc, BuiltinKind::MsgTo);
          }
          diags_.error(loc, "unknown builtin '" + name + "." + member + "'");
          return std::make_unique<IntLitExpr>(loc, 0);
        }
        diags_.error(loc, "member access is only valid on 'device' and 'msg' builtins");
      }
      const bool has_template_call =
          check(TokenKind::Less) &&
          ((peek(1).is(TokenKind::IntLiteral) && peek(2).is(TokenKind::Greater) &&
            peek(3).is(TokenKind::LParen)) ||
           (peek(1).is(TokenKind::Identifier) && peek(2).is(TokenKind::Greater) &&
            peek(3).is(TokenKind::LParen)));
      if (check(TokenKind::LParen) || has_template_call) {
        return parse_call(loc, std::move(name));
      }
      return std::make_unique<VarRefExpr>(loc, std::move(name));
    }
    default:
      diags_.error(loc, std::string("expected an expression, found '") +
                            std::string(to_string(peek().kind)) + "'");
      advance();
      return std::make_unique<IntLitExpr>(loc, 0);
  }
}

Program parse_netcl(const SourceBuffer& buffer, DiagnosticEngine& diags, DefineMap defines) {
  Lexer lexer(buffer, diags, std::move(defines));
  Parser parser(lexer.lex_all(), diags);
  return parser.parse_program();
}

}  // namespace netcl
