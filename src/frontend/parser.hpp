// Recursive-descent parser for NetCL-C.
//
// The parser builds an untyped AST; all name resolution, type checking and
// NetCL rule validation happen afterwards in Sema. Syntax errors are
// reported to the DiagnosticEngine; the parser recovers at statement and
// declaration boundaries so a single run reports multiple errors.
#pragma once

#include <memory>
#include <vector>

#include "frontend/ast.hpp"
#include "frontend/lexer.hpp"

namespace netcl {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags);

  /// Parses the whole translation unit.
  [[nodiscard]] Program parse_program();

 private:
  // Token stream helpers.
  [[nodiscard]] const Token& peek(int ahead = 0) const;
  const Token& advance();
  [[nodiscard]] bool check(TokenKind kind) const { return peek().is(kind); }
  bool accept(TokenKind kind);
  bool expect(TokenKind kind, const char* context);
  void synchronize_to_decl();
  void synchronize_to_stmt();

  // Specifier handling.
  struct Specifiers {
    bool is_kernel = false;
    int computation = 0;
    bool is_net = false;
    bool is_managed = false;
    bool is_lookup = false;
    std::vector<std::uint16_t> locations;
    bool has_at = false;
    SourceLoc loc;
  };
  Specifiers parse_specifiers();

  // Types.
  struct ParsedType {
    ScalarType scalar;
    bool is_lookup_record = false;
    LookupKind lookup_kind = LookupKind::Set;
    ScalarType key_type;
    ScalarType value_type;
    bool is_void = false;
    bool valid = false;
  };
  ParsedType parse_type();
  [[nodiscard]] bool at_type_start() const;

  // Declarations.
  void parse_top_level_decl(Program& program);
  std::unique_ptr<FunctionDecl> parse_function(const Specifiers& specs, SourceLoc loc,
                                               std::string name);
  std::unique_ptr<GlobalDecl> parse_global(const Specifiers& specs, const ParsedType& type,
                                           SourceLoc loc, std::string name);
  ParamDecl parse_param();
  void parse_lookup_initializer(GlobalDecl& global);

  // Statements.
  StmtPtr parse_statement();
  StmtPtr parse_block();
  StmtPtr parse_if();
  StmtPtr parse_for();
  StmtPtr parse_return();
  StmtPtr parse_decl_statement();
  StmtPtr parse_expr_or_assign_statement();
  StmtPtr parse_simple_statement();  // decl / assignment / expr, no ';'

  // Expressions (precedence climbing).
  ExprPtr parse_expr() { return parse_ternary(); }
  ExprPtr parse_ternary();
  ExprPtr parse_binary(int min_precedence);
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();
  ExprPtr parse_call(SourceLoc loc, std::string name);

  std::vector<Token> tokens_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
};

/// Convenience entry point: lex + parse one buffer.
[[nodiscard]] Program parse_netcl(const SourceBuffer& buffer, DiagnosticEngine& diags,
                                  DefineMap defines = {});

}  // namespace netcl
