#include "frontend/sema.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "frontend/parser.hpp"

namespace netcl {

// ---------------------------------------------------------------------------
// Kernel specifications
// ---------------------------------------------------------------------------

bool KernelSpec::layout_equals(const KernelSpec& other) const {
  if (args.size() != other.args.size()) return false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (!args[i].layout_equals(other.args[i])) return false;
  }
  return true;
}

int KernelSpec::byte_size() const {
  int bytes = 0;
  for (const ArgSpec& arg : args) {
    const int width = arg.type.bits == 1 ? 1 : arg.type.bits / 8;
    bytes += width * arg.count;
  }
  return bytes;
}

std::string KernelSpec::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < args.size(); ++i) {
    os << (i != 0 ? "," : "") << args[i].count;
  }
  os << "][";
  for (std::size_t i = 0; i < args.size(); ++i) {
    os << (i != 0 ? "," : "") << args[i].type.to_string();
  }
  os << "]";
  return os.str();
}

KernelSpec make_kernel_spec(const FunctionDecl& kernel) {
  KernelSpec spec;
  spec.computation = kernel.computation;
  for (const ParamDecl& param : kernel.params) {
    ArgSpec arg;
    arg.type = param.type;
    arg.count = param.spec;
    arg.writable = param.by_ref || param.is_pointer;
    arg.name = param.name;
    spec.args.push_back(std::move(arg));
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Device library resolution
// ---------------------------------------------------------------------------

std::optional<DeviceCallInfo> resolve_device_fn(const std::string& name,
                                                std::string* target_intrinsic) {
  std::string base = name;
  if (base.rfind("ncl::", 0) == 0) base = base.substr(5);
  if (target_intrinsic != nullptr) target_intrinsic->clear();
  if (base.rfind("tna::", 0) == 0) {
    if (target_intrinsic != nullptr) *target_intrinsic = "tna";
    base = base.substr(5);
  } else if (base.rfind("v1::", 0) == 0) {
    if (target_intrinsic != nullptr) *target_intrinsic = "v1";
    base = base.substr(4);
  }

  DeviceCallInfo info;
  if (base.rfind("atomic_", 0) == 0) {
    std::string op = base.substr(7);
    info.op = DeviceOp::AtomicRMW;
    if (op.rfind("cond_", 0) == 0) {
      info.atomic_cond = true;
      op = op.substr(5);
    }
    if (op.size() > 4 && op.rfind("_new") == op.size() - 4) {
      info.atomic_new = true;
      op = op.substr(0, op.size() - 4);
    }
    static const std::unordered_map<std::string, AtomicOpKind> kAtomics = {
        {"add", AtomicOpKind::Add}, {"sadd", AtomicOpKind::SAdd}, {"sub", AtomicOpKind::Sub},
        {"ssub", AtomicOpKind::SSub}, {"or", AtomicOpKind::Or},   {"and", AtomicOpKind::And},
        {"xor", AtomicOpKind::Xor}, {"inc", AtomicOpKind::Inc},   {"dec", AtomicOpKind::Dec},
        {"min", AtomicOpKind::Min}, {"max", AtomicOpKind::Max},   {"cas", AtomicOpKind::Cas},
    };
    const auto it = kAtomics.find(op);
    if (it == kAtomics.end()) return std::nullopt;
    info.atomic_op = it->second;
    return info;
  }
  if (base == "lookup") {
    info.op = DeviceOp::Lookup;
    return info;
  }
  static const std::unordered_map<std::string, HashKind> kHashes = {
      {"crc16", HashKind::Crc16},
      {"crc32", HashKind::Crc32},
      {"crc64", HashKind::Crc32},  // tna::crc64 modeled over the crc32 engine
      {"xor16", HashKind::Xor16},
      {"csum16r", HashKind::Xor16},  // v1::csum16r modeled over xor16
      {"identity", HashKind::Identity},
  };
  if (const auto it = kHashes.find(base); it != kHashes.end()) {
    info.op = DeviceOp::Hash;
    info.hash = it->second;
    return info;
  }
  static const std::unordered_map<std::string, DeviceOp> kSimple = {
      {"sadd", DeviceOp::SAdd}, {"ssub", DeviceOp::SSub}, {"bit_chk", DeviceOp::BitChk},
      {"rand", DeviceOp::Rand}, {"min", DeviceOp::Min},   {"max", DeviceOp::Max},
      {"bswap", DeviceOp::Bswap}, {"clz", DeviceOp::Clz},
  };
  if (const auto it = kSimple.find(base); it != kSimple.end()) {
    info.op = it->second;
    return info;
  }
  static const std::unordered_map<std::string, ActionKind> kActions = {
      {"drop", ActionKind::Drop},
      {"send_to_host", ActionKind::SendToHost},
      {"send_to_device", ActionKind::SendToDevice},
      {"multicast", ActionKind::Multicast},
      {"reflect", ActionKind::Reflect},
      {"reflect_long", ActionKind::ReflectLong},
      {"pass", ActionKind::Pass},
  };
  if (const auto it = kActions.find(base); it != kActions.end()) {
    info.op = DeviceOp::Action;
    info.action = it->second;
    return info;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Sema
// ---------------------------------------------------------------------------

namespace {
constexpr ScalarType kVoid{0, false};
bool is_void(ScalarType t) { return t.bits == 0; }
}  // namespace

Sema::Sema(Program& program, DiagnosticEngine& diags) : program_(program), diags_(diags) {}

bool Sema::run() {
  check_globals();
  check_placement_validity();
  check_kernel_specifications();
  check_recursion();
  for (auto& fn : program_.functions) check_function(*fn);
  return !diags_.has_errors();
}

void Sema::check_globals() {
  std::unordered_set<std::string> names;
  for (const auto& global : program_.globals) {
    if (!names.insert(global->name).second) {
      diags_.error(global->loc, "redefinition of global memory '" + global->name + "'");
    }
    for (const std::int64_t dim : global->dims) {
      if (dim <= 0) {
        diags_.error(global->loc,
                     "global memory '" + global->name + "' has a non-positive array extent");
      }
    }
    if (global->is_lookup && !global->entries.empty() &&
        static_cast<std::int64_t>(global->entries.size()) > global->element_count()) {
      diags_.error(global->loc, "lookup array '" + global->name +
                                    "' initializer exceeds its declared capacity");
    }
    if (global->is_lookup && global->lookup_kind == LookupKind::Range) {
      for (const LookupEntry& e : global->entries) {
        if (e.key_lo > e.key_hi) {
          diags_.error(global->loc,
                       "range entry in '" + global->name + "' has lo > hi");
        }
      }
    }
  }
  std::unordered_set<std::string> fn_names;
  for (const auto& fn : program_.functions) {
    if (!fn_names.insert(fn->name).second) {
      diags_.error(fn->loc, "redefinition of function '" + fn->name + "'");
    }
    if (names.count(fn->name) != 0) {
      diags_.error(fn->loc, "'" + fn->name + "' is already declared as global memory");
    }
  }
}

void Sema::check_placement_validity() {
  // Group kernels by computation id.
  std::unordered_map<int, std::vector<const FunctionDecl*>> by_computation;
  for (const auto& fn : program_.functions) {
    if (fn->is_kernel) by_computation[fn->computation].push_back(fn.get());
  }
  for (const auto& [computation, kernels] : by_computation) {
    if (kernels.size() == 1) continue;  // Eq (1) first disjunct
    // All must be explicitly placed with pairwise-disjoint location sets.
    for (const FunctionDecl* k : kernels) {
      if (k->locations.empty()) {
        diags_.error(k->loc, "kernel '" + k->name + "': computation " +
                                 std::to_string(computation) +
                                 " has multiple kernels, so every kernel must be "
                                 "explicitly placed with _at(...)");
      }
    }
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      for (std::size_t j = i + 1; j < kernels.size(); ++j) {
        std::set<std::uint16_t> a(kernels[i]->locations.begin(), kernels[i]->locations.end());
        for (const std::uint16_t loc : kernels[j]->locations) {
          if (a.count(loc) != 0) {
            diags_.error(kernels[j]->loc,
                         "kernels '" + kernels[i]->name + "' and '" + kernels[j]->name +
                             "' of computation " + std::to_string(computation) +
                             " are both placed at device " + std::to_string(loc));
          }
        }
      }
    }
  }
}

void Sema::check_kernel_specifications() {
  std::unordered_map<int, std::pair<const FunctionDecl*, KernelSpec>> specs;
  for (const auto& fn : program_.functions) {
    if (!fn->is_kernel) continue;
    for (const ParamDecl& p : fn->params) {
      if (!p.is_pointer && p.spec != 1) {
        diags_.error(p.loc, "scalar kernel arguments always have a specification of 1");
      }
      if (p.spec <= 0) {
        diags_.error(p.loc, "kernel argument specification must be positive");
      }
    }
    KernelSpec spec = make_kernel_spec(*fn);
    const auto [it, inserted] = specs.try_emplace(fn->computation, fn.get(), spec);
    if (!inserted && !it->second.second.layout_equals(spec)) {
      diags_.error(fn->loc, "kernel '" + fn->name + "' has specification " + spec.to_string() +
                                " but computation " + std::to_string(fn->computation) +
                                " was declared with " + it->second.second.to_string() + " by '" +
                                it->second.first->name + "'");
    }
  }
}

void Sema::check_recursion() {
  // Device code allows no recursion (§V-D): detect cycles in the call graph.
  std::unordered_map<const FunctionDecl*, std::vector<const FunctionDecl*>> graph;
  for (const auto& fn : program_.functions) graph[fn.get()];

  // Collect direct callees by scanning statements for CallExprs naming user
  // functions. (Resolution proper happens later; here a name match is
  // enough, which is conservative in the right direction.)
  struct Collector {
    const Program& program;
    std::vector<const FunctionDecl*>& out;
    void walk_expr(const Expr& e) {
      switch (e.kind) {
        case ExprKind::Call: {
          const auto& call = static_cast<const CallExpr&>(e);
          if (const FunctionDecl* callee = program.find_function(call.callee)) {
            out.push_back(callee);
          }
          for (const auto& a : call.args) walk_expr(*a);
          break;
        }
        case ExprKind::Index: {
          const auto& ix = static_cast<const IndexExpr&>(e);
          walk_expr(*ix.base);
          walk_expr(*ix.index);
          break;
        }
        case ExprKind::Unary:
          walk_expr(*static_cast<const UnaryExpr&>(e).operand);
          break;
        case ExprKind::Binary: {
          const auto& b = static_cast<const BinaryExpr&>(e);
          walk_expr(*b.lhs);
          walk_expr(*b.rhs);
          break;
        }
        case ExprKind::Ternary: {
          const auto& t = static_cast<const TernaryExpr&>(e);
          walk_expr(*t.cond);
          walk_expr(*t.then_expr);
          walk_expr(*t.else_expr);
          break;
        }
        default:
          break;
      }
    }
    void walk_stmt(const Stmt& s) {
      switch (s.kind) {
        case StmtKind::Block:
          for (const auto& child : static_cast<const BlockStmt&>(s).body) walk_stmt(*child);
          break;
        case StmtKind::Decl:
          for (const auto& d : static_cast<const DeclStmt&>(s).decls) {
            if (d->init != nullptr) walk_expr(*d->init);
          }
          break;
        case StmtKind::Expr:
          walk_expr(*static_cast<const ExprStmt&>(s).expr);
          break;
        case StmtKind::Assign: {
          const auto& a = static_cast<const AssignStmt&>(s);
          walk_expr(*a.target);
          walk_expr(*a.value);
          break;
        }
        case StmtKind::If: {
          const auto& i = static_cast<const IfStmt&>(s);
          walk_expr(*i.cond);
          walk_stmt(*i.then_stmt);
          if (i.else_stmt != nullptr) walk_stmt(*i.else_stmt);
          break;
        }
        case StmtKind::For: {
          const auto& f = static_cast<const ForStmt&>(s);
          if (f.init != nullptr) walk_stmt(*f.init);
          if (f.cond != nullptr) walk_expr(*f.cond);
          if (f.step != nullptr) walk_stmt(*f.step);
          walk_stmt(*f.body);
          break;
        }
        case StmtKind::Return: {
          const auto& r = static_cast<const ReturnStmt&>(s);
          if (r.value != nullptr) walk_expr(*r.value);
          break;
        }
      }
    }
  };

  for (const auto& fn : program_.functions) {
    Collector collector{program_, graph[fn.get()]};
    if (fn->body != nullptr) collector.walk_stmt(*fn->body);
  }

  // DFS cycle detection.
  enum class Mark { White, Grey, Black };
  std::unordered_map<const FunctionDecl*, Mark> marks;
  for (const auto& [fn, _] : graph) marks[fn] = Mark::White;

  auto dfs = [&](auto&& self, const FunctionDecl* fn) -> bool {
    marks[fn] = Mark::Grey;
    for (const FunctionDecl* callee : graph[fn]) {
      if (marks[callee] == Mark::Grey) {
        diags_.error(fn->loc, "recursion detected involving '" + fn->name +
                                  "' and '" + callee->name +
                                  "'; recursion is not allowed in device code");
        return false;
      }
      if (marks[callee] == Mark::White && !self(self, callee)) return false;
    }
    marks[fn] = Mark::Black;
    return true;
  };
  for (const auto& [fn, _] : graph) {
    if (marks[fn] == Mark::White && !dfs(dfs, fn)) break;
  }
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

void Sema::push_scope() { scopes_.emplace_back(); }
void Sema::pop_scope() { scopes_.pop_back(); }

bool Sema::declare_local(LocalDecl& decl) {
  for (const auto& [name, _] : scopes_.back()) {
    if (name == decl.name) {
      diags_.error(decl.loc, "redeclaration of '" + decl.name + "' in the same scope");
      return false;
    }
  }
  scopes_.back().emplace_back(decl.name, ScopedName{nullptr, &decl});
  return true;
}

const Sema::ScopedName* Sema::find_name(const std::string& name) const {
  for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
    for (const auto& [n, entry] : *scope) {
      if (n == name) return &entry;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Function / statement checks
// ---------------------------------------------------------------------------

void Sema::check_function(FunctionDecl& fn) {
  scopes_.clear();
  push_scope();
  std::unordered_set<std::string> param_names;
  for (ParamDecl& param : fn.params) {
    if (!param_names.insert(param.name).second) {
      diags_.error(param.loc, "duplicate parameter name '" + param.name + "'");
    }
    scopes_.back().emplace_back(param.name, ScopedName{&param, nullptr});
  }
  if (fn.body != nullptr) check_stmt(*fn.body, fn);
  pop_scope();
}

void Sema::check_stmt(Stmt& stmt, FunctionDecl& fn) {
  switch (stmt.kind) {
    case StmtKind::Block: {
      auto& block = static_cast<BlockStmt&>(stmt);
      push_scope();
      for (auto& child : block.body) check_stmt(*child, fn);
      pop_scope();
      break;
    }
    case StmtKind::Decl: {
      auto& decl_stmt = static_cast<DeclStmt&>(stmt);
      for (auto& decl : decl_stmt.decls) {
        if (decl->init != nullptr) {
          const ScalarType init_type = check_expr(*decl->init, fn);
          if (decl->type_is_auto) {
            decl->type = is_void(init_type) ? kI32 : init_type;
            decl->type_is_auto = false;
          }
          if (is_void(init_type)) {
            diags_.error(decl->loc, "cannot initialize '" + decl->name + "' from a void call");
          }
        } else if (decl->type_is_auto) {
          diags_.error(decl->loc, "'auto' local '" + decl->name + "' requires an initializer");
        }
        if (decl->array_size > 0 && decl->init != nullptr) {
          diags_.error(decl->loc, "local array initializers are not supported");
        }
        declare_local(*decl);
      }
      break;
    }
    case StmtKind::Expr: {
      auto& expr_stmt = static_cast<ExprStmt&>(stmt);
      check_expr(*expr_stmt.expr, fn);
      if (expr_stmt.expr->kind == ExprKind::Call) {
        const auto& call = static_cast<const CallExpr&>(*expr_stmt.expr);
        if (call.device.op == DeviceOp::Action) {
          diags_.error(stmt.loc, "actions may only appear in return statements");
        }
      } else {
        diags_.warning(stmt.loc, "expression statement has no effect");
      }
      break;
    }
    case StmtKind::Assign: {
      auto& assign = static_cast<AssignStmt&>(stmt);
      check_expr(*assign.target, fn);
      check_assign_target(*assign.target, fn);
      const ScalarType value_type = check_expr(*assign.value, fn);
      if (is_void(value_type)) {
        diags_.error(assign.loc, "cannot assign from a void call");
      }
      break;
    }
    case StmtKind::If: {
      auto& if_stmt = static_cast<IfStmt&>(stmt);
      check_expr(*if_stmt.cond, fn);
      check_stmt(*if_stmt.then_stmt, fn);
      if (if_stmt.else_stmt != nullptr) check_stmt(*if_stmt.else_stmt, fn);
      break;
    }
    case StmtKind::For: {
      auto& for_stmt = static_cast<ForStmt&>(stmt);
      push_scope();
      if (for_stmt.init != nullptr) check_stmt(*for_stmt.init, fn);
      if (for_stmt.cond != nullptr) check_expr(*for_stmt.cond, fn);
      if (for_stmt.step != nullptr) check_stmt(*for_stmt.step, fn);
      check_stmt(*for_stmt.body, fn);
      pop_scope();
      break;
    }
    case StmtKind::Return:
      check_return(static_cast<ReturnStmt&>(stmt), fn);
      break;
  }
}

void Sema::check_return(ReturnStmt& stmt, FunctionDecl& fn) {
  if (stmt.value == nullptr) return;  // implicit pass() for kernels
  if (!fn.is_kernel) {
    // Net functions are void; the only allowed "value" is a void call
    // (calling another net function in tail position).
    const ScalarType type = check_expr(*stmt.value, fn);
    if (!is_void(type)) {
      diags_.error(stmt.loc, "net function '" + fn.name + "' cannot return a value");
    }
    return;
  }
  check_action_expr(*stmt.value, fn);
}

void Sema::check_action_expr(Expr& expr, FunctionDecl& fn) {
  switch (expr.kind) {
    case ExprKind::Call: {
      auto& call = static_cast<CallExpr&>(expr);
      check_call(call, fn, /*in_return=*/true);
      if (call.device.op != DeviceOp::Action &&
          !(call.device.op == DeviceOp::None && call.net_callee != nullptr)) {
        diags_.error(expr.loc, "kernel return value must be an action or a net-function call");
      }
      break;
    }
    case ExprKind::Ternary: {
      auto& ternary = static_cast<TernaryExpr&>(expr);
      check_expr(*ternary.cond, fn);
      check_action_expr(*ternary.then_expr, fn);
      check_action_expr(*ternary.else_expr, fn);
      break;
    }
    default:
      diags_.error(expr.loc, "kernels must exit with an action (Table II); "
                             "plain values cannot be returned");
      break;
  }
}

void Sema::check_reference_locations(SourceLoc loc, const FunctionDecl& user,
                                     const std::vector<std::uint16_t>& locs,
                                     const std::string& what) {
  if (locs.empty()) return;  // location-less: present everywhere
  for (const std::uint16_t user_loc : user.locations) {
    if (std::find(locs.begin(), locs.end(), user_loc) == locs.end()) {
      diags_.error(loc, what + " is not placed at device " + std::to_string(user_loc) +
                            ", where '" + user.name + "' is placed (reference validity)");
      return;
    }
  }
  if (user.locations.empty()) {
    // A location-less user may be compiled for any device, so it may only
    // reference location-less entities.
    diags_.error(loc, what + " has an explicit location set but '" + user.name +
                          "' is location-less and may be compiled anywhere");
  }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

const GlobalDecl* Sema::resolve_global_access(Expr& expr, FunctionDecl& fn, int* index_count) {
  int count = 0;
  Expr* walk = &expr;
  while (walk->kind == ExprKind::Index) {
    ++count;
    walk = static_cast<IndexExpr&>(*walk).base.get();
  }
  if (walk->kind != ExprKind::VarRef) return nullptr;
  auto& ref = static_cast<VarRefExpr&>(*walk);
  if (ref.global == nullptr) return nullptr;
  if (index_count != nullptr) *index_count = count;
  check_reference_locations(expr.loc, fn, ref.global->locations,
                            "global memory '" + ref.global->name + "'");
  return ref.global;
}

void Sema::check_assign_target(Expr& target, FunctionDecl& fn) {
  switch (target.kind) {
    case ExprKind::VarRef: {
      auto& ref = static_cast<VarRefExpr&>(target);
      if (ref.local != nullptr) {
        if (ref.local->array_size > 0) {
          diags_.error(target.loc, "cannot assign to a whole local array");
        }
        return;
      }
      if (ref.param != nullptr) {
        if (ref.param->is_pointer) {
          diags_.error(target.loc, "cannot assign to a whole message array; index it");
        }
        return;
      }
      if (ref.global != nullptr) {
        if (!ref.global->dims.empty()) {
          diags_.error(target.loc, "cannot assign to a whole global array");
        } else if (ref.global->is_lookup) {
          diags_.error(target.loc, "lookup memory cannot be written from device code");
        }
        return;
      }
      return;  // unresolved; already diagnosed
    }
    case ExprKind::Index: {
      int index_count = 0;
      if (const GlobalDecl* global = resolve_global_access(target, fn, &index_count)) {
        if (global->is_lookup) {
          diags_.error(target.loc, "lookup memory cannot be written from device code; "
                                   "host code may modify _managed_ _lookup_ entries");
        }
        if (index_count != static_cast<int>(global->dims.size())) {
          diags_.error(target.loc, "global array '" + global->name + "' requires " +
                                       std::to_string(global->dims.size()) + " indices");
        }
        return;
      }
      // Local array element or message array element.
      Expr* base = static_cast<IndexExpr&>(target).base.get();
      if (base->kind == ExprKind::VarRef) {
        const auto& ref = static_cast<const VarRefExpr&>(*base);
        if (ref.local != nullptr && ref.local->array_size == 0) {
          diags_.error(target.loc, "'" + ref.name + "' is not an array");
        }
        if (ref.param != nullptr && !ref.param->is_pointer) {
          diags_.error(target.loc, "scalar parameter '" + ref.name + "' cannot be indexed");
        }
        return;
      }
      diags_.error(target.loc, "unsupported assignment target");
      return;
    }
    default:
      diags_.error(target.loc, "assignment target is not an lvalue");
  }
}

ScalarType Sema::check_expr(Expr& expr, FunctionDecl& fn) {
  switch (expr.kind) {
    case ExprKind::IntLit: {
      auto& lit = static_cast<IntLitExpr&>(expr);
      // Pick the natural literal type: i32 when it fits, otherwise u32/i64/u64.
      if (lit.value <= 0x7FFFFFFFULL) {
        expr.type = kI32;
      } else if (lit.value <= 0xFFFFFFFFULL) {
        expr.type = kU32;
      } else if (lit.value <= 0x7FFFFFFFFFFFFFFFULL) {
        expr.type = kI64;
      } else {
        expr.type = kU64;
      }
      return expr.type;
    }
    case ExprKind::VarRef: {
      auto& ref = static_cast<VarRefExpr&>(expr);
      if (const ScopedName* entry = find_name(ref.name)) {
        if (entry->param != nullptr) {
          ref.param = entry->param;
          expr.type = entry->param->type;
        } else {
          ref.local = entry->local;
          expr.type = entry->local->type;
        }
        return expr.type;
      }
      if (const GlobalDecl* global = program_.find_global(ref.name)) {
        ref.global = global;
        expr.type = global->elem_type;
        check_reference_locations(expr.loc, fn, global->locations,
                                  "global memory '" + global->name + "'");
        return expr.type;
      }
      diags_.error(expr.loc, "use of undeclared identifier '" + ref.name + "'");
      expr.type = kI32;
      return expr.type;
    }
    case ExprKind::Index: {
      auto& index = static_cast<IndexExpr&>(expr);
      const ScalarType base_type = check_expr(*index.base, fn);
      const ScalarType index_type = check_expr(*index.index, fn);
      if (is_void(index_type)) diags_.error(index.index->loc, "index cannot be void");
      // Validate indexing depth for direct global accesses (only at the
      // outermost Index of a chain; inner nodes are revisited by the walk).
      expr.type = base_type;
      return expr.type;
    }
    case ExprKind::Unary: {
      auto& unary = static_cast<UnaryExpr&>(expr);
      const ScalarType operand = check_expr(*unary.operand, fn);
      switch (unary.op) {
        case UnaryOp::LogicalNot:
          expr.type = kBool;
          break;
        case UnaryOp::AddrOf:
          // Only valid as the memory operand of atomics; check_call vets the
          // context. Type is the pointee's.
          expr.type = operand;
          break;
        default:
          expr.type = operand.bits < 32 ? common_type(operand, kI32) : operand;
          break;
      }
      return expr.type;
    }
    case ExprKind::Binary: {
      auto& binary = static_cast<BinaryExpr&>(expr);
      const ScalarType lhs = check_expr(*binary.lhs, fn);
      const ScalarType rhs = check_expr(*binary.rhs, fn);
      if (is_void(lhs) || is_void(rhs)) {
        diags_.error(expr.loc, "void value in arithmetic expression");
        expr.type = kI32;
        return expr.type;
      }
      switch (binary.op) {
        case BinaryOp::Eq:
        case BinaryOp::Ne:
        case BinaryOp::Lt:
        case BinaryOp::Le:
        case BinaryOp::Gt:
        case BinaryOp::Ge:
        case BinaryOp::LogicalAnd:
        case BinaryOp::LogicalOr:
          expr.type = kBool;
          break;
        case BinaryOp::Shl:
        case BinaryOp::Shr:
          expr.type = lhs.bits < 32 ? common_type(lhs, kI32) : lhs;
          break;
        default:
          expr.type = common_type(lhs, rhs);
          break;
      }
      return expr.type;
    }
    case ExprKind::Ternary: {
      auto& ternary = static_cast<TernaryExpr&>(expr);
      check_expr(*ternary.cond, fn);
      const ScalarType a = check_expr(*ternary.then_expr, fn);
      const ScalarType b = check_expr(*ternary.else_expr, fn);
      if (is_void(a) || is_void(b)) {
        // Only legal inside kernel returns; check_action_expr owns that path.
        expr.type = kVoid;
      } else {
        expr.type = common_type(a, b);
      }
      return expr.type;
    }
    case ExprKind::Builtin: {
      auto& builtin = static_cast<BuiltinExpr&>(expr);
      expr.type = builtin.builtin == BuiltinKind::DeviceId ? kU16 : kU16;
      return expr.type;
    }
    case ExprKind::Call:
      return check_call(static_cast<CallExpr&>(expr), fn, /*in_return=*/false);
  }
  expr.type = kI32;
  return expr.type;
}

ScalarType Sema::check_call(CallExpr& call, FunctionDecl& fn, bool in_return) {
  // User net function?
  if (const FunctionDecl* callee = program_.find_function(call.callee)) {
    call.net_callee = callee;
    if (callee->is_kernel) {
      diags_.error(call.loc, "kernels cannot be called directly; they are invoked by messages");
    }
    check_reference_locations(call.loc, fn, callee->locations,
                              "net function '" + callee->name + "'");
    if (call.args.size() != callee->params.size()) {
      diags_.error(call.loc, "'" + call.callee + "' expects " +
                                 std::to_string(callee->params.size()) + " arguments, got " +
                                 std::to_string(call.args.size()));
    }
    for (std::size_t i = 0; i < call.args.size() && i < callee->params.size(); ++i) {
      check_expr(*call.args[i], fn);
      const ParamDecl& param = callee->params[i];
      if (param.by_ref || param.is_pointer) {
        // By-ref args of net functions must be lvalues.
        check_assign_target(*call.args[i], fn);
      }
    }
    call.type = kVoid;
    return call.type;
  }

  std::string target_intrinsic;
  const auto resolved = resolve_device_fn(call.callee, &target_intrinsic);
  if (!resolved.has_value()) {
    diags_.error(call.loc, "unknown function '" + call.callee + "'");
    call.type = kI32;
    return call.type;
  }
  call.device = *resolved;

  auto arity_error = [&](const char* expected) {
    diags_.error(call.loc, "'" + call.callee + "' expects " + expected + " argument(s), got " +
                               std::to_string(call.args.size()));
  };

  switch (call.device.op) {
    case DeviceOp::AtomicRMW: {
      // Shape: (mem [, cond] [, operand...]). `&` on the memory operand is
      // optional (the paper uses both styles).
      const bool is_unary_op = call.device.atomic_op == AtomicOpKind::Inc ||
                               call.device.atomic_op == AtomicOpKind::Dec;
      const bool is_cas = call.device.atomic_op == AtomicOpKind::Cas;
      std::size_t expected = 2;  // mem + operand
      if (is_unary_op) expected = 1;
      if (is_cas) expected = 3;  // mem, expected, desired
      if (call.device.atomic_cond) ++expected;
      if (call.args.size() != expected) {
        arity_error(std::to_string(expected).c_str());
        call.type = kI32;
        return call.type;
      }
      // The memory operand: strip AddrOf if present.
      Expr* mem = call.args[0].get();
      if (mem->kind == ExprKind::Unary &&
          static_cast<UnaryExpr&>(*mem).op == UnaryOp::AddrOf) {
        mem = static_cast<UnaryExpr&>(*mem).operand.get();
      }
      check_expr(*call.args[0], fn);
      int index_count = 0;
      const GlobalDecl* global = resolve_global_access(*mem, fn, &index_count);
      if (global == nullptr && mem->kind == ExprKind::VarRef) {
        global = static_cast<VarRefExpr&>(*mem).global;
      }
      if (global == nullptr) {
        diags_.error(call.loc, "atomic operations require a global memory operand");
        call.type = kI32;
        return call.type;
      }
      if (global->is_lookup) {
        diags_.error(call.loc, "atomic operations cannot target _lookup_ memory");
      }
      if (index_count != static_cast<int>(global->dims.size())) {
        diags_.error(call.loc, "atomic access to '" + global->name + "' requires " +
                                   std::to_string(global->dims.size()) + " indices");
      }
      for (std::size_t i = 1; i < call.args.size(); ++i) check_expr(*call.args[i], fn);
      call.type = global->elem_type;
      return call.type;
    }
    case DeviceOp::Lookup: {
      if (call.args.size() != 2 && call.args.size() != 3) {
        arity_error("2 or 3");
        call.type = kBool;
        return call.type;
      }
      check_expr(*call.args[0], fn);
      const GlobalDecl* global = nullptr;
      if (call.args[0]->kind == ExprKind::VarRef) {
        global = static_cast<VarRefExpr&>(*call.args[0]).global;
      }
      if (global == nullptr || !global->is_lookup) {
        diags_.error(call.loc, "ncl::lookup requires a _lookup_ array as its first argument");
      } else {
        if (global->lookup_kind == LookupKind::Set && call.args.size() == 3) {
          diags_.error(call.loc, "set lookup arrays have no value output");
        }
        if (global->lookup_kind != LookupKind::Set && call.args.size() == 2) {
          diags_.warning(call.loc, "lookup value output ignored");
        }
      }
      check_expr(*call.args[1], fn);
      if (call.args.size() == 3) {
        check_expr(*call.args[2], fn);
        check_assign_target(*call.args[2], fn);
      }
      call.type = kBool;
      return call.type;
    }
    case DeviceOp::Hash: {
      if (call.args.empty()) {
        arity_error("at least 1");
        call.type = kU32;
        return call.type;
      }
      for (auto& arg : call.args) check_expr(*arg, fn);
      int bits = call.device.hash == HashKind::Crc32 ? 32 : 16;
      if (call.width_arg != 0) bits = call.width_arg;
      if (bits != 8 && bits != 16 && bits != 32 && bits != 64) {
        diags_.error(call.loc, "hash width must be 8, 16, 32, or 64 bits");
        bits = 32;
      }
      call.type = ScalarType{static_cast<std::uint8_t>(bits), false};
      return call.type;
    }
    case DeviceOp::SAdd:
    case DeviceOp::SSub:
    case DeviceOp::Min:
    case DeviceOp::Max: {
      if (call.args.size() != 2) {
        arity_error("2");
        call.type = kU32;
        return call.type;
      }
      const ScalarType a = check_expr(*call.args[0], fn);
      const ScalarType b = check_expr(*call.args[1], fn);
      call.type = common_type(a, b);
      return call.type;
    }
    case DeviceOp::BitChk: {
      if (call.args.size() != 2) {
        arity_error("2");
      } else {
        check_expr(*call.args[0], fn);
        check_expr(*call.args[1], fn);
      }
      call.type = kBool;
      return call.type;
    }
    case DeviceOp::Rand: {
      if (!call.args.empty()) arity_error("0");
      const int bits = call.width_arg != 0 ? call.width_arg : 16;
      call.type = ScalarType{static_cast<std::uint8_t>(bits), false};
      return call.type;
    }
    case DeviceOp::Bswap:
    case DeviceOp::Clz: {
      if (call.args.size() != 1) {
        arity_error("1");
        call.type = kU32;
        return call.type;
      }
      call.type = check_expr(*call.args[0], fn);
      return call.type;
    }
    case DeviceOp::Action: {
      if (!in_return) {
        // Reported by the statement-level checks too, but catch nested uses
        // like `x = ncl::drop()`.
        diags_.error(call.loc, "actions may only appear in return statements");
      }
      if (!fn.is_kernel) {
        diags_.error(call.loc, "actions may only be used in kernels");
      }
      const bool needs_id = call.device.action == ActionKind::SendToHost ||
                            call.device.action == ActionKind::SendToDevice ||
                            call.device.action == ActionKind::Multicast;
      if (needs_id) {
        if (call.args.size() != 1) {
          arity_error("1");
        } else {
          check_expr(*call.args[0], fn);
        }
      } else if (!call.args.empty()) {
        arity_error("0");
      }
      call.type = kVoid;
      return call.type;
    }
    case DeviceOp::None:
      break;
  }
  call.type = kI32;
  return call.type;
}

Program analyze_netcl(const SourceBuffer& buffer, DiagnosticEngine& diags, DefineMap defines) {
  Program program = parse_netcl(buffer, diags, std::move(defines));
  if (!diags.has_errors()) {
    Sema sema(program, diags);
    sema.run();
  }
  return program;
}

}  // namespace netcl
