// Semantic analysis for NetCL-C.
//
// Sema resolves names, types every expression, resolves `ncl::` device
// library calls, infers kernel specifications (§V-A of the paper), and
// enforces the NetCL placement rules:
//
//   Eq (1)  kernels of one computation are either a single location-less
//           kernel or all explicitly placed with pairwise-disjoint sets;
//   Eq (2)  net functions and memory may only be referenced from code whose
//           location set they cover (or if they are location-less).
//
// It also enforces the §V-D device-code restrictions that are target
// independent: no recursion, actions only in return statements, lookup
// memory only accessed through ncl::lookup(), no writes to _lookup_ memory
// from device code.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "frontend/ast.hpp"
#include "frontend/lexer.hpp"
#include "support/diagnostics.hpp"

namespace netcl {

/// The specification of one kernel argument: element type, element count,
/// and whether devices may write it back into the message.
struct ArgSpec {
  ScalarType type;
  int count = 1;
  bool writable = false;
  std::string name;

  [[nodiscard]] bool layout_equals(const ArgSpec& other) const {
    return type == other.type && count == other.count;
  }
};

/// The specification of a kernel: the layout of the messages it computes on.
/// Kernels of the same computation must have matching specifications.
struct KernelSpec {
  int computation = 0;
  std::vector<ArgSpec> args;

  [[nodiscard]] bool layout_equals(const KernelSpec& other) const;
  /// Total message payload size in bytes (sum over args of count * width).
  [[nodiscard]] int byte_size() const;
  [[nodiscard]] std::string to_string() const;
};

/// Computes the specification of a single kernel declaration.
[[nodiscard]] KernelSpec make_kernel_spec(const FunctionDecl& kernel);

/// Parses a (possibly ncl::-qualified) callee name into device-library call
/// info. Returns std::nullopt if the name is not part of the device library.
/// `target_intrinsic` receives "tna" or "v1" for target-scoped intrinsics.
[[nodiscard]] std::optional<DeviceCallInfo> resolve_device_fn(const std::string& name,
                                                              std::string* target_intrinsic);

class Sema {
 public:
  Sema(Program& program, DiagnosticEngine& diags);

  /// Runs all checks. Returns true if no errors were reported.
  bool run();

 private:
  // Declaration-level checks.
  void check_globals();
  void check_function(FunctionDecl& fn);
  void check_placement_validity();    // Eq (1)
  void check_kernel_specifications(); // matching specs per computation
  void check_recursion();

  // Statement / expression walkers.
  void check_stmt(Stmt& stmt, FunctionDecl& fn);
  void check_return(ReturnStmt& stmt, FunctionDecl& fn);
  /// Validates that a kernel return value is "action-like": an action call,
  /// a void net-function call, or a ternary of action-like expressions.
  void check_action_expr(Expr& expr, FunctionDecl& fn);
  ScalarType check_expr(Expr& expr, FunctionDecl& fn);
  ScalarType check_call(CallExpr& call, FunctionDecl& fn, bool in_return);
  void check_assign_target(Expr& target, FunctionDecl& fn);

  /// Resolves the base global of an index chain / var ref, reporting
  /// indexing-depth errors. Returns nullptr if not a global access.
  const GlobalDecl* resolve_global_access(Expr& expr, FunctionDecl& fn, int* index_count);

  /// Eq (2): a reference from `user` to declaration with `locs` is valid iff
  /// locs is empty or a superset of the user's locations.
  void check_reference_locations(SourceLoc loc, const FunctionDecl& user,
                                 const std::vector<std::uint16_t>& locs, const std::string& what);

  // Scope management for locals.
  struct ScopedName {
    const ParamDecl* param = nullptr;
    LocalDecl* local = nullptr;
  };
  void push_scope();
  void pop_scope();
  bool declare_local(LocalDecl& decl);
  [[nodiscard]] const ScopedName* find_name(const std::string& name) const;

  Program& program_;
  DiagnosticEngine& diags_;
  std::vector<std::vector<std::pair<std::string, ScopedName>>> scopes_;
};

/// Frontend entry point: parse + sema. Returns the program; check
/// diags.has_errors() before using it.
[[nodiscard]] Program analyze_netcl(const SourceBuffer& buffer, DiagnosticEngine& diags,
                                    DefineMap defines = {});

}  // namespace netcl
