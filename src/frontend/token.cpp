#include "frontend/token.hpp"

#include <unordered_map>

namespace netcl {

std::string_view to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::End: return "<eof>";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::IntLiteral: return "integer literal";
    case TokenKind::CharLiteral: return "character literal";
    case TokenKind::KwBool: return "bool";
    case TokenKind::KwChar: return "char";
    case TokenKind::KwInt: return "int";
    case TokenKind::KwUnsigned: return "unsigned";
    case TokenKind::KwSigned: return "signed";
    case TokenKind::KwShort: return "short";
    case TokenKind::KwLong: return "long";
    case TokenKind::KwVoid: return "void";
    case TokenKind::KwAuto: return "auto";
    case TokenKind::KwConst: return "const";
    case TokenKind::KwIf: return "if";
    case TokenKind::KwElse: return "else";
    case TokenKind::KwFor: return "for";
    case TokenKind::KwWhile: return "while";
    case TokenKind::KwReturn: return "return";
    case TokenKind::KwTrue: return "true";
    case TokenKind::KwFalse: return "false";
    case TokenKind::KwStatic: return "static";
    case TokenKind::KwGoto: return "goto";
    case TokenKind::KwBreak: return "break";
    case TokenKind::KwContinue: return "continue";
    case TokenKind::KwKernel: return "_kernel";
    case TokenKind::KwNet: return "_net_";
    case TokenKind::KwManaged: return "_managed_";
    case TokenKind::KwLookup: return "_lookup_";
    case TokenKind::KwAt: return "_at";
    case TokenKind::KwSpec: return "_spec";
    case TokenKind::LParen: return "(";
    case TokenKind::RParen: return ")";
    case TokenKind::LBrace: return "{";
    case TokenKind::RBrace: return "}";
    case TokenKind::LBracket: return "[";
    case TokenKind::RBracket: return "]";
    case TokenKind::Comma: return ",";
    case TokenKind::Semicolon: return ";";
    case TokenKind::Colon: return ":";
    case TokenKind::ColonColon: return "::";
    case TokenKind::Question: return "?";
    case TokenKind::Dot: return ".";
    case TokenKind::Arrow: return "->";
    case TokenKind::Plus: return "+";
    case TokenKind::Minus: return "-";
    case TokenKind::Star: return "*";
    case TokenKind::Slash: return "/";
    case TokenKind::Percent: return "%";
    case TokenKind::Amp: return "&";
    case TokenKind::Pipe: return "|";
    case TokenKind::Caret: return "^";
    case TokenKind::Tilde: return "~";
    case TokenKind::Bang: return "!";
    case TokenKind::Less: return "<";
    case TokenKind::Greater: return ">";
    case TokenKind::LessLess: return "<<";
    case TokenKind::GreaterGreater: return ">>";
    case TokenKind::LessEqual: return "<=";
    case TokenKind::GreaterEqual: return ">=";
    case TokenKind::EqualEqual: return "==";
    case TokenKind::BangEqual: return "!=";
    case TokenKind::AmpAmp: return "&&";
    case TokenKind::PipePipe: return "||";
    case TokenKind::Equal: return "=";
    case TokenKind::PlusEqual: return "+=";
    case TokenKind::MinusEqual: return "-=";
    case TokenKind::StarEqual: return "*=";
    case TokenKind::SlashEqual: return "/=";
    case TokenKind::PercentEqual: return "%=";
    case TokenKind::AmpEqual: return "&=";
    case TokenKind::PipeEqual: return "|=";
    case TokenKind::CaretEqual: return "^=";
    case TokenKind::LessLessEqual: return "<<=";
    case TokenKind::GreaterGreaterEqual: return ">>=";
    case TokenKind::PlusPlus: return "++";
    case TokenKind::MinusMinus: return "--";
  }
  return "<invalid>";
}

TokenKind keyword_kind(std::string_view spelling) {
  static const std::unordered_map<std::string_view, TokenKind> kKeywords = {
      {"bool", TokenKind::KwBool},
      {"char", TokenKind::KwChar},
      {"int", TokenKind::KwInt},
      {"unsigned", TokenKind::KwUnsigned},
      {"signed", TokenKind::KwSigned},
      {"short", TokenKind::KwShort},
      {"long", TokenKind::KwLong},
      {"void", TokenKind::KwVoid},
      {"auto", TokenKind::KwAuto},
      {"const", TokenKind::KwConst},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"for", TokenKind::KwFor},
      {"while", TokenKind::KwWhile},
      {"return", TokenKind::KwReturn},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"static", TokenKind::KwStatic},
      {"goto", TokenKind::KwGoto},
      {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
      {"_kernel", TokenKind::KwKernel},
      {"_net_", TokenKind::KwNet},
      {"_managed_", TokenKind::KwManaged},
      {"_lookup_", TokenKind::KwLookup},
      {"_at", TokenKind::KwAt},
      {"_spec", TokenKind::KwSpec},
  };
  const auto it = kKeywords.find(spelling);
  return it == kKeywords.end() ? TokenKind::Identifier : it->second;
}

}  // namespace netcl
