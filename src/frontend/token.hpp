// Token definitions for NetCL-C, the kernel-side language of NetCL.
//
// NetCL-C is the C/C++ subset the paper's frontend accepts in device code,
// plus the NetCL specifiers (`_kernel`, `_net_`, `_managed_`, `_lookup_`,
// `_at`, `_spec`) and the `ncl::` device library.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/source.hpp"

namespace netcl {

enum class TokenKind : std::uint8_t {
  End,
  Identifier,
  IntLiteral,
  CharLiteral,

  // Type keywords.
  KwBool,
  KwChar,
  KwInt,
  KwUnsigned,
  KwSigned,
  KwShort,
  KwLong,
  KwVoid,
  KwAuto,
  KwConst,

  // Control keywords.
  KwIf,
  KwElse,
  KwFor,
  KwWhile,
  KwReturn,
  KwTrue,
  KwFalse,
  KwStatic,
  KwGoto,
  KwBreak,
  KwContinue,

  // NetCL specifiers.
  KwKernel,   // _kernel
  KwNet,      // _net_
  KwManaged,  // _managed_
  KwLookup,   // _lookup_
  KwAt,       // _at
  KwSpec,     // _spec

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Colon,
  ColonColon,
  Question,
  Dot,
  Arrow,

  // Operators.
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Less,
  Greater,
  LessLess,
  GreaterGreater,
  LessEqual,
  GreaterEqual,
  EqualEqual,
  BangEqual,
  AmpAmp,
  PipePipe,
  Equal,
  PlusEqual,
  MinusEqual,
  StarEqual,
  SlashEqual,
  PercentEqual,
  AmpEqual,
  PipeEqual,
  CaretEqual,
  LessLessEqual,
  GreaterGreaterEqual,
  PlusPlus,
  MinusMinus,
};

[[nodiscard]] std::string_view to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::End;
  SourceLoc loc;
  std::string text;        // identifier spelling / literal spelling
  std::uint64_t value = 0; // for integer and char literals

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
  [[nodiscard]] bool is_identifier(std::string_view name) const {
    return kind == TokenKind::Identifier && text == name;
  }
};

/// Maps an identifier spelling to its keyword kind, or Identifier if it is
/// not a keyword.
[[nodiscard]] TokenKind keyword_kind(std::string_view spelling);

}  // namespace netcl
