#include "frontend/type.hpp"

#include <unordered_map>

namespace netcl {

std::int64_t ScalarType::extend(std::uint64_t v) const {
  v = truncate(v);
  if (!is_signed || bits >= 64) return static_cast<std::int64_t>(v);
  const std::uint64_t sign_bit = 1ULL << (bits - 1);
  if ((v & sign_bit) != 0) v |= ~max_unsigned();
  return static_cast<std::int64_t>(v);
}

std::string ScalarType::to_string() const {
  if (bits == 1) return "bool";
  // Built up in two steps: the one-expression concatenation trips a GCC 12
  // -Wrestrict false positive under -Werror.
  std::string name(is_signed ? "i" : "u");
  name += std::to_string(static_cast<int>(bits));
  return name;
}

ScalarType common_type(ScalarType a, ScalarType b) {
  const std::uint8_t bits = a.bits > b.bits ? a.bits : b.bits;
  // Promote to at least int width, as C does.
  const std::uint8_t promoted = bits < 32 ? 32 : bits;
  bool is_signed = true;
  if (a.bits == promoted && !a.is_signed) is_signed = false;
  if (b.bits == promoted && !b.is_signed) is_signed = false;
  if (promoted > a.bits && promoted > b.bits) is_signed = true;  // both promoted to int
  return ScalarType{promoted, is_signed};
}

bool scalar_type_from_name(const std::string& name, ScalarType& out) {
  static const std::unordered_map<std::string, ScalarType> kNames = {
      {"u8", kU8},       {"u16", kU16},      {"u32", kU32},      {"u64", kU64},
      {"i8", kI8},       {"i16", kI16},      {"i32", kI32},      {"i64", kI64},
      {"uint8_t", kU8},  {"uint16_t", kU16}, {"uint32_t", kU32}, {"uint64_t", kU64},
      {"int8_t", kI8},   {"int16_t", kI16},  {"int32_t", kI32},  {"int64_t", kI64},
      {"size_t", kU64},
  };
  const auto it = kNames.find(name);
  if (it == kNames.end()) return false;
  out = it->second;
  return true;
}

}  // namespace netcl
