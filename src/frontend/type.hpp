// NetCL-C type system.
//
// Kernel arguments and device memory are restricted to fundamental integer
// types (the paper, §V-A), plus the lookup record types ncl::kv<K,V> and
// ncl::rv<R,V> which may only appear as element types of _lookup_ arrays.
#pragma once

#include <cstdint>
#include <string>

namespace netcl {

/// Scalar integer type: a bit width (1, 8, 16, 32, or 64) plus signedness.
/// bool is represented as width 1, unsigned.
struct ScalarType {
  std::uint8_t bits = 32;
  bool is_signed = false;

  friend bool operator==(ScalarType, ScalarType) = default;

  [[nodiscard]] std::uint64_t max_unsigned() const {
    return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
  }
  /// Truncates `v` to this type's width (two's complement wraparound).
  [[nodiscard]] std::uint64_t truncate(std::uint64_t v) const {
    return v & max_unsigned();
  }
  /// Sign- or zero-extends a truncated value back to 64 bits for arithmetic.
  [[nodiscard]] std::int64_t extend(std::uint64_t v) const;

  [[nodiscard]] std::string to_string() const;
};

inline constexpr ScalarType kBool{1, false};
inline constexpr ScalarType kU8{8, false};
inline constexpr ScalarType kU16{16, false};
inline constexpr ScalarType kU32{32, false};
inline constexpr ScalarType kU64{64, false};
inline constexpr ScalarType kI8{8, true};
inline constexpr ScalarType kI16{16, true};
inline constexpr ScalarType kI32{32, true};
inline constexpr ScalarType kI64{64, true};

/// C-style usual arithmetic conversions restricted to our widths: the result
/// has the larger width; if widths are equal and either side is unsigned the
/// result is unsigned.
[[nodiscard]] ScalarType common_type(ScalarType a, ScalarType b);

/// Lookup-array element kinds (Table I of the paper).
enum class LookupKind : std::uint8_t {
  Set,    // scalar element; lookup() tests membership
  Exact,  // ncl::kv<K,V>; exact match on k
  Range,  // ncl::rv<R,V>; lo <= x <= hi
};

/// Resolves a named scalar type ("u32", "uint16_t", "int", ...). Returns
/// false if the name is not a known scalar type alias.
[[nodiscard]] bool scalar_type_from_name(const std::string& name, ScalarType& out);

}  // namespace netcl
