#include "ir/builder.hpp"

#include <cassert>

namespace netcl::ir {

Value* Builder::adapt(Value* v, ScalarType type) {
  if (v->type().bits == type.bits) return v;
  if (const Constant* c = as_constant(v)) {
    // Re-intern constants at the new width, preserving the numeric value
    // under the source type's signedness.
    return const_of(type, static_cast<std::uint64_t>(c->extended()));
  }
  auto inst = make(Opcode::Cast, type, {});
  inst->cast_signed = v->type().is_signed;
  inst->add_operand(v);
  return emit(std::move(inst));
}

Value* Builder::adapt_in(Value* v, ScalarType type, BasicBlock* block) {
  if (v->type().bits == type.bits) return v;
  if (const Constant* c = as_constant(v)) {
    return const_of(type, static_cast<std::uint64_t>(c->extended()));
  }
  auto inst = make(Opcode::Cast, type, {});
  inst->cast_signed = v->type().is_signed;
  inst->add_operand(v);
  return block->insert_before_terminator(std::move(inst));
}

Value* Builder::bin(BinKind kind, Value* a, Value* b, ScalarType type, SourceLoc loc) {
  auto inst = make(Opcode::Bin, type, loc);
  inst->bin_kind = kind;
  inst->add_operand(adapt(a, type));
  inst->add_operand(adapt(b, type));
  return emit(std::move(inst));
}

Value* Builder::icmp(ICmpPred pred, Value* a, Value* b, SourceLoc loc) {
  // Compare at the wider operand width.
  ScalarType cmp_type = a->type().bits >= b->type().bits ? a->type() : b->type();
  auto inst = make(Opcode::ICmp, kBool, loc);
  inst->icmp_pred = pred;
  inst->add_operand(adapt(a, cmp_type));
  inst->add_operand(adapt(b, cmp_type));
  return emit(std::move(inst));
}

Value* Builder::select(Value* cond, Value* a, Value* b, SourceLoc loc) {
  assert(a->type().bits == b->type().bits && "select arms must have equal widths");
  auto inst = make(Opcode::Select, a->type(), loc);
  inst->add_operand(to_bool(cond, loc));
  inst->add_operand(a);
  inst->add_operand(b);
  return emit(std::move(inst));
}

Value* Builder::logical_not(Value* v, SourceLoc loc) {
  return icmp(ICmpPred::EQ, v, const_of(v->type(), 0), loc);
}

Value* Builder::to_bool(Value* v, SourceLoc loc) {
  if (v->type().bits == 1) return v;
  return icmp(ICmpPred::NE, v, const_of(v->type(), 0), loc);
}

Instruction* Builder::load_global(GlobalVar* global, std::vector<Value*> indices,
                                  SourceLoc loc) {
  auto inst = make(Opcode::LoadGlobal, global->elem_type, loc);
  inst->global = global;
  inst->num_indices = static_cast<int>(indices.size());
  for (Value* index : indices) inst->add_operand(index);
  return emit(std::move(inst));
}

Instruction* Builder::store_global(GlobalVar* global, std::vector<Value*> indices, Value* value,
                                   SourceLoc loc) {
  auto inst = make(Opcode::StoreGlobal, global->elem_type, loc);
  inst->global = global;
  inst->num_indices = static_cast<int>(indices.size());
  for (Value* index : indices) inst->add_operand(index);
  inst->add_operand(adapt(value, global->elem_type));
  return emit(std::move(inst));
}

Instruction* Builder::atomic_rmw(GlobalVar* global, std::vector<Value*> indices, AtomicOpKind op,
                                 bool is_cond, bool returns_new, Value* cond,
                                 std::vector<Value*> operands, SourceLoc loc) {
  auto inst = make(Opcode::AtomicRMW, global->elem_type, loc);
  inst->global = global;
  inst->atomic_op = op;
  inst->atomic_cond = is_cond;
  inst->atomic_new = returns_new;
  inst->num_indices = static_cast<int>(indices.size());
  for (Value* index : indices) inst->add_operand(index);
  if (is_cond) {
    assert(cond != nullptr);
    inst->add_operand(to_bool(cond, loc));
  }
  for (Value* operand : operands) inst->add_operand(adapt(operand, global->elem_type));
  return emit(std::move(inst));
}

Instruction* Builder::lookup(GlobalVar* global, Value* key, SourceLoc loc) {
  auto inst = make(Opcode::Lookup, kBool, loc);
  inst->global = global;
  inst->add_operand(adapt(key, global->is_lookup && global->lookup_kind != LookupKind::Set
                                   ? global->key_type
                                   : global->elem_type));
  return emit(std::move(inst));
}

Instruction* Builder::lookup_value(Instruction* lookup_inst, Value* default_value,
                                   SourceLoc loc) {
  assert(lookup_inst->op() == Opcode::Lookup);
  const ScalarType value_type = lookup_inst->global->value_type;
  auto inst = make(Opcode::LookupValue, value_type, loc);
  inst->global = lookup_inst->global;
  inst->add_operand(lookup_inst);
  inst->add_operand(adapt(default_value, value_type));
  return emit(std::move(inst));
}

Instruction* Builder::load_msg(Argument* arg, Value* index, SourceLoc loc) {
  auto inst = make(Opcode::LoadMsg, arg->type(), loc);
  inst->arg_index = arg->index();
  inst->add_operand(index);
  return emit(std::move(inst));
}

Instruction* Builder::store_msg(Argument* arg, Value* index, Value* value, SourceLoc loc) {
  auto inst = make(Opcode::StoreMsg, arg->type(), loc);
  inst->arg_index = arg->index();
  inst->add_operand(index);
  inst->add_operand(adapt(value, arg->type()));
  return emit(std::move(inst));
}

Instruction* Builder::load_local(LocalArray* array, Value* index, SourceLoc loc) {
  auto inst = make(Opcode::LoadLocal, array->elem_type, loc);
  inst->local_array = array;
  inst->add_operand(index);
  return emit(std::move(inst));
}

Instruction* Builder::store_local(LocalArray* array, Value* index, Value* value, SourceLoc loc) {
  auto inst = make(Opcode::StoreLocal, array->elem_type, loc);
  inst->local_array = array;
  inst->add_operand(index);
  inst->add_operand(adapt(value, array->elem_type));
  return emit(std::move(inst));
}

Instruction* Builder::hash(HashKind kind, std::uint8_t width_bits, std::vector<Value*> inputs,
                           SourceLoc loc) {
  auto inst = make(Opcode::Hash, ScalarType{width_bits, false}, loc);
  inst->hash_kind = kind;
  for (Value* input : inputs) inst->add_operand(input);
  return emit(std::move(inst));
}

Instruction* Builder::rand(std::uint8_t width_bits, SourceLoc loc) {
  return emit(make(Opcode::Rand, ScalarType{width_bits, false}, loc));
}

Instruction* Builder::br(BasicBlock* target) {
  auto inst = make(Opcode::Br, kBool, {});
  inst->succs.push_back(target);
  return emit(std::move(inst));
}

Instruction* Builder::cond_br(Value* cond, BasicBlock* if_true, BasicBlock* if_false) {
  auto inst = make(Opcode::CondBr, kBool, {});
  inst->add_operand(to_bool(cond));
  inst->succs.push_back(if_true);
  inst->succs.push_back(if_false);
  return emit(std::move(inst));
}

Instruction* Builder::ret() { return emit(make(Opcode::Ret, kBool, {})); }

Instruction* Builder::ret_action(ActionKind action, Value* id) {
  auto inst = make(Opcode::RetAction, kBool, {});
  inst->action = action;
  if (id != nullptr) inst->add_operand(adapt(id, kU16));
  return emit(std::move(inst));
}

Instruction* Builder::phi(ScalarType type) {
  auto inst = std::make_unique<Instruction>(Opcode::Phi, type);
  inst->set_parent(block_);
  // Phis always live at the top of the block.
  return block_->insert_after_phis(
      std::unique_ptr<Instruction>(inst.release()));
}

}  // namespace netcl::ir
