// Instruction builder: creates instructions appended to an insertion block.
// Width adaptation is explicit: `adapt` inserts Cast instructions when an
// operand's width differs from the required type.
#pragma once

#include "ir/ir.hpp"

namespace netcl::ir {

class Builder {
 public:
  Builder(Module& module, Function& fn) : module_(module), fn_(fn) {}

  void set_insert_point(BasicBlock* block) { block_ = block; }
  [[nodiscard]] BasicBlock* insert_block() const { return block_; }
  [[nodiscard]] Module& module() { return module_; }
  [[nodiscard]] Function& function() { return fn_; }

  [[nodiscard]] Constant* const_of(ScalarType type, std::uint64_t value) {
    return module_.constant(type, value);
  }

  /// Returns `v` adapted to width `type.bits` (inserting a Cast if needed).
  Value* adapt(Value* v, ScalarType type);

  /// Like adapt, but inserts the Cast before the terminator of `block`
  /// (used when wiring phi incomings).
  Value* adapt_in(Value* v, ScalarType type, BasicBlock* block);

  Value* bin(BinKind kind, Value* a, Value* b, ScalarType type, SourceLoc loc = {});
  Value* icmp(ICmpPred pred, Value* a, Value* b, SourceLoc loc = {});
  Value* select(Value* cond, Value* a, Value* b, SourceLoc loc = {});
  /// Logical not: icmp eq v, 0.
  Value* logical_not(Value* v, SourceLoc loc = {});
  /// Normalizes an arbitrary integer to i1 (icmp ne v, 0); no-op on i1.
  Value* to_bool(Value* v, SourceLoc loc = {});

  Instruction* load_global(GlobalVar* global, std::vector<Value*> indices, SourceLoc loc = {});
  Instruction* store_global(GlobalVar* global, std::vector<Value*> indices, Value* value,
                            SourceLoc loc = {});
  Instruction* atomic_rmw(GlobalVar* global, std::vector<Value*> indices, AtomicOpKind op,
                          bool is_cond, bool returns_new, Value* cond,
                          std::vector<Value*> operands, SourceLoc loc = {});
  Instruction* lookup(GlobalVar* global, Value* key, SourceLoc loc = {});
  Instruction* lookup_value(Instruction* lookup_inst, Value* default_value, SourceLoc loc = {});

  Instruction* load_msg(Argument* arg, Value* index, SourceLoc loc = {});
  Instruction* store_msg(Argument* arg, Value* index, Value* value, SourceLoc loc = {});
  Instruction* load_local(LocalArray* array, Value* index, SourceLoc loc = {});
  Instruction* store_local(LocalArray* array, Value* index, Value* value, SourceLoc loc = {});

  Instruction* hash(HashKind kind, std::uint8_t width_bits, std::vector<Value*> inputs,
                    SourceLoc loc = {});
  Instruction* rand(std::uint8_t width_bits, SourceLoc loc = {});

  Instruction* br(BasicBlock* target);
  Instruction* cond_br(Value* cond, BasicBlock* if_true, BasicBlock* if_false);
  Instruction* ret();
  Instruction* ret_action(ActionKind action, Value* id = nullptr);
  Instruction* phi(ScalarType type);

 private:
  Instruction* emit(std::unique_ptr<Instruction> inst) {
    return block_->append(std::move(inst));
  }
  std::unique_ptr<Instruction> make(Opcode op, ScalarType type, SourceLoc loc) {
    auto inst = std::make_unique<Instruction>(op, type);
    inst->loc = loc;
    return inst;
  }

  Module& module_;
  Function& fn_;
  BasicBlock* block_ = nullptr;
};

}  // namespace netcl::ir
