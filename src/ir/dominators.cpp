#include "ir/dominators.hpp"

#include <algorithm>
#include <cassert>

namespace netcl::ir {

DominatorTree::DominatorTree(Function& fn) {
  rpo_ = fn.reverse_postorder();
  for (std::size_t i = 0; i < rpo_.size(); ++i) rpo_index_[rpo_[i]] = static_cast<int>(i);
  idom_.assign(rpo_.size(), -1);
  if (rpo_.empty()) return;
  idom_[0] = 0;

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 1; i < rpo_.size(); ++i) {
      int new_idom = -1;
      for (const BasicBlock* pred : rpo_[i]->predecessors()) {
        const auto it = rpo_index_.find(pred);
        if (it == rpo_index_.end()) continue;  // unreachable predecessor
        const int p = it->second;
        if (idom_[p] == -1) continue;  // not yet processed
        new_idom = new_idom == -1 ? p : intersect(p, new_idom);
      }
      if (new_idom != -1 && idom_[i] != new_idom) {
        idom_[i] = new_idom;
        changed = true;
      }
    }
  }
}

int DominatorTree::index_of(const BasicBlock* block) const {
  const auto it = rpo_index_.find(block);
  return it == rpo_index_.end() ? -1 : it->second;
}

int DominatorTree::intersect(int a, int b) const {
  while (a != b) {
    while (a > b) a = idom_[a];
    while (b > a) b = idom_[b];
  }
  return a;
}

BasicBlock* DominatorTree::idom(const BasicBlock* block) const {
  const int index = index_of(block);
  if (index <= 0) return nullptr;
  return rpo_[static_cast<std::size_t>(idom_[index])];
}

bool DominatorTree::dominates(const BasicBlock* a, const BasicBlock* b) const {
  int ia = index_of(a);
  int ib = index_of(b);
  if (ia < 0 || ib < 0) return false;
  while (ib > ia) ib = idom_[ib];
  return ia == ib;
}

bool DominatorTree::dominates(const Instruction* def, const Instruction* use) const {
  const BasicBlock* def_block = def->parent();
  const BasicBlock* use_block = use->parent();
  if (def_block != use_block) return dominates(def_block, use_block);
  for (const auto& inst : def_block->instructions()) {
    if (inst.get() == def) return true;
    if (inst.get() == use) return false;
  }
  return false;
}

BasicBlock* DominatorTree::common_dominator(BasicBlock* a, BasicBlock* b) const {
  int ia = index_of(a);
  int ib = index_of(b);
  assert(ia >= 0 && ib >= 0);
  return rpo_[static_cast<std::size_t>(intersect(ia, ib))];
}

PostDominatorTree::PostDominatorTree(Function& fn) {
  fn.recompute_preds();
  // Order blocks by reverse postorder of the *reversed* graph: a postorder
  // DFS from the exits. Our CFG is acyclic, so a reversed topological order
  // of the forward RPO works.
  std::vector<BasicBlock*> order = fn.reverse_postorder();
  std::reverse(order.begin(), order.end());
  std::unordered_map<const BasicBlock*, int> index;
  for (std::size_t i = 0; i < order.size(); ++i) index[order[i]] = static_cast<int>(i);

  // idom over reversed edges; -1 encodes the virtual exit.
  std::vector<int> idom(order.size(), -2);  // -2 = unknown
  auto intersect = [&](int a, int b) -> int {
    while (a != b) {
      if (a == -1 || b == -1) return -1;
      while (a > b) a = idom[static_cast<std::size_t>(a)];
      while (b > a) b = idom[static_cast<std::size_t>(b)];
      if (a == -1 || b == -1) return -1;
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < order.size(); ++i) {
      BasicBlock* block = order[i];
      int new_idom = -2;
      if (block->successors().empty()) {
        new_idom = -1;  // the virtual exit post-dominates exit blocks
      } else {
        for (BasicBlock* succ : block->successors()) {
          // Successors precede `block` in this order, so their idom entry
          // is already valid within the current sweep.
          const int s = index.at(succ);
          if (new_idom == -2) {
            new_idom = s;
          } else {
            new_idom = intersect(new_idom, s);
          }
        }
      }
      if (new_idom != -2 && idom[i] != new_idom) {
        idom[i] = new_idom;
        changed = true;
      }
    }
  }

  for (std::size_t i = 0; i < order.size(); ++i) {
    ipostdom_[order[i]] =
        idom[i] >= 0 ? order[static_cast<std::size_t>(idom[i])] : nullptr;
  }
}

BasicBlock* PostDominatorTree::ipostdom(const BasicBlock* block) const {
  const auto it = ipostdom_.find(block);
  return it == ipostdom_.end() ? nullptr : it->second;
}

}  // namespace netcl::ir
