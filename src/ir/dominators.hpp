// Dominator tree (Cooper-Harvey-Kennedy iterative algorithm).
//
// Used by the verifier (SSA dominance), the hoisting pass (nearest common
// dominators) and the memory-legality checks (mutual exclusion).
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/ir.hpp"

namespace netcl::ir {

class DominatorTree {
 public:
  /// Builds the tree; the function's predecessor lists must be current
  /// (call fn.recompute_preds() first).
  explicit DominatorTree(Function& fn);

  /// Immediate dominator; nullptr for the entry block.
  [[nodiscard]] BasicBlock* idom(const BasicBlock* block) const;

  /// Reflexive dominance: dominates(a, a) is true.
  [[nodiscard]] bool dominates(const BasicBlock* a, const BasicBlock* b) const;

  /// Instruction-level dominance: def must be executed before use.
  [[nodiscard]] bool dominates(const Instruction* def, const Instruction* use) const;

  /// Nearest common dominator of two blocks.
  [[nodiscard]] BasicBlock* common_dominator(BasicBlock* a, BasicBlock* b) const;

  [[nodiscard]] const std::vector<BasicBlock*>& reverse_postorder() const { return rpo_; }

 private:
  [[nodiscard]] int index_of(const BasicBlock* block) const;
  [[nodiscard]] int intersect(int a, int b) const;

  std::vector<BasicBlock*> rpo_;
  std::unordered_map<const BasicBlock*, int> rpo_index_;
  std::vector<int> idom_;  // by rpo index; idom_[0] == 0
};

/// Post-dominator tree over the reversed CFG with a virtual exit joining
/// all return blocks. Used by the P4 code generator to find the merge
/// point of a conditional (its immediate post-dominator).
class PostDominatorTree {
 public:
  explicit PostDominatorTree(Function& fn);

  /// Immediate post-dominator; nullptr when it is the virtual exit.
  [[nodiscard]] BasicBlock* ipostdom(const BasicBlock* block) const;

 private:
  std::unordered_map<const BasicBlock*, BasicBlock*> ipostdom_;
};

}  // namespace netcl::ir
