#include "ir/eval.hpp"

namespace netcl::ir {

std::uint64_t eval_bin(BinKind kind, std::uint64_t a, std::uint64_t b, ScalarType type) {
  const std::int64_t sa = type.extend(a);
  const std::int64_t sb = type.extend(b);
  const std::uint64_t ua = type.truncate(a);
  const std::uint64_t ub = type.truncate(b);
  const unsigned shift_mask = type.bits >= 64 ? 63 : 63;  // C-like masking
  switch (kind) {
    case BinKind::Add: return type.truncate(ua + ub);
    case BinKind::Sub: return type.truncate(ua - ub);
    case BinKind::Mul: return type.truncate(ua * ub);
    case BinKind::UDiv: return ub == 0 ? 0 : ua / ub;
    case BinKind::SDiv: return sb == 0 ? 0 : type.truncate(static_cast<std::uint64_t>(sa / sb));
    case BinKind::URem: return ub == 0 ? 0 : ua % ub;
    case BinKind::SRem: return sb == 0 ? 0 : type.truncate(static_cast<std::uint64_t>(sa % sb));
    case BinKind::Shl: return type.truncate(ua << (ub & shift_mask));
    case BinKind::LShr: return (ub & shift_mask) >= type.bits ? 0 : ua >> (ub & shift_mask);
    case BinKind::AShr: {
      const unsigned amount = static_cast<unsigned>(ub & shift_mask);
      if (amount >= type.bits) return type.truncate(sa < 0 ? ~0ULL : 0);
      return type.truncate(static_cast<std::uint64_t>(sa >> amount));
    }
    case BinKind::And: return ua & ub;
    case BinKind::Or: return ua | ub;
    case BinKind::Xor: return ua ^ ub;
    case BinKind::SAddSat: {
      const std::uint64_t sum = ua + ub;
      if (type.bits >= 64) return sum < ua ? ~0ULL : sum;
      return sum > type.max_unsigned() ? type.max_unsigned() : sum;
    }
    case BinKind::SSubSat: return ua < ub ? 0 : ua - ub;
    case BinKind::UMin: return ua < ub ? ua : ub;
    case BinKind::UMax: return ua > ub ? ua : ub;
    case BinKind::SMin: return type.truncate(static_cast<std::uint64_t>(sa < sb ? sa : sb));
    case BinKind::SMax: return type.truncate(static_cast<std::uint64_t>(sa > sb ? sa : sb));
  }
  return 0;
}

bool eval_icmp(ICmpPred pred, std::uint64_t a, std::uint64_t b, ScalarType type) {
  const std::int64_t sa = type.extend(a);
  const std::int64_t sb = type.extend(b);
  const std::uint64_t ua = type.truncate(a);
  const std::uint64_t ub = type.truncate(b);
  switch (pred) {
    case ICmpPred::EQ: return ua == ub;
    case ICmpPred::NE: return ua != ub;
    case ICmpPred::ULT: return ua < ub;
    case ICmpPred::ULE: return ua <= ub;
    case ICmpPred::UGT: return ua > ub;
    case ICmpPred::UGE: return ua >= ub;
    case ICmpPred::SLT: return sa < sb;
    case ICmpPred::SLE: return sa <= sb;
    case ICmpPred::SGT: return sa > sb;
    case ICmpPred::SGE: return sa >= sb;
  }
  return false;
}

std::uint64_t eval_atomic(AtomicOpKind op, std::uint64_t memory, std::uint64_t operand0,
                          std::uint64_t operand1, ScalarType type) {
  switch (op) {
    case AtomicOpKind::Add: return eval_bin(BinKind::Add, memory, operand0, type);
    case AtomicOpKind::SAdd: return eval_bin(BinKind::SAddSat, memory, operand0, type);
    case AtomicOpKind::Sub: return eval_bin(BinKind::Sub, memory, operand0, type);
    case AtomicOpKind::SSub: return eval_bin(BinKind::SSubSat, memory, operand0, type);
    case AtomicOpKind::Or: return eval_bin(BinKind::Or, memory, operand0, type);
    case AtomicOpKind::And: return eval_bin(BinKind::And, memory, operand0, type);
    case AtomicOpKind::Xor: return eval_bin(BinKind::Xor, memory, operand0, type);
    case AtomicOpKind::Inc: return eval_bin(BinKind::Add, memory, 1, type);
    case AtomicOpKind::Dec: return eval_bin(BinKind::Sub, memory, 1, type);
    case AtomicOpKind::Min: return eval_bin(BinKind::UMin, memory, operand0, type);
    case AtomicOpKind::Max: return eval_bin(BinKind::UMax, memory, operand0, type);
    case AtomicOpKind::Cas:
      return type.truncate(memory) == type.truncate(operand0) ? type.truncate(operand1)
                                                              : type.truncate(memory);
  }
  return memory;
}

}  // namespace netcl::ir
