// Shared evaluation semantics for IR arithmetic.
//
// One implementation serves both the constant folder (passes/simplify) and
// the switch simulator's pipeline interpreter, so compile-time folding and
// run-time execution can never disagree.
#pragma once

#include <cstdint>

#include "ir/ir.hpp"

namespace netcl::ir {

[[nodiscard]] std::uint64_t eval_bin(BinKind kind, std::uint64_t a, std::uint64_t b,
                                     ScalarType type);

[[nodiscard]] bool eval_icmp(ICmpPred pred, std::uint64_t a, std::uint64_t b, ScalarType type);

/// Applies one atomic RMW operation. Returns the new memory value;
/// `operand0/operand1` follow the AtomicRMW operand convention (operand1 is
/// only used by CAS).
[[nodiscard]] std::uint64_t eval_atomic(AtomicOpKind op, std::uint64_t memory,
                                        std::uint64_t operand0, std::uint64_t operand1,
                                        ScalarType type);

}  // namespace netcl::ir
