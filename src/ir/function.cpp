#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "ir/ir.hpp"

namespace netcl::ir {

// ---------------------------------------------------------------------------
// BasicBlock
// ---------------------------------------------------------------------------

Instruction* BasicBlock::append(std::unique_ptr<Instruction> inst) {
  inst->set_parent(this);
  instructions_.push_back(std::move(inst));
  return instructions_.back().get();
}

Instruction* BasicBlock::insert_before_terminator(std::unique_ptr<Instruction> inst) {
  inst->set_parent(this);
  auto it = instructions_.end();
  if (!instructions_.empty() && instructions_.back()->is_terminator()) --it;
  return instructions_.insert(it, std::move(inst))->get();
}

Instruction* BasicBlock::insert_after_phis(std::unique_ptr<Instruction> inst) {
  inst->set_parent(this);
  auto it = instructions_.begin();
  while (it != instructions_.end() && (*it)->op() == Opcode::Phi) ++it;
  return instructions_.insert(it, std::move(inst))->get();
}

void BasicBlock::erase(Instruction* inst) {
  const auto it = std::find_if(instructions_.begin(), instructions_.end(),
                               [&](const auto& p) { return p.get() == inst; });
  assert(it != instructions_.end() && "erasing an instruction not in this block");
  instructions_.erase(it);
}

std::unique_ptr<Instruction> BasicBlock::detach(Instruction* inst) {
  const auto it = std::find_if(instructions_.begin(), instructions_.end(),
                               [&](const auto& p) { return p.get() == inst; });
  assert(it != instructions_.end() && "detaching an instruction not in this block");
  std::unique_ptr<Instruction> owned = std::move(*it);
  instructions_.erase(it);
  owned->set_parent(nullptr);
  return owned;
}

Instruction* BasicBlock::terminator() const {
  if (instructions_.empty()) return nullptr;
  Instruction* last = instructions_.back().get();
  return last->is_terminator() ? last : nullptr;
}

std::vector<BasicBlock*> BasicBlock::successors() const {
  const Instruction* term = terminator();
  return term != nullptr ? term->succs : std::vector<BasicBlock*>{};
}

// ---------------------------------------------------------------------------
// Function
// ---------------------------------------------------------------------------

Argument* Function::add_argument(ScalarType type, int elem_count, bool writable,
                                 std::string name) {
  arguments_.push_back(std::make_unique<Argument>(type, static_cast<int>(arguments_.size()),
                                                  elem_count, writable, std::move(name)));
  return arguments_.back().get();
}

BasicBlock* Function::add_block(std::string name) {
  blocks_.push_back(std::make_unique<BasicBlock>(this, next_block_id_++, std::move(name)));
  return blocks_.back().get();
}

void Function::erase_block(BasicBlock* block) {
  const auto it = std::find_if(blocks_.begin(), blocks_.end(),
                               [&](const auto& p) { return p.get() == block; });
  assert(it != blocks_.end() && "erasing a block not in this function");
  blocks_.erase(it);
}

LocalArray* Function::add_local_array(std::string name, ScalarType elem, int size) {
  auto array = std::make_unique<LocalArray>();
  array->id = next_local_array_id_++;
  array->name = std::move(name);
  array->elem_type = elem;
  array->size = size;
  local_arrays_.push_back(std::move(array));
  return local_arrays_.back().get();
}

void Function::erase_local_array(LocalArray* array) {
  const auto it = std::find_if(local_arrays_.begin(), local_arrays_.end(),
                               [&](const auto& p) { return p.get() == array; });
  assert(it != local_arrays_.end());
  local_arrays_.erase(it);
}

void Function::remove_unreachable_blocks() {
  std::unordered_set<const BasicBlock*> reachable;
  for (BasicBlock* block : reverse_postorder()) reachable.insert(block);
  // Phis in surviving blocks may reference incoming edges from blocks about
  // to be removed; prune those incomings first.
  for (const auto& block : blocks_) {
    if (reachable.count(block.get()) == 0) continue;
    for (const auto& inst : block->instructions()) {
      if (inst->op() != Opcode::Phi) continue;
      for (std::size_t i = inst->phi_blocks.size(); i-- > 0;) {
        if (reachable.count(inst->phi_blocks[i]) == 0) {
          inst->phi_blocks.erase(inst->phi_blocks.begin() + static_cast<std::ptrdiff_t>(i));
          inst->remove_operand(i);
        }
      }
    }
  }
  blocks_.erase(std::remove_if(blocks_.begin(), blocks_.end(),
                               [&](const auto& block) {
                                 return reachable.count(block.get()) == 0;
                               }),
                blocks_.end());
  recompute_preds();
}

void Function::recompute_preds() {
  for (const auto& block : blocks_) block->predecessors().clear();
  for (const auto& block : blocks_) {
    for (BasicBlock* succ : block->successors()) {
      succ->predecessors().push_back(block.get());
    }
  }
}

std::vector<BasicBlock*> Function::reverse_postorder() const {
  std::vector<BasicBlock*> postorder;
  std::unordered_set<const BasicBlock*> visited;
  auto dfs = [&](auto&& self, BasicBlock* block) -> void {
    if (!visited.insert(block).second) return;
    for (BasicBlock* succ : block->successors()) self(self, succ);
    postorder.push_back(block);
  };
  if (entry() != nullptr) dfs(dfs, entry());
  std::reverse(postorder.begin(), postorder.end());
  return postorder;
}

void Function::replace_all_uses(Value* from, Value* to) {
  for (const auto& block : blocks_) {
    for (const auto& inst : block->instructions()) {
      for (std::size_t i = 0; i < inst->num_operands(); ++i) {
        if (inst->operand(i) == from) inst->set_operand(i, to);
      }
    }
  }
}

std::size_t Function::instruction_count() const {
  std::size_t count = 0;
  for (const auto& block : blocks_) count += block->instructions().size();
  return count;
}

}  // namespace netcl::ir
