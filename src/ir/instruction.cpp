#include "ir/ir.hpp"

namespace netcl::ir {

std::string to_string(Opcode op) {
  switch (op) {
    case Opcode::Phi: return "phi";
    case Opcode::Bin: return "bin";
    case Opcode::ICmp: return "icmp";
    case Opcode::Select: return "select";
    case Opcode::Cast: return "cast";
    case Opcode::LoadGlobal: return "load.global";
    case Opcode::StoreGlobal: return "store.global";
    case Opcode::AtomicRMW: return "atomicrmw";
    case Opcode::Lookup: return "lookup";
    case Opcode::LookupValue: return "lookup.value";
    case Opcode::LoadMsg: return "load.msg";
    case Opcode::StoreMsg: return "store.msg";
    case Opcode::LoadLocal: return "load.local";
    case Opcode::StoreLocal: return "store.local";
    case Opcode::Hash: return "hash";
    case Opcode::Rand: return "rand";
    case Opcode::MsgMeta: return "msg.meta";
    case Opcode::Clz: return "clz";
    case Opcode::Bswap: return "bswap";
    case Opcode::Br: return "br";
    case Opcode::CondBr: return "condbr";
    case Opcode::Ret: return "ret";
    case Opcode::RetAction: return "ret.action";
  }
  return "?";
}

std::string to_string(BinKind kind) {
  switch (kind) {
    case BinKind::Add: return "add";
    case BinKind::Sub: return "sub";
    case BinKind::Mul: return "mul";
    case BinKind::UDiv: return "udiv";
    case BinKind::SDiv: return "sdiv";
    case BinKind::URem: return "urem";
    case BinKind::SRem: return "srem";
    case BinKind::Shl: return "shl";
    case BinKind::LShr: return "lshr";
    case BinKind::AShr: return "ashr";
    case BinKind::And: return "and";
    case BinKind::Or: return "or";
    case BinKind::Xor: return "xor";
    case BinKind::SAddSat: return "sadd.sat";
    case BinKind::SSubSat: return "ssub.sat";
    case BinKind::UMin: return "umin";
    case BinKind::UMax: return "umax";
    case BinKind::SMin: return "smin";
    case BinKind::SMax: return "smax";
  }
  return "?";
}

std::string to_string(ICmpPred pred) {
  switch (pred) {
    case ICmpPred::EQ: return "eq";
    case ICmpPred::NE: return "ne";
    case ICmpPred::ULT: return "ult";
    case ICmpPred::ULE: return "ule";
    case ICmpPred::UGT: return "ugt";
    case ICmpPred::UGE: return "uge";
    case ICmpPred::SLT: return "slt";
    case ICmpPred::SLE: return "sle";
    case ICmpPred::SGT: return "sgt";
    case ICmpPred::SGE: return "sge";
  }
  return "?";
}

bool is_signed_pred(ICmpPred pred) {
  switch (pred) {
    case ICmpPred::SLT:
    case ICmpPred::SLE:
    case ICmpPred::SGT:
    case ICmpPred::SGE:
      return true;
    default:
      return false;
  }
}

}  // namespace netcl::ir
