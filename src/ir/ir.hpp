// NetCL compiler intermediate representation.
//
// The IR is an SSA-form CFG over integer values, mirroring the role LLVM IR
// plays in the paper's compiler. Design points that differ from LLVM, all
// motivated by the P4/RMT targets:
//
//  * The CFG is acyclic by construction: loops are fully unrolled and net
//    functions fully inlined during AST lowering (the paper does both as
//    LLVM passes; the observable result is identical).
//  * Global memory accesses are first-class instructions (LoadGlobal /
//    StoreGlobal / AtomicRMW / Lookup) carrying their GlobalVar and one
//    index operand per array dimension — no pointer arithmetic exists, so
//    the backend can always infer "base object + regular offset" (§V-D).
//  * Message (kernel-argument) accesses are LoadMsg / StoreMsg carrying the
//    argument index; the backend maps them onto header fields.
//
// Ownership: a Module owns globals, constants, and functions; a Function
// owns its arguments, local arrays, and blocks; a BasicBlock owns its
// instructions. Raw pointers elsewhere are non-owning borrows within the
// same Module.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "frontend/ast.hpp"
#include "frontend/sema.hpp"

namespace netcl::ir {

using netcl::ScalarType;

class BasicBlock;
class Function;
class Module;

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

enum class ValueKind : std::uint8_t { Constant, Argument, Instruction };

class Value {
 public:
  Value(ValueKind kind, ScalarType type) : kind_(kind), type_(type) {}
  virtual ~Value() = default;
  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  [[nodiscard]] ValueKind kind() const { return kind_; }
  [[nodiscard]] ScalarType type() const { return type_; }
  void set_type(ScalarType t) { type_ = t; }

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  ValueKind kind_;
  ScalarType type_;
  std::string name_;
};

class Constant final : public Value {
 public:
  Constant(ScalarType type, std::uint64_t value)
      : Value(ValueKind::Constant, type), value_(type.truncate(value)) {}

  /// The value truncated to the constant's width.
  [[nodiscard]] std::uint64_t value() const { return value_; }
  /// The value sign/zero-extended to 64 bits per the constant's type.
  [[nodiscard]] std::int64_t extended() const { return type().extend(value_); }

 private:
  std::uint64_t value_;
};

/// A kernel argument (one message field group). Scalars are SSA values;
/// array arguments act only as handles for LoadMsg/StoreMsg.
class Argument final : public Value {
 public:
  Argument(ScalarType type, int index, int elem_count, bool writable, std::string name)
      : Value(ValueKind::Argument, type), index_(index), elem_count_(elem_count),
        writable_(writable) {
    set_name(std::move(name));
  }

  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] int elem_count() const { return elem_count_; }
  [[nodiscard]] bool writable() const { return writable_; }
  [[nodiscard]] bool is_array() const { return elem_count_ > 1; }

 private:
  int index_;
  int elem_count_;
  bool writable_;
};

// ---------------------------------------------------------------------------
// Global memory
// ---------------------------------------------------------------------------

/// One device-memory object. Indexed (register) memory and lookup (MAT)
/// memory share this type; `is_lookup` picks the flavor.
struct GlobalVar {
  int id = 0;
  std::string name;
  ScalarType elem_type;
  std::vector<std::int64_t> dims;  // empty = scalar
  bool is_managed = false;
  bool is_lookup = false;
  LookupKind lookup_kind = LookupKind::Set;
  ScalarType key_type;
  ScalarType value_type;
  std::vector<LookupEntry> entries;

  [[nodiscard]] std::int64_t element_count() const {
    std::int64_t n = 1;
    for (const std::int64_t d : dims) n *= d;
    return n;
  }
  /// Total size in bits, as placed into stage SRAM.
  [[nodiscard]] std::int64_t bit_size() const { return element_count() * elem_type.bits; }
};

/// A function-local array that survived SROA (dynamically indexed); the
/// backend lowers it to a header stack plus index tables (Fig. 9).
struct LocalArray {
  int id = 0;
  std::string name;
  ScalarType elem_type;
  int size = 0;
};

// ---------------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------------

enum class Opcode : std::uint8_t {
  Phi,
  Bin,          // binary arithmetic/logical
  ICmp,         // integer comparison -> i1
  Select,       // (cond, a, b)
  Cast,         // width/signedness change (zext/sext/trunc by operand+type)
  LoadGlobal,   // [indices...] -> elem
  StoreGlobal,  // [indices..., value]
  AtomicRMW,    // [indices..., (cond), (operands...)] -> elem
  Lookup,       // [key] -> i1 hit
  LookupValue,  // [lookup, default] -> value written by the MAT on hit
  LoadMsg,      // [index] -> elem   (message/kernel-arg array element)
  StoreMsg,     // [index, value]
  LoadLocal,    // [index] -> elem   (local array element)
  StoreLocal,   // [index, value]
  Hash,         // [inputs...] -> uW
  Rand,         // [] -> uW
  MsgMeta,      // [] -> u16; NetCL header field, arg_index: 0=src 1=dst 2=from 3=to
  Clz,          // [v] -> count of leading zeros
  Bswap,        // [v] -> byte-swapped v
  Br,           // unconditional terminator
  CondBr,       // [cond] terminator, successors = {true, false}
  Ret,          // net-function return (eliminated by inlining)
  RetAction,    // kernel terminator: action + optional id operand
};

enum class BinKind : std::uint8_t {
  Add, Sub, Mul, UDiv, SDiv, URem, SRem,
  Shl, LShr, AShr,
  And, Or, Xor,
  SAddSat, SSubSat,
  UMin, UMax, SMin, SMax,
};

enum class ICmpPred : std::uint8_t { EQ, NE, ULT, ULE, UGT, UGE, SLT, SLE, SGT, SGE };

[[nodiscard]] std::string to_string(Opcode op);
[[nodiscard]] std::string to_string(BinKind kind);
[[nodiscard]] std::string to_string(ICmpPred pred);

/// True when the predicate compares signed operands.
[[nodiscard]] bool is_signed_pred(ICmpPred pred);

class Instruction final : public Value {
 public:
  Instruction(Opcode op, ScalarType type) : Value(ValueKind::Instruction, type), op_(op) {}

  [[nodiscard]] Opcode op() const { return op_; }
  [[nodiscard]] BasicBlock* parent() const { return parent_; }
  void set_parent(BasicBlock* block) { parent_ = block; }

  // Operands.
  [[nodiscard]] const std::vector<Value*>& operands() const { return operands_; }
  [[nodiscard]] Value* operand(std::size_t i) const { return operands_[i]; }
  void add_operand(Value* v) { operands_.push_back(v); }
  void set_operand(std::size_t i, Value* v) { operands_[i] = v; }
  void remove_operand(std::size_t i) {
    operands_.erase(operands_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  [[nodiscard]] std::size_t num_operands() const { return operands_.size(); }

  // Payload accessors; which ones are meaningful depends on op().
  BinKind bin_kind = BinKind::Add;
  ICmpPred icmp_pred = ICmpPred::EQ;
  GlobalVar* global = nullptr;       // LoadGlobal/StoreGlobal/AtomicRMW/Lookup
  LocalArray* local_array = nullptr; // LoadLocal/StoreLocal
  int arg_index = -1;                // LoadMsg/StoreMsg
  int num_indices = 0;               // leading index operands of global accesses
  AtomicOpKind atomic_op = AtomicOpKind::Add;
  bool atomic_new = false;
  bool atomic_cond = false;
  HashKind hash_kind = HashKind::Crc16;
  ActionKind action = ActionKind::None;
  bool cast_signed = false;          // Cast: sign-extend when widening
  SourceLoc loc;

  // Control flow. Br: succs[0]; CondBr: succs[0]=true, succs[1]=false.
  std::vector<BasicBlock*> succs;
  // Phi: incoming blocks, parallel to operands().
  std::vector<BasicBlock*> phi_blocks;

  [[nodiscard]] bool is_terminator() const {
    return op_ == Opcode::Br || op_ == Opcode::CondBr || op_ == Opcode::Ret ||
           op_ == Opcode::RetAction;
  }
  /// True if removing this instruction (when unused) changes behavior.
  [[nodiscard]] bool has_side_effects() const {
    switch (op_) {
      case Opcode::StoreGlobal:
      case Opcode::StoreMsg:
      case Opcode::StoreLocal:
      case Opcode::AtomicRMW:
      case Opcode::Br:
      case Opcode::CondBr:
      case Opcode::Ret:
      case Opcode::RetAction:
        return true;
      default:
        return false;
    }
  }
  /// True for pure value-producing instructions that may be speculated.
  [[nodiscard]] bool is_speculatable() const {
    switch (op_) {
      case Opcode::Bin:
      case Opcode::ICmp:
      case Opcode::Select:
      case Opcode::Cast:
      case Opcode::Hash:
      case Opcode::Clz:
      case Opcode::Bswap:
        return true;
      default:
        return false;
    }
  }
  /// True for instructions that touch stateful device memory.
  [[nodiscard]] bool accesses_global() const {
    switch (op_) {
      case Opcode::LoadGlobal:
      case Opcode::StoreGlobal:
      case Opcode::AtomicRMW:
      case Opcode::Lookup:
        return true;
      default:
        return false;
    }
  }

 private:
  Opcode op_;
  BasicBlock* parent_ = nullptr;
  std::vector<Value*> operands_;
};

// ---------------------------------------------------------------------------
// Blocks and functions
// ---------------------------------------------------------------------------

class BasicBlock {
 public:
  BasicBlock(Function* parent, int id, std::string name)
      : parent_(parent), id_(id), name_(std::move(name)) {}

  [[nodiscard]] Function* parent() const { return parent_; }
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] const std::vector<std::unique_ptr<Instruction>>& instructions() const {
    return instructions_;
  }
  [[nodiscard]] std::vector<std::unique_ptr<Instruction>>& instructions() {
    return instructions_;
  }

  Instruction* append(std::unique_ptr<Instruction> inst);
  /// Inserts before the terminator (or appends if there is none yet).
  Instruction* insert_before_terminator(std::unique_ptr<Instruction> inst);
  /// Inserts at the top of the block, after any leading phis.
  Instruction* insert_after_phis(std::unique_ptr<Instruction> inst);
  /// Removes and destroys an instruction (must have no remaining uses).
  void erase(Instruction* inst);
  /// Detaches an instruction without destroying it.
  std::unique_ptr<Instruction> detach(Instruction* inst);

  [[nodiscard]] Instruction* terminator() const;
  [[nodiscard]] std::vector<BasicBlock*> successors() const;
  [[nodiscard]] const std::vector<BasicBlock*>& predecessors() const { return preds_; }
  [[nodiscard]] std::vector<BasicBlock*>& predecessors() { return preds_; }

 private:
  Function* parent_;
  int id_;
  std::string name_;
  std::vector<std::unique_ptr<Instruction>> instructions_;
  std::vector<BasicBlock*> preds_;
};

class Function {
 public:
  Function(Module* parent, std::string name, bool is_kernel, int computation)
      : parent_(parent), name_(std::move(name)), is_kernel_(is_kernel),
        computation_(computation) {}

  [[nodiscard]] Module* parent() const { return parent_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool is_kernel() const { return is_kernel_; }
  [[nodiscard]] int computation() const { return computation_; }

  KernelSpec spec;  // message layout of this kernel

  Argument* add_argument(ScalarType type, int elem_count, bool writable, std::string name);
  [[nodiscard]] const std::vector<std::unique_ptr<Argument>>& arguments() const {
    return arguments_;
  }
  [[nodiscard]] Argument* argument(int index) const { return arguments_[index].get(); }

  BasicBlock* add_block(std::string name);
  [[nodiscard]] const std::vector<std::unique_ptr<BasicBlock>>& blocks() const {
    return blocks_;
  }
  [[nodiscard]] std::vector<std::unique_ptr<BasicBlock>>& blocks() { return blocks_; }
  [[nodiscard]] BasicBlock* entry() const {
    return blocks_.empty() ? nullptr : blocks_.front().get();
  }
  void erase_block(BasicBlock* block);

  LocalArray* add_local_array(std::string name, ScalarType elem, int size);
  [[nodiscard]] const std::vector<std::unique_ptr<LocalArray>>& local_arrays() const {
    return local_arrays_;
  }
  void erase_local_array(LocalArray* array);

  /// Recomputes predecessor lists from the terminators.
  void recompute_preds();
  /// Removes blocks unreachable from the entry (created by e.g. code after
  /// a return). Updates predecessor lists.
  void remove_unreachable_blocks();
  /// Blocks in reverse postorder (topological order; the CFG is acyclic).
  [[nodiscard]] std::vector<BasicBlock*> reverse_postorder() const;
  /// Replaces every use of `from` with `to` across the function.
  void replace_all_uses(Value* from, Value* to);
  /// Total instruction count (for tests and reports).
  [[nodiscard]] std::size_t instruction_count() const;

  int next_value_id = 0;  // for printer naming

 private:
  Module* parent_;
  std::string name_;
  bool is_kernel_;
  int computation_;
  std::vector<std::unique_ptr<Argument>> arguments_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
  std::vector<std::unique_ptr<LocalArray>> local_arrays_;
  int next_block_id_ = 0;
  int next_local_array_id_ = 0;
};

// ---------------------------------------------------------------------------
// Module
// ---------------------------------------------------------------------------

/// All device code compiled for one device: the kernels placed there plus
/// the globals they reference.
class Module {
 public:
  explicit Module(int device_id) : device_id_(device_id) {}

  [[nodiscard]] int device_id() const { return device_id_; }

  GlobalVar* add_global(GlobalVar global);
  [[nodiscard]] const std::vector<std::unique_ptr<GlobalVar>>& globals() const {
    return globals_;
  }
  [[nodiscard]] GlobalVar* find_global(const std::string& name) const;
  void erase_global(GlobalVar* global);

  Function* add_function(std::string name, bool is_kernel, int computation);
  [[nodiscard]] const std::vector<std::unique_ptr<Function>>& functions() const {
    return functions_;
  }
  [[nodiscard]] Function* find_function(const std::string& name) const;

  /// Interned constant of the given type and value.
  Constant* constant(ScalarType type, std::uint64_t value);
  [[nodiscard]] Constant* bool_constant(bool value) { return constant(kBool, value ? 1 : 0); }

 private:
  int device_id_;
  std::vector<std::unique_ptr<GlobalVar>> globals_;
  std::vector<std::unique_ptr<Function>> functions_;
  std::map<std::pair<std::uint64_t, std::uint16_t>, std::unique_ptr<Constant>> constants_;
  int next_global_id_ = 0;
};

// Casting helpers.
template <typename T>
[[nodiscard]] T* dyn_cast(Value* v) {
  if constexpr (std::is_same_v<T, Constant>) {
    return v != nullptr && v->kind() == ValueKind::Constant ? static_cast<Constant*>(v) : nullptr;
  } else if constexpr (std::is_same_v<T, Argument>) {
    return v != nullptr && v->kind() == ValueKind::Argument ? static_cast<Argument*>(v) : nullptr;
  } else {
    return v != nullptr && v->kind() == ValueKind::Instruction ? static_cast<Instruction*>(v)
                                                               : nullptr;
  }
}

[[nodiscard]] inline const Constant* as_constant(const Value* v) {
  return v != nullptr && v->kind() == ValueKind::Constant ? static_cast<const Constant*>(v)
                                                          : nullptr;
}

}  // namespace netcl::ir
