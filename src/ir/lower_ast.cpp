#include "ir/lower_ast.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "ir/builder.hpp"

namespace netcl::ir {
namespace {

[[nodiscard]] bool placed_at(const std::vector<std::uint16_t>& locations, int device_id) {
  return locations.empty() ||
         std::find(locations.begin(), locations.end(),
                   static_cast<std::uint16_t>(device_id)) != locations.end();
}

/// A storage slot a NetCL-C variable name can refer to during lowering.
struct Slot {
  enum class Kind { SsaVar, LocalArr, MsgArr, ConstVal } kind = Kind::SsaVar;
  int ssa_id = -1;            // SsaVar
  LocalArray* local = nullptr;  // LocalArr
  Argument* msg = nullptr;      // MsgArr
  std::int64_t const_val = 0;   // ConstVal (unrolled induction variables)
  ScalarType type;
};

class KernelLowerer {
 public:
  KernelLowerer(const Program& program, Module& module, Function& fn,
                const FunctionDecl& kernel, const LowerOptions& options,
                DiagnosticEngine& diags)
      : program_(program), module_(module), fn_(fn), kernel_(kernel), options_(options),
        diags_(diags), builder_(module, fn) {}

  void lower() {
    BasicBlock* entry = fn_.add_block("entry");
    builder_.set_insert_point(entry);

    env_.emplace_back();
    for (std::size_t i = 0; i < kernel_.params.size(); ++i) {
      const ParamDecl& param = kernel_.params[i];
      Argument* arg = fn_.add_argument(param.type, param.spec,
                                       param.by_ref || param.is_pointer, param.name);
      if (param.is_pointer) {
        bind(&param, Slot{Slot::Kind::MsgArr, -1, nullptr, arg, 0, param.type});
      } else {
        const int id = new_ssa_var(param.type);
        write_var(id, builder_.insert_block(), arg);
        bind(&param, Slot{Slot::Kind::SsaVar, id, nullptr, nullptr, 0, param.type});
        if (param.by_ref) byref_scalars_.emplace_back(arg, id);
      }
    }

    lower_stmt(*kernel_.body);
    if (builder_.insert_block()->terminator() == nullptr) {
      emit_ret(ActionKind::Pass, nullptr);  // implicit pass() (§V-A)
    }
    // Give any trailing unterminated unreachable blocks terminators, then
    // drop them.
    for (auto& block : fn_.blocks()) {
      if (block->terminator() == nullptr) {
        builder_.set_insert_point(block.get());
        emit_ret(ActionKind::Pass, nullptr);
      }
    }
    fn_.remove_unreachable_blocks();
  }

 private:
  // --- diagnostics ---------------------------------------------------------
  void error(SourceLoc loc, std::string message) { diags_.error(loc, std::move(message)); }

  // --- environment ---------------------------------------------------------
  void bind(const void* decl, Slot slot) { env_.back()[decl] = slot; }

  [[nodiscard]] const Slot* find_slot(const void* decl) const {
    for (auto frame = env_.rbegin(); frame != env_.rend(); ++frame) {
      const auto it = frame->find(decl);
      if (it != frame->end()) return &it->second;
    }
    return nullptr;
  }

  // --- SSA construction ----------------------------------------------------
  int new_ssa_var(ScalarType type) {
    var_types_.push_back(type);
    return static_cast<int>(var_types_.size()) - 1;
  }

  void write_var(int id, BasicBlock* block, Value* value) {
    defs_[block][id] = value;
  }

  Value* read_var(int id, BasicBlock* block) {
    const auto block_it = defs_.find(block);
    if (block_it != defs_.end()) {
      const auto it = block_it->second.find(id);
      if (it != block_it->second.end()) return it->second;
    }
    const auto& preds = block->predecessors();
    Value* result = nullptr;
    if (preds.empty()) {
      // Undefined read (default-initialized local, §V-B): deterministic 0.
      result = module_.constant(var_types_[static_cast<std::size_t>(id)], 0);
    } else if (preds.size() == 1) {
      result = read_var(id, preds[0]);
    } else {
      // Insert a phi; all predecessors are complete (acyclic CFG, blocks
      // lowered in topological order).
      BasicBlock* saved = builder_.insert_block();
      builder_.set_insert_point(block);
      Instruction* phi = builder_.phi(var_types_[static_cast<std::size_t>(id)]);
      builder_.set_insert_point(saved);
      // Record the phi as this block's def *before* reading predecessors
      // (harmless here, required if diamonds share predecessors).
      write_var(id, block, phi);
      for (BasicBlock* pred : preds) {
        Value* incoming = read_var(id, pred);
        phi->add_operand(builder_.adapt_in(incoming, phi->type(), pred));
        phi->phi_blocks.push_back(pred);
      }
      result = phi;
    }
    write_var(id, block, result);
    return result;
  }

  // --- control-flow plumbing ----------------------------------------------
  void link(BasicBlock* from, BasicBlock* to) { to->predecessors().push_back(from); }

  void emit_br(BasicBlock* target) {
    BasicBlock* from = builder_.insert_block();
    builder_.br(target);
    link(from, target);
  }

  void emit_cond_br(Value* cond, BasicBlock* if_true, BasicBlock* if_false) {
    BasicBlock* from = builder_.insert_block();
    builder_.cond_br(cond, if_true, if_false);
    link(from, if_true);
    link(from, if_false);
  }

  void emit_ret(ActionKind action, Value* id) {
    // Write back every modified by-ref scalar argument before exiting.
    BasicBlock* block = builder_.insert_block();
    for (const auto& [arg, ssa_id] : byref_scalars_) {
      Value* current = read_var(ssa_id, block);
      if (current != arg) {
        builder_.store_msg(arg, module_.constant(kU16, 0), current);
      }
    }
    builder_.ret_action(action, id);
  }

  // --- constant evaluation with environment --------------------------------
  [[nodiscard]] std::optional<std::int64_t> eval_const(const Expr& expr) {
    if (expr.kind == ExprKind::VarRef) {
      const auto& ref = static_cast<const VarRefExpr&>(expr);
      const void* decl = ref.param != nullptr ? static_cast<const void*>(ref.param)
                                              : static_cast<const void*>(ref.local);
      if (decl != nullptr) {
        if (const Slot* slot = find_slot(decl); slot != nullptr &&
                                                slot->kind == Slot::Kind::ConstVal) {
          return slot->const_val;
        }
      }
      return std::nullopt;
    }
    if (expr.kind == ExprKind::Binary) {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      const auto lhs = eval_const(*bin.lhs);
      const auto rhs = eval_const(*bin.rhs);
      if (!lhs || !rhs) return std::nullopt;
      switch (bin.op) {
        case BinaryOp::Add: return *lhs + *rhs;
        case BinaryOp::Sub: return *lhs - *rhs;
        case BinaryOp::Mul: return *lhs * *rhs;
        case BinaryOp::Div: return *rhs == 0 ? std::optional<std::int64_t>() : *lhs / *rhs;
        case BinaryOp::Rem: return *rhs == 0 ? std::optional<std::int64_t>() : *lhs % *rhs;
        case BinaryOp::Shl: return *lhs << (*rhs & 63);
        case BinaryOp::Shr: return *lhs >> (*rhs & 63);
        case BinaryOp::And: return *lhs & *rhs;
        case BinaryOp::Or: return *lhs | *rhs;
        case BinaryOp::Xor: return *lhs ^ *rhs;
        case BinaryOp::LogicalAnd: return (*lhs != 0 && *rhs != 0) ? 1 : 0;
        case BinaryOp::LogicalOr: return (*lhs != 0 || *rhs != 0) ? 1 : 0;
        case BinaryOp::Eq: return *lhs == *rhs ? 1 : 0;
        case BinaryOp::Ne: return *lhs != *rhs ? 1 : 0;
        case BinaryOp::Lt: return *lhs < *rhs ? 1 : 0;
        case BinaryOp::Le: return *lhs <= *rhs ? 1 : 0;
        case BinaryOp::Gt: return *lhs > *rhs ? 1 : 0;
        case BinaryOp::Ge: return *lhs >= *rhs ? 1 : 0;
      }
      return std::nullopt;
    }
    if (expr.kind == ExprKind::Unary) {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      const auto v = eval_const(*unary.operand);
      if (!v) return std::nullopt;
      switch (unary.op) {
        case UnaryOp::Neg: return -*v;
        case UnaryOp::BitNot: return ~*v;
        case UnaryOp::LogicalNot: return *v == 0 ? 1 : 0;
        case UnaryOp::AddrOf: return std::nullopt;
      }
    }
    return evaluate_const_expr(expr);
  }

  // --- statements -----------------------------------------------------------
  void lower_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::Block: {
        env_.emplace_back();
        for (const auto& child : static_cast<const BlockStmt&>(stmt).body) lower_stmt(*child);
        env_.pop_back();
        break;
      }
      case StmtKind::Decl: {
        for (const auto& decl : static_cast<const DeclStmt&>(stmt).decls) {
          if (decl->array_size > 0) {
            LocalArray* array = fn_.add_local_array(decl->name + "." +
                                                        std::to_string(fn_.next_value_id++),
                                                    decl->type, decl->array_size);
            bind(decl.get(), Slot{Slot::Kind::LocalArr, -1, array, nullptr, 0, decl->type});
          } else {
            const int id = new_ssa_var(decl->type);
            if (decl->init != nullptr) {
              Value* init = lower_expr(*decl->init);
              write_var(id, builder_.insert_block(),
                        builder_.adapt(init, decl->type));
            }
            bind(decl.get(), Slot{Slot::Kind::SsaVar, id, nullptr, nullptr, 0, decl->type});
          }
        }
        break;
      }
      case StmtKind::Expr:
        (void)lower_expr(*static_cast<const ExprStmt&>(stmt).expr);
        break;
      case StmtKind::Assign:
        lower_assign(static_cast<const AssignStmt&>(stmt));
        break;
      case StmtKind::If:
        lower_if(static_cast<const IfStmt&>(stmt));
        break;
      case StmtKind::For:
        lower_for(static_cast<const ForStmt&>(stmt));
        break;
      case StmtKind::Return:
        lower_return(static_cast<const ReturnStmt&>(stmt));
        break;
    }
  }

  void lower_if(const IfStmt& stmt) {
    Value* cond = builder_.to_bool(lower_expr(*stmt.cond), stmt.loc);
    BasicBlock* then_block = fn_.add_block("if.then." + std::to_string(fn_.next_value_id++));
    BasicBlock* merge_block = fn_.add_block("if.end." + std::to_string(fn_.next_value_id++));
    BasicBlock* else_block =
        stmt.else_stmt != nullptr
            ? fn_.add_block("if.else." + std::to_string(fn_.next_value_id++))
            : merge_block;
    emit_cond_br(cond, then_block, else_block);

    builder_.set_insert_point(then_block);
    lower_stmt(*stmt.then_stmt);
    if (builder_.insert_block()->terminator() == nullptr) emit_br(merge_block);

    if (stmt.else_stmt != nullptr) {
      builder_.set_insert_point(else_block);
      lower_stmt(*stmt.else_stmt);
      if (builder_.insert_block()->terminator() == nullptr) emit_br(merge_block);
    }
    builder_.set_insert_point(merge_block);
  }

  void lower_for(const ForStmt& stmt) {
    // Extract the induction variable and its initial constant value.
    const void* ind_decl = nullptr;
    ScalarType ind_type = kI32;
    std::int64_t value = 0;
    if (stmt.init == nullptr) {
      error(stmt.loc, "for loops must declare or initialize an induction variable");
      return;
    }
    if (stmt.init->kind == StmtKind::Decl) {
      const auto& decl_stmt = static_cast<const DeclStmt&>(*stmt.init);
      if (decl_stmt.decls.size() != 1 || decl_stmt.decls[0]->init == nullptr) {
        error(stmt.loc, "for-init must declare exactly one variable with a constant value");
        return;
      }
      const auto init_value = eval_const(*decl_stmt.decls[0]->init);
      if (!init_value.has_value()) {
        error(stmt.loc, "loop bounds must be compile-time constants for full unrolling");
        return;
      }
      ind_decl = decl_stmt.decls[0].get();
      ind_type = decl_stmt.decls[0]->type;
      value = *init_value;
    } else if (stmt.init->kind == StmtKind::Assign) {
      const auto& assign = static_cast<const AssignStmt&>(*stmt.init);
      if (assign.target->kind != ExprKind::VarRef || assign.compound) {
        error(stmt.loc, "for-init must be a simple assignment");
        return;
      }
      const auto& ref = static_cast<const VarRefExpr&>(*assign.target);
      ind_decl = ref.local != nullptr ? static_cast<const void*>(ref.local)
                                      : static_cast<const void*>(ref.param);
      ind_type = ref.type;
      const auto init_value = eval_const(*assign.value);
      if (!init_value.has_value()) {
        error(stmt.loc, "loop bounds must be compile-time constants for full unrolling");
        return;
      }
      value = *init_value;
    } else {
      error(stmt.loc, "unsupported for-init");
      return;
    }

    // The step must be a constant-increment of the induction variable.
    if (stmt.step == nullptr || stmt.step->kind != StmtKind::Assign) {
      error(stmt.loc, "for-step must update the induction variable by a constant");
      return;
    }
    const auto& step = static_cast<const AssignStmt&>(*stmt.step);
    std::int64_t increment = 0;
    {
      const Expr* target = step.target.get();
      if (target->kind != ExprKind::VarRef) {
        error(stmt.loc, "for-step must assign the induction variable");
        return;
      }
      const auto& ref = static_cast<const VarRefExpr&>(*target);
      const void* step_decl = ref.local != nullptr ? static_cast<const void*>(ref.local)
                                                   : static_cast<const void*>(ref.param);
      if (step_decl != ind_decl) {
        error(stmt.loc, "for-step must update the loop's induction variable");
        return;
      }
      if (step.compound && (step.op == BinaryOp::Add || step.op == BinaryOp::Sub)) {
        const auto step_value = eval_const(*step.value);
        if (!step_value.has_value()) {
          error(stmt.loc, "for-step increment must be a compile-time constant");
          return;
        }
        increment = step.op == BinaryOp::Add ? *step_value : -*step_value;
      } else {
        error(stmt.loc, "for-step must be ++, --, += or -= of the induction variable");
        return;
      }
      if (increment == 0) {
        error(stmt.loc, "for-step increment cannot be zero");
        return;
      }
    }

    if (stmt.cond == nullptr) {
      error(stmt.loc, "for loops require a condition for full unrolling");
      return;
    }

    // Unroll.
    env_.emplace_back();
    bind(ind_decl, Slot{Slot::Kind::ConstVal, -1, nullptr, nullptr, value, ind_type});
    int iterations = 0;
    for (;;) {
      env_.back()[ind_decl].const_val = value;
      const auto cond = eval_const(*stmt.cond);
      if (!cond.has_value()) {
        error(stmt.cond->loc, "loop bounds must be compile-time constants for full unrolling");
        break;
      }
      if (*cond == 0) break;
      if (++iterations > options_.max_unroll) {
        error(stmt.loc, "loop does not fully unroll within " +
                            std::to_string(options_.max_unroll) + " iterations");
        break;
      }
      lower_stmt(*stmt.body);
      if (builder_.insert_block()->terminator() != nullptr) {
        // A return inside a loop body ends every later iteration too; the
        // remaining iterations are unreachable.
        break;
      }
      value += increment;
    }
    env_.pop_back();
  }

  void lower_return(const ReturnStmt& stmt) {
    if (stmt.value == nullptr) {
      if (net_exit_stack_.empty()) {
        emit_ret(ActionKind::Pass, nullptr);
      } else {
        emit_br(net_exit_stack_.back());
      }
      start_unreachable_block();
      return;
    }
    lower_action_expr(*stmt.value);
  }

  /// Lowers a kernel return value: action call, net call (then implicit
  /// pass), or a ternary of those lowered as control flow.
  void lower_action_expr(const Expr& expr) {
    if (expr.kind == ExprKind::Ternary) {
      const auto& ternary = static_cast<const TernaryExpr&>(expr);
      Value* cond = builder_.to_bool(lower_expr(*ternary.cond), expr.loc);
      BasicBlock* then_block = fn_.add_block("ret.then." + std::to_string(fn_.next_value_id++));
      BasicBlock* else_block = fn_.add_block("ret.else." + std::to_string(fn_.next_value_id++));
      emit_cond_br(cond, then_block, else_block);
      builder_.set_insert_point(then_block);
      lower_action_expr(*ternary.then_expr);
      builder_.set_insert_point(else_block);
      lower_action_expr(*ternary.else_expr);
      start_unreachable_block();
      return;
    }
    assert(expr.kind == ExprKind::Call);
    const auto& call = static_cast<const CallExpr&>(expr);
    if (call.device.op == DeviceOp::Action) {
      Value* id = nullptr;
      if (!call.args.empty()) id = lower_expr(*call.args[0]);
      if (net_exit_stack_.empty()) {
        emit_ret(call.device.action, id);
      } else {
        // Should not happen (sema rejects actions in net functions).
        error(expr.loc, "action in net function");
      }
      start_unreachable_block();
      return;
    }
    // Net-function tail call followed by implicit pass().
    (void)lower_expr(expr);
    if (net_exit_stack_.empty()) {
      emit_ret(ActionKind::Pass, nullptr);
    } else {
      emit_br(net_exit_stack_.back());
    }
    start_unreachable_block();
  }

  void start_unreachable_block() {
    builder_.set_insert_point(
        fn_.add_block("unreachable." + std::to_string(fn_.next_value_id++)));
  }

  // --- assignments -----------------------------------------------------------
  void lower_assign(const AssignStmt& stmt) {
    Value* value = nullptr;
    if (stmt.compound) {
      Value* current = lower_expr(*stmt.target);
      Value* rhs = lower_expr(*stmt.value);
      value = lower_binop(stmt.op, current, rhs, stmt.target->type, stmt.loc,
                          stmt.target->type, stmt.value->type);
    } else {
      value = lower_expr(*stmt.value);
    }
    store_to(*stmt.target, value);
  }

  void store_to(const Expr& target, Value* value) {
    if (target.kind == ExprKind::VarRef) {
      const auto& ref = static_cast<const VarRefExpr&>(target);
      if (ref.global != nullptr) {
        GlobalVar* global = require_global(ref.global, target.loc);
        if (global != nullptr) builder_.store_global(global, {}, value, target.loc);
        return;
      }
      const void* decl = ref.param != nullptr ? static_cast<const void*>(ref.param)
                                              : static_cast<const void*>(ref.local);
      const Slot* slot = find_slot(decl);
      if (slot == nullptr) return;  // already diagnosed by sema
      if (slot->kind == Slot::Kind::ConstVal) {
        error(target.loc, "loop induction variables may not be modified in the loop body");
        return;
      }
      if (slot->kind != Slot::Kind::SsaVar) {
        error(target.loc, "cannot assign to a whole array");
        return;
      }
      write_var(slot->ssa_id, builder_.insert_block(), builder_.adapt(value, slot->type));
      return;
    }
    if (target.kind == ExprKind::Index) {
      GlobalVar* global = nullptr;
      std::vector<Value*> indices;
      if (resolve_global_indices(target, global, indices)) {
        builder_.store_global(global, std::move(indices), value, target.loc);
        return;
      }
      const auto& index_expr = static_cast<const IndexExpr&>(target);
      if (index_expr.base->kind == ExprKind::VarRef) {
        const auto& ref = static_cast<const VarRefExpr&>(*index_expr.base);
        const void* decl = ref.param != nullptr ? static_cast<const void*>(ref.param)
                                                : static_cast<const void*>(ref.local);
        const Slot* slot = find_slot(decl);
        if (slot == nullptr) return;
        Value* index = lower_expr(*index_expr.index);
        if (slot->kind == Slot::Kind::LocalArr) {
          check_const_bounds(index, slot->local->size, target.loc);
          builder_.store_local(slot->local, index, value, target.loc);
          return;
        }
        if (slot->kind == Slot::Kind::MsgArr) {
          check_const_bounds(index, slot->msg->elem_count(), target.loc);
          builder_.store_msg(slot->msg, index, value, target.loc);
          return;
        }
      }
      error(target.loc, "unsupported store target");
      return;
    }
    error(target.loc, "assignment target is not an lvalue");
  }

  void check_const_bounds(Value* index, int size, SourceLoc loc) {
    if (const Constant* c = as_constant(index)) {
      if (c->extended() < 0 || c->extended() >= size) {
        error(loc, "constant index " + std::to_string(c->extended()) +
                       " out of bounds (size " + std::to_string(size) + ")");
      }
    }
  }

  /// If `expr` is an index chain over a global, fills `global`/`indices`
  /// (checking depth) and returns true.
  bool resolve_global_indices(const Expr& expr, GlobalVar*& global,
                              std::vector<Value*>& indices) {
    // Walk to the base, collecting index expressions outermost-first.
    std::vector<const Expr*> index_exprs;
    const Expr* walk = &expr;
    while (walk->kind == ExprKind::Index) {
      const auto& ix = static_cast<const IndexExpr&>(*walk);
      index_exprs.push_back(ix.index.get());
      walk = ix.base.get();
    }
    if (walk->kind != ExprKind::VarRef) return false;
    const auto& ref = static_cast<const VarRefExpr&>(*walk);
    if (ref.global == nullptr) return false;
    global = require_global(ref.global, expr.loc);
    if (global == nullptr) return true;  // error already reported; swallow
    if (index_exprs.size() != global->dims.size()) {
      error(expr.loc, "global array '" + global->name + "' requires " +
                          std::to_string(global->dims.size()) + " indices");
    }
    // Innermost-first in the chain walk; reverse to declaration order.
    std::reverse(index_exprs.begin(), index_exprs.end());
    for (std::size_t i = 0; i < index_exprs.size(); ++i) {
      Value* index = lower_expr(*index_exprs[i]);
      if (i < global->dims.size()) {
        check_const_bounds(index, static_cast<int>(global->dims[i]), expr.loc);
      }
      indices.push_back(index);
    }
    return true;
  }

  GlobalVar* require_global(const GlobalDecl* decl, SourceLoc loc) {
    GlobalVar* global = module_.find_global(decl->name);
    if (global == nullptr) {
      error(loc, "global memory '" + decl->name + "' is not placed at device " +
                     std::to_string(options_.device_id));
    }
    return global;
  }

  /// True if evaluating `expr` may access device (global) memory: such
  /// subexpressions must keep their control dependence.
  static bool expr_touches_memory(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::VarRef:
        return static_cast<const VarRefExpr&>(expr).global != nullptr;
      case ExprKind::Index: {
        const auto& ix = static_cast<const IndexExpr&>(expr);
        return expr_touches_memory(*ix.base) || expr_touches_memory(*ix.index);
      }
      case ExprKind::Unary:
        return expr_touches_memory(*static_cast<const UnaryExpr&>(expr).operand);
      case ExprKind::Binary: {
        const auto& bin = static_cast<const BinaryExpr&>(expr);
        return expr_touches_memory(*bin.lhs) || expr_touches_memory(*bin.rhs);
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const TernaryExpr&>(expr);
        return expr_touches_memory(*t.cond) || expr_touches_memory(*t.then_expr) ||
               expr_touches_memory(*t.else_expr);
      }
      case ExprKind::Call: {
        const auto& call = static_cast<const CallExpr&>(expr);
        if (call.device.op == DeviceOp::AtomicRMW || call.device.op == DeviceOp::Lookup ||
            call.net_callee != nullptr) {
          return true;
        }
        for (const auto& arg : call.args) {
          if (expr_touches_memory(*arg)) return true;
        }
        return false;
      }
      default:
        return false;
    }
  }

  // --- expressions -----------------------------------------------------------
  Value* lower_binop(BinaryOp op, Value* lhs, Value* rhs, ScalarType result, SourceLoc loc,
                     ScalarType lhs_ast, ScalarType rhs_ast) {
    const ScalarType common = common_type(lhs_ast, rhs_ast);
    switch (op) {
      case BinaryOp::Add: return builder_.bin(BinKind::Add, lhs, rhs, result, loc);
      case BinaryOp::Sub: return builder_.bin(BinKind::Sub, lhs, rhs, result, loc);
      case BinaryOp::Mul: return builder_.bin(BinKind::Mul, lhs, rhs, result, loc);
      case BinaryOp::Div:
        return builder_.bin(common.is_signed ? BinKind::SDiv : BinKind::UDiv, lhs, rhs, result,
                            loc);
      case BinaryOp::Rem:
        return builder_.bin(common.is_signed ? BinKind::SRem : BinKind::URem, lhs, rhs, result,
                            loc);
      case BinaryOp::Shl: return builder_.bin(BinKind::Shl, lhs, rhs, result, loc);
      case BinaryOp::Shr:
        return builder_.bin(lhs_ast.is_signed ? BinKind::AShr : BinKind::LShr, lhs, rhs, result,
                            loc);
      case BinaryOp::And: return builder_.bin(BinKind::And, lhs, rhs, result, loc);
      case BinaryOp::Or: return builder_.bin(BinKind::Or, lhs, rhs, result, loc);
      case BinaryOp::Xor: return builder_.bin(BinKind::Xor, lhs, rhs, result, loc);
      case BinaryOp::LogicalAnd:
        return builder_.bin(BinKind::And, builder_.to_bool(lhs, loc),
                            builder_.to_bool(rhs, loc), kBool, loc);
      case BinaryOp::LogicalOr:
        return builder_.bin(BinKind::Or, builder_.to_bool(lhs, loc), builder_.to_bool(rhs, loc),
                            kBool, loc);
      case BinaryOp::Eq: return builder_.icmp(ICmpPred::EQ, lhs, rhs, loc);
      case BinaryOp::Ne: return builder_.icmp(ICmpPred::NE, lhs, rhs, loc);
      case BinaryOp::Lt:
        return builder_.icmp(common.is_signed ? ICmpPred::SLT : ICmpPred::ULT, lhs, rhs, loc);
      case BinaryOp::Le:
        return builder_.icmp(common.is_signed ? ICmpPred::SLE : ICmpPred::ULE, lhs, rhs, loc);
      case BinaryOp::Gt:
        return builder_.icmp(common.is_signed ? ICmpPred::SGT : ICmpPred::UGT, lhs, rhs, loc);
      case BinaryOp::Ge:
        return builder_.icmp(common.is_signed ? ICmpPred::SGE : ICmpPred::UGE, lhs, rhs, loc);
    }
    return lhs;
  }

  Value* lower_expr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::IntLit:
        return module_.constant(expr.type, static_cast<const IntLitExpr&>(expr).value);
      case ExprKind::VarRef: {
        const auto& ref = static_cast<const VarRefExpr&>(expr);
        if (ref.global != nullptr) {
          GlobalVar* global = require_global(ref.global, expr.loc);
          if (global == nullptr) return module_.constant(expr.type, 0);
          if (!global->dims.empty()) {
            // Bare array reference: only meaningful as a lookup() operand,
            // which intercepts before lowering; anything else is an error.
            error(expr.loc, "array '" + global->name + "' used as a value");
            return module_.constant(expr.type, 0);
          }
          return builder_.load_global(global, {}, expr.loc);
        }
        const void* decl = ref.param != nullptr ? static_cast<const void*>(ref.param)
                                                : static_cast<const void*>(ref.local);
        const Slot* slot = find_slot(decl);
        if (slot == nullptr) return module_.constant(expr.type, 0);
        switch (slot->kind) {
          case Slot::Kind::ConstVal:
            return module_.constant(slot->type,
                                    static_cast<std::uint64_t>(slot->const_val));
          case Slot::Kind::SsaVar:
            return read_var(slot->ssa_id, builder_.insert_block());
          default:
            error(expr.loc, "array '" + ref.name + "' used as a value");
            return module_.constant(expr.type, 0);
        }
      }
      case ExprKind::Index: {
        GlobalVar* global = nullptr;
        std::vector<Value*> indices;
        if (resolve_global_indices(expr, global, indices)) {
          if (global == nullptr) return module_.constant(expr.type, 0);
          if (global->is_lookup) {
            error(expr.loc, "lookup memory may only be accessed through ncl::lookup()");
            return module_.constant(expr.type, 0);
          }
          return builder_.load_global(global, std::move(indices), expr.loc);
        }
        const auto& index_expr = static_cast<const IndexExpr&>(expr);
        if (index_expr.base->kind == ExprKind::VarRef) {
          const auto& ref = static_cast<const VarRefExpr&>(*index_expr.base);
          const void* decl = ref.param != nullptr ? static_cast<const void*>(ref.param)
                                                  : static_cast<const void*>(ref.local);
          if (const Slot* slot = find_slot(decl)) {
            Value* index = lower_expr(*index_expr.index);
            if (slot->kind == Slot::Kind::LocalArr) {
              check_const_bounds(index, slot->local->size, expr.loc);
              return builder_.load_local(slot->local, index, expr.loc);
            }
            if (slot->kind == Slot::Kind::MsgArr) {
              check_const_bounds(index, slot->msg->elem_count(), expr.loc);
              return builder_.load_msg(slot->msg, index, expr.loc);
            }
          }
        }
        error(expr.loc, "unsupported indexed access");
        return module_.constant(expr.type, 0);
      }
      case ExprKind::Unary: {
        const auto& unary = static_cast<const UnaryExpr&>(expr);
        if (unary.op == UnaryOp::AddrOf) {
          // Only atomics take addresses; they strip AddrOf themselves.
          error(expr.loc, "'&' is only valid on atomic memory operands");
          return module_.constant(expr.type, 0);
        }
        Value* operand = lower_expr(*unary.operand);
        switch (unary.op) {
          case UnaryOp::Neg:
            return builder_.bin(BinKind::Sub, module_.constant(expr.type, 0), operand,
                                expr.type, expr.loc);
          case UnaryOp::BitNot:
            return builder_.bin(BinKind::Xor, operand,
                                module_.constant(expr.type, ~0ULL), expr.type, expr.loc);
          case UnaryOp::LogicalNot:
            return builder_.logical_not(operand, expr.loc);
          case UnaryOp::AddrOf:
            break;
        }
        return operand;
      }
      case ExprKind::Binary: {
        const auto& binary = static_cast<const BinaryExpr&>(expr);
        Value* lhs = lower_expr(*binary.lhs);
        Value* rhs = lower_expr(*binary.rhs);
        return lower_binop(binary.op, lhs, rhs, expr.type, expr.loc, binary.lhs->type,
                           binary.rhs->type);
      }
      case ExprKind::Ternary: {
        const auto& ternary = static_cast<const TernaryExpr&>(expr);
        Value* cond = lower_expr(*ternary.cond);
        // Arms that touch device memory must be mutually exclusive at
        // runtime (the paper's `(x > 10) ? m[0] : m[1]` is a *valid* access
        // pattern on Tofino), so they lower as control flow. Pure arms
        // lower to a select.
        if (expr_touches_memory(*ternary.then_expr) ||
            expr_touches_memory(*ternary.else_expr)) {
          BasicBlock* then_block =
              fn_.add_block("sel.then." + std::to_string(fn_.next_value_id++));
          BasicBlock* else_block =
              fn_.add_block("sel.else." + std::to_string(fn_.next_value_id++));
          BasicBlock* merge = fn_.add_block("sel.end." + std::to_string(fn_.next_value_id++));
          emit_cond_br(cond, then_block, else_block);
          builder_.set_insert_point(then_block);
          Value* a = builder_.adapt(lower_expr(*ternary.then_expr), expr.type);
          BasicBlock* then_exit = builder_.insert_block();
          emit_br(merge);
          builder_.set_insert_point(else_block);
          Value* b = builder_.adapt(lower_expr(*ternary.else_expr), expr.type);
          BasicBlock* else_exit = builder_.insert_block();
          emit_br(merge);
          builder_.set_insert_point(merge);
          Instruction* phi = builder_.phi(expr.type);
          phi->add_operand(a);
          phi->phi_blocks.push_back(then_exit);
          phi->add_operand(b);
          phi->phi_blocks.push_back(else_exit);
          return phi;
        }
        // `c ? 1 : 0` and `c ? 0 : 1` are just the (negated) condition.
        const auto then_const = evaluate_const_expr(*ternary.then_expr);
        const auto else_const = evaluate_const_expr(*ternary.else_expr);
        if (then_const == 1 && else_const == 0) {
          return builder_.adapt(builder_.to_bool(cond, expr.loc), expr.type);
        }
        if (then_const == 0 && else_const == 1) {
          return builder_.adapt(builder_.logical_not(builder_.to_bool(cond, expr.loc),
                                                     expr.loc),
                                expr.type);
        }
        Value* a = builder_.adapt(lower_expr(*ternary.then_expr), expr.type);
        Value* b = builder_.adapt(lower_expr(*ternary.else_expr), expr.type);
        return builder_.select(cond, a, b, expr.loc);
      }
      case ExprKind::Builtin: {
        const auto& builtin = static_cast<const BuiltinExpr&>(expr);
        if (builtin.builtin == BuiltinKind::DeviceId) {
          // Known-value materialization: this module is compiled for exactly
          // one device.
          return module_.constant(kU16, static_cast<std::uint64_t>(options_.device_id));
        }
        auto inst = std::make_unique<Instruction>(Opcode::MsgMeta, kU16);
        inst->arg_index = static_cast<int>(builtin.builtin) - 1;  // MsgSrc == 1
        inst->loc = expr.loc;
        return builder_.insert_block()->append(std::move(inst));
      }
      case ExprKind::Call:
        return lower_call(static_cast<const CallExpr&>(expr));
    }
    return module_.constant(kI32, 0);
  }

  Value* lower_call(const CallExpr& call) {
    if (call.net_callee != nullptr) return lower_net_call(call);

    switch (call.device.op) {
      case DeviceOp::AtomicRMW: {
        const Expr* mem = call.args[0].get();
        if (mem->kind == ExprKind::Unary &&
            static_cast<const UnaryExpr&>(*mem).op == UnaryOp::AddrOf) {
          mem = static_cast<const UnaryExpr&>(*mem).operand.get();
        }
        GlobalVar* global = nullptr;
        std::vector<Value*> indices;
        if (!resolve_global_indices(*mem, global, indices)) {
          // A bare scalar global reference.
          if (mem->kind == ExprKind::VarRef) {
            const auto& ref = static_cast<const VarRefExpr&>(*mem);
            if (ref.global != nullptr) global = require_global(ref.global, call.loc);
          }
        }
        if (global == nullptr) return module_.constant(call.type, 0);
        std::size_t next = 1;
        Value* cond = nullptr;
        if (call.device.atomic_cond) cond = lower_expr(*call.args[next++]);
        std::vector<Value*> operands;
        for (; next < call.args.size(); ++next) operands.push_back(lower_expr(*call.args[next]));
        return builder_.atomic_rmw(global, std::move(indices), call.device.atomic_op,
                                   call.device.atomic_cond, call.device.atomic_new, cond,
                                   std::move(operands), call.loc);
      }
      case DeviceOp::Lookup: {
        const auto& table_ref = static_cast<const VarRefExpr&>(*call.args[0]);
        GlobalVar* table =
            table_ref.global != nullptr ? require_global(table_ref.global, call.loc) : nullptr;
        if (table == nullptr) return module_.bool_constant(false);
        Value* key = lower_expr(*call.args[1]);
        Instruction* hit = builder_.lookup(table, key, call.loc);
        if (call.args.size() == 3) {
          Value* current = lower_expr(*call.args[2]);
          Instruction* value = builder_.lookup_value(hit, current, call.loc);
          store_to(*call.args[2], value);
        }
        return hit;
      }
      case DeviceOp::Hash: {
        std::vector<Value*> inputs;
        for (const auto& arg : call.args) inputs.push_back(lower_expr(*arg));
        return builder_.hash(call.device.hash, call.type.bits, std::move(inputs), call.loc);
      }
      case DeviceOp::SAdd:
      case DeviceOp::SSub: {
        Value* a = lower_expr(*call.args[0]);
        Value* b = lower_expr(*call.args[1]);
        return builder_.bin(call.device.op == DeviceOp::SAdd ? BinKind::SAddSat
                                                             : BinKind::SSubSat,
                            a, b, call.type, call.loc);
      }
      case DeviceOp::Min:
      case DeviceOp::Max: {
        Value* a = lower_expr(*call.args[0]);
        Value* b = lower_expr(*call.args[1]);
        const bool is_min = call.device.op == DeviceOp::Min;
        const BinKind kind = call.type.is_signed ? (is_min ? BinKind::SMin : BinKind::SMax)
                                                 : (is_min ? BinKind::UMin : BinKind::UMax);
        return builder_.bin(kind, a, b, call.type, call.loc);
      }
      case DeviceOp::BitChk: {
        Value* v = lower_expr(*call.args[0]);
        Value* bit = lower_expr(*call.args[1]);
        Value* shifted = builder_.bin(BinKind::LShr, v, bit, v->type(), call.loc);
        Value* masked = builder_.bin(BinKind::And, shifted,
                                     module_.constant(v->type(), 1), v->type(), call.loc);
        return builder_.to_bool(masked, call.loc);
      }
      case DeviceOp::Rand:
        return builder_.rand(call.type.bits, call.loc);
      case DeviceOp::Bswap:
      case DeviceOp::Clz: {
        Value* v = lower_expr(*call.args[0]);
        auto inst = std::make_unique<Instruction>(
            call.device.op == DeviceOp::Bswap ? Opcode::Bswap : Opcode::Clz, call.type);
        inst->loc = call.loc;
        inst->add_operand(v);
        return builder_.insert_block()->append(std::move(inst));
      }
      case DeviceOp::Action:
        // Reached only through lower_action_expr (sema rejects other uses).
        error(call.loc, "action outside return statement");
        return module_.constant(kI32, 0);
      case DeviceOp::None:
        break;
    }
    return module_.constant(kI32, 0);
  }

  Value* lower_net_call(const CallExpr& call) {
    const FunctionDecl& callee = *call.net_callee;
    std::unordered_map<const void*, Slot> frame;
    for (std::size_t i = 0; i < callee.params.size() && i < call.args.size(); ++i) {
      const ParamDecl& param = callee.params[i];
      const Expr& arg = *call.args[i];
      if (param.is_pointer || param.by_ref) {
        // Alias the caller's slot.
        if (arg.kind != ExprKind::VarRef) {
          error(arg.loc, "by-reference net-function arguments must be variables");
          continue;
        }
        const auto& ref = static_cast<const VarRefExpr&>(arg);
        const void* decl = ref.param != nullptr ? static_cast<const void*>(ref.param)
                                                : static_cast<const void*>(ref.local);
        const Slot* slot = find_slot(decl);
        if (slot == nullptr) continue;
        frame[&param] = *slot;
      } else {
        Value* value = lower_expr(arg);
        const int id = new_ssa_var(param.type);
        write_var(id, builder_.insert_block(), builder_.adapt(value, param.type));
        frame[&param] = Slot{Slot::Kind::SsaVar, id, nullptr, nullptr, 0, param.type};
      }
    }

    // Inline the body with a continuation block for early returns.
    BasicBlock* exit_block =
        fn_.add_block(callee.name + ".exit." + std::to_string(fn_.next_value_id++));
    env_.push_back(std::move(frame));
    net_exit_stack_.push_back(exit_block);
    lower_stmt(*callee.body);
    net_exit_stack_.pop_back();
    env_.pop_back();
    if (builder_.insert_block()->terminator() == nullptr) emit_br(exit_block);
    builder_.set_insert_point(exit_block);
    return module_.constant(kI32, 0);  // net functions are void
  }

  const Program& program_;
  Module& module_;
  Function& fn_;
  const FunctionDecl& kernel_;
  const LowerOptions& options_;
  DiagnosticEngine& diags_;
  Builder builder_;

  std::vector<std::unordered_map<const void*, Slot>> env_;
  std::vector<ScalarType> var_types_;
  std::unordered_map<BasicBlock*, std::unordered_map<int, Value*>> defs_;
  std::vector<std::pair<Argument*, int>> byref_scalars_;
  std::vector<BasicBlock*> net_exit_stack_;
};

}  // namespace

std::unique_ptr<Module> lower_program(const Program& program, const LowerOptions& options,
                                      DiagnosticEngine& diags) {
  auto module = std::make_unique<Module>(options.device_id);

  for (const auto& decl : program.globals) {
    if (!placed_at(decl->locations, options.device_id)) continue;
    GlobalVar global;
    global.name = decl->name;
    global.elem_type = decl->elem_type;
    global.dims = decl->dims;
    global.is_managed = decl->is_managed;
    global.is_lookup = decl->is_lookup;
    global.lookup_kind = decl->lookup_kind;
    global.key_type = decl->is_lookup && decl->lookup_kind != LookupKind::Set
                          ? decl->key_type
                          : decl->elem_type;
    global.value_type = decl->is_lookup && decl->lookup_kind != LookupKind::Set
                            ? decl->value_type
                            : decl->elem_type;
    global.entries = decl->entries;
    module->add_global(std::move(global));
  }

  for (const auto& fn : program.functions) {
    if (!fn->is_kernel || !placed_at(fn->locations, options.device_id)) continue;
    Function* ir_fn = module->add_function(fn->name, true, fn->computation);
    ir_fn->spec = make_kernel_spec(*fn);
    KernelLowerer lowerer(program, *module, *ir_fn, *fn, options, diags);
    lowerer.lower();
  }
  return module;
}

}  // namespace netcl::ir
