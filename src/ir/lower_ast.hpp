// AST -> IR lowering ("the device pipeline front half").
//
// Lowering is per device: it selects the kernels, net functions and global
// memory present at a device (location-less or explicitly placed there) and
// produces one ir::Module. Three transformations the paper performs as LLVM
// passes happen here because they are much simpler at AST level and have the
// same observable result:
//
//   * net-function inlining (call sites expand the callee body; by-ref
//     parameters alias the caller's variables),
//   * full loop unrolling (loop bounds must be compile-time constants;
//     non-unrollable loops are rejected with a diagnostic),
//   * known-value materialization (device.id becomes a constant).
//
// SSA is constructed directly (Braun-style local value numbering with phi
// insertion); the resulting CFG is acyclic by construction.
#pragma once

#include <memory>

#include "frontend/ast.hpp"
#include "ir/ir.hpp"
#include "support/diagnostics.hpp"

namespace netcl::ir {

struct LowerOptions {
  int device_id = 0;
  /// Maximum total unrolled iterations per loop before rejection.
  int max_unroll = 4096;
};

/// Lowers the device code of `program` for one device. Reports problems to
/// `diags`; returns the (possibly partial) module. Callers must check
/// diags.has_errors().
[[nodiscard]] std::unique_ptr<Module> lower_program(const Program& program,
                                                    const LowerOptions& options,
                                                    DiagnosticEngine& diags);

}  // namespace netcl::ir
