#include <algorithm>
#include <cassert>

#include "ir/ir.hpp"

namespace netcl::ir {

GlobalVar* Module::add_global(GlobalVar global) {
  global.id = next_global_id_++;
  globals_.push_back(std::make_unique<GlobalVar>(std::move(global)));
  return globals_.back().get();
}

GlobalVar* Module::find_global(const std::string& name) const {
  for (const auto& g : globals_) {
    if (g->name == name) return g.get();
  }
  return nullptr;
}

void Module::erase_global(GlobalVar* global) {
  const auto it = std::find_if(globals_.begin(), globals_.end(),
                               [&](const auto& p) { return p.get() == global; });
  assert(it != globals_.end());
  globals_.erase(it);
}

Function* Module::add_function(std::string name, bool is_kernel, int computation) {
  functions_.push_back(std::make_unique<Function>(this, std::move(name), is_kernel, computation));
  return functions_.back().get();
}

Function* Module::find_function(const std::string& name) const {
  for (const auto& fn : functions_) {
    if (fn->name() == name) return fn.get();
  }
  return nullptr;
}

Constant* Module::constant(ScalarType type, std::uint64_t value) {
  const std::uint16_t type_key =
      static_cast<std::uint16_t>(type.bits) | (type.is_signed ? 0x100 : 0);
  const auto key = std::make_pair(type.truncate(value), type_key);
  auto it = constants_.find(key);
  if (it == constants_.end()) {
    it = constants_.emplace(key, std::make_unique<Constant>(type, value)).first;
  }
  return it->second.get();
}

}  // namespace netcl::ir
