#include "ir/printer.hpp"

#include <sstream>
#include <unordered_map>

namespace netcl::ir {
namespace {

class PrinterState {
 public:
  std::string ref(const Value* v) {
    if (const Constant* c = as_constant(v)) {
      return std::to_string(c->extended()) + ":" + c->type().to_string();
    }
    if (v->kind() == ValueKind::Argument) {
      return "%arg." + v->name();
    }
    const auto it = names_.find(v);
    if (it != names_.end()) return it->second;
    const std::string name =
        v->name().empty() ? "%v" + std::to_string(counter_++) : "%" + v->name();
    names_[v] = name;
    return name;
  }

 private:
  std::unordered_map<const Value*, std::string> names_;
  int counter_ = 0;
};

void print_instruction(std::ostringstream& os, const Instruction& inst, PrinterState& state) {
  os << "  ";
  const bool produces = !inst.is_terminator() && inst.op() != Opcode::StoreGlobal &&
                        inst.op() != Opcode::StoreMsg && inst.op() != Opcode::StoreLocal;
  if (produces) os << state.ref(&inst) << ":" << inst.type().to_string() << " = ";
  os << to_string(inst.op());

  switch (inst.op()) {
    case Opcode::Bin:
      os << "." << to_string(inst.bin_kind);
      break;
    case Opcode::ICmp:
      os << "." << to_string(inst.icmp_pred);
      break;
    case Opcode::AtomicRMW: {
      os << ".";
      if (inst.atomic_cond) os << "cond_";
      switch (inst.atomic_op) {
        case AtomicOpKind::Add: os << "add"; break;
        case AtomicOpKind::SAdd: os << "sadd"; break;
        case AtomicOpKind::Sub: os << "sub"; break;
        case AtomicOpKind::SSub: os << "ssub"; break;
        case AtomicOpKind::Or: os << "or"; break;
        case AtomicOpKind::And: os << "and"; break;
        case AtomicOpKind::Xor: os << "xor"; break;
        case AtomicOpKind::Inc: os << "inc"; break;
        case AtomicOpKind::Dec: os << "dec"; break;
        case AtomicOpKind::Min: os << "min"; break;
        case AtomicOpKind::Max: os << "max"; break;
        case AtomicOpKind::Cas: os << "cas"; break;
      }
      if (inst.atomic_new) os << "_new";
      break;
    }
    case Opcode::Hash:
      switch (inst.hash_kind) {
        case HashKind::Crc16: os << ".crc16"; break;
        case HashKind::Crc32: os << ".crc32"; break;
        case HashKind::Xor16: os << ".xor16"; break;
        case HashKind::Identity: os << ".identity"; break;
      }
      break;
    case Opcode::RetAction:
      os << " " << netcl::to_string(inst.action);
      break;
    default:
      break;
  }

  if (inst.global != nullptr) os << " @" << inst.global->name;
  if (inst.local_array != nullptr) os << " $" << inst.local_array->name;
  if (inst.arg_index >= 0) os << " arg" << inst.arg_index;

  if (inst.op() == Opcode::Phi) {
    for (std::size_t i = 0; i < inst.num_operands(); ++i) {
      os << (i != 0 ? "," : "") << " [" << state.ref(inst.operand(i)) << ", "
         << inst.phi_blocks[i]->name() << "]";
    }
  } else {
    for (std::size_t i = 0; i < inst.num_operands(); ++i) {
      os << (i != 0 ? "," : "") << " " << state.ref(inst.operand(i));
    }
  }

  for (std::size_t i = 0; i < inst.succs.size(); ++i) {
    os << (i != 0 || inst.num_operands() != 0 ? ", " : " ") << "^" << inst.succs[i]->name();
  }
  os << "\n";
}

}  // namespace

std::string print_value_ref(const Value* v) {
  PrinterState state;
  return state.ref(v);
}

std::string print(const Function& fn) {
  std::ostringstream os;
  PrinterState state;
  os << (fn.is_kernel() ? "kernel" : "func") << " @" << fn.name();
  if (fn.is_kernel()) os << " computation " << fn.computation();
  os << "(";
  for (std::size_t i = 0; i < fn.arguments().size(); ++i) {
    const Argument& arg = *fn.arguments()[i];
    os << (i != 0 ? ", " : "") << arg.name() << ":" << arg.type().to_string();
    if (arg.is_array()) os << "[" << arg.elem_count() << "]";
    if (arg.writable()) os << "&";
  }
  os << ") {\n";
  for (const auto& array : fn.local_arrays()) {
    os << "  local $" << array->name << ": " << array->elem_type.to_string() << "["
       << array->size << "]\n";
  }
  for (const auto& block : fn.blocks()) {
    os << block->name() << ":\n";
    for (const auto& inst : block->instructions()) {
      print_instruction(os, *inst, state);
    }
  }
  os << "}\n";
  return os.str();
}

std::string print(const Module& module) {
  std::ostringstream os;
  os << "; module for device " << module.device_id() << "\n";
  for (const auto& global : module.globals()) {
    os << "global @" << global->name << ": " << global->elem_type.to_string();
    for (const std::int64_t dim : global->dims) os << "[" << dim << "]";
    if (global->is_managed) os << " managed";
    if (global->is_lookup) {
      os << " lookup";
      switch (global->lookup_kind) {
        case LookupKind::Set: os << ".set"; break;
        case LookupKind::Exact: os << ".exact"; break;
        case LookupKind::Range: os << ".range"; break;
      }
      os << " entries=" << global->entries.size();
    }
    os << "\n";
  }
  for (const auto& fn : module.functions()) {
    os << "\n" << print(*fn);
  }
  return os.str();
}

}  // namespace netcl::ir
