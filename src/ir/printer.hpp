// Textual IR printer, for tests, golden files and -emit-ir debugging.
#pragma once

#include <string>

#include "ir/ir.hpp"

namespace netcl::ir {

[[nodiscard]] std::string print(const Module& module);
[[nodiscard]] std::string print(const Function& fn);
[[nodiscard]] std::string print_value_ref(const Value* v);

}  // namespace netcl::ir
