#include "ir/verifier.hpp"

#include <algorithm>
#include <unordered_set>

#include "ir/dominators.hpp"
#include "ir/printer.hpp"

namespace netcl::ir {
namespace {

bool cfg_is_acyclic(const Function& fn) {
  enum class Mark { White, Grey, Black };
  std::unordered_map<const BasicBlock*, Mark> marks;
  for (const auto& block : fn.blocks()) marks[block.get()] = Mark::White;
  auto dfs = [&](auto&& self, const BasicBlock* block) -> bool {
    marks[block] = Mark::Grey;
    for (const BasicBlock* succ : block->successors()) {
      if (marks[succ] == Mark::Grey) return false;
      if (marks[succ] == Mark::White && !self(self, succ)) return false;
    }
    marks[block] = Mark::Black;
    return true;
  };
  return fn.entry() == nullptr || dfs(dfs, fn.entry());
}

}  // namespace

std::vector<std::string> verify(Function& fn) {
  std::vector<std::string> errors;
  auto error = [&](const std::string& message) {
    errors.push_back(fn.name() + ": " + message);
  };

  if (fn.entry() == nullptr) {
    error("function has no blocks");
    return errors;
  }

  if (!cfg_is_acyclic(fn)) {
    error("CFG contains a cycle (loops must be fully unrolled)");
    return errors;  // dominator analysis below assumes a DAG
  }

  fn.recompute_preds();

  // Collect all values owned by this function for def checks.
  std::unordered_set<const Value*> known;
  for (const auto& arg : fn.arguments()) known.insert(arg.get());
  for (const auto& block : fn.blocks()) {
    for (const auto& inst : block->instructions()) known.insert(inst.get());
  }

  for (const auto& block : fn.blocks()) {
    const Instruction* term = block->terminator();
    if (term == nullptr) {
      error("block " + block->name() + " has no terminator");
      continue;
    }
    std::size_t terminator_count = 0;
    bool seen_non_phi = false;
    for (const auto& inst : block->instructions()) {
      if (inst->is_terminator()) ++terminator_count;
      if (inst->op() == Opcode::Phi) {
        if (seen_non_phi) error("phi after non-phi in block " + block->name());
      } else {
        seen_non_phi = true;
      }
      if (inst->parent() != block.get()) {
        error("instruction parent link broken in block " + block->name());
      }
    }
    if (terminator_count != 1) {
      error("block " + block->name() + " has " + std::to_string(terminator_count) +
            " terminators");
    }
    if (fn.is_kernel() && term->op() == Opcode::Ret) {
      error("kernel block " + block->name() + " exits with plain ret (must be an action)");
    }
  }

  DominatorTree dom(fn);
  for (const auto& block : fn.blocks()) {
    for (const auto& inst : block->instructions()) {
      // Phi shape.
      if (inst->op() == Opcode::Phi) {
        if (inst->phi_blocks.size() != inst->num_operands()) {
          error("phi in " + block->name() + " has mismatched incoming lists");
          continue;
        }
        auto preds = block->predecessors();
        if (preds.size() != inst->num_operands()) {
          error("phi in " + block->name() + " has " + std::to_string(inst->num_operands()) +
                " incomings but block has " + std::to_string(preds.size()) + " predecessors");
        }
        for (const BasicBlock* incoming : inst->phi_blocks) {
          if (std::find(preds.begin(), preds.end(), incoming) == preds.end()) {
            error("phi in " + block->name() + " has non-predecessor incoming block " +
                  incoming->name());
          }
        }
      }

      // Operand defs exist and dominate uses.
      for (std::size_t i = 0; i < inst->num_operands(); ++i) {
        const Value* operand = inst->operand(i);
        if (operand == nullptr) {
          error("null operand in " + block->name());
          continue;
        }
        if (operand->kind() == ValueKind::Instruction) {
          const auto* def = static_cast<const Instruction*>(operand);
          if (known.count(def) == 0) {
            error("operand defined outside this function in block " + block->name());
            continue;
          }
          if (inst->op() == Opcode::Phi) {
            // Phi operands must dominate the incoming edge's source.
            const BasicBlock* incoming = inst->phi_blocks[i];
            if (!dom.dominates(def->parent(), incoming)) {
              error("phi operand does not dominate incoming block in " + block->name());
            }
          } else if (!dom.dominates(def, inst.get())) {
            error("operand does not dominate its use in block " + block->name() + ": " +
                  to_string(inst->op()));
          }
        }
      }

      // Width consistency.
      if (inst->op() == Opcode::Bin) {
        if (inst->operand(0)->type().bits != inst->type().bits ||
            inst->operand(1)->type().bits != inst->type().bits) {
          error("bin operand width mismatch in " + block->name());
        }
      }
      if (inst->op() == Opcode::Select) {
        if (inst->operand(1)->type().bits != inst->type().bits ||
            inst->operand(2)->type().bits != inst->type().bits) {
          error("select arm width mismatch in " + block->name());
        }
      }
      if (inst->op() == Opcode::ICmp &&
          inst->operand(0)->type().bits != inst->operand(1)->type().bits) {
        error("icmp operand width mismatch in " + block->name());
      }

      // Global access shapes.
      if (inst->accesses_global() && inst->op() != Opcode::Lookup) {
        if (inst->global == nullptr) {
          error("global access without global in " + block->name());
        } else if (inst->num_indices != static_cast<int>(inst->global->dims.size())) {
          error("global access to @" + inst->global->name + " has " +
                std::to_string(inst->num_indices) + " indices, expected " +
                std::to_string(inst->global->dims.size()));
        }
      }
      if (inst->op() == Opcode::Lookup &&
          (inst->global == nullptr || !inst->global->is_lookup)) {
        error("lookup on non-lookup memory in " + block->name());
      }
    }
  }
  return errors;
}

std::vector<std::string> verify(Module& module) {
  std::vector<std::string> errors;
  for (const auto& fn : module.functions()) {
    auto fn_errors = verify(*fn);
    errors.insert(errors.end(), fn_errors.begin(), fn_errors.end());
  }
  return errors;
}

}  // namespace netcl::ir
