// IR structural verifier, run between passes in debug/driver flows.
#pragma once

#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace netcl::ir {

/// Checks SSA and CFG invariants:
///  - every block ends with exactly one terminator,
///  - kernel exit terminators are RetAction (Ret only in net functions),
///  - the CFG is acyclic (the P4-compilable DAG property),
///  - phi operands match predecessor lists,
///  - every operand definition dominates its use,
///  - operand widths are consistent for Bin/Select,
///  - global accesses carry one index operand per array dimension.
/// Returns a list of human-readable violations (empty = valid).
[[nodiscard]] std::vector<std::string> verify(Function& fn);

/// Verifies every function in the module.
[[nodiscard]] std::vector<std::string> verify(Module& module);

}  // namespace netcl::ir
