// Recycled wire buffers for the data-plane fast path (ISSUE 5).
//
// serialize_packet() used to return a fresh std::vector per packet, which
// at batch-32 rates makes the allocator a bigger cost than the kernel.
// A BufferPool hands out empty vectors that keep their previously grown
// capacity, so steady-state serialization allocates nothing: UdpTransport,
// SwdServer, and the control plane acquire a buffer, serialize into it
// (the serialize_packet overload in net/wire.hpp writes into caller
// storage), transmit, and release the buffer back.
//
// Single-threaded by design, like the event loops that own one — each
// UdpTransport/SwdServer has its own pool; nothing is shared across
// threads.
#pragma once

#include <cstdint>
#include <vector>

namespace netcl::net {

class BufferPool {
 public:
  /// At most `max_buffers` are retained; releases beyond that free their
  /// memory (a burst does not pin its high-water mark forever).
  explicit BufferPool(std::size_t max_buffers = 64) : max_buffers_(max_buffers) {}

  /// An empty buffer, with whatever capacity its previous life grew.
  [[nodiscard]] std::vector<std::uint8_t> acquire() {
    if (free_.empty()) return {};
    std::vector<std::uint8_t> buffer = std::move(free_.back());
    free_.pop_back();
    buffer.clear();  // keeps capacity
    ++reuses_;
    return buffer;
  }

  /// Returns a buffer to the pool (contents irrelevant; cleared on reuse).
  void release(std::vector<std::uint8_t>&& buffer) {
    if (free_.size() >= max_buffers_) return;  // let it free
    free_.push_back(std::move(buffer));
  }

  /// Buffers currently idle in the pool.
  [[nodiscard]] std::size_t pooled() const { return free_.size(); }
  /// acquire() calls served from the pool instead of a fresh allocation.
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }

 private:
  std::vector<std::vector<std::uint8_t>> free_;
  std::size_t max_buffers_;
  std::uint64_t reuses_ = 0;
};

}  // namespace netcl::net
