// Recycled wire buffers for the data-plane fast path (ISSUE 5).
//
// serialize_packet() used to return a fresh std::vector per packet, which
// at batch-32 rates makes the allocator a bigger cost than the kernel.
// A BufferPool hands out empty vectors that keep their previously grown
// capacity, so steady-state serialization allocates nothing: UdpTransport,
// SwdServer, and the control plane acquire a buffer, serialize into it
// (the serialize_packet overload in net/wire.hpp writes into caller
// storage), transmit, and release the buffer back.
//
// Single-threaded by design, like the event loops that own one — each
// UdpTransport/SwdServer has its own pool; nothing is shared across
// threads.
//
// Observability (ISSUE 6): bind_metrics() wires the pool to its owner's
// MetricsRegistry — buffer_pool.hits (acquires served from the pool),
// buffer_pool.misses (acquires that had to allocate), and the
// buffer_pool.high_watermark gauge (peak buffers outstanding at once).
// The counters reach the retained store with the registry, so ncl-top and
// the Prometheus endpoint show pool effectiveness per transport.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace netcl::net {

class BufferPool {
 public:
  /// At most `max_buffers` are retained; releases beyond that free their
  /// memory (a burst does not pin its high-water mark forever).
  explicit BufferPool(std::size_t max_buffers = 64) : max_buffers_(max_buffers) {}

  /// Publishes hit/miss/high-watermark metrics into `registry`, which must
  /// outlive the pool. Counts accumulated before binding are carried over.
  void bind_metrics(obs::MetricsRegistry& registry) {
    hits_ = &registry.counter("buffer_pool.hits");
    misses_ = &registry.counter("buffer_pool.misses");
    high_watermark_ = &registry.gauge("buffer_pool.high_watermark");
    hits_->inc(reuses_);
    misses_->inc(allocations_);
    high_watermark_->set(static_cast<double>(peak_outstanding_));
  }

  /// An empty buffer, with whatever capacity its previous life grew.
  [[nodiscard]] std::vector<std::uint8_t> acquire() {
    ++outstanding_;
    if (outstanding_ > peak_outstanding_) {
      peak_outstanding_ = outstanding_;
      if (high_watermark_ != nullptr) {
        high_watermark_->set(static_cast<double>(peak_outstanding_));
      }
    }
    if (free_.empty()) {
      ++allocations_;
      if (misses_ != nullptr) misses_->inc();
      return {};
    }
    std::vector<std::uint8_t> buffer = std::move(free_.back());
    free_.pop_back();
    buffer.clear();  // keeps capacity
    ++reuses_;
    if (hits_ != nullptr) hits_->inc();
    return buffer;
  }

  /// Returns a buffer to the pool (contents irrelevant; cleared on reuse).
  void release(std::vector<std::uint8_t>&& buffer) {
    if (outstanding_ > 0) --outstanding_;
    if (free_.size() >= max_buffers_) return;  // let it free
    free_.push_back(std::move(buffer));
  }

  /// Buffers currently idle in the pool.
  [[nodiscard]] std::size_t pooled() const { return free_.size(); }
  /// acquire() calls served from the pool instead of a fresh allocation.
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }
  /// acquire() calls that had to allocate fresh storage.
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }
  /// Peak buffers simultaneously outstanding (acquired, not yet released).
  [[nodiscard]] std::size_t high_watermark() const { return peak_outstanding_; }

 private:
  std::vector<std::vector<std::uint8_t>> free_;
  std::size_t max_buffers_;
  std::uint64_t reuses_ = 0;
  std::uint64_t allocations_ = 0;
  std::size_t outstanding_ = 0;
  std::size_t peak_outstanding_ = 0;

  // Owned by the registry the pool was bound to (null until bind_metrics).
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Gauge* high_watermark_ = nullptr;
};

}  // namespace netcl::net
