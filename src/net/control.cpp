#include "net/control.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <thread>

#include "obs/span.hpp"

namespace netcl::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Remaining budget in whole milliseconds (>= 0); -1 never happens — an
/// expired deadline yields 0 so poll returns immediately.
int remaining_ms(ControlDeadline deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return static_cast<int>(std::max<std::int64_t>(left.count(), 0));
}

bool deadline_passed(ControlDeadline deadline) {
  return std::chrono::steady_clock::now() >= deadline;
}

/// The 8-byte preamble in front of `payload_size` bytes of payload.
void append_frame_header(ByteWriter& frame, std::size_t payload_size) {
  frame.u8(kControlFrameMagic[0]);
  frame.u8(kControlFrameMagic[1]);
  frame.u8(kControlFrameVersion);
  frame.u8(0);  // reserved, must be zero
  frame.u32(static_cast<std::uint32_t>(payload_size));
}

}  // namespace

FrameParse parse_frame_header(std::span<const std::uint8_t> data, std::uint32_t& length,
                              runtime::Error& error) {
  if (data.size() < kControlFrameHeaderBytes) return FrameParse::kNeedMore;
  if (data[0] != kControlFrameMagic[0] || data[1] != kControlFrameMagic[1]) {
    error = {runtime::ErrorKind::kMalformed, "bad control frame magic"};
    return FrameParse::kMalformed;
  }
  if (data[2] != kControlFrameVersion) {
    error = {runtime::ErrorKind::kMalformed,
             "unsupported control protocol version " + std::to_string(data[2])};
    return FrameParse::kMalformed;
  }
  if (data[3] != 0) {
    error = {runtime::ErrorKind::kMalformed, "nonzero reserved byte in control frame"};
    return FrameParse::kMalformed;
  }
  ByteReader reader(data.subspan(4, 4));
  length = reader.u32();
  if (length > kMaxControlFrame) {
    error = {runtime::ErrorKind::kMalformed,
             "control frame length " + std::to_string(length) + " exceeds max " +
                 std::to_string(kMaxControlFrame)};
    return FrameParse::kMalformed;
  }
  return FrameParse::kFrame;
}

bool read_exact(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r == 0) return false;  // EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that died mid-write is a return value (EPIPE),
    // not a process-killing SIGPIPE.
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking fd with a full send buffer: wait for writability
        // instead of tearing the stream down. Bounded so a client that
        // never drains cannot wedge the server's poll loop forever.
        pollfd pfd{fd, POLLOUT, 0};
        if (::poll(&pfd, 1, 5000) > 0 && (pfd.revents & POLLOUT) != 0) continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

bool write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  // Single send(); see the deadline overload for the Nagle rationale.
  ByteWriter frame;
  append_frame_header(frame, payload.size());
  frame.raw(payload);
  return write_all(fd, frame.bytes().data(), frame.bytes().size());
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload) {
  std::uint8_t header[kControlFrameHeaderBytes];
  if (!read_exact(fd, header, sizeof(header))) return false;
  std::uint32_t length = 0;
  runtime::Error error;
  // Validate (magic, version, length bound) before sizing any buffer.
  if (parse_frame_header({header, sizeof(header)}, length, error) != FrameParse::kFrame) {
    return false;
  }
  payload.resize(length);
  return length == 0 || read_exact(fd, payload.data(), length);
}

bool read_exact(int fd, std::uint8_t* out, std::size_t n, ControlDeadline deadline) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r == 0) return false;  // EOF
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return false;
    if (deadline_passed(deadline)) return false;
    pollfd pfd{fd, POLLIN, 0};
    ::poll(&pfd, 1, remaining_ms(deadline));
  }
  return true;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t n, ControlDeadline deadline) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w >= 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return false;
    if (deadline_passed(deadline)) return false;
    pollfd pfd{fd, POLLOUT, 0};
    ::poll(&pfd, 1, remaining_ms(deadline));
  }
  return true;
}

bool write_frame(int fd, const std::vector<std::uint8_t>& payload, ControlDeadline deadline) {
  // One send(), not header-then-payload: two small writes trip Nagle +
  // delayed-ACK (~40 ms per frame on loopback), which would dominate the
  // control RTT and ruin PING-based clock alignment (ISSUE 4).
  ByteWriter frame;
  append_frame_header(frame, payload.size());
  frame.raw(payload);
  return write_all(fd, frame.bytes().data(), frame.bytes().size(), deadline);
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload, ControlDeadline deadline) {
  std::uint8_t header[kControlFrameHeaderBytes];
  if (!read_exact(fd, header, sizeof(header), deadline)) return false;
  std::uint32_t length = 0;
  runtime::Error error;
  if (parse_frame_header({header, sizeof(header)}, length, error) != FrameParse::kFrame) {
    return false;
  }
  payload.resize(length);
  return length == 0 || read_exact(fd, payload.data(), length, deadline);
}

void encode_stats(ByteWriter& w, const sim::DeviceStats& stats) {
  w.u64(stats.packets_processed);
  w.u64(stats.kernels_executed);
  w.u64(stats.no_kernel);
  w.u64(stats.drops_action);
  w.u64(stats.multicasts);
  w.u64(stats.transits);
  w.u64(stats.recirculations);
  w.u64(stats.control_reads);
  w.u64(stats.control_writes);
  w.u64_vec(stats.stage_executions);
}

bool decode_stats(ByteReader& r, sim::DeviceStats& out) {
  out.packets_processed = r.u64();
  out.kernels_executed = r.u64();
  out.no_kernel = r.u64();
  out.drops_action = r.u64();
  out.multicasts = r.u64();
  out.transits = r.u64();
  out.recirculations = r.u64();
  out.control_reads = r.u64();
  out.control_writes = r.u64();
  out.stage_executions = r.u64_vec();
  return r.ok();
}

ControlClient::ControlClient(const std::string& host, std::uint16_t port,
                             const ControlClientOptions& options)
    : host_(host),
      port_(port),
      options_(options),
      // Unique-enough across processes and instances: the daemon's
      // idempotency cache is keyed by it. No determinism requirement here —
      // collisions would only merge two clients' replay slots.
      client_id_(static_cast<std::uint64_t>(
                     std::chrono::steady_clock::now().time_since_epoch().count()) ^
                 (reinterpret_cast<std::uintptr_t>(this) << 16) ^
                 static_cast<std::uint64_t>(::getpid())),
      jitter_(client_id_) {
  connect_now();
}

ControlClient::~ControlClient() { disconnect(); }

void ControlClient::disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void ControlClient::fail(runtime::ErrorKind kind, std::string message) {
  error_ = runtime::Error(kind, std::move(message));
}

bool ControlClient::connect_now() {
  if (fd_ >= 0) return true;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    fail(runtime::ErrorKind::kDisconnected, "invalid control host '" + host_ + "'");
    return false;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    fail(runtime::ErrorKind::kDisconnected, std::string("socket: ") + std::strerror(errno));
    return false;
  }
  // Non-blocking from the start: connect against a partitioned host would
  // otherwise block for minutes; here it is bounded by connect_timeout_ms.
  set_nonblocking(fd_);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      fail(runtime::ErrorKind::kDisconnected, std::string("connect: ") + std::strerror(errno));
      disconnect();
      return false;
    }
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(static_cast<long>(options_.connect_timeout_ms));
    pollfd pfd{fd_, POLLOUT, 0};
    int ready = 0;
    do {
      ready = ::poll(&pfd, 1, remaining_ms(deadline));
    } while (ready < 0 && errno == EINTR && !deadline_passed(deadline));
    if (ready <= 0) {
      fail(runtime::ErrorKind::kTimeout, "connect to " + host_ + " timed out");
      disconnect();
      return false;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      fail(runtime::ErrorKind::kDisconnected,
           std::string("connect: ") + std::strerror(so_error));
      disconnect();
      obs::flight(obs::FlightKind::kControlReconnect, 0);
      return false;
    }
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  obs::flight(obs::FlightKind::kControlReconnect, 1);
  return true;
}

void ControlClient::backoff(int attempt) {
  const double exponent = std::min(attempt - 1, 20);  // avoid overflow
  const double base = std::min(options_.backoff_base_ms * std::pow(2.0, exponent),
                               options_.backoff_max_ms);
  // ±50% multiplicative jitter so retry storms decorrelate.
  const double delay_ms = base * (0.5 + jitter_.next_double());
  obs::flight(obs::FlightKind::kControlBackoff, static_cast<std::uint64_t>(delay_ms),
              static_cast<std::uint64_t>(attempt));
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
}

bool ControlClient::roundtrip(const ByteWriter& request, std::vector<std::uint8_t>& response,
                              runtime::Error* op_error) {
  // One id for all attempts of this logical request: the daemon dedups on
  // (client_id, request_id), so a retry after a half-applied request
  // replays the cached response instead of re-executing the op.
  ByteWriter framed;
  framed.u64(client_id_);
  framed.u64(next_request_id_++);
  framed.raw(request.bytes());

  // Pooled frame buffer: read_frame resizes into recycled capacity, so
  // the steady-state control plane does not allocate per round trip.
  const std::uint64_t op = request.bytes().empty() ? 0 : request.bytes()[0];
  obs::flight(obs::FlightKind::kControlRequest, op, request.bytes().size());
  std::vector<std::uint8_t> frame = pool_.acquire();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      obs::flight(obs::FlightKind::kControlRetry, op, static_cast<std::uint64_t>(attempt));
      backoff(attempt);
    }
    if (fd_ < 0 && !connect_now()) continue;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(static_cast<long>(options_.request_timeout_ms));
    if (write_frame(fd_, framed.bytes(), deadline) && read_frame(fd_, frame, deadline)) {
      if (frame.empty() || frame[0] != kControlOk) {
        // The daemon answered and rejected the op: not a transport failure,
        // so no retry and no transport error recorded.
        error_ = runtime::Error();
        if (op_error != nullptr) {
          *op_error = runtime::Error(runtime::ErrorKind::kRejected,
                                     "device refused the operation");
          // New-style ops append a typed body: u8 ErrorKind, str message.
          if (frame.size() > 1) {
            ByteReader reader({frame.data() + 1, frame.size() - 1});
            const auto kind = static_cast<runtime::ErrorKind>(reader.u8());
            std::string message = reader.str();
            if (reader.ok()) *op_error = runtime::Error(kind, std::move(message));
          }
        }
        pool_.release(std::move(frame));
        return false;
      }
      response.assign(frame.begin() + 1, frame.end());
      error_ = runtime::Error();
      if (op_error != nullptr) *op_error = runtime::Error();
      pool_.release(std::move(frame));
      return true;
    }
    // A broken or stalled stream cannot carry further requests; close and
    // reconnect on the next attempt.
    fail(deadline_passed(deadline) ? runtime::ErrorKind::kTimeout
                                   : runtime::ErrorKind::kDisconnected,
         "control request to " + host_ + ":" + std::to_string(port_) + " failed (attempt " +
             std::to_string(attempt + 1) + ")");
    disconnect();
  }
  if (op_error != nullptr) *op_error = error_;
  pool_.release(std::move(frame));
  return false;
}

bool ControlClient::ping(std::uint16_t& device_id) {
  std::uint32_t generation = 0;
  return ping(device_id, generation);
}

bool ControlClient::ping(std::uint16_t& device_id, std::uint32_t& generation) {
  std::uint64_t device_clock_ns = 0;
  return ping(device_id, generation, device_clock_ns);
}

bool ControlClient::ping(std::uint16_t& device_id, std::uint32_t& generation,
                         std::uint64_t& device_clock_ns) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kPing));
  std::vector<std::uint8_t> response;
  if (!roundtrip(request, response)) return false;
  ByteReader reader(response);
  device_id = reader.u16();
  generation = reader.u32();
  if (!reader.ok()) return false;
  // Pre-extension daemons answer without the clock; report 0 rather than
  // failing the heartbeat.
  device_clock_ns = reader.at_end() ? 0 : reader.u64();
  return reader.ok();
}

bool ControlClient::managed_write(const std::string& name,
                                  const std::vector<std::uint64_t>& indices,
                                  std::uint64_t value) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kManagedWrite));
  request.str(name);
  request.u64_vec(indices);
  request.u64(value);
  std::vector<std::uint8_t> response;
  return roundtrip(request, response);
}

bool ControlClient::managed_read(const std::string& name,
                                 const std::vector<std::uint64_t>& indices,
                                 std::uint64_t& out) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kManagedRead));
  request.str(name);
  request.u64_vec(indices);
  std::vector<std::uint8_t> response;
  if (!roundtrip(request, response)) return false;
  ByteReader reader(response);
  out = reader.u64();
  return reader.ok();
}

bool ControlClient::insert(const std::string& table, std::uint64_t key_lo,
                           std::uint64_t key_hi, std::uint64_t value) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kInsert));
  request.str(table);
  request.u64(key_lo);
  request.u64(key_hi);
  request.u64(value);
  std::vector<std::uint8_t> response;
  return roundtrip(request, response);
}

bool ControlClient::remove(const std::string& table, std::uint64_t key) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kRemove));
  request.str(table);
  request.u64(key);
  std::vector<std::uint8_t> response;
  return roundtrip(request, response);
}

bool ControlClient::stats(sim::DeviceStats& out) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kStats));
  std::vector<std::uint8_t> response;
  if (!roundtrip(request, response)) return false;
  ByteReader reader(response);
  return decode_stats(reader, out);
}

bool ControlClient::register_access(std::map<std::string, sim::RegisterAccess>& out) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kRegisterAccess));
  std::vector<std::uint8_t> response;
  if (!roundtrip(request, response)) return false;
  ByteReader reader(response);
  const std::uint16_t count = reader.u16();
  out.clear();
  for (std::uint16_t i = 0; i < count && reader.ok(); ++i) {
    const std::string name = reader.str();
    sim::RegisterAccess access;
    access.reads = reader.u64();
    access.writes = reader.u64();
    out[name] = access;
  }
  return reader.ok();
}

bool ControlClient::set_multicast_group(std::uint16_t group,
                                        const std::vector<std::uint16_t>& hosts) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kSetMulticastGroup));
  request.u16(group);
  request.u16(static_cast<std::uint16_t>(hosts.size()));
  for (const std::uint16_t host : hosts) request.u16(host);
  std::vector<std::uint8_t> response;
  return roundtrip(request, response);
}

bool ControlClient::metrics_text(std::string& out) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kMetricsText));
  std::vector<std::uint8_t> response;
  if (!roundtrip(request, response)) return false;
  // Raw UTF-8 body — the frame length already delimits it, and a str()'s
  // u16 length prefix would cap the exposition at 64 KiB.
  out.assign(response.begin(), response.end());
  return true;
}

bool ControlClient::flight_dump(std::uint32_t window_seconds, FlightDumpResult& out) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kFlightDump));
  request.u32(window_seconds);
  // Bracket the round trip on the flight clock: the daemon reads its
  // device clock once in between, which is exactly the align_clocks()
  // midpoint-estimator setup (error ≤ RTT/2).
  const std::uint64_t send_ns = obs::flight_now_ns();
  std::vector<std::uint8_t> response;
  if (!roundtrip(request, response)) return false;
  const std::uint64_t recv_ns = obs::flight_now_ns();
  ByteReader reader(response);
  out.device_clock_now_ns = reader.u64();
  const std::uint32_t count = reader.u32();
  out.events.clear();
  out.events.reserve(count);
  for (std::uint32_t i = 0; i < count && reader.ok(); ++i) {
    obs::FlightEvent event;
    event.ts_ns = reader.u64();
    event.kind = reader.u16();
    event.ring = reader.u16();
    event.seq = i;
    event.a = reader.u64();
    event.b = reader.u64();
    out.events.push_back(event);
  }
  if (!reader.ok()) return false;
  const obs::ClockAlignment alignment =
      obs::align_clocks(static_cast<double>(send_ns), static_cast<double>(recv_ns),
                        static_cast<double>(out.device_clock_now_ns));
  out.offset_ns = alignment.valid ? alignment.offset_ns : 0.0;
  return true;
}

bool ControlClient::profile_dump(std::uint8_t flags, ProfileDumpResult& out) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kProfileDump));
  request.u8(flags);
  std::vector<std::uint8_t> response;
  if (!roundtrip(request, response)) return false;
  ByteReader reader(response);
  out.samples = reader.u64();
  out.distinct_stacks = reader.u64();
  out.hz = reader.u32();
  out.path = reader.str();
  const std::uint32_t text_len = reader.u32();
  if (text_len > reader.remaining()) return false;
  out.folded = reader.bytes_str(text_len);
  return reader.ok();
}

runtime::Error ControlClient::load_kernel(std::uint32_t tenant, const std::string& name,
                                          const std::string& source,
                                          const std::map<std::string, std::uint64_t>& defines,
                                          bool replace, std::uint16_t* stages_used,
                                          std::string* summary) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kLoadKernel));
  request.u32(tenant);
  request.u8(replace ? 1 : 0);
  request.str(name);
  request.u16(static_cast<std::uint16_t>(defines.size()));
  for (const auto& [define, value] : defines) {
    request.str(define);
    request.u64(value);
  }
  // Raw bytes after an explicit u32 length: str()'s u16 prefix would cap
  // kernel sources at 64 KiB.
  request.u32(static_cast<std::uint32_t>(source.size()));
  request.raw({reinterpret_cast<const std::uint8_t*>(source.data()), source.size()});
  std::vector<std::uint8_t> response;
  runtime::Error op_error;
  if (!roundtrip(request, response, &op_error)) return op_error;
  ByteReader reader(response);
  const std::uint16_t stages = reader.u16();
  std::string headroom = reader.str();
  if (!reader.ok()) {
    return {runtime::ErrorKind::kRejected, "malformed kLoadKernel response"};
  }
  if (stages_used != nullptr) *stages_used = stages;
  if (summary != nullptr) *summary = std::move(headroom);
  return {};
}

runtime::Error ControlClient::unload_kernel(std::uint32_t tenant) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kUnloadKernel));
  request.u32(tenant);
  std::vector<std::uint8_t> response;
  runtime::Error op_error;
  roundtrip(request, response, &op_error);
  return op_error;
}

runtime::Error ControlClient::list_kernels(std::vector<KernelInfo>& out) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kListKernels));
  std::vector<std::uint8_t> response;
  runtime::Error op_error;
  if (!roundtrip(request, response, &op_error)) return op_error;
  ByteReader reader(response);
  const std::uint16_t count = reader.u16();
  out.clear();
  out.reserve(count);
  for (std::uint16_t i = 0; i < count && reader.ok(); ++i) {
    KernelInfo info;
    info.tenant = reader.u32();
    info.name = reader.str();
    info.stages_used = reader.u16();
    const std::uint16_t n_comps = reader.u16();
    for (std::uint16_t c = 0; c < n_comps && reader.ok(); ++c) {
      info.computations.push_back(reader.u32());
    }
    info.usage = reader.str();
    info.packets_processed = reader.u64();
    info.kernels_executed = reader.u64();
    info.drops_action = reader.u64();
    out.push_back(std::move(info));
  }
  if (!reader.ok()) {
    return {runtime::ErrorKind::kRejected, "malformed kListKernels response"};
  }
  return {};
}

}  // namespace netcl::net
