#include "net/control.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace netcl::net {

bool read_exact(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r == 0) return false;  // EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::write(fd, data + sent, n - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking fd with a full send buffer: wait for writability
        // instead of tearing the stream down. Bounded so a client that
        // never drains cannot wedge the server's poll loop forever.
        pollfd pfd{fd, POLLOUT, 0};
        if (::poll(&pfd, 1, 5000) > 0 && (pfd.revents & POLLOUT) != 0) continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

bool write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  ByteWriter header;
  header.u32(static_cast<std::uint32_t>(payload.size()));
  return write_all(fd, header.bytes().data(), header.bytes().size()) &&
         write_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload) {
  std::uint8_t header[4];
  if (!read_exact(fd, header, sizeof(header))) return false;
  ByteReader reader({header, sizeof(header)});
  const std::uint32_t length = reader.u32();
  if (length > kMaxControlFrame) return false;
  payload.resize(length);
  return length == 0 || read_exact(fd, payload.data(), length);
}

void encode_stats(ByteWriter& w, const sim::DeviceStats& stats) {
  w.u64(stats.packets_processed);
  w.u64(stats.kernels_executed);
  w.u64(stats.no_kernel);
  w.u64(stats.drops_action);
  w.u64(stats.multicasts);
  w.u64(stats.transits);
  w.u64(stats.recirculations);
  w.u64(stats.control_reads);
  w.u64(stats.control_writes);
  w.u64_vec(stats.stage_executions);
}

bool decode_stats(ByteReader& r, sim::DeviceStats& out) {
  out.packets_processed = r.u64();
  out.kernels_executed = r.u64();
  out.no_kernel = r.u64();
  out.drops_action = r.u64();
  out.multicasts = r.u64();
  out.transits = r.u64();
  out.recirculations = r.u64();
  out.control_reads = r.u64();
  out.control_writes = r.u64();
  out.stage_executions = r.u64_vec();
  return r.ok();
}

ControlClient::ControlClient(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return;
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

ControlClient::~ControlClient() {
  if (fd_ >= 0) ::close(fd_);
}

bool ControlClient::roundtrip(const ByteWriter& request, std::vector<std::uint8_t>& response) {
  if (fd_ < 0) return false;
  std::vector<std::uint8_t> frame;
  if (!write_frame(fd_, request.bytes()) || !read_frame(fd_, frame)) {
    // A broken stream cannot carry further requests; fail them all fast.
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  if (frame.empty() || frame[0] != kControlOk) return false;
  response.assign(frame.begin() + 1, frame.end());
  return true;
}

bool ControlClient::ping(std::uint16_t& device_id) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kPing));
  std::vector<std::uint8_t> response;
  if (!roundtrip(request, response)) return false;
  ByteReader reader(response);
  device_id = reader.u16();
  return reader.ok();
}

bool ControlClient::managed_write(const std::string& name,
                                  const std::vector<std::uint64_t>& indices,
                                  std::uint64_t value) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kManagedWrite));
  request.str(name);
  request.u64_vec(indices);
  request.u64(value);
  std::vector<std::uint8_t> response;
  return roundtrip(request, response);
}

bool ControlClient::managed_read(const std::string& name,
                                 const std::vector<std::uint64_t>& indices,
                                 std::uint64_t& out) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kManagedRead));
  request.str(name);
  request.u64_vec(indices);
  std::vector<std::uint8_t> response;
  if (!roundtrip(request, response)) return false;
  ByteReader reader(response);
  out = reader.u64();
  return reader.ok();
}

bool ControlClient::insert(const std::string& table, std::uint64_t key_lo,
                           std::uint64_t key_hi, std::uint64_t value) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kInsert));
  request.str(table);
  request.u64(key_lo);
  request.u64(key_hi);
  request.u64(value);
  std::vector<std::uint8_t> response;
  return roundtrip(request, response);
}

bool ControlClient::remove(const std::string& table, std::uint64_t key) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kRemove));
  request.str(table);
  request.u64(key);
  std::vector<std::uint8_t> response;
  return roundtrip(request, response);
}

bool ControlClient::stats(sim::DeviceStats& out) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kStats));
  std::vector<std::uint8_t> response;
  if (!roundtrip(request, response)) return false;
  ByteReader reader(response);
  return decode_stats(reader, out);
}

bool ControlClient::register_access(std::map<std::string, sim::RegisterAccess>& out) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kRegisterAccess));
  std::vector<std::uint8_t> response;
  if (!roundtrip(request, response)) return false;
  ByteReader reader(response);
  const std::uint16_t count = reader.u16();
  out.clear();
  for (std::uint16_t i = 0; i < count && reader.ok(); ++i) {
    const std::string name = reader.str();
    sim::RegisterAccess access;
    access.reads = reader.u64();
    access.writes = reader.u64();
    out[name] = access;
  }
  return reader.ok();
}

bool ControlClient::set_multicast_group(std::uint16_t group,
                                        const std::vector<std::uint16_t>& hosts) {
  ByteWriter request;
  request.u8(static_cast<std::uint8_t>(ControlOp::kSetMulticastGroup));
  request.u16(group);
  request.u16(static_cast<std::uint16_t>(hosts.size()));
  for (const std::uint16_t host : hosts) request.u16(host);
  std::vector<std::uint8_t> response;
  return roundtrip(request, response);
}

}  // namespace netcl::net
