// The netcl-swd control-plane protocol: the reliable slow path behind
// ncl::managed_read / ncl::managed_write and _managed_ _lookup_ entry
// management (§V-B) when the device is a real process instead of an
// in-fabric object.
//
// Framing: TCP, length-prefixed — u32 LE payload length, then the payload.
// A request payload is u8 opcode + operands; a response is u8 status
// (kControlOk / kControlError) + results. All integers little-endian (the
// ByteWriter/ByteReader codec in net/wire.hpp). One request, one response,
// in order, per connection.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "sim/switch.hpp"

namespace netcl::net {

enum class ControlOp : std::uint8_t {
  kPing = 1,            // -> u16 device_id
  kManagedWrite = 2,    // str name, u64_vec indices, u64 value
  kManagedRead = 3,     // str name, u64_vec indices -> u64 value
  kInsert = 4,          // str table, u64 key_lo, u64 key_hi, u64 value
  kRemove = 5,          // str table, u64 key
  kStats = 6,           // -> DeviceStats (encode_stats layout)
  kRegisterAccess = 7,  // -> u16 count, { str name, u64 reads, u64 writes }*
  kSetMulticastGroup = 8,  // u16 group, u16 count, u16 host_id*
};

inline constexpr std::uint8_t kControlOk = 0;
inline constexpr std::uint8_t kControlError = 1;
/// Frames larger than this are a protocol violation and close the
/// connection (a stats response is well under 1 KiB).
inline constexpr std::uint32_t kMaxControlFrame = 1u << 20;

// --- frame + struct codec helpers (shared by client and daemon) -------------

/// Blocking full-buffer read/write; false on EOF or error.
bool read_exact(int fd, std::uint8_t* out, std::size_t n);
bool write_all(int fd, const std::uint8_t* data, std::size_t n);
/// One length-prefixed frame.
bool write_frame(int fd, const std::vector<std::uint8_t>& payload);
bool read_frame(int fd, std::vector<std::uint8_t>& payload);

void encode_stats(ByteWriter& w, const sim::DeviceStats& stats);
bool decode_stats(ByteReader& r, sim::DeviceStats& out);

/// Blocking TCP control-plane client. DeviceConnection wraps one of these
/// when pointed at a netcl-swd daemon, so host programs use the exact same
/// managed-memory API against sim and real devices.
class ControlClient {
 public:
  /// Connects immediately (IPv4 literal host).
  ControlClient(const std::string& host, std::uint16_t port);
  ~ControlClient();
  ControlClient(const ControlClient&) = delete;
  ControlClient& operator=(const ControlClient&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  bool ping(std::uint16_t& device_id);
  bool managed_write(const std::string& name, const std::vector<std::uint64_t>& indices,
                     std::uint64_t value);
  bool managed_read(const std::string& name, const std::vector<std::uint64_t>& indices,
                    std::uint64_t& out);
  bool insert(const std::string& table, std::uint64_t key_lo, std::uint64_t key_hi,
              std::uint64_t value);
  bool remove(const std::string& table, std::uint64_t key);
  bool stats(sim::DeviceStats& out);
  bool register_access(std::map<std::string, sim::RegisterAccess>& out);
  bool set_multicast_group(std::uint16_t group, const std::vector<std::uint16_t>& hosts);

 private:
  /// Sends one request frame and reads the response. True only for a
  /// kControlOk status; `response` receives the body past the status byte.
  bool roundtrip(const ByteWriter& request, std::vector<std::uint8_t>& response);

  int fd_ = -1;
};

}  // namespace netcl::net
