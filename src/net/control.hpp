// The netcl-swd control-plane protocol: the reliable slow path behind
// ncl::managed_read / ncl::managed_write and _managed_ _lookup_ entry
// management (§V-B) when the device is a real process instead of an
// in-fabric object.
//
// Framing: TCP — an 8-byte preamble ('N' 'C' version reserved + u32 LE
// payload length; see kControlFrameMagic below), then the payload.
// A request payload is u64 client id + u64 request id + u8 opcode +
// operands; a response is u8 status (kControlOk / kControlError) + results.
// All integers little-endian (the ByteWriter/ByteReader codec in
// net/wire.hpp). One request, one response, in order, per connection.
//
// Failure model (ISSUE 3): every client operation is bounded — non-blocking
// connect with a deadline, poll-based request/response I/O with a deadline,
// and capped-exponential-backoff retries over automatic TCP reconnects.
// Request ids make retries idempotent: the daemon caches the last response
// per client and replays it when a retried request arrives after the
// original was already applied.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "net/buffer_pool.hpp"
#include "net/wire.hpp"
#include "obs/flightrec.hpp"
#include "runtime/error.hpp"
#include "sim/switch.hpp"
#include "support/hashes.hpp"

namespace netcl::net {

enum class ControlOp : std::uint8_t {
  // PONG appends u64 device-clock ns (ISSUE 4, clock alignment for INT
  // stamps); pre-existing readers stop after the generation and never see
  // it — ByteReader tolerates trailing bytes.
  kPing = 1,            // -> u16 device_id, u32 generation, u64 device_clock_ns
  kManagedWrite = 2,    // str name, u64_vec indices, u64 value
  kManagedRead = 3,     // str name, u64_vec indices -> u64 value
  kInsert = 4,          // str table, u64 key_lo, u64 key_hi, u64 value
  kRemove = 5,          // str table, u64 key
  kStats = 6,           // -> DeviceStats (encode_stats layout)
  kRegisterAccess = 7,  // -> u16 count, { str name, u64 reads, u64 writes }*
  kSetMulticastGroup = 8,  // u16 group, u16 count, u16 host_id*
  kMetricsText = 9,        // -> raw Prometheus exposition (same body as --metrics-port)
  // Flight-recorder fetch (ISSUE 6): the daemon's last `u32 window_s`
  // seconds of events, timestamps converted to the device clock (the
  // clockbase PONG exposes, so align_clocks() can merge them with host
  // events). -> u64 device_clock_now_ns, u32 count,
  //            { u64 ts_device_ns, u16 kind, u16 ring, u64 a, u64 b }*
  kFlightDump = 10,
  // Multi-tenant kernel lifecycle (ISSUE 7). The daemon compiles the
  // shipped source with its injected sim::ProgramCompiler and loads it
  // through admission control. Source travels as u32 length + raw bytes
  // because str()'s u16 prefix would cap kernels at 64 KiB. Failures
  // answer [kControlError, u8 runtime::ErrorKind, str message] — the typed
  // body old ops never had (and old clients never read past byte 0).
  // u32 tenant, u8 flags (bit0 = replace/hitless-swap), str name,
  // u16 n_defines { str name, u64 value }*, u32 src_len, raw source
  //   -> u16 stages_used, str admission summary
  kLoadKernel = 11,
  kUnloadKernel = 12,  // u32 tenant ->
  // -> u16 count, { u32 tenant, str name, u16 stages_used,
  //                 u16 n_comps u32 comp*, str usage,
  //                 u64 packets_processed, u64 kernels_executed,
  //                 u64 drops_action }*
  kListKernels = 13,
  // Continuous profiling (ISSUE 9): snapshot the daemon's cumulative
  // folded-stack CPU profile. u8 flags (bit0 = write a
  // profile_<label>_<n>.folded file next to the flight dumps, bit1 =
  // return the folded text in the response).
  // -> u64 samples, u64 distinct_stacks, u32 hz (0 = profiler off),
  //    str path (empty unless bit0), u32 text_len + raw folded text
  //    (text_len 0 unless bit1)
  kProfileDump = 14,
};

/// kProfileDump request flags.
inline constexpr std::uint8_t kProfileWriteFile = 1u << 0;
inline constexpr std::uint8_t kProfileReturnText = 1u << 1;

inline constexpr std::uint8_t kControlOk = 0;
inline constexpr std::uint8_t kControlError = 1;
/// Frames larger than this are a protocol violation: the daemon answers a
/// typed kMalformed error and closes, *before* buffering any payload (a
/// stats response is well under 1 KiB, kernel sources under 64 KiB).
inline constexpr std::uint32_t kMaxControlFrame = 1u << 20;

/// Control frames start with a magic + version preamble (ISSUE 8), so a
/// stray HTTP request, a NetCL *data* packet, or a future incompatible
/// protocol revision aimed at the control port fails closed instead of
/// being interpreted as a length prefix:
///   'N' 'C' u8 version u8 reserved(0) | u32 LE payload length | payload
inline constexpr std::uint8_t kControlFrameMagic[2] = {'N', 'C'};
inline constexpr std::uint8_t kControlFrameVersion = 1;
inline constexpr std::size_t kControlFrameHeaderBytes = 8;

/// Incremental frame-header classification for byte-stream parsers.
enum class FrameParse : std::uint8_t {
  kNeedMore,   // fewer than kControlFrameHeaderBytes buffered
  kFrame,      // header valid; `length` payload bytes follow it
  kMalformed,  // bad magic / version / reserved byte / oversize length
};

/// Inspects the start of `data` for one frame header. Never reads past the
/// header and never allocates; on kMalformed, `error` says why. Shared by
/// the daemon's inbox scanner and read_frame so client and server can
/// never disagree about framing.
FrameParse parse_frame_header(std::span<const std::uint8_t> data, std::uint32_t& length,
                              runtime::Error& error);

/// Absolute deadline on the wall clock for bounded socket operations.
using ControlDeadline = std::chrono::steady_clock::time_point;

// --- frame + struct codec helpers (shared by client and daemon) -------------

/// Blocking full-buffer read/write; false on EOF or error.
bool read_exact(int fd, std::uint8_t* out, std::size_t n);
bool write_all(int fd, const std::uint8_t* data, std::size_t n);
/// One length-prefixed frame.
bool write_frame(int fd, const std::vector<std::uint8_t>& payload);
bool read_frame(int fd, std::vector<std::uint8_t>& payload);

/// Deadline-bounded variants for non-blocking fds: poll(2) until the fd is
/// ready or the deadline passes; false on EOF, error, or deadline.
bool read_exact(int fd, std::uint8_t* out, std::size_t n, ControlDeadline deadline);
bool write_all(int fd, const std::uint8_t* data, std::size_t n, ControlDeadline deadline);
bool write_frame(int fd, const std::vector<std::uint8_t>& payload, ControlDeadline deadline);
bool read_frame(int fd, std::vector<std::uint8_t>& payload, ControlDeadline deadline);

void encode_stats(ByteWriter& w, const sim::DeviceStats& stats);
bool decode_stats(ByteReader& r, sim::DeviceStats& out);

/// One resident kernel program as reported by kListKernels.
struct KernelInfo {
  std::uint32_t tenant = 0;
  std::string name;
  std::uint16_t stages_used = 0;
  std::vector<std::uint32_t> computations;
  /// Worst-stage resource row ("sram=3 salu=2 ...") or "unaccounted".
  std::string usage;
  std::uint64_t packets_processed = 0;
  std::uint64_t kernels_executed = 0;
  std::uint64_t drops_action = 0;
};

/// Deadlines and retry budget for one ControlClient. Backoff between retry
/// attempts is exponential from backoff_base_ms, capped at backoff_max_ms,
/// with ±50% multiplicative jitter so a fleet of clients does not retry in
/// lockstep against a recovering daemon.
struct ControlClientOptions {
  double connect_timeout_ms = 1000.0;
  double request_timeout_ms = 2000.0;
  /// Additional attempts after the first; each reconnects if needed.
  int max_retries = 2;
  double backoff_base_ms = 10.0;
  double backoff_max_ms = 250.0;
};

/// TCP control-plane client with bounded blocking. DeviceConnection wraps
/// one of these when pointed at a netcl-swd daemon, so host programs use
/// the exact same managed-memory API against sim and real devices.
class ControlClient {
 public:
  /// Attempts the first connect immediately (IPv4 literal host), bounded
  /// by connect_timeout_ms; a failed connect leaves the client usable —
  /// the next request reconnects automatically.
  ControlClient(const std::string& host, std::uint16_t port,
                const ControlClientOptions& options = {});
  ~ControlClient();
  ControlClient(const ControlClient&) = delete;
  ControlClient& operator=(const ControlClient&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  /// Last transport-level failure (timeout / disconnect); empty after a
  /// successful round trip. An op-level rejection (the daemon answered
  /// kControlError) does not set it.
  [[nodiscard]] const runtime::Error& last_error() const { return error_; }
  /// (Re)establishes the connection within connect_timeout_ms.
  bool connect_now();

  bool ping(std::uint16_t& device_id);
  /// The heartbeat: PONG carries the device generation, which bumps on
  /// every daemon restart (stale offloaded state).
  bool ping(std::uint16_t& device_id, std::uint32_t& generation);
  /// Heartbeat plus the device's telemetry clock (ns on the same clockbase
  /// the daemon stamps TelemetryHops with). Bracket the call with local
  /// transport timestamps and feed all three to obs::align_clocks().
  /// device_clock_ns reads 0 against a pre-extension daemon.
  bool ping(std::uint16_t& device_id, std::uint32_t& generation,
            std::uint64_t& device_clock_ns);
  bool managed_write(const std::string& name, const std::vector<std::uint64_t>& indices,
                     std::uint64_t value);
  bool managed_read(const std::string& name, const std::vector<std::uint64_t>& indices,
                    std::uint64_t& out);
  bool insert(const std::string& table, std::uint64_t key_lo, std::uint64_t key_hi,
              std::uint64_t value);
  bool remove(const std::string& table, std::uint64_t key);
  bool stats(sim::DeviceStats& out);
  bool register_access(std::map<std::string, sim::RegisterAccess>& out);
  bool set_multicast_group(std::uint16_t group, const std::vector<std::uint16_t>& hosts);
  /// Fetches the daemon's Prometheus text exposition over the control
  /// plane — same body --metrics-port serves, for clients that already
  /// hold a control connection (ncl-top's fallback path).
  bool metrics_text(std::string& out);

  /// The daemon's flight-recorder events from the last `window_seconds`
  /// (0 = the recorder's default window), ready to merge into a local
  /// postmortem as an obs::FlightStream.
  struct FlightDumpResult {
    /// host_flight_clock ≈ device_clock + offset_ns, estimated by
    /// obs::align_clocks over this very round trip — feed it straight to
    /// FlightStream::offset_ns (and SpanCollector::set_clock_offset).
    double offset_ns = 0.0;
    std::uint64_t device_clock_now_ns = 0;
    /// Timestamps on the daemon's device clock, oldest first.
    std::vector<obs::FlightEvent> events;
  };
  bool flight_dump(std::uint32_t window_seconds, FlightDumpResult& out);

  /// The daemon's cumulative CPU profile (ISSUE 9).
  struct ProfileDumpResult {
    std::uint64_t samples = 0;
    std::uint64_t distinct_stacks = 0;
    /// Sampling rate, 0 when the daemon runs without --profile.
    std::uint32_t hz = 0;
    /// Daemon-side path of the written .folded file (kProfileWriteFile).
    std::string path;
    /// Folded-stack text (kProfileReturnText) — one "stack count" line
    /// per distinct stack.
    std::string folded;
  };
  /// `flags` is a bitmask of kProfileWriteFile / kProfileReturnText.
  bool profile_dump(std::uint8_t flags, ProfileDumpResult& out);

  // --- multi-tenant kernel lifecycle (ISSUE 7) ------------------------------
  // These return the typed error (empty = success): a daemon-side rejection
  // arrives with its real ErrorKind (kRejected + the admission resource
  // report, a compile diagnostic, ...), a transport failure as
  // kTimeout/kDisconnected.
  /// Compiles `source` on the daemon and loads it as `tenant`. With
  /// `replace` set, swaps a resident tenant's program hitlessly instead.
  /// On success `stages_used`/`summary` (if non-null) receive the new
  /// program's stage count and the device's admission headroom line.
  runtime::Error load_kernel(std::uint32_t tenant, const std::string& name,
                             const std::string& source,
                             const std::map<std::string, std::uint64_t>& defines,
                             bool replace, std::uint16_t* stages_used = nullptr,
                             std::string* summary = nullptr);
  runtime::Error unload_kernel(std::uint32_t tenant);
  runtime::Error list_kernels(std::vector<KernelInfo>& out);

 private:
  /// Sends one request frame and reads the response, retrying with backoff
  /// and reconnect up to max_retries. True only for a kControlOk status;
  /// `response` receives the body past the status byte. When the daemon
  /// answers kControlError, `op_error` (if non-null) receives the typed
  /// error body new-style ops append (or a generic kRejected without one).
  bool roundtrip(const ByteWriter& request, std::vector<std::uint8_t>& response,
                 runtime::Error* op_error = nullptr);
  void fail(runtime::ErrorKind kind, std::string message);
  void disconnect();
  /// Capped exponential backoff with jitter before retry `attempt` (1-based).
  void backoff(int attempt);

  std::string host_;
  std::uint16_t port_ = 0;
  ControlClientOptions options_;
  int fd_ = -1;
  std::uint64_t client_id_ = 0;
  std::uint64_t next_request_id_ = 1;
  SplitMix64 jitter_;
  runtime::Error error_;
  /// Response-frame buffers recycled across requests (ISSUE 5): read_frame
  /// resizes into previously grown capacity, so a steady control-plane
  /// workload stops allocating per round trip.
  BufferPool pool_;
};

}  // namespace netcl::net
