#include "net/factory.hpp"

#include <charconv>

#include "net/sim_transport.hpp"

namespace netcl::net {

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

std::unique_ptr<Transport> make_transport(const std::string& uri,
                                          const TransportContext& context,
                                          std::string* error) {
  constexpr std::string_view kSimScheme = "sim://";
  constexpr std::string_view kUdpScheme = "udp://";

  if (uri.starts_with(kSimScheme)) {
    // The authority is decorative today ("sim://fabric"); the fabric comes
    // from the context because it is an in-process object, not an address.
    if (context.fabric == nullptr) {
      set_error(error, "sim transport needs a fabric in the TransportContext");
      return nullptr;
    }
    return std::make_unique<SimTransport>(*context.fabric, context.host_id);
  }

  if (uri.starts_with(kUdpScheme)) {
    const std::string_view address = std::string_view(uri).substr(kUdpScheme.size());
    const std::size_t colon = address.rfind(':');
    if (colon == std::string_view::npos || colon == 0 || colon + 1 == address.size()) {
      set_error(error, "udp transport URI must be udp://host:port, got '" + uri + "'");
      return nullptr;
    }
    const std::string_view port_text = address.substr(colon + 1);
    std::uint16_t port = 0;
    const auto [end, ec] =
        std::from_chars(port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc() || end != port_text.data() + port_text.size() || port == 0) {
      set_error(error, "bad port in transport URI '" + uri + "'");
      return nullptr;
    }
    UdpTransport::Options options;
    options.peer_host = std::string(address.substr(0, colon));
    options.peer_port = port;
    options.metrics_name = context.metrics_name;
    options.max_syscall_batch = context.max_syscall_batch;
    auto transport = std::make_unique<UdpTransport>(options);
    // error() also catches a well-formed port with an unparseable host
    // (set_peer failed but the socket itself is fine).
    if (!transport->valid() || !transport->error().empty()) {
      set_error(error, transport->error());
      return nullptr;
    }
    return transport;
  }

  set_error(error, "unknown transport scheme in '" + uri + "' (want sim:// or udp://)");
  return nullptr;
}

}  // namespace netcl::net
