// URI-based transport construction (ISSUE 5, satellite): one line replaces
// the copy-pasted Options setup every example used to carry.
//
//   "sim://fabric"          -> SimTransport over context.fabric (required),
//                              attached as context.host_id
//   "udp://127.0.0.1:9700"  -> UdpTransport bound to an ephemeral local
//                              port, peered at host:port
//
// The scheme picks the implementation; everything behind the Transport
// interface (batched send, receive callbacks, timers) is identical, which
// is the whole point — a program switches between the in-process fabric
// and a real device daemon by changing one string.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/transport.hpp"
#include "net/udp_transport.hpp"
#include "sim/fabric.hpp"

namespace netcl::net {

/// Out-of-band inputs a URI cannot carry.
struct TransportContext {
  /// The fabric a "sim://" transport attaches to (required for sim).
  sim::Fabric* fabric = nullptr;
  /// Host id to register with the fabric ("sim://" only).
  std::uint16_t host_id = 0;
  /// Metrics registry name for "udp://" transports.
  std::string metrics_name = "udp";
  /// Datagrams per mmsg syscall for "udp://" transports.
  std::size_t max_syscall_batch = UdpTransport::kMaxBatch;
};

/// Builds a transport from a URI, or nullptr on an unknown scheme, a
/// malformed address, a missing fabric, or a socket failure (`error`, when
/// non-null, receives the reason).
[[nodiscard]] std::unique_ptr<Transport> make_transport(const std::string& uri,
                                                        const TransportContext& context = {},
                                                        std::string* error = nullptr);

}  // namespace netcl::net
