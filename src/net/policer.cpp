#include "net/policer.hpp"

#include <algorithm>

namespace netcl::net {

bool TokenBucket::try_take(double now_s) {
  if (rate_ <= 0.0) return true;
  if (!primed_) {
    last_s_ = now_s;
    primed_ = true;
  }
  const double elapsed = now_s > last_s_ ? now_s - last_s_ : 0.0;
  last_s_ = now_s;
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void BoundedCounts::add(const std::string& key, std::uint64_t delta) {
  total_ += delta;
  const auto it = counts_.find(key);
  if (it != counts_.end()) {
    it->second += delta;
    return;
  }
  if (counts_.size() >= capacity_) {
    overflow_ += delta;
    return;
  }
  counts_.emplace(key, delta);
}

std::vector<std::pair<std::string, std::uint64_t>> BoundedCounts::top(std::size_t k) const {
  std::vector<std::pair<std::string, std::uint64_t>> rows(counts_.begin(), counts_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    // Heaviest first; ties by key so the order is deterministic.
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (rows.size() > k) rows.resize(k);
  return rows;
}

}  // namespace netcl::net
