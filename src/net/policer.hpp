// Overload-control primitives for the daemon's hostile-wire perimeter
// (ISSUE 8): per-tenant token-bucket policing and bounded per-source
// accounting. Header + small .cpp, no socket or device dependencies, so
// the soak bench and unit tests can exercise the arithmetic directly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace netcl::net {

/// Classic token bucket on a caller-supplied monotonic clock. `rate_pps`
/// tokens accrue per second up to `burst`; each admitted packet consumes
/// one. A default-constructed bucket admits everything (rate 0 =
/// unpoliced), so tenants without a configured rate cost one branch.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_pps, double burst)
      : rate_(rate_pps > 0.0 ? rate_pps : 0.0),
        burst_(burst > 0.0 ? burst : rate_),
        tokens_(burst_) {}

  /// True if a token was available (and consumes it). `now_s` must be
  /// monotonic; time moving backwards is treated as no time elapsed.
  bool try_take(double now_s);

  [[nodiscard]] bool unlimited() const { return rate_ <= 0.0; }
  [[nodiscard]] double rate() const { return rate_; }

 private:
  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  double last_s_ = 0.0;
  bool primed_ = false;
};

/// Exact counts for a bounded number of distinct keys, with an overflow
/// bucket for the rest. Source endpoints are attacker-controlled — an
/// unbounded map keyed by them is itself a memory DoS — so the tracker
/// admits at most `capacity` distinct keys and lumps later arrivals into
/// overflow(). top(k) returns the heaviest keys, descending.
class BoundedCounts {
 public:
  explicit BoundedCounts(std::size_t capacity = 64) : capacity_(capacity) {}

  void add(const std::string& key, std::uint64_t delta = 1);

  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::size_t tracked() const { return counts_.size(); }
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> top(std::size_t k) const;

 private:
  std::size_t capacity_;
  std::map<std::string, std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace netcl::net
