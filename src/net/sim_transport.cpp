#include "net/sim_transport.hpp"

namespace netcl::net {

SimTransport::SimTransport(sim::Fabric& fabric, std::uint16_t host_id)
    : fabric_(fabric), host_id_(host_id) {
  fabric_.add_host(host_id_);
  // Installed eagerly (not in set_receiver) so arrivals before — or
  // without — a receiver are observed by the owner, not lost. The fabric
  // delivers one packet per event; each becomes a one-element batch.
  fabric_.set_host_handler(host_id_,
                           [this](sim::Fabric&, std::uint16_t, const sim::Packet& packet) {
                             deliver({&packet, 1});
                           });
}

void SimTransport::send_batch(std::span<sim::Packet> packets) {
  // The packets are ours to consume (Transport::send_batch contract), so
  // each moves straight into the fabric — no copy on the sim path.
  for (sim::Packet& packet : packets) {
    fabric_.send_from_host(host_id_, std::move(packet));
  }
}

void SimTransport::schedule(double delay_ns, std::function<void()> callback) {
  fabric_.schedule(delay_ns,
                   [callback = std::move(callback)](sim::Fabric&) { callback(); });
}

}  // namespace netcl::net
