// Transport over the in-process discrete-event fabric.
//
// Attaching a SimTransport registers `host_id` with the fabric and installs
// its packet handler — exactly what HostRuntime used to do when it held a
// Fabric& directly, now behind the Transport seam so the same host code
// runs unchanged against real UDP sockets. Batches degenerate to a loop:
// the fabric is an in-process call, so there is no syscall to amortize and
// per-packet submission keeps event timestamps identical to v1.
#pragma once

#include "net/transport.hpp"
#include "sim/fabric.hpp"

namespace netcl::net {

class SimTransport final : public Transport {
 public:
  SimTransport(sim::Fabric& fabric, std::uint16_t host_id);

  [[nodiscard]] const char* kind() const override { return "sim"; }
  void send_batch(std::span<sim::Packet> packets) override;
  void schedule(double delay_ns, std::function<void()> callback) override;
  [[nodiscard]] double now_ns() const override { return fabric_.now(); }

  [[nodiscard]] sim::Fabric& fabric() { return fabric_; }
  [[nodiscard]] std::uint16_t host_id() const { return host_id_; }

 private:
  sim::Fabric& fabric_;
  std::uint16_t host_id_;
};

}  // namespace netcl::net
