#include "net/swd_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "net/control.hpp"
#include "net/wire.hpp"
#include "obs/flightrec.hpp"
#include "obs/profiler.hpp"
#include "obs/prometheus.hpp"
#include "runtime/device_runtime.hpp"
#include "sim/telemetry.hpp"

namespace netcl::net {

namespace {

constexpr std::size_t kMaxDatagram = 65536;
/// Datagrams moved per sendmmsg/recvmmsg call (the mmsghdr arrays live on
/// the stack at this size).
constexpr std::size_t kIoBatch = 32;
/// Receive bursts per poll cycle. A sustained flood must not pin the loop
/// inside drain_data_socket — past this budget the excess stays in (and
/// overflows) the kernel socket buffer, and the cycle moves on to the
/// control plane.
constexpr int kMaxDrainBursts = 8;

/// "ip:port" for metrics/accounting labels.
std::string endpoint_string(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = "?";
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Binds and returns the actual port, or 0 on failure.
std::uint16_t bind_and_resolve(int fd, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) return 0;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return 0;
  return ntohs(addr.sin_port);
}

}  // namespace

SwdServer::SwdServer(std::unique_ptr<sim::SwitchDevice> device, const SwdOptions& options)
    : metrics_("swd" + std::to_string(device->device_id())),
      device_(std::move(device)),
      compiler_(options.compiler),
      verbose_(options.verbose),
      max_seconds_(options.max_seconds),
      idle_timeout_seconds_(options.idle_timeout_seconds),
      epoch_(std::chrono::steady_clock::now()) {
  pool_.bind_metrics(metrics_);
  // Overload-control knobs (ISSUE 8).
  if (options.ingress_queue_capacity > 0) ingress_capacity_ = options.ingress_queue_capacity;
  if (options.max_cycle_execute > 0) max_cycle_execute_ = options.max_cycle_execute;
  tenant_rate_pps_ = options.tenant_rate_pps;
  tenant_burst_ = options.tenant_burst > 0.0 ? options.tenant_burst : options.tenant_rate_pps;
  read_deadline_seconds_ = options.read_deadline_seconds;
  unattributed_bucket_ = TokenBucket(tenant_rate_pps_, tenant_burst_);
  // Continuous profiling + per-tenant SLOs (ISSUE 9).
  if (options.profile_hz > 0) obs::Profiler::instance().start(options.profile_hz);
  for (const auto& [tenant, objective] : options.slo_objectives) {
    slo_.set_objective(tenant, objective);
  }
  slo_enabled_ = !options.slo_objectives.empty();
  // A fast burn is an anomaly: leave a flight-recorder breadcrumb and
  // write a postmortem *before* the budget is gone. trigger_dump's rate
  // limit turns a burn storm into exactly one dump.
  slo_.set_fast_burn_callback([](std::uint32_t tenant, double burn) {
    obs::flight(obs::FlightKind::kSloFastBurn, tenant,
                static_cast<std::uint64_t>(burn * 100.0));
    obs::FlightRecorder::instance().trigger_dump("slo_fast_burn");
  });
  device_->set_max_tenants(options.max_tenants);
  // A restarted daemon is a new process with fresh (empty) state; a
  // wall-clock-derived generation makes that visible to pinging hosts.
  device_->set_generation(
      options.generation != 0
          ? options.generation
          : static_cast<std::uint32_t>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count()));
  udp_fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (udp_fd_ < 0 || listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  udp_port_ = bind_and_resolve(udp_fd_, options.udp_port);
  control_port_ = bind_and_resolve(listen_fd_, options.control_port);
  if (udp_port_ == 0 || control_port_ == 0 || ::listen(listen_fd_, 8) != 0) {
    error_ = std::string("bind/listen: ") + std::strerror(errno);
    udp_port_ = 0;
    control_port_ = 0;
    return;
  }
  set_nonblocking(udp_fd_);
  set_nonblocking(listen_fd_);
  if (options.metrics_port >= 0) {
    metrics_enabled_ = true;
    metrics_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (metrics_listen_fd_ >= 0) {
      ::setsockopt(metrics_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      metrics_port_ =
          bind_and_resolve(metrics_listen_fd_, static_cast<std::uint16_t>(options.metrics_port));
    }
    if (metrics_listen_fd_ < 0 || metrics_port_ == 0 || ::listen(metrics_listen_fd_, 8) != 0) {
      error_ = std::string("metrics bind/listen: ") + std::strerror(errno);
      udp_port_ = 0;
      control_port_ = 0;
      metrics_port_ = 0;
      return;
    }
    set_nonblocking(metrics_listen_fd_);
  }
}

SwdServer::~SwdServer() {
  for (const Connection& connection : connections_) ::close(connection.fd);
  for (const Connection& connection : metrics_connections_) ::close(connection.fd);
  if (udp_fd_ >= 0) ::close(udp_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (metrics_listen_fd_ >= 0) ::close(metrics_listen_fd_);
}

std::uint64_t SwdServer::device_clock_ns() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - epoch_)
                                        .count());
}

bool SwdServer::valid() const {
  return udp_port_ != 0 && control_port_ != 0 && (!metrics_enabled_ || metrics_port_ != 0);
}

void SwdServer::send_to_host(std::uint16_t host, const sim::Packet& packet) {
  const auto it = host_endpoints_.find(host);
  if (it == host_endpoints_.end()) {
    ++dropped_unknown_host;
    return;
  }
  // Queue rather than send: the whole cycle's output goes out in one
  // sendmmsg flush, and the pooled buffer makes the serialization
  // allocation-free at steady state. packets_sent is counted at the flush.
  EgressDatagram out;
  out.to = it->second;
  out.wire = pool_.acquire();
  serialize_packet(packet, out.wire);
  egress_.push_back(std::move(out));
}

void SwdServer::flush_egress() {
  if (egress_.empty()) return;
#if NETCL_HAVE_MMSG
  std::size_t offset = 0;
  while (offset < egress_.size()) {
    const std::size_t chunk = std::min(kIoBatch, egress_.size() - offset);
    mmsghdr msgs[kIoBatch];
    iovec iovs[kIoBatch];
    std::memset(msgs, 0, chunk * sizeof(mmsghdr));
    for (std::size_t i = 0; i < chunk; ++i) {
      EgressDatagram& out = egress_[offset + i];
      iovs[i] = {out.wire.data(), out.wire.size()};
      // Unlike a connected host transport, the daemon fans out to many
      // hosts — mmsg carries a destination per message.
      msgs[i].msg_hdr.msg_name = &out.to;
      msgs[i].msg_hdr.msg_namelen = sizeof(out.to);
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int sent = ::sendmmsg(udp_fd_, msgs, static_cast<unsigned>(chunk), 0);
    ++send_syscalls;
    if (sent <= 0) break;
    packets_sent.inc(static_cast<std::uint64_t>(sent));
    // Partial completion: resume at the first untaken message.
    offset += static_cast<std::size_t>(sent);
  }
#else
  for (const EgressDatagram& out : egress_) {
    const ssize_t sent = ::sendto(udp_fd_, out.wire.data(), out.wire.size(), 0,
                                  reinterpret_cast<const sockaddr*>(&out.to), sizeof(out.to));
    ++send_syscalls;
    if (sent == static_cast<ssize_t>(out.wire.size())) ++packets_sent;
  }
#endif
  for (EgressDatagram& out : egress_) pool_.release(std::move(out.wire));
  egress_.clear();
}

void SwdServer::emit(sim::Packet&& packet) {
  if (packet.netcl.to != 0 && packet.netcl.to != device_->device_id()) {
    // A single-daemon deployment has no second device to forward to.
    ++dropped_no_route;
    return;
  }
  send_to_host(packet.netcl.dst, packet);
}

void SwdServer::ensure_rx_storage() {
  if (!rx_buffers_.empty()) return;
  // 64 KiB per slot is too big for the stack at batch 32 (2 MiB); allocate
  // the staging area once on first receive and reuse it every cycle.
  rx_buffers_.resize(kIoBatch);
  for (std::vector<std::uint8_t>& buffer : rx_buffers_) buffer.resize(kMaxDatagram);
}

void SwdServer::drain_data_socket(bool crashed) {
  ensure_rx_storage();
  // Position within this receive burst doubles as the INT queue-depth
  // stamp — the daemon's analogue of the simulator's event-queue depth.
  std::uint32_t burst_index = 0;
  for (int bursts = 0; bursts < kMaxDrainBursts; ++bursts) {
#if NETCL_HAVE_MMSG
    mmsghdr msgs[kIoBatch];
    iovec iovs[kIoBatch];
    sockaddr_in froms[kIoBatch];
    std::memset(msgs, 0, sizeof(msgs));
    for (std::size_t i = 0; i < kIoBatch; ++i) {
      iovs[i] = {rx_buffers_[i].data(), kMaxDatagram};
      msgs[i].msg_hdr.msg_name = &froms[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(froms[i]);
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int received = ::recvmmsg(udp_fd_, msgs, kIoBatch, 0, nullptr);
    ++recv_syscalls;
    if (received <= 0) return;  // EAGAIN/EWOULDBLOCK: drained
    for (int i = 0; i < received; ++i) {
      if (crashed) {
        ++packets_dropped_crashed;
        continue;
      }
      admit_datagram(rx_buffers_[static_cast<std::size_t>(i)].data(), msgs[i].msg_len,
                     froms[i], burst_index++);
    }
    // A short batch means the queue is (almost certainly) empty; anything
    // racing in after the syscall is picked up on the next poll turn.
    if (static_cast<std::size_t>(received) < kIoBatch) return;
#else
    for (std::size_t i = 0; i < kIoBatch; ++i) {
      sockaddr_in from{};
      socklen_t from_len = sizeof(from);
      const ssize_t n = ::recvfrom(udp_fd_, rx_buffers_[0].data(), kMaxDatagram, 0,
                                   reinterpret_cast<sockaddr*>(&from), &from_len);
      ++recv_syscalls;
      if (n < 0) return;
      if (crashed) {
        ++packets_dropped_crashed;
        continue;
      }
      admit_datagram(rx_buffers_[0].data(), static_cast<std::size_t>(n), from, burst_index++);
    }
#endif
  }
}

void SwdServer::admit_datagram(const std::uint8_t* data, std::size_t size,
                               const sockaddr_in& from, std::uint32_t queue_depth) {
  sim::Packet packet;
  const runtime::Error err = deserialize_packet_e({data, size}, packet);
  if (!err.ok()) {
    // Hostile or corrupt bytes: count globally and per source endpoint
    // (top-K, bounded — spoofed sources cannot grow the tracker), leave a
    // flight-recorder breadcrumb, and move on. Nothing unvalidated crosses
    // this line into the engine.
    ++deserialize_errors;
    ++packets_malformed;
    malformed_sources_.add(endpoint_string(from));
    obs::flight(obs::FlightKind::kMalformedDatagram,
                static_cast<std::uint64_t>(ntohl(from.sin_addr.s_addr)),
                static_cast<std::uint64_t>(ntohs(from.sin_port)));
    return;
  }
  ++packets_received;
  // Attribute the packet to the tenant whose budget it will consume: the
  // resident owner of its computation id when addressed to this device,
  // the shared unattributed bucket otherwise.
  sim::TenantId tenant = kUnattributedTenant;
  if (packet.netcl.to == device_->device_id()) {
    const sim::TenantId* owner = device_->tenant_for(packet.netcl.comp);
    if (owner != nullptr) tenant = *owner;
  }
  if (!police(tenant, uptime_s())) {
    count_shed(tenant, /*policer=*/true);
    return;
  }
  // Learn the sender's location; Reflect and later SendToHost responses
  // need it (the paper's testbed wires this knowledge into the base
  // forwarding program instead).
  if (packet.netcl.src != 0) host_endpoints_[packet.netcl.src] = from;
  IngressPacket in;
  in.ingress_ns = packet.telemetry.requested ? device_clock_ns() : 0;
  in.admit_ns =
      slo_enabled_ && slo_.has_objective(tenant) ? device_clock_ns() : 0;
  in.packet = std::move(packet);
  in.from = from;
  in.queue_depth = queue_depth;
  in.tenant = tenant;
  ingress_.push_back(std::move(in));
  if (ingress_.size() > ingress_capacity_) {
    // Drop-oldest: the stalest packet is the least useful one, and the
    // shed is charged to *its* tenant, so a flooder filling the queue
    // mostly sheds its own backlog.
    count_shed(ingress_.front().tenant, /*policer=*/false);
    ingress_.pop_front();
  }
}

bool SwdServer::police(sim::TenantId tenant, double now_s) {
  if (tenant_rate_pps_ <= 0.0) return true;
  if (tenant == kUnattributedTenant) return unattributed_bucket_.try_take(now_s);
  auto it = tenant_buckets_.find(tenant);
  if (it == tenant_buckets_.end()) {
    it = tenant_buckets_.emplace(tenant, TokenBucket(tenant_rate_pps_, tenant_burst_)).first;
  }
  return it->second.try_take(now_s);
}

void SwdServer::count_shed(sim::TenantId tenant, bool policer) {
  // A shed packet is a bad event against its tenant's availability SLO
  // (no-op for tenants without an objective).
  if (slo_enabled_) slo_.record_bad(tenant, uptime_s());
  if (policer) {
    ++packets_shed_policer;
    const std::uint64_t total = ++tenant_shed_policer_[tenant];
    obs::flight(obs::FlightKind::kPolicerShed, tenant, total);
  } else {
    ++packets_shed_queue;
    ++tenant_shed_queue_[tenant];
    obs::flight(obs::FlightKind::kQueueShed, tenant,
                static_cast<std::uint64_t>(ingress_capacity_));
  }
}

void SwdServer::process_ingress() {
  // Bounded work per cycle: a deep backlog is drained across cycles with
  // the control plane serviced in between, not in one starving burst.
  std::size_t budget = max_cycle_execute_;
  while (!ingress_.empty() && budget-- > 0) {
    IngressPacket in = std::move(ingress_.front());
    ingress_.pop_front();
    handle_packet(in);
  }
}

void SwdServer::handle_packet(IngressPacket& in) {
  sim::Packet& packet = in.packet;
  const std::uint64_t ingress_ns = in.ingress_ns;
  const std::uint32_t queue_depth = in.queue_depth;

  if (packet.netcl.to == 0) {
    // Already host-addressed (e.g. a reflected response looped back through
    // the daemon): deliver without counting a device transit.
    send_to_host(packet.netcl.dst, packet);
    return;
  }
  if (packet.netcl.to != device_->device_id()) {
    // No-op transit through a device that was not asked to compute (§IV).
    ++device_->stats.transits;
    if (packet.telemetry.requested) {
      // Same shape as the simulator's transit stamp: no stage occupancy.
      if (sim::stamp_hop(packet.telemetry, {device_->device_id(), device_->generation(),
                                            ingress_ns, device_clock_ns(), queue_depth, 0})) {
        ++telemetry_stamps;
      }
    }
    emit(std::move(packet));
    return;
  }

  sim::ComputeOutcome outcome;
  const KernelSpec* spec = device_->spec_for(packet.netcl.comp);
  if (spec != nullptr) {
    sim::ArgValues args = sim::decode_args(*spec, packet.payload);
    outcome = device_->execute(packet.netcl.comp, args, packet.netcl);
    packet.payload = sim::encode_args(*spec, args);
    packet.netcl.len = static_cast<std::uint16_t>(packet.payload.size());
  } else {
    // Addressed here, but no resident kernel serves this computation id —
    // misrouted (or not-yet-loaded) tenant traffic. The packet still
    // passes through (§IV), but count it and leave a flight-recorder
    // breadcrumb so operators can diagnose it (ISSUE 7).
    ++packets_unknown_computation;
    ++device_->stats.no_kernel;
    obs::flight(obs::FlightKind::kUnknownComputation,
                static_cast<std::uint64_t>(packet.netcl.comp), device_->device_id());
  }
  if (packet.telemetry.requested) {
    // Mirrors sim::Fabric's compute-hop stamp, on the daemon's wall clock:
    // ingress when the datagram was picked up, egress after execution.
    if (sim::stamp_hop(packet.telemetry,
                       {device_->device_id(), device_->generation(), ingress_ns,
                        device_clock_ns(), queue_depth, outcome.stage_ops})) {
      ++telemetry_stamps;
    }
  }
  if (in.admit_ns != 0 && in.tenant != kUnattributedTenant) {
    // Served: good iff admission→post-execute latency met the objective.
    const std::uint64_t egress_ns = device_clock_ns();
    slo_.record_latency(in.tenant,
                        static_cast<double>(egress_ns > in.admit_ns
                                                ? egress_ns - in.admit_ns
                                                : 0),
                        uptime_s());
  }
  const runtime::ForwardDecision decision = runtime::apply_action(
      packet.netcl, outcome.executed ? outcome.action : ActionKind::Pass, outcome.target,
      device_->device_id());
  if (decision.drop) {
    ++packets_dropped_action;
    ++device_->stats.drops_action;
    return;
  }
  if (decision.multicast) {
    ++device_->stats.multicasts;
    const auto members = multicast_groups_.find(decision.multicast_group);
    if (members == multicast_groups_.end()) return;
    for (const std::uint16_t member : members->second) {
      sim::Packet copy = packet;
      copy.netcl.dst = member;
      copy.netcl.to = 0;
      send_to_host(member, copy);
    }
    return;
  }
  emit(std::move(packet));
}

std::vector<std::uint8_t> SwdServer::handle_control(std::span<const std::uint8_t> frame) {
  ++control_requests;
  ByteReader reader(frame);
  // Idempotency ids (net/control.hpp framing): a retried request — the
  // client timed out after we applied the op — is answered from the cache
  // instead of being applied twice.
  const std::uint64_t client_id = reader.u64();
  const std::uint64_t request_id = reader.u64();
  if (reader.ok()) {
    const auto cached = replay_cache_.find(client_id);
    if (cached != replay_cache_.end() && cached->second.first == request_id) {
      ++control_replays;
      return cached->second.second;
    }
  }
  const auto op = static_cast<ControlOp>(reader.u8());
  ByteWriter ok;
  ok.u8(kControlOk);
  bool handled = reader.ok();
  // Typed failure body (new-style ops): appended after the kControlError
  // status byte when set. Legacy ops keep the bare single-byte failure.
  runtime::Error op_error;
  if (handled) {
    switch (op) {
      case ControlOp::kPing:
        ok.u16(device_->device_id());
        ok.u32(device_->generation());
        // Telemetry clock (ISSUE 4): same clockbase the daemon stamps
        // TelemetryHops with, so hosts can align device spans.
        ok.u64(device_clock_ns());
        break;
      case ControlOp::kManagedWrite: {
        const std::string name = reader.str();
        const std::vector<std::uint64_t> indices = reader.u64_vec();
        const std::uint64_t value = reader.u64();
        handled = reader.ok() && device_->managed_write(name, indices, value);
        break;
      }
      case ControlOp::kManagedRead: {
        const std::string name = reader.str();
        const std::vector<std::uint64_t> indices = reader.u64_vec();
        std::uint64_t value = 0;
        handled = reader.ok() && device_->managed_read(name, indices, value);
        ok.u64(value);
        break;
      }
      case ControlOp::kInsert: {
        const std::string table = reader.str();
        const std::uint64_t lo = reader.u64();
        const std::uint64_t hi = reader.u64();
        const std::uint64_t value = reader.u64();
        handled = reader.ok() && device_->lookup_insert(table, lo, hi, value);
        break;
      }
      case ControlOp::kRemove: {
        const std::string table = reader.str();
        const std::uint64_t key = reader.u64();
        handled = reader.ok() && device_->lookup_remove(table, key);
        break;
      }
      case ControlOp::kStats:
        encode_stats(ok, device_->stats);
        break;
      case ControlOp::kRegisterAccess: {
        const std::map<std::string, sim::RegisterAccess> access = device_->register_access();
        ok.u16(static_cast<std::uint16_t>(access.size()));
        for (const auto& [name, counts] : access) {
          ok.str(name);
          ok.u64(counts.reads);
          ok.u64(counts.writes);
        }
        break;
      }
      case ControlOp::kSetMulticastGroup: {
        const std::uint16_t group = reader.u16();
        const std::uint16_t count = reader.u16();
        std::vector<std::uint16_t> members;
        for (std::uint16_t i = 0; i < count && reader.ok(); ++i) members.push_back(reader.u16());
        handled = reader.ok();
        if (handled) multicast_groups_[group] = std::move(members);
        break;
      }
      case ControlOp::kMetricsText: {
        // Raw UTF-8 body; the frame length delimits it (a str()'s u16
        // length prefix would cap the exposition at 64 KiB).
        const std::string text = metrics_exposition();
        ok.raw({reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
        break;
      }
      case ControlOp::kFlightDump: {
        const std::uint32_t window_s = reader.u32();
        handled = reader.ok();
        if (!handled) break;
        const std::uint64_t window_ns =
            window_s == 0 ? obs::FlightRecorder::kDefaultWindowNs
                          : static_cast<std::uint64_t>(window_s) * 1000000000ull;
        std::vector<obs::FlightEvent> events =
            obs::FlightRecorder::instance().snapshot(window_ns);
        // Keep the newest events if the window holds more than one frame
        // can reasonably carry (events are sorted oldest-first).
        constexpr std::size_t kMaxDumpEvents = 8192;
        const std::size_t first =
            events.size() > kMaxDumpEvents ? events.size() - kMaxDumpEvents : 0;
        // Flight clock → device clock: the daemon's epoch on the flight
        // clockbase, so clients can merge via the PONG-aligned offset.
        const auto epoch_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                epoch_.time_since_epoch())
                .count());
        ok.u64(device_clock_ns());
        ok.u32(static_cast<std::uint32_t>(events.size() - first));
        for (std::size_t i = first; i < events.size(); ++i) {
          const obs::FlightEvent& event = events[i];
          ok.u64(event.ts_ns >= epoch_ns ? event.ts_ns - epoch_ns : 0);
          ok.u16(event.kind);
          ok.u16(event.ring);
          ok.u64(event.a);
          ok.u64(event.b);
        }
        break;
      }
      case ControlOp::kLoadKernel: {
        const std::uint32_t tenant = reader.u32();
        const std::uint8_t flags = reader.u8();
        const std::string name = reader.str();
        const std::uint16_t n_defines = reader.u16();
        std::map<std::string, std::uint64_t> defines;
        for (std::uint16_t i = 0; i < n_defines && reader.ok(); ++i) {
          const std::string define = reader.str();
          defines[define] = reader.u64();
        }
        const std::uint32_t src_len = reader.u32();
        if (!reader.ok() || src_len > reader.remaining()) {
          // Validate the length against the bytes actually present BEFORE
          // sizing any buffer — a hostile u32 here was once a 4 GiB
          // reserve() (allocation bomb).
          handled = false;
          op_error = {runtime::ErrorKind::kMalformed,
                      "kernel source length overruns frame"};
          break;
        }
        std::string source = reader.bytes_str(src_len);
        handled = reader.ok();
        if (!handled) break;
        if (!compiler_) {
          handled = false;
          op_error = {runtime::ErrorKind::kRejected,
                      "daemon has no kernel compiler installed"};
          ++kernels_rejected;
          break;
        }
        const bool replace = (flags & 1) != 0;
        sim::ProgramArtifact artifact;
        runtime::Error err = compiler_(source, defines, device_->device_id(), artifact);
        const auto stages = static_cast<std::uint16_t>(artifact.stages_used);
        if (err.ok()) {
          if (!name.empty()) artifact.name = name;
          err = replace ? device_->swap_program(tenant, std::move(artifact))
                        : device_->load_program(tenant, std::move(artifact));
        }
        if (!err.ok()) {
          handled = false;
          op_error = std::move(err);
          ++kernels_rejected;
          break;
        }
        obs::flight(replace ? obs::FlightKind::kKernelSwap : obs::FlightKind::kKernelLoad,
                    tenant, stages);
        ++kernels_loaded;
        if (verbose_) {
          std::fprintf(stderr, "netcl-swd: %s tenant %u (%u stages); %s\n",
                       replace ? "swapped" : "loaded", tenant, stages,
                       device_->admission().summary().c_str());
        }
        ok.u16(stages);
        ok.str(device_->admission().summary());
        break;
      }
      case ControlOp::kUnloadKernel: {
        const std::uint32_t tenant = reader.u32();
        handled = reader.ok();
        if (!handled) break;
        runtime::Error err = device_->unload_program(tenant);
        if (!err.ok()) {
          handled = false;
          op_error = std::move(err);
          break;
        }
        obs::flight(obs::FlightKind::kKernelUnload, tenant);
        ++kernels_unloaded;
        break;
      }
      case ControlOp::kListKernels: {
        const std::vector<sim::TenantInfo> table = device_->tenant_table();
        ok.u16(static_cast<std::uint16_t>(table.size()));
        for (const sim::TenantInfo& info : table) {
          ok.u32(info.id);
          ok.str(info.name);
          ok.u16(static_cast<std::uint16_t>(info.stages_used));
          ok.u16(static_cast<std::uint16_t>(info.computations.size()));
          for (const int comp : info.computations) ok.u32(static_cast<std::uint32_t>(comp));
          ok.str(info.usage);
          ok.u64(info.stats.packets_processed);
          ok.u64(info.stats.kernels_executed);
          ok.u64(info.stats.drops_action);
        }
        break;
      }
      case ControlOp::kProfileDump: {
        const std::uint8_t flags = reader.u8();
        handled = reader.ok();
        if (!handled) break;
        obs::Profiler& profiler = obs::Profiler::instance();
        std::string path;
        if ((flags & kProfileWriteFile) != 0) path = profiler.trigger_profile_dump();
        const obs::ProfileSnapshot snap = profiler.snapshot();
        std::string folded;
        if ((flags & kProfileReturnText) != 0) {
          for (const auto& [stack, count] : snap.folded) {
            folded += stack;
            folded += ' ';
            folded += std::to_string(count);
            folded += '\n';
          }
          // The response must fit the 1 MiB control frame; truncate whole
          // lines past half of it (a folded profile is normally a few KiB).
          constexpr std::size_t kMaxFoldedBytes = kMaxControlFrame / 2;
          if (folded.size() > kMaxFoldedBytes) {
            folded.resize(folded.rfind('\n', kMaxFoldedBytes) + 1);
          }
        }
        ok.u64(snap.samples);
        ok.u64(static_cast<std::uint64_t>(snap.folded.size()));
        ok.u32(profiler.running() ? static_cast<std::uint32_t>(profiler.hz()) : 0);
        ok.str(path);
        ok.u32(static_cast<std::uint32_t>(folded.size()));
        ok.raw({reinterpret_cast<const std::uint8_t*>(folded.data()), folded.size()});
        break;
      }
      default:
        handled = false;
        op_error = {runtime::ErrorKind::kMalformed,
                    "unknown control opcode " + std::to_string(static_cast<unsigned>(op))};
        break;
    }
  } else {
    op_error = {runtime::ErrorKind::kMalformed, "truncated control request"};
  }
  std::vector<std::uint8_t> response;
  if (!handled) {
    ++control_errors;
    ByteWriter failure;
    failure.u8(kControlError);
    if (op_error) {
      failure.u8(static_cast<std::uint8_t>(op_error.kind));
      failure.str(op_error.message);
    }
    response = failure.bytes();
  } else {
    response = ok.bytes();
  }
  // One cached response per client; a handful of hosts per daemon, so a
  // coarse wipe at an absurd size is bound enough.
  if (replay_cache_.size() > 256) replay_cache_.clear();
  replay_cache_[client_id] = {request_id, response};
  return response;
}

double SwdServer::uptime_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

std::string SwdServer::metrics_exposition() {
  // Mirror the device's execution stats into gauges at render time, so the
  // exposition carries them without keeping a second live count in sync.
  const sim::DeviceStats& stats = device_->stats;
  metrics_.gauge("device.generation").set(static_cast<double>(device_->generation()));
  metrics_.gauge("device.packets_processed").set(static_cast<double>(stats.packets_processed));
  metrics_.gauge("device.kernels_executed").set(static_cast<double>(stats.kernels_executed));
  metrics_.gauge("device.no_kernel").set(static_cast<double>(stats.no_kernel));
  metrics_.gauge("device.drops_action").set(static_cast<double>(stats.drops_action));
  metrics_.gauge("device.multicasts").set(static_cast<double>(stats.multicasts));
  metrics_.gauge("device.transits").set(static_cast<double>(stats.transits));
  metrics_.gauge("device.recirculations").set(static_cast<double>(stats.recirculations));
  metrics_.gauge("device.uptime_seconds").set(uptime_s());
  const obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  metrics_.gauge("flight.dropped_events")
      .set(static_cast<double>(recorder.dropped_events()));
  metrics_.gauge("flight.dumps_written").set(static_cast<double>(recorder.dumps_written()));
  metrics_.gauge("ingress.queue_depth").set(static_cast<double>(ingress_.size()));
  metrics_.gauge("ingress.queue_capacity").set(static_cast<double>(ingress_capacity_));
  // Profiler state (ISSUE 9): netcl_profile_* series.
  obs::Profiler& profiler = obs::Profiler::instance();
  metrics_.gauge("profile.samples").set(static_cast<double>(profiler.sample_count()));
  metrics_.gauge("profile.hz").set(profiler.running() ? profiler.hz() : 0.0);
  metrics_.gauge("profile.threads").set(static_cast<double>(profiler.thread_count()));
  metrics_.gauge("profile.dumps_written")
      .set(static_cast<double>(profiler.dumps_written()));
  // Refresh SLO gauges at scrape time so a scrape between poll ticks (or
  // a test driving handle_control() directly) still sees current burn.
  if (slo_enabled_) slo_.tick(uptime_s());
  mirror_tenant_metrics();
  mirror_malformed_sources();
  return obs::prometheus_string();
}

void SwdServer::mirror_malformed_sources() {
  metrics_.gauge("malformed.sources_tracked")
      .set(static_cast<double>(malformed_sources_.tracked()));
  metrics_.gauge("malformed.sources_overflow")
      .set(static_cast<double>(malformed_sources_.overflow()));
  // Top-K offenders as "<base>/source/<ip:port>" registries — rendered
  // with a `source` label, the per-source analogue of the tenant label.
  for (const auto& [endpoint, count] : malformed_sources_.top(8)) {
    std::unique_ptr<obs::MetricsRegistry>& registry = source_metrics_[endpoint];
    if (registry == nullptr) {
      registry = std::make_unique<obs::MetricsRegistry>(metrics_.name() + "/source/" + endpoint);
    }
    registry->gauge("malformed.by_source").set(static_cast<double>(count));
  }
}

void SwdServer::mirror_tenant_metrics() {
  metrics_.gauge("device.tenants").set(static_cast<double>(device_->tenant_count()));
  for (const sim::TenantInfo& info : device_->tenant_table()) {
    std::unique_ptr<obs::MetricsRegistry>& registry = tenant_metrics_[info.id];
    if (registry == nullptr) {
      registry = std::make_unique<obs::MetricsRegistry>(
          metrics_.name() + "/tenant/" + std::to_string(info.id));
    }
    registry->gauge("tenant.packets_processed")
        .set(static_cast<double>(info.stats.packets_processed));
    registry->gauge("tenant.kernels_executed")
        .set(static_cast<double>(info.stats.kernels_executed));
    registry->gauge("tenant.drops_action").set(static_cast<double>(info.stats.drops_action));
    registry->gauge("tenant.multicasts").set(static_cast<double>(info.stats.multicasts));
    registry->gauge("tenant.control_reads").set(static_cast<double>(info.stats.control_reads));
    registry->gauge("tenant.control_writes")
        .set(static_cast<double>(info.stats.control_writes));
    registry->gauge("tenant.stages_used").set(static_cast<double>(info.stages_used));
    // Overload-shed attribution (ISSUE 8): how many of this tenant's own
    // packets the policer / queue overflow dropped.
    registry->gauge("tenant.shed_policer")
        .set(static_cast<double>(tenant_shed_policer_[info.id]));
    registry->gauge("tenant.shed_queue")
        .set(static_cast<double>(tenant_shed_queue_[info.id]));
  }
}

void SwdServer::accept_metrics_connection() {
  for (;;) {
    const int fd = ::accept(metrics_listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    set_nonblocking(fd);
    metrics_connections_.push_back({fd, {}, uptime_s()});
  }
}

void SwdServer::service_metrics_connection(Connection& connection) {
  std::uint8_t buffer[4096];
  for (;;) {
    const ssize_t n = ::read(connection.fd, buffer, sizeof(buffer));
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
      ::close(connection.fd);
      connection.fd = -1;
      return;
    }
    if (n < 0) break;  // drained for now
    connection.inbox.insert(connection.inbox.end(), buffer, buffer + n);
    if (connection.inbox.size() > 16384) {
      // No scrape request needs this much header; drop the flooder.
      ::close(connection.fd);
      connection.fd = -1;
      return;
    }
  }
  // Serve once the request's header block (terminated by a blank line) has
  // fully arrived; the request line / headers themselves are irrelevant —
  // every path gets the exposition.
  static constexpr std::uint8_t kHeaderEnd[] = {'\r', '\n', '\r', '\n'};
  if (std::search(connection.inbox.begin(), connection.inbox.end(), std::begin(kHeaderEnd),
                  std::end(kHeaderEnd)) == connection.inbox.end()) {
    return;
  }
  const std::string body = metrics_exposition();
  const std::string response =
      "HTTP/1.0 200 OK\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: " +
      std::to_string(body.size()) +
      "\r\n"
      "Connection: close\r\n\r\n" +
      body;
  write_all(connection.fd, reinterpret_cast<const std::uint8_t*>(response.data()),
            response.size());
  ++metrics_scrapes;
  ::close(connection.fd);
  connection.fd = -1;
}

void SwdServer::accept_connection() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    set_nonblocking(fd);
    connections_.push_back({fd, {}, uptime_s()});
  }
}

void SwdServer::service_connection(Connection& connection) {
  std::uint8_t buffer[4096];
  bool got_bytes = false;
  for (;;) {
    const ssize_t n = ::read(connection.fd, buffer, sizeof(buffer));
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
      ::close(connection.fd);
      connection.fd = -1;
      return;
    }
    if (n < 0) break;  // drained for now
    got_bytes = true;
    connection.inbox.insert(connection.inbox.end(), buffer, buffer + n);
  }
  if (got_bytes) connection.last_activity_s = uptime_s();
  // Dispatch every complete frame in the inbox.
  std::size_t pos = 0;
  for (;;) {
    std::uint32_t length = 0;
    runtime::Error frame_error;
    const FrameParse parse = parse_frame_header(
        {connection.inbox.data() + pos, connection.inbox.size() - pos}, length, frame_error);
    if (parse == FrameParse::kNeedMore) break;
    if (parse == FrameParse::kMalformed) {
      // Bad magic, unknown version, or an oversize length: answer with the
      // typed error (best effort — the peer may not even speak the
      // protocol) and close. Note no payload was ever buffered or
      // allocated for the oversize case; the length died in validation.
      ++control_malformed;
      ++control_errors;
      obs::flight(obs::FlightKind::kControlMalformed,
                  static_cast<std::uint64_t>(connection.inbox.size() - pos));
      ByteWriter failure;
      failure.u8(kControlError);
      failure.u8(static_cast<std::uint8_t>(frame_error.kind));
      failure.str(frame_error.message);
      write_frame(connection.fd, failure.bytes());
      ::close(connection.fd);
      connection.fd = -1;
      return;
    }
    if (connection.inbox.size() - pos - kControlFrameHeaderBytes < length) break;
    const std::vector<std::uint8_t> response = handle_control(
        {connection.inbox.data() + pos + kControlFrameHeaderBytes, length});
    if (!write_frame(connection.fd, response)) {
      ::close(connection.fd);
      connection.fd = -1;
      return;
    }
    pos += kControlFrameHeaderBytes + length;
  }
  connection.inbox.erase(connection.inbox.begin(),
                         connection.inbox.begin() + static_cast<std::ptrdiff_t>(pos));
  // Read-progress state for the slowloris reaper: the clock starts when a
  // partial frame first appears and only resets once the inbox fully
  // drains — trickled bytes do not extend the deadline.
  if (connection.inbox.empty()) {
    connection.frame_started_s = -1.0;
  } else if (connection.frame_started_s < 0.0) {
    connection.frame_started_s = uptime_s();
  }
}

bool SwdServer::apply_fault_state() {
  if (restart_pending_.exchange(false, std::memory_order_relaxed)) {
    // The "new process": registers zeroed, lookup tables rebuilt from the
    // compiled program's seed entries, generation bumped, and everything a
    // fresh process would not know — learned host endpoints, multicast
    // membership, the idempotency cache — forgotten.
    device_->restart();
    host_endpoints_.clear();
    multicast_groups_.clear();
    replay_cache_.clear();
    // A fresh process also starts with empty queues and full buckets.
    ingress_.clear();
    tenant_buckets_.clear();
    unattributed_bucket_ = TokenBucket(tenant_rate_pps_, tenant_burst_);
    crashed_.store(false, std::memory_order_relaxed);
  }
  return crashed_.load(std::memory_order_relaxed);
}

void SwdServer::poll_once(int timeout_ms) {
  if (!valid()) return;
  // The serving thread samples itself when --profile is on (idempotent
  // one-TLS-test registration).
  obs::profile_register_thread();
  // SIGUSR2 (latched async-signal-safely by the handler swd_main installs)
  // means "dump now": performed here, on the serving thread, outside
  // signal context.
  if (obs::FlightRecorder::consume_signal_dump()) {
    obs::FlightRecorder::instance().trigger_dump("sigusr2");
  }
  // SIGUSR1 is the profile-dump latch (ISSUE 9), same discipline.
  if (obs::Profiler::consume_signal_dump()) {
    obs::Profiler::instance().trigger_profile_dump();
  }
  if (slo_enabled_) {
    const double now_s = uptime_s();
    if (now_s - last_slo_tick_s_ >= 0.25) {
      last_slo_tick_s_ = now_s;
      slo_.tick(now_s);
    }
  }
  const bool crashed = apply_fault_state();
  if (crashed && !(connections_.empty() && metrics_connections_.empty())) {
    // A dead process holds no connections.
    for (const Connection& connection : connections_) ::close(connection.fd);
    connections_.clear();
    for (const Connection& connection : metrics_connections_) ::close(connection.fd);
    metrics_connections_.clear();
  }
  if (crashed && !ingress_.empty()) {
    // Packets a dead process had admitted but not executed vanish with it.
    packets_dropped_crashed.inc(static_cast<std::uint64_t>(ingress_.size()));
    ingress_.clear();
  }
  if (idle_timeout_seconds_ > 0.0) {
    const double now_s = uptime_s();
    for (Connection& connection : connections_) {
      if (now_s - connection.last_activity_s > idle_timeout_seconds_) {
        ::close(connection.fd);
        connection.fd = -1;
        ++connections_reaped;
      }
    }
    std::erase_if(connections_, [](const Connection& connection) { return connection.fd < 0; });
    // A scraper that connected and never finished its request would hold
    // its fd forever; reap on the same budget.
    for (Connection& connection : metrics_connections_) {
      if (now_s - connection.last_activity_s > idle_timeout_seconds_) {
        ::close(connection.fd);
        connection.fd = -1;
      }
    }
    std::erase_if(metrics_connections_,
                  [](const Connection& connection) { return connection.fd < 0; });
  }
  if (read_deadline_seconds_ > 0.0) {
    // Slowloris defence: a connection stalled mid-frame past the read
    // deadline is reaped — unlike idle reaping, this fires even while the
    // peer trickles a byte at a time (progress is not activity).
    const double now_s = uptime_s();
    for (Connection& connection : connections_) {
      if (connection.frame_started_s >= 0.0 &&
          now_s - connection.frame_started_s > read_deadline_seconds_) {
        obs::flight(obs::FlightKind::kSlowReadReap,
                    static_cast<std::uint64_t>(connection.inbox.size()),
                    static_cast<std::uint64_t>(now_s - connection.frame_started_s));
        ::close(connection.fd);
        connection.fd = -1;
        ++connections_reaped_slow;
      }
    }
    std::erase_if(connections_, [](const Connection& connection) { return connection.fd < 0; });
  }
  std::vector<pollfd> fds;
  fds.push_back({udp_fd_, POLLIN, 0});
  fds.push_back({listen_fd_, POLLIN, 0});
  for (const Connection& connection : connections_) {
    fds.push_back({connection.fd, POLLIN, 0});
  }
  const std::size_t metrics_listen_index = fds.size();
  if (metrics_listen_fd_ >= 0) fds.push_back({metrics_listen_fd_, POLLIN, 0});
  const std::size_t metrics_base = fds.size();
  for (const Connection& connection : metrics_connections_) {
    fds.push_back({connection.fd, POLLIN, 0});
  }
  // With a backlog queued, don't sleep — poll only collects what's already
  // ready and the cycle goes straight on to executing the queue.
  const int ready = ::poll(fds.data(), fds.size(), ingress_.empty() ? timeout_ms : 0);
  if (ready <= 0) {
    process_ingress();
    flush_egress();
    obs::flight(obs::FlightKind::kPollCycle, 0, 0);
    return;
  }

  const std::uint64_t received_before = packets_received.value();
  if ((fds[0].revents & POLLIN) != 0) {
    drain_data_socket(crashed);
  }
  process_ingress();
  flush_egress();
  obs::flight(obs::FlightKind::kPollCycle, static_cast<std::uint64_t>(ready),
              packets_received.value() - received_before);
  // accept_connection() below can grow connections_; only the pre-accept
  // entries have a pollfd at fds[2 + i].
  const std::size_t polled = connections_.size();
  const std::size_t metrics_polled = metrics_connections_.size();
  if ((fds[1].revents & POLLIN) != 0) {
    if (crashed) {
      // Closest a live process gets to a crashed one: the connection is
      // accepted by the kernel backlog, then immediately torn down, so
      // clients see a prompt disconnect rather than a hang.
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        ::close(fd);
      }
    } else {
      accept_connection();
    }
  }
  for (std::size_t i = 0; i < polled; ++i) {
    if ((fds[2 + i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      service_connection(connections_[i]);
    }
  }
  std::erase_if(connections_, [](const Connection& connection) { return connection.fd < 0; });

  if (metrics_listen_fd_ >= 0 && (fds[metrics_listen_index].revents & POLLIN) != 0) {
    if (crashed) {
      for (;;) {
        const int fd = ::accept(metrics_listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        ::close(fd);
      }
    } else {
      accept_metrics_connection();
    }
  }
  for (std::size_t i = 0; i < metrics_polled; ++i) {
    if ((fds[metrics_base + i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      service_metrics_connection(metrics_connections_[i]);
    }
  }
  std::erase_if(metrics_connections_,
                [](const Connection& connection) { return connection.fd < 0; });
}

void SwdServer::run() {
  const auto start = std::chrono::steady_clock::now();
  while (!stop_.load(std::memory_order_relaxed)) {
    if (max_seconds_ > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() >=
            max_seconds_) {
      break;
    }
    poll_once(50);
  }
  if (verbose_) {
    std::fprintf(stderr,
                 "netcl-swd: device %u served %llu packets (%llu sent, %llu control requests)\n",
                 device_->device_id(), static_cast<unsigned long long>(packets_received.value()),
                 static_cast<unsigned long long>(packets_sent.value()),
                 static_cast<unsigned long long>(control_requests.value()));
  }
}

}  // namespace netcl::net
