// netcl-swd: the software device daemon (§V-B brought to real sockets).
//
// SwdServer is the daemon's engine, usable in-process (tests run it on a
// background thread) or behind the netcl-swd binary. It loads a compiled
// pipeline — the same sim::SwitchDevice execution engine the fabric uses,
// so a packet computes identically in simulation and over the wire — and
// serves two sockets:
//
//   * a UDP data plane: NetCL wire packets in, kernel execution, the
//     Table II action applied, and the rewritten packet forwarded to the
//     destination host. Host locations are learned from the src field of
//     arriving packets (there is no routing fabric behind a single daemon);
//   * a TCP control plane: length-prefixed request/response frames
//     (net/control.hpp) for managed read/write, lookup-entry management,
//     stats read-back, and multicast-group configuration.
//
// Single-threaded poll(2) loop; stop() is safe to call from another thread.
#pragma once

#include <netinet/in.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "net/buffer_pool.hpp"
#include "net/policer.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "sim/switch.hpp"

namespace netcl::net {

struct SwdOptions {
  std::uint16_t udp_port = 0;      // data plane (0 = kernel-assigned)
  std::uint16_t control_port = 0;  // control plane TCP (0 = kernel-assigned)
  /// Stop serving after this much wall-clock time (0 = run until stop()).
  double max_seconds = 0.0;
  /// Device generation reported in PONG responses. 0 = derive from the
  /// wall clock at startup, so every real restart yields a new value and
  /// hosts can detect that offloaded state was lost.
  std::uint32_t generation = 0;
  /// Control connections with no traffic for this long are reaped (a
  /// client that died without FIN would otherwise hold its fd forever).
  /// 0 disables reaping.
  double idle_timeout_seconds = 300.0;
  /// Plain-TCP Prometheus scrape endpoint (ISSUE 4): any HTTP GET is
  /// answered with the text exposition (format 0.0.4) of the daemon's
  /// metrics and device stats. -1 = disabled, 0 = kernel-assigned.
  int metrics_port = -1;
  bool verbose = false;
  /// Compile callback for kLoadKernel (ISSUE 7). The net layer cannot link
  /// the driver, so netcl-swd (or a test) injects driver::artifact_compiler;
  /// without one, runtime kernel loads are refused.
  sim::ProgramCompiler compiler;
  /// Cap on co-resident tenants (0 = unlimited); forwarded to the device.
  std::size_t max_tenants = 0;

  // --- overload control (ISSUE 8) -------------------------------------------
  /// Per-tenant token-bucket rate on the data plane, packets/second
  /// (0 = unpoliced). A tenant exceeding it sheds its *own* packets before
  /// they reach the ingress queue; co-residents are unaffected. Traffic
  /// with no resident tenant (unknown computation ids, host-addressed
  /// passthrough) shares one bucket at the same rate.
  double tenant_rate_pps = 0.0;
  /// Bucket depth in packets (0 = one second's worth, i.e. tenant_rate_pps).
  double tenant_burst = 0.0;
  /// Bounded drop-oldest ingress queue between the socket and the switch
  /// engine. Under sustained overload the oldest queued packet is shed
  /// (counted against its tenant) instead of the queue growing without
  /// bound. 0 = default (1024).
  std::size_t ingress_queue_capacity = 0;
  /// Max queued packets executed per poll cycle, so a flood can never
  /// starve control-plane servicing within a cycle. 0 = default (512).
  std::size_t max_cycle_execute = 0;
  /// A control connection holding an incomplete frame longer than this is
  /// reaped (slowloris defence) — independent of idle_timeout_seconds,
  /// which only covers connections with no pending frame. 0 disables.
  double read_deadline_seconds = 10.0;

  // --- continuous profiling + per-tenant SLOs (ISSUE 9) ---------------------
  /// Sampling rate for the always-available CPU profiler (netcl-swd
  /// --profile[=hz]). 0 = profiler off; dumps via kProfileDump / SIGUSR1.
  int profile_hz = 0;
  /// Per-tenant service-level objectives (netcl-swd --slo). A tenant with
  /// an objective gets ingress→egress latency stamping, sliding-window
  /// good/bad accounting (sheds count as bad), burn-rate series, and the
  /// fast-burn → flight-recorder postmortem trigger.
  std::map<sim::TenantId, obs::SloObjective> slo_objectives;
};

class SwdServer {
  // Declared before the public counter references below so it is
  // constructed first.
  obs::MetricsRegistry metrics_;

 public:
  /// Takes ownership of the device and binds both sockets; check valid().
  SwdServer(std::unique_ptr<sim::SwitchDevice> device, const SwdOptions& options);
  ~SwdServer();
  SwdServer(const SwdServer&) = delete;
  SwdServer& operator=(const SwdServer&) = delete;

  [[nodiscard]] bool valid() const;
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::uint16_t udp_port() const { return udp_port_; }
  [[nodiscard]] std::uint16_t control_port() const { return control_port_; }
  /// 0 when the scrape endpoint is disabled.
  [[nodiscard]] std::uint16_t metrics_port() const { return metrics_port_; }
  [[nodiscard]] sim::SwitchDevice& device() { return *device_; }
  /// The daemon's telemetry clock: ns since process start (steady clock).
  /// TelemetryHop stamps and the PONG clock field share this clockbase.
  [[nodiscard]] std::uint64_t device_clock_ns() const;

  /// Serves until stop() or the max_seconds budget runs out.
  void run();
  /// One event-loop turn (≤ timeout_ms of blocking).
  void poll_once(int timeout_ms);
  /// Thread-safe shutdown request; run() returns within one poll timeout.
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  // --- fault injection (ISSUE 3; thread-safe, applied on the serving
  // thread within one poll timeout) ------------------------------------------
  /// Simulates a daemon crash: datagrams vanish, control connections are
  /// closed and new ones refused, until inject_restart().
  void inject_crash() { crashed_.store(true, std::memory_order_relaxed); }
  /// Simulates the crashed daemon coming back as a fresh process: device
  /// registers zeroed, lookup entries re-seeded, generation bumped.
  void inject_restart() { restart_pending_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool crashed() const { return crashed_.load(std::memory_order_relaxed); }

  /// Dispatches one already-deframed control request and returns the
  /// response payload. Public so tests and the fuzz harness can drive the
  /// parser with arbitrary bytes without a socket in between; the serving
  /// path calls it from service_connection().
  [[nodiscard]] std::vector<std::uint8_t> handle_control(std::span<const std::uint8_t> frame);

  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  obs::Counter& packets_received = metrics_.counter("packets_received");
  obs::Counter& packets_sent = metrics_.counter("packets_sent");
  obs::Counter& packets_dropped_action = metrics_.counter("packets_dropped_action");
  /// Datagram arrived but was not a well-formed NetCL wire packet.
  obs::Counter& deserialize_errors = metrics_.counter("deserialize_errors");
  /// Same events as deserialize_errors under the ISSUE 8 perimeter name;
  /// per-source attribution renders as malformed.by_source gauges.
  obs::Counter& packets_malformed = metrics_.counter("packets.malformed");
  /// Packets shed by the per-tenant token-bucket policer (the flooding
  /// tenant's own traffic; see tenant.shed_policer for attribution).
  obs::Counter& packets_shed_policer = metrics_.counter("packets.shed_policer");
  /// Oldest queued packets dropped when the bounded ingress queue overflowed.
  obs::Counter& packets_shed_queue = metrics_.counter("packets.shed_queue");
  /// Control connections closed for a malformed frame header (bad magic /
  /// version / oversize length).
  obs::Counter& control_malformed = metrics_.counter("control.malformed");
  /// Control connections reaped for stalling mid-frame past
  /// read_deadline_seconds (slowloris defence).
  obs::Counter& connections_reaped_slow = metrics_.counter("connections.reaped_slow");
  /// Outbound packet addressed to a host this daemon never heard from.
  obs::Counter& dropped_unknown_host = metrics_.counter("dropped.unknown_host");
  /// Outbound packet addressed to another device (single-device daemon).
  obs::Counter& dropped_no_route = metrics_.counter("dropped.no_route");
  obs::Counter& control_requests = metrics_.counter("control_requests");
  obs::Counter& control_errors = metrics_.counter("control_errors");
  /// Retried request (same client id + request id) answered from the
  /// idempotency cache instead of re-executing the op.
  obs::Counter& control_replays = metrics_.counter("control_replays");
  /// Control connections closed for idling past idle_timeout_seconds.
  obs::Counter& connections_reaped = metrics_.counter("connections_reaped");
  /// Datagrams discarded while crash injection is active.
  obs::Counter& packets_dropped_crashed = metrics_.counter("packets_dropped_crashed");
  /// HTTP responses served from the --metrics-port scrape endpoint.
  obs::Counter& metrics_scrapes = metrics_.counter("metrics_scrapes");
  /// Telemetry hops stamped onto packets that requested INT.
  obs::Counter& telemetry_stamps = metrics_.counter("telemetry_stamps");
  /// NetCL packets addressed to this device whose computation id has no
  /// resident kernel (misrouted tenant traffic; they pass through, §IV).
  obs::Counter& packets_unknown_computation =
      metrics_.counter("packets.unknown_computation");
  /// Runtime kernel lifecycle ops (ISSUE 7).
  obs::Counter& kernels_loaded = metrics_.counter("kernels_loaded");
  obs::Counter& kernels_unloaded = metrics_.counter("kernels_unloaded");
  obs::Counter& kernels_rejected = metrics_.counter("kernels_rejected");
  /// Data-plane syscalls (sendmmsg/sendto, recvmmsg/recvfrom). With the
  /// mmsg fast path these grow ~1/32 as fast as the packet counters.
  obs::Counter& send_syscalls = metrics_.counter("send_syscalls");
  obs::Counter& recv_syscalls = metrics_.counter("recv_syscalls");

 private:
  /// Bucket/attribution key for traffic no resident tenant claims
  /// (unknown computation ids, host-addressed passthrough, transits).
  static constexpr sim::TenantId kUnattributedTenant = 0xFFFFFFFFu;

  struct Connection {
    int fd = -1;
    std::vector<std::uint8_t> inbox;  // bytes read, not yet framed
    double last_activity_s = 0.0;     // monotonic seconds (idle reaping)
    /// When the oldest incomplete frame in the inbox started arriving
    /// (< 0 = no partial frame pending). A connection stalled mid-frame
    /// past read_deadline_seconds is reaped (slowloris defence).
    double frame_started_s = -1.0;
  };

  /// A parsed-and-admitted data-plane packet waiting for an execution slot
  /// (the bounded drop-oldest ingress queue, ISSUE 8).
  struct IngressPacket {
    sim::Packet packet;
    sockaddr_in from{};
    std::uint32_t queue_depth = 0;
    std::uint64_t ingress_ns = 0;  // 0 unless telemetry was requested
    /// Admission timestamp for SLO latency accounting (0 unless the
    /// attributed tenant has an objective).
    std::uint64_t admit_ns = 0;
    /// Resident tenant the packet was attributed to at admission
    /// (kUnattributedTenant for unknown computations / passthrough).
    sim::TenantId tenant = 0;
  };

  /// Parses + polices one datagram and queues it on ingress_ (drop-oldest
  /// on overflow). Malformed input and policer sheds are counted and
  /// flight-recorded here; nothing unvalidated crosses this line.
  void admit_datagram(const std::uint8_t* data, std::size_t size, const sockaddr_in& from,
                      std::uint32_t queue_depth);
  /// Runs the switch engine over one admitted packet.
  void handle_packet(IngressPacket& in);
  /// Executes up to max_cycle_execute_ queued packets.
  void process_ingress();
  /// The tenant whose token bucket a packet with this computation id
  /// consumes from, and whether it may pass right now.
  bool police(sim::TenantId tenant, double now_s);
  void count_shed(sim::TenantId tenant, bool policer);
  void emit(sim::Packet&& packet);
  /// Serializes into a pooled buffer and queues the datagram on egress_;
  /// flush_egress() puts the whole cycle's output on the wire afterwards.
  void send_to_host(std::uint16_t host, const sim::Packet& packet);
  /// Drains the UDP socket (recvmmsg bursts when available) and admits
  /// every datagram of the cycle into the ingress queue.
  void drain_data_socket(bool crashed);
  /// Transmits the queued egress datagrams, batched through sendmmsg with
  /// per-message destinations, in FIFO (emission) order.
  void flush_egress();
  void ensure_rx_storage();
  void accept_connection();
  /// Reads what is available; closes the connection on EOF/protocol error.
  void service_connection(Connection& connection);
  void accept_metrics_connection();
  /// Minimal HTTP/1.0 server: once the request's header block is in,
  /// answers with the Prometheus exposition and closes.
  void service_metrics_connection(Connection& connection);
  /// Prometheus text exposition of this daemon's registry and device
  /// stats (the body both --metrics-port and kMetricsText serve).
  [[nodiscard]] std::string metrics_exposition();
  /// Monotonic seconds since the server was constructed.
  [[nodiscard]] double uptime_s() const;
  /// Applies pending fault-injection state; true while crashed.
  bool apply_fault_state();
  /// Find-or-create the per-tenant registry ("swd<id>/tenant/<name>" —
  /// prometheus_string() splits the suffix into a `tenant` label) and
  /// mirror the tenant's execution stats into it as gauges.
  void mirror_tenant_metrics();
  /// Mirror the heaviest malformed-traffic sources into
  /// "<base>/source/<ip:port>" registries (`source` label on the wire).
  void mirror_malformed_sources();

  struct EgressDatagram {
    sockaddr_in to{};
    std::vector<std::uint8_t> wire;  // borrowed from pool_ until the flush
  };

  std::unique_ptr<sim::SwitchDevice> device_;
  sim::ProgramCompiler compiler_;
  /// Per-tenant metric registries, created on first sight of a tenant and
  /// kept for the daemon's lifetime (a registry's retained store outlives
  /// unload, so last-known values still render).
  std::map<sim::TenantId, std::unique_ptr<obs::MetricsRegistry>> tenant_metrics_;
  std::string error_;
  /// Wire buffers recycled across cycles: egress serialization borrows
  /// from the pool, flush_egress() returns every buffer after the send.
  BufferPool pool_;
  std::vector<EgressDatagram> egress_;
  /// Receive staging for recvmmsg bursts, allocated lazily (64 KiB/slot).
  std::vector<std::vector<std::uint8_t>> rx_buffers_;
  int udp_fd_ = -1;
  int listen_fd_ = -1;
  int metrics_listen_fd_ = -1;
  std::uint16_t udp_port_ = 0;
  std::uint16_t control_port_ = 0;
  std::uint16_t metrics_port_ = 0;
  bool metrics_enabled_ = false;
  bool verbose_ = false;
  double max_seconds_ = 0.0;
  double idle_timeout_seconds_ = 0.0;
  std::vector<Connection> connections_;
  std::vector<Connection> metrics_connections_;
  // --- overload control state (ISSUE 8) -------------------------------------
  std::deque<IngressPacket> ingress_;
  std::size_t ingress_capacity_ = 1024;
  std::size_t max_cycle_execute_ = 512;
  double tenant_rate_pps_ = 0.0;
  double tenant_burst_ = 0.0;
  double read_deadline_seconds_ = 0.0;
  /// One token bucket per resident tenant (created lazily), plus one
  /// shared bucket for unattributed traffic.
  std::map<sim::TenantId, TokenBucket> tenant_buckets_;
  TokenBucket unattributed_bucket_;
  /// Per-tenant shed attribution, mirrored into the tenant registries.
  std::map<sim::TenantId, std::uint64_t> tenant_shed_policer_;
  std::map<sim::TenantId, std::uint64_t> tenant_shed_queue_;
  // --- per-tenant SLOs (ISSUE 9) --------------------------------------------
  /// Burn-rate engine; exports into "<base>/tenant/<id>[/window/<w>]"
  /// registries so SLO series share the tenant label with the mirrors
  /// above.
  obs::SloEngine slo_{metrics_.name()};
  /// True iff any tenant has an objective — the "skip all SLO work on the
  /// hot path" test.
  bool slo_enabled_ = false;
  double last_slo_tick_s_ = -1.0;
  /// Top-K malformed-datagram attribution by source endpoint; bounded so
  /// spoofed sources cannot grow it without limit.
  BoundedCounts malformed_sources_;
  /// Per-source metric registries for the heaviest offenders.
  std::map<std::string, std::unique_ptr<obs::MetricsRegistry>> source_metrics_;

  /// host id -> last UDP endpoint it sent from.
  std::map<std::uint16_t, sockaddr_in> host_endpoints_;
  std::map<std::uint16_t, std::vector<std::uint16_t>> multicast_groups_;
  /// Idempotency cache: client id -> (last request id, cached response).
  std::map<std::uint64_t, std::pair<std::uint64_t, std::vector<std::uint8_t>>>
      replay_cache_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<bool> restart_pending_{false};
};

}  // namespace netcl::net
