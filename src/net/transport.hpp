// The NetCL message transport abstraction (§V-B), v2: batched.
//
// The paper's host runtime is a UDP backend talking to a real device; this
// reproduction grew up on the in-process discrete-event fabric. Transport
// abstracts the difference so the host runtime (and anything built on it,
// like runtime::RetransmitWindow) is written once: NetCL wire packets go
// out, received packets come back through a callback, and one-shot timers
// run on the transport's clock — simulated time for SimTransport, wall
// clock for UdpTransport.
//
// v2 (ISSUE 5) makes the *batch* the primitive: implementations provide
// send_batch(), and the single-packet send() is a thin wrapper around a
// one-element batch. Symmetrically, receivers may opt into whole-batch
// delivery with set_batch_receiver(); transports that drain multiple
// packets per event-loop turn (UdpTransport via recvmmsg) hand the burst
// over in one call instead of one callback per packet. Batch order is the
// wire order: send_batch(p0..pn) puts p0 first on the wire, and a
// delivered batch preserves arrival order.
#pragma once

#include <functional>
#include <span>

#include "sim/packet.hpp"

namespace netcl::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Implementation tag for logs and metrics ("sim", "udp").
  [[nodiscard]] virtual const char* kind() const = 0;

  /// Sends a batch of NetCL wire packets toward the network, first element
  /// first. Each packet's NetCL header decides where it goes (the fabric
  /// routes on it; the UDP transport hands it to the attached device
  /// daemon). The span's elements are consumed: implementations may move
  /// from them, so callers must treat them as moved-from afterwards.
  virtual void send_batch(std::span<sim::Packet> packets) = 0;

  /// Single-packet convenience: a one-element batch.
  void send(sim::Packet packet) { send_batch({&packet, 1}); }

  /// Installs the handler invoked for every packet arriving at this
  /// endpoint. At most one receiver; installing replaces the previous one.
  using Receiver = std::function<void(const sim::Packet&)>;
  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  /// Batch-aware alternative: invoked once per arriving burst with the
  /// packets in arrival order. When installed it takes precedence over the
  /// per-packet receiver; transports without batched receive deliver
  /// one-element spans.
  using BatchReceiver = std::function<void(std::span<const sim::Packet>)>;
  void set_batch_receiver(BatchReceiver receiver) { batch_receiver_ = std::move(receiver); }

  /// One-shot timer: `callback` fires `delay_ns` from now on this
  /// transport's clock (host-side timers, e.g. retransmission timeouts).
  virtual void schedule(double delay_ns, std::function<void()> callback) = 0;

  /// Current time on the transport's clock, in nanoseconds.
  [[nodiscard]] virtual double now_ns() const = 0;

 protected:
  /// Implementations funnel every arriving batch (possibly of one) here;
  /// it dispatches to the batch receiver when installed, else per packet.
  void deliver(std::span<const sim::Packet> batch) {
    if (batch_receiver_ != nullptr) {
      batch_receiver_(batch);
      return;
    }
    if (receiver_ == nullptr) return;
    for (const sim::Packet& packet : batch) receiver_(packet);
  }

  [[nodiscard]] bool has_receiver() const {
    return receiver_ != nullptr || batch_receiver_ != nullptr;
  }

 private:
  Receiver receiver_;
  BatchReceiver batch_receiver_;
};

}  // namespace netcl::net
