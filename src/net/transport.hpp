// The NetCL message transport abstraction (§V-B).
//
// The paper's host runtime is a UDP backend talking to a real device; this
// reproduction grew up on the in-process discrete-event fabric. Transport
// abstracts the difference so the host runtime (and anything built on it,
// like runtime::RetransmitWindow) is written once: NetCL wire packets go
// out, received packets come back through a callback, and one-shot timers
// run on the transport's clock — simulated time for SimTransport, wall
// clock for UdpTransport.
#pragma once

#include <functional>

#include "sim/packet.hpp"

namespace netcl::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Implementation tag for logs and metrics ("sim", "udp").
  [[nodiscard]] virtual const char* kind() const = 0;

  /// Sends one NetCL wire packet toward the network. The packet's NetCL
  /// header decides where it goes (the fabric routes on it; the UDP
  /// transport hands it to the attached device daemon).
  virtual void send(sim::Packet packet) = 0;

  /// Installs the handler invoked for every packet arriving at this
  /// endpoint. At most one receiver; installing replaces the previous one.
  using Receiver = std::function<void(const sim::Packet&)>;
  virtual void set_receiver(Receiver receiver) = 0;

  /// One-shot timer: `callback` fires `delay_ns` from now on this
  /// transport's clock (host-side timers, e.g. retransmission timeouts).
  virtual void schedule(double delay_ns, std::function<void()> callback) = 0;

  /// Current time on the transport's clock, in nanoseconds.
  [[nodiscard]] virtual double now_ns() const = 0;
};

}  // namespace netcl::net
