#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/wire.hpp"

namespace netcl::net {

namespace {

/// Largest datagram we accept: wire header + a full 64 KiB payload bound.
constexpr std::size_t kMaxDatagram = 65536;

bool make_addr(const std::string& host, std::uint16_t port, sockaddr_in& out) {
  std::memset(&out, 0, sizeof(out));
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &out.sin_addr) == 1;
}

}  // namespace

UdpTransport::UdpTransport(const Options& options)
    : metrics_(options.metrics_name), epoch_(std::chrono::steady_clock::now()) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  sockaddr_in local{};
  local.sin_family = AF_INET;
  local.sin_addr.s_addr = htonl(INADDR_ANY);
  local.sin_port = htons(options.bind_port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&local), sizeof(local)) != 0) {
    error_ = std::string("bind: ") + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return;
  }
  socklen_t len = sizeof(local);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&local), &len) == 0) {
    local_port_ = ntohs(local.sin_port);
  }
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  if (options.peer_port != 0) set_peer(options.peer_host, options.peer_port);
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::set_peer(const std::string& host, std::uint16_t port) {
  has_peer_ = make_addr(host, port, peer_);
  if (!has_peer_) error_ = "invalid peer address '" + host + "'";
}

void UdpTransport::send(sim::Packet packet) {
  if (fd_ < 0 || !has_peer_) {
    ++send_errors;
    return;
  }
  const std::vector<std::uint8_t> wire = serialize_packet(packet);
  const ssize_t sent = ::sendto(fd_, wire.data(), wire.size(), 0,
                                reinterpret_cast<const sockaddr*>(&peer_), sizeof(peer_));
  if (sent != static_cast<ssize_t>(wire.size())) {
    ++send_errors;
    return;
  }
  ++packets_sent;
  bytes_sent.inc(wire.size());
}

void UdpTransport::set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

void UdpTransport::schedule(double delay_ns, std::function<void()> callback) {
  timers_.push({now_ns() + std::max(delay_ns, 0.0), timer_sequence_++, std::move(callback)});
}

double UdpTransport::now_ns() const {
  return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

void UdpTransport::fire_due_timers() {
  while (!timers_.empty() && timers_.top().due_ns <= now_ns()) {
    // Copy out before pop: the callback may schedule new timers.
    auto callback = timers_.top().callback;
    timers_.pop();
    ++timers_fired;
    callback();
  }
}

void UdpTransport::drain_socket() {
  std::uint8_t buffer[kMaxDatagram];
  for (;;) {
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n < 0) return;  // EAGAIN/EWOULDBLOCK: drained
    bytes_received.inc(static_cast<std::uint64_t>(n));
    sim::Packet packet;
    if (!deserialize_packet({buffer, static_cast<std::size_t>(n)}, packet)) {
      ++deserialize_errors;
      continue;
    }
    ++packets_received;
    if (receiver_ != nullptr) receiver_(packet);
  }
}

void UdpTransport::poll_once(int timeout_ms) {
  if (fd_ < 0) return;
  fire_due_timers();
  int wait_ms = timeout_ms;
  if (!timers_.empty()) {
    // Clamp in double before the int cast: a far-future timer would make
    // the bare cast overflow (UB).
    const double until_timer_ms = (timers_.top().due_ns - now_ns()) / 1e6;
    wait_ms = static_cast<int>(
        std::clamp(until_timer_ms + 1.0, 0.0, static_cast<double>(timeout_ms)));
  }
  pollfd pfd{fd_, POLLIN, 0};
  if (::poll(&pfd, 1, wait_ms) > 0 && (pfd.revents & POLLIN) != 0) drain_socket();
  fire_due_timers();
}

bool UdpTransport::run_until(const std::function<bool()>& done, double timeout_ns) {
  const double deadline = now_ns() + timeout_ns;
  while (!done()) {
    const double remaining_ms = (deadline - now_ns()) / 1e6;
    if (remaining_ms <= 0) return done();
    poll_once(static_cast<int>(std::min(remaining_ms + 1.0, 50.0)));
  }
  return true;
}

void UdpTransport::run_for(double duration_ns) {
  const double deadline = now_ns() + duration_ns;
  run_until([&] { return now_ns() >= deadline; }, duration_ns);
}

}  // namespace netcl::net
