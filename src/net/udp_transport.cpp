#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#if NETCL_HAVE_UDP_GSO
#include <netinet/udp.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/wire.hpp"
#include "obs/flightrec.hpp"
#include "obs/profiler.hpp"

namespace netcl::net {

namespace {

/// Largest datagram we accept: wire header + a full 64 KiB payload bound.
constexpr std::size_t kMaxDatagram = 65536;

/// Conservative cap on one GSO super-datagram (the kernel bounds the
/// gathered payload by the 65507-byte UDP maximum).
constexpr std::size_t kMaxGsoBytes = 65000;

bool make_addr(const std::string& host, std::uint16_t port, sockaddr_in& out) {
  std::memset(&out, 0, sizeof(out));
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &out.sin_addr) == 1;
}

}  // namespace

UdpTransport::UdpTransport(const Options& options)
    : metrics_(options.metrics_name),
      max_syscall_batch_(std::clamp<std::size_t>(options.max_syscall_batch, 1, kMaxBatch)),
      epoch_(std::chrono::steady_clock::now()) {
  pool_.bind_metrics(metrics_);
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  sockaddr_in local{};
  local.sin_family = AF_INET;
  local.sin_addr.s_addr = htonl(INADDR_ANY);
  local.sin_port = htons(options.bind_port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&local), sizeof(local)) != 0) {
    error_ = std::string("bind: ") + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return;
  }
  socklen_t len = sizeof(local);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&local), &len) == 0) {
    local_port_ = ntohs(local.sin_port);
  }
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
#if NETCL_HAVE_UDP_GSO && NETCL_HAVE_MMSG
  gso_enabled_ = options.allow_gso;
#endif
  if (options.peer_port != 0) set_peer(options.peer_host, options.peer_port);
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::set_peer(const std::string& host, std::uint16_t port) {
  has_peer_ = make_addr(host, port, peer_);
  if (!has_peer_) error_ = "invalid peer address '" + host + "'";
}

void UdpTransport::send_batch(std::span<sim::Packet> packets) {
  if (packets.empty()) return;
  if (fd_ < 0 || !has_peer_) {
    send_errors.inc(packets.size());
    return;
  }
  // Serialize the whole batch into pooled wire buffers up front; the
  // syscall layer below then deals in plain byte vectors. The buffers are
  // borrowed from the pool for the duration of this call, so steady-state
  // sending does not touch the allocator.
  tx_wire_.clear();
  tx_wire_.reserve(packets.size());
  for (const sim::Packet& packet : packets) {
    std::vector<std::uint8_t> wire = pool_.acquire();
    serialize_packet(packet, wire);
    tx_wire_.push_back(std::move(wire));
  }
  const std::uint64_t sent_before = packets_sent.value();
  transmit_wire_batch();
  obs::flight(obs::FlightKind::kBatchSend, packets.size(),
              packets_sent.value() - sent_before);
  for (std::vector<std::uint8_t>& wire : tx_wire_) pool_.release(std::move(wire));
  tx_wire_.clear();
}

std::size_t UdpTransport::equal_size_run(std::size_t offset) const {
  const std::size_t size = tx_wire_[offset].size();
  if (size == 0 || size > kMaxGsoBytes) return 1;
  std::size_t run = 1;
  std::size_t total = size;
  while (offset + run < tx_wire_.size() && run < max_syscall_batch_ &&
         tx_wire_[offset + run].size() == size && total + size <= kMaxGsoBytes) {
    ++run;
    total += size;
  }
  return run;
}

bool UdpTransport::transmit_gso_run(std::size_t offset, std::size_t run) {
#if NETCL_HAVE_UDP_GSO && NETCL_HAVE_MMSG
  // All `run` buffers gather into one datagram-sized payload; the
  // UDP_SEGMENT ancillary value tells the kernel where to cut it back
  // into `run` ordinary datagrams after one traversal of the stack.
  iovec iovs[kMaxBatch];
  std::size_t total = 0;
  for (std::size_t i = 0; i < run; ++i) {
    std::vector<std::uint8_t>& wire = tx_wire_[offset + i];
    iovs[i] = {wire.data(), wire.size()};
    total += wire.size();
  }
  msghdr msg{};
  msg.msg_name = &peer_;
  msg.msg_namelen = sizeof(peer_);
  msg.msg_iov = iovs;
  msg.msg_iovlen = run;
  alignas(cmsghdr) char control[CMSG_SPACE(sizeof(std::uint16_t))] = {};
  msg.msg_control = control;
  msg.msg_controllen = sizeof(control);
  cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
  cmsg->cmsg_level = SOL_UDP;
  cmsg->cmsg_type = UDP_SEGMENT;
  cmsg->cmsg_len = CMSG_LEN(sizeof(std::uint16_t));
  const auto segment = static_cast<std::uint16_t>(tx_wire_[offset].size());
  std::memcpy(CMSG_DATA(cmsg), &segment, sizeof(segment));

  const ssize_t sent = ::sendmsg(fd_, &msg, 0);
  ++send_syscalls;
  if (sent < 0) {
    obs::flight(obs::FlightKind::kSendError, static_cast<std::uint64_t>(errno));
    return false;  // kernel refused: caller disables GSO
  }
  ++gso_batches;
  packets_sent.inc(run);
  bytes_sent.inc(total);
  obs::flight(obs::FlightKind::kGsoSend, run, total);
  return true;
#else
  (void)offset;
  (void)run;
  return false;
#endif
}

void UdpTransport::transmit_wire_batch() {
#if NETCL_HAVE_MMSG
  std::size_t offset = 0;
  while (offset < tx_wire_.size()) {
    // Fast path: an equal-sized run becomes one GSO super-datagram. On
    // the first kernel refusal (old kernel, odd socket state) GSO is
    // disabled for good and the same still-unsent buffers take the
    // sendmmsg path below — nothing is lost or duplicated.
    if (gso_enabled_) {
      const std::size_t run = equal_size_run(offset);
      if (run >= 2) {
        if (transmit_gso_run(offset, run)) {
          offset += run;
          continue;
        }
        gso_enabled_ = false;
      }
    }
    const std::size_t chunk = std::min(max_syscall_batch_, tx_wire_.size() - offset);
    mmsghdr msgs[kMaxBatch];
    iovec iovs[kMaxBatch];
    std::memset(msgs, 0, chunk * sizeof(mmsghdr));
    for (std::size_t i = 0; i < chunk; ++i) {
      std::vector<std::uint8_t>& wire = tx_wire_[offset + i];
      iovs[i] = {wire.data(), wire.size()};
      msgs[i].msg_hdr.msg_name = &peer_;
      msgs[i].msg_hdr.msg_namelen = sizeof(peer_);
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int sent = ::sendmmsg(fd_, msgs, static_cast<unsigned>(chunk), 0);
    ++send_syscalls;
    if (sent <= 0) {
      obs::flight(obs::FlightKind::kSendError, static_cast<std::uint64_t>(errno),
                  tx_wire_.size() - offset);
      send_errors.inc(tx_wire_.size() - offset);
      return;
    }
    obs::flight(obs::FlightKind::kSendmmsg, static_cast<std::uint64_t>(sent), chunk);
    for (int i = 0; i < sent; ++i) {
      ++packets_sent;
      bytes_sent.inc(tx_wire_[offset + static_cast<std::size_t>(i)].size());
    }
    // Partial completion (kernel took fewer than `chunk` messages): the
    // next syscall resumes at the first unsent buffer, preserving order.
    if (static_cast<std::size_t>(sent) < chunk) {
      obs::flight(obs::FlightKind::kSendPartial, static_cast<std::uint64_t>(sent),
                  tx_wire_.size() - offset - static_cast<std::size_t>(sent));
    }
    offset += static_cast<std::size_t>(sent);
  }
#else
  // Portable fallback: one sendto(2) per datagram, same observable
  // behavior, no syscall amortization.
  for (const std::vector<std::uint8_t>& wire : tx_wire_) {
    const ssize_t sent = ::sendto(fd_, wire.data(), wire.size(), 0,
                                  reinterpret_cast<const sockaddr*>(&peer_), sizeof(peer_));
    ++send_syscalls;
    if (sent != static_cast<ssize_t>(wire.size())) {
      obs::flight(obs::FlightKind::kSendError, static_cast<std::uint64_t>(errno));
      ++send_errors;
      continue;
    }
    ++packets_sent;
    bytes_sent.inc(wire.size());
  }
#endif
}

void UdpTransport::schedule(double delay_ns, std::function<void()> callback) {
  timers_.push({now_ns() + std::max(delay_ns, 0.0), timer_sequence_++, std::move(callback)});
}

double UdpTransport::now_ns() const {
  return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

void UdpTransport::fire_due_timers() {
  while (!timers_.empty() && timers_.top().due_ns <= now_ns()) {
    // Copy out before pop: the callback may schedule new timers.
    auto callback = timers_.top().callback;
    timers_.pop();
    ++timers_fired;
    callback();
  }
}

void UdpTransport::ensure_rx_storage() {
  if (!rx_buffers_.empty()) return;
  // 64 KiB per slot is too big for the stack at batch 32 (2 MiB), so the
  // staging area lives on the heap, allocated once on first receive.
  rx_buffers_.resize(max_syscall_batch_);
  for (std::vector<std::uint8_t>& buffer : rx_buffers_) buffer.resize(kMaxDatagram);
  rx_batch_.resize(max_syscall_batch_);
}

void UdpTransport::drain_socket() {
  ensure_rx_storage();
  for (;;) {
#if NETCL_HAVE_MMSG
    mmsghdr msgs[kMaxBatch];
    iovec iovs[kMaxBatch];
    std::memset(msgs, 0, max_syscall_batch_ * sizeof(mmsghdr));
    for (std::size_t i = 0; i < max_syscall_batch_; ++i) {
      iovs[i] = {rx_buffers_[i].data(), kMaxDatagram};
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int received =
        ::recvmmsg(fd_, msgs, static_cast<unsigned>(max_syscall_batch_), 0, nullptr);
    ++recv_syscalls;
    if (received <= 0) return;  // EAGAIN/EWOULDBLOCK: drained
    std::size_t good = 0;
    for (int i = 0; i < received; ++i) {
      const std::size_t len = msgs[i].msg_len;
      bytes_received.inc(len);
      // Decode into the reused batch slots, compacting over malformed
      // datagrams so deliver() sees a dense, arrival-ordered span.
      if (!deserialize_packet({rx_buffers_[static_cast<std::size_t>(i)].data(), len},
                              rx_batch_[good])) {
        ++deserialize_errors;
        continue;
      }
      ++packets_received;
      ++good;
    }
    obs::flight(obs::FlightKind::kBatchRecv, good, static_cast<std::uint64_t>(received));
    if (good > 0) deliver({rx_batch_.data(), good});
    // A short batch means the queue is (almost certainly) empty; anything
    // racing in after the syscall is picked up on the next poll turn.
    if (static_cast<std::size_t>(received) < max_syscall_batch_) return;
#else
    // Portable fallback: recv(2) per datagram, still delivering in bursts
    // of up to max_syscall_batch_ so batch receivers see the same shape.
    std::size_t good = 0;
    bool drained = false;
    while (good < max_syscall_batch_) {
      const ssize_t n = ::recv(fd_, rx_buffers_[good].data(), kMaxDatagram, 0);
      ++recv_syscalls;
      if (n < 0) {
        drained = true;  // EAGAIN/EWOULDBLOCK
        break;
      }
      bytes_received.inc(static_cast<std::uint64_t>(n));
      if (!deserialize_packet({rx_buffers_[good].data(), static_cast<std::size_t>(n)},
                              rx_batch_[good])) {
        ++deserialize_errors;
        continue;
      }
      ++packets_received;
      ++good;
    }
    if (good > 0) {
      obs::flight(obs::FlightKind::kBatchRecv, good, good);
      deliver({rx_batch_.data(), good});
    }
    if (drained) return;
#endif
  }
}

void UdpTransport::poll_once(int timeout_ms) {
  if (fd_ < 0) return;
  // Host-side event loops sample themselves when the profiler is on
  // (idempotent one-TLS-test registration).
  obs::profile_register_thread();
  fire_due_timers();
  int wait_ms = timeout_ms;
  if (!timers_.empty()) {
    // Clamp in double before the int cast: a far-future timer would make
    // the bare cast overflow (UB).
    const double until_timer_ms = (timers_.top().due_ns - now_ns()) / 1e6;
    wait_ms = static_cast<int>(
        std::clamp(until_timer_ms + 1.0, 0.0, static_cast<double>(timeout_ms)));
  }
  pollfd pfd{fd_, POLLIN, 0};
  if (::poll(&pfd, 1, wait_ms) > 0 && (pfd.revents & POLLIN) != 0) drain_socket();
  fire_due_timers();
}

bool UdpTransport::run_until(const std::function<bool()>& done, double timeout_ns) {
  const double deadline = now_ns() + timeout_ns;
  while (!done()) {
    const double remaining_ms = (deadline - now_ns()) / 1e6;
    if (remaining_ms <= 0) return done();
    poll_once(static_cast<int>(std::min(remaining_ms + 1.0, 50.0)));
  }
  return true;
}

void UdpTransport::run_for(double duration_ns) {
  const double deadline = now_ns() + duration_ns;
  run_until([&] { return now_ns() >= deadline; }, duration_ns);
}

}  // namespace netcl::net
