// Transport over real POSIX UDP sockets (the paper's §V-B backend shape).
//
// One socket, one peer (the attached device daemon), a poll(2)-based event
// loop, and wall-clock one-shot timers. The owner drives the loop
// explicitly (poll_once / run_for / run_until) — like fabric.run(), there
// is no background thread; receive callbacks and timers fire on the
// calling thread.
//
// Metrics live in an obs registry (default name "udp"): packet/byte
// send+receive counters, deserialize failures, and timer fires, so
// obs::dump() shows the real-network path next to the fabric's counters.
#pragma once

#include <netinet/in.h>

#include <chrono>
#include <queue>
#include <string>

#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace netcl::net {

class UdpTransport final : public Transport {
  // Declared before the public counter references below so it is
  // constructed first.
  obs::MetricsRegistry metrics_;

 public:
  struct Options {
    /// Local UDP port to bind (0 = kernel-assigned; read local_port()).
    std::uint16_t bind_port = 0;
    /// Peer (IPv4 literal) all sends go to; may be set later via set_peer.
    std::string peer_host = "127.0.0.1";
    std::uint16_t peer_port = 0;
    /// Registry name; same-named registries merge additively in obs::dump().
    std::string metrics_name = "udp";
  };

  // A delegating default ctor rather than `= {}` on the Options overload:
  // default arguments for a nested aggregate with member initializers are
  // ill-formed inside the enclosing class (GCC enforces this).
  UdpTransport() : UdpTransport(Options()) {}
  explicit UdpTransport(const Options& options);
  ~UdpTransport() override;
  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// False when socket creation/binding failed (error() explains).
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
  void set_peer(const std::string& host, std::uint16_t port);

  // --- Transport ------------------------------------------------------------
  [[nodiscard]] const char* kind() const override { return "udp"; }
  void send(sim::Packet packet) override;
  void set_receiver(Receiver receiver) override;
  void schedule(double delay_ns, std::function<void()> callback) override;
  /// Wall-clock ns since this transport was constructed.
  [[nodiscard]] double now_ns() const override;

  // --- event loop -----------------------------------------------------------
  /// One loop turn: fires due timers, waits up to `timeout_ms` (clamped to
  /// the next timer deadline) for datagrams, drains and dispatches them.
  void poll_once(int timeout_ms);
  /// Loops until `done()` or the wall-clock timeout. Returns done().
  bool run_until(const std::function<bool()>& done, double timeout_ns);
  /// Loops for the given wall-clock duration.
  void run_for(double duration_ns);

  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  obs::Counter& packets_sent = metrics_.counter("packets_sent");
  obs::Counter& packets_received = metrics_.counter("packets_received");
  obs::Counter& bytes_sent = metrics_.counter("bytes_sent");
  obs::Counter& bytes_received = metrics_.counter("bytes_received");
  /// sendto failed or no peer is configured.
  obs::Counter& send_errors = metrics_.counter("send_errors");
  /// Datagram arrived but was not a well-formed NetCL wire packet.
  obs::Counter& deserialize_errors = metrics_.counter("deserialize_errors");
  obs::Counter& timers_fired = metrics_.counter("timers_fired");

 private:
  struct Timer {
    double due_ns;
    std::uint64_t sequence;  // FIFO tiebreaker
    std::function<void()> callback;
    bool operator>(const Timer& other) const {
      return std::tie(due_ns, sequence) > std::tie(other.due_ns, other.sequence);
    }
  };

  void fire_due_timers();
  void drain_socket();

  int fd_ = -1;
  std::string error_;
  std::uint16_t local_port_ = 0;
  sockaddr_in peer_{};
  bool has_peer_ = false;
  Receiver receiver_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::uint64_t timer_sequence_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace netcl::net
