// Transport over real POSIX UDP sockets (the paper's §V-B backend shape).
//
// One socket, one peer (the attached device daemon), a poll(2)-based event
// loop, and wall-clock one-shot timers. The owner drives the loop
// explicitly (poll_once / run_for / run_until) — like fabric.run(), there
// is no background thread; receive callbacks and timers fire on the
// calling thread.
//
// v2 (ISSUE 5): the data plane is batched and allocation-free. send_batch
// serializes into BufferPool-recycled wire buffers and moves up to
// `max_syscall_batch` datagrams per sendmmsg(2) call (resuming at the
// right offset on partial completion); the receive side drains the socket
// with recvmmsg(2) into reused buffers and hands whole bursts to the
// batch receiver. On platforms without the mmsg syscalls a sendto/recv
// loop is selected at configure time (NETCL_HAVE_MMSG) — same semantics,
// one syscall per datagram.
//
// Equal-sized runs within a batch (the common case: a window of AGG
// contributions is one wire size) additionally ride UDP GSO
// (UDP_SEGMENT): the run is handed to the kernel as one super-datagram
// that traverses the network stack once and is split into ordinary
// datagrams at the bottom, so receivers see byte-identical traffic.
// sendmmsg amortizes only syscall entry; GSO amortizes the whole
// per-datagram stack cost, which is where loopback/UDP time actually
// goes. Availability is probed at configure time (NETCL_HAVE_UDP_GSO)
// and at runtime: the first sendmsg failure disables GSO for the
// transport and the same packets are resent through sendmmsg.
//
// Metrics live in an obs registry (default name "udp"): packet/byte
// send+receive counters, syscall counters (the bench's syscalls/packet
// numerator), deserialize failures, and timer fires, so obs::dump() shows
// the real-network path next to the fabric's counters.
#pragma once

#include <netinet/in.h>

#include <chrono>
#include <queue>
#include <string>
#include <vector>

#include "net/buffer_pool.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace netcl::net {

class UdpTransport final : public Transport {
  // Declared before the public counter references below so it is
  // constructed first.
  obs::MetricsRegistry metrics_;

 public:
  /// Ceiling on datagrams per mmsg syscall (the kernel-side mmsghdr
  /// arrays are stack-allocated at this size).
  static constexpr std::size_t kMaxBatch = 32;

  struct Options {
    /// Local UDP port to bind (0 = kernel-assigned; read local_port()).
    std::uint16_t bind_port = 0;
    /// Peer (IPv4 literal) all sends go to; may be set later via set_peer.
    std::string peer_host = "127.0.0.1";
    std::uint16_t peer_port = 0;
    /// Registry name; same-named registries merge additively in obs::dump().
    std::string metrics_name = "udp";
    /// Datagrams moved per sendmmsg/recvmmsg call, clamped to
    /// [1, kMaxBatch]. 1 degenerates to the per-packet path; small values
    /// exercise the partial-completion resume logic in tests. Also caps
    /// the segments per GSO super-datagram.
    std::size_t max_syscall_batch = kMaxBatch;
    /// Allow the UDP_SEGMENT fast path for equal-sized runs (when the
    /// platform has it). Off forces the plain sendmmsg path.
    bool allow_gso = true;
  };

  // A delegating default ctor rather than `= {}` on the Options overload:
  // default arguments for a nested aggregate with member initializers are
  // ill-formed inside the enclosing class (GCC enforces this).
  UdpTransport() : UdpTransport(Options()) {}
  explicit UdpTransport(const Options& options);
  ~UdpTransport() override;
  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// False when socket creation/binding failed (error() explains).
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
  void set_peer(const std::string& host, std::uint16_t port);

  // --- Transport ------------------------------------------------------------
  [[nodiscard]] const char* kind() const override { return "udp"; }
  void send_batch(std::span<sim::Packet> packets) override;
  void schedule(double delay_ns, std::function<void()> callback) override;
  /// Wall-clock ns since this transport was constructed.
  [[nodiscard]] double now_ns() const override;

  // --- event loop -----------------------------------------------------------
  /// One loop turn: fires due timers, waits up to `timeout_ms` (clamped to
  /// the next timer deadline) for datagrams, drains and dispatches them.
  void poll_once(int timeout_ms);
  /// Loops until `done()` or the wall-clock timeout. Returns done().
  bool run_until(const std::function<bool()>& done, double timeout_ns);
  /// Loops for the given wall-clock duration.
  void run_for(double duration_ns);

  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] BufferPool& buffer_pool() { return pool_; }
  obs::Counter& packets_sent = metrics_.counter("packets_sent");
  obs::Counter& packets_received = metrics_.counter("packets_received");
  obs::Counter& bytes_sent = metrics_.counter("bytes_sent");
  obs::Counter& bytes_received = metrics_.counter("bytes_received");
  /// Transmit-side syscalls (sendmmsg or sendto). With batching this grows
  /// ~1/32 as fast as packets_sent; that ratio is the bench's headline.
  obs::Counter& send_syscalls = metrics_.counter("send_syscalls");
  /// Receive-side syscalls (recvmmsg or recv), including the final empty
  /// probe that observes EAGAIN.
  obs::Counter& recv_syscalls = metrics_.counter("recv_syscalls");
  /// Equal-sized runs sent as one UDP_SEGMENT super-datagram (each also
  /// counts once in send_syscalls).
  obs::Counter& gso_batches = metrics_.counter("gso_batches");
  /// sendto/sendmmsg failed or no peer is configured.
  obs::Counter& send_errors = metrics_.counter("send_errors");
  /// Datagram arrived but was not a well-formed NetCL wire packet.
  obs::Counter& deserialize_errors = metrics_.counter("deserialize_errors");
  obs::Counter& timers_fired = metrics_.counter("timers_fired");

 private:
  struct Timer {
    double due_ns;
    std::uint64_t sequence;  // FIFO tiebreaker
    std::function<void()> callback;
    bool operator>(const Timer& other) const {
      return std::tie(due_ns, sequence) > std::tie(other.due_ns, other.sequence);
    }
  };

  void fire_due_timers();
  void drain_socket();
  void transmit_wire_batch();
  void ensure_rx_storage();
  /// Length of the equal-sized run of tx_wire_ buffers starting at
  /// `offset`, capped to what one GSO super-datagram can carry.
  [[nodiscard]] std::size_t equal_size_run(std::size_t offset) const;
  /// Sends tx_wire_[offset, offset+run) as one UDP_SEGMENT sendmsg.
  /// False when the kernel refused — the caller falls back to sendmmsg.
  bool transmit_gso_run(std::size_t offset, std::size_t run);

  int fd_ = -1;
  std::string error_;
  std::uint16_t local_port_ = 0;
  sockaddr_in peer_{};
  bool has_peer_ = false;
  std::size_t max_syscall_batch_ = kMaxBatch;
  /// Set in the constructor when compiled in and allowed by Options;
  /// cleared for good on the first sendmsg the kernel rejects.
  bool gso_enabled_ = false;
  BufferPool pool_;
  /// Serialized wire buffers for the batch in flight; buffers are borrowed
  /// from pool_ for the duration of one send_batch call.
  std::vector<std::vector<std::uint8_t>> tx_wire_;
  /// Receive staging, allocated lazily on first drain (64 KiB per slot):
  /// raw datagram bytes and the decoded packets handed to deliver(). Both
  /// are reused every cycle, so steady-state receive allocates nothing.
  std::vector<std::vector<std::uint8_t>> rx_buffers_;
  std::vector<sim::Packet> rx_batch_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::uint64_t timer_sequence_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace netcl::net
