#include "net/wire.hpp"

#include <algorithm>

namespace netcl::net {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(std::span<const std::uint8_t> data, std::size_t pos) {
  return static_cast<std::uint16_t>(data[pos] |
                                    (static_cast<std::uint16_t>(data[pos + 1]) << 8));
}

}  // namespace

void serialize_packet(const sim::Packet& packet, std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(kWireHeaderBytes + packet.payload.size() +
              (packet.telemetry.requested
                   ? sim::trailer_bytes(packet.telemetry.hops.size())
                   : 0));
  // push_back rather than a range insert: GCC 12's -Wstringop-overflow
  // misfires on inserting a fixed array into a freshly reserved vector.
  for (const std::uint8_t b : kWireMagic) out.push_back(b);
  put_u16(out, packet.netcl.src);
  put_u16(out, packet.netcl.dst);
  put_u16(out, packet.netcl.from);
  put_u16(out, packet.netcl.to);
  out.push_back(packet.netcl.comp);
  // The flag bit and the trailer travel together: a receiver decides
  // whether to parse a trailer purely from the header it just read.
  out.push_back(packet.telemetry.requested
                    ? static_cast<std::uint8_t>(packet.netcl.flags | sim::kFlagTelemetry)
                    : static_cast<std::uint8_t>(packet.netcl.flags & ~sim::kFlagTelemetry));
  put_u16(out, static_cast<std::uint16_t>(packet.payload.size()));
  out.insert(out.end(), packet.payload.begin(), packet.payload.end());
  if (packet.telemetry.requested) sim::append_trailer(out, packet.telemetry);
}

std::vector<std::uint8_t> serialize_packet(const sim::Packet& packet) {
  std::vector<std::uint8_t> out;
  serialize_packet(packet, out);
  return out;
}

runtime::Error deserialize_packet_e(std::span<const std::uint8_t> data, sim::Packet& out) {
  using runtime::Error;
  using runtime::ErrorKind;
  if (data.size() < kWireHeaderBytes) {
    return {ErrorKind::kMalformed,
            "datagram shorter than wire header (" + std::to_string(data.size()) + " bytes)"};
  }
  for (std::size_t i = 0; i < 3; ++i) {
    if (data[i] != kWireMagic[i]) return {ErrorKind::kMalformed, "bad wire magic"};
  }
  if (data[3] != kWireVersion) {
    // Fail closed on any unknown version rather than guess at its layout.
    return {ErrorKind::kMalformed,
            "unsupported wire version " + std::to_string(data[3])};
  }
  out.has_netcl = true;
  out.netcl.src = get_u16(data, 4);
  out.netcl.dst = get_u16(data, 6);
  out.netcl.from = get_u16(data, 8);
  out.netcl.to = get_u16(data, 10);
  out.netcl.comp = data[12];
  out.netcl.flags = data[13];
  out.netcl.len = get_u16(data, 14);
  if (kWireHeaderBytes + out.netcl.len > data.size()) {
    return {ErrorKind::kMalformed, "header length overruns datagram"};
  }
  out.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(kWireHeaderBytes),
                     data.begin() + static_cast<std::ptrdiff_t>(kWireHeaderBytes) +
                         out.netcl.len);
  out.telemetry = sim::TelemetryRecord{};
  const std::span<const std::uint8_t> tail = data.subspan(kWireHeaderBytes + out.netcl.len);
  if ((out.netcl.flags & sim::kFlagTelemetry) != 0) {
    // The trailer occupies everything after the payload; a truncated or
    // oversized one rejects the whole datagram (no partial stamps).
    return sim::parse_trailer_e(tail, out.telemetry);
  }
  if (!tail.empty()) {
    // Slack after the payload with no trailer flag is internally
    // inconsistent — the sender and this receiver would disagree about
    // what those bytes are. Reject rather than silently drop them.
    return {ErrorKind::kMalformed,
            std::to_string(tail.size()) + " trailing bytes after payload"};
  }
  return {};
}

bool deserialize_packet(std::span<const std::uint8_t> data, sim::Packet& out) {
  return deserialize_packet_e(data, out).ok();
}

void ByteWriter::u16(std::uint16_t v) {
  for (int b = 0; b < 2; ++b) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int b = 0; b < 4; ++b) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int b = 0; b < 8; ++b) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

void ByteWriter::str(const std::string& s) {
  u16(static_cast<std::uint16_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void ByteWriter::u64_vec(const std::vector<std::uint64_t>& values) {
  u16(static_cast<std::uint16_t>(values.size()));
  for (const std::uint64_t v : values) u64(v);
}

bool ByteReader::take(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  if (!take(2)) return 0;
  std::uint16_t v = 0;
  for (int b = 0; b < 2; ++b) v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * b);
  return v;
}

std::uint32_t ByteReader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int b = 0; b < 4; ++b) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * b);
  return v;
}

std::uint64_t ByteReader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * b);
  return v;
}

std::string ByteReader::str() {
  const std::uint16_t size = u16();
  if (!take(size)) return {};
  std::string s(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                data_.begin() + static_cast<std::ptrdiff_t>(pos_) + size);
  pos_ += size;
  return s;
}

std::vector<std::uint64_t> ByteReader::u64_vec() {
  const std::uint16_t count = u16();
  std::vector<std::uint64_t> values;
  // Reserve only what the remaining bytes could actually hold — a hostile
  // count field must not size an allocation.
  values.reserve(std::min<std::size_t>(count, remaining() / 8));
  for (std::uint16_t i = 0; i < count && ok_; ++i) values.push_back(u64());
  return values;
}

std::string ByteReader::bytes_str(std::size_t n) {
  if (!take(n)) return {};
  std::string s(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                data_.begin() + static_cast<std::ptrdiff_t>(pos_) + static_cast<std::ptrdiff_t>(n));
  pos_ += n;
  return s;
}

}  // namespace netcl::net
