// The NetCL on-the-wire format (paper Fig. 10) and the little-endian
// primitive codec the control-plane protocol is built from.
//
// A NetCL-over-UDP datagram is MAGIC | netcl header | kernel-arg payload
// [| INT trailer when kFlagTelemetry is set — sim/telemetry.hpp];
// ETH/IP/UDP framing is the kernel's job in the real stack (the simulator
// models those 42 bytes in Packet::wire_bytes()). One serializer is shared
// by UdpTransport and the netcl-swd daemon so host and device cannot drift
// apart, mirroring how encode_args/decode_args already pin the payload
// layout.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "sim/packet.hpp"

namespace netcl::net {

/// First bytes of every NetCL datagram: "NCL" + wire-format version.
inline constexpr std::uint8_t kWireMagic[4] = {'N', 'C', 'L', 1};
/// Magic + NetCL shim header.
inline constexpr std::size_t kWireHeaderBytes = 4 + sim::NetclHeader::kWireBytes;

/// Serializes a NetCL packet into one datagram payload, appending to
/// `out` (cleared first). Writing into caller storage lets a BufferPool
/// recycle the vector's capacity across packets — the allocation-free
/// fast path (ISSUE 5).
void serialize_packet(const sim::Packet& packet, std::vector<std::uint8_t>& out);

/// Convenience form returning a fresh buffer.
[[nodiscard]] std::vector<std::uint8_t> serialize_packet(const sim::Packet& packet);

/// Parses a datagram. Returns false (leaving `out` unspecified) on bad
/// magic/version, truncation, or a header length exceeding the datagram.
[[nodiscard]] bool deserialize_packet(std::span<const std::uint8_t> data, sim::Packet& out);

/// Little-endian primitive serialization (control-plane requests,
/// responses, and anything else that needs a byte layout).
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// u16 length + raw bytes.
  void str(const std::string& s);
  /// u16 count + values.
  void u64_vec(const std::vector<std::uint64_t>& values);
  /// Raw bytes, no length prefix (splicing a pre-encoded body).
  void raw(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Mirror of ByteWriter. Reads past the end poison the reader (ok()
/// becomes false and every subsequent read returns zero values), so
/// callers can decode a whole message and check ok() once.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::string str();
  std::vector<std::uint64_t> u64_vec();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

 private:
  [[nodiscard]] bool take(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace netcl::net
