// The NetCL on-the-wire format (paper Fig. 10) and the little-endian
// primitive codec the control-plane protocol is built from.
//
// A NetCL-over-UDP datagram is MAGIC | netcl header | kernel-arg payload
// [| INT trailer when kFlagTelemetry is set — sim/telemetry.hpp];
// ETH/IP/UDP framing is the kernel's job in the real stack (the simulator
// models those 42 bytes in Packet::wire_bytes()). One serializer is shared
// by UdpTransport and the netcl-swd daemon so host and device cannot drift
// apart, mirroring how encode_args/decode_args already pin the payload
// layout.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "runtime/error.hpp"
#include "sim/packet.hpp"

namespace netcl::net {

/// Wire-format version, carried as the fourth magic byte. A receiver that
/// sees any other value rejects the datagram (kMalformed) — future format
/// changes fail closed instead of being misparsed (ISSUE 8).
inline constexpr std::uint8_t kWireVersion = 1;
/// First bytes of every NetCL datagram: "NCL" + wire-format version.
inline constexpr std::uint8_t kWireMagic[4] = {'N', 'C', 'L', kWireVersion};
/// Magic + NetCL shim header.
inline constexpr std::size_t kWireHeaderBytes = 4 + sim::NetclHeader::kWireBytes;

/// Serializes a NetCL packet into one datagram payload, appending to
/// `out` (cleared first). Writing into caller storage lets a BufferPool
/// recycle the vector's capacity across packets — the allocation-free
/// fast path (ISSUE 5).
void serialize_packet(const sim::Packet& packet, std::vector<std::uint8_t>& out);

/// Convenience form returning a fresh buffer.
[[nodiscard]] std::vector<std::uint8_t> serialize_packet(const sim::Packet& packet);

/// Parses a datagram. Total over arbitrary bytes (ISSUE 8): any input —
/// truncated, oversized, internally inconsistent — yields a typed
/// kMalformed error (leaving `out` unspecified), never UB or an overread.
/// The datagram must be exactly header + payload [+ trailer]; trailing
/// slack is rejected rather than silently ignored, so two observers can
/// never disagree about what a datagram meant.
[[nodiscard]] runtime::Error deserialize_packet_e(std::span<const std::uint8_t> data,
                                                  sim::Packet& out);

/// Bool-returning convenience wrapper around deserialize_packet_e.
[[nodiscard]] bool deserialize_packet(std::span<const std::uint8_t> data, sim::Packet& out);

/// Little-endian primitive serialization (control-plane requests,
/// responses, and anything else that needs a byte layout).
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// u16 length + raw bytes.
  void str(const std::string& s);
  /// u16 count + values.
  void u64_vec(const std::vector<std::uint64_t>& values);
  /// Raw bytes, no length prefix (splicing a pre-encoded body).
  void raw(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Mirror of ByteWriter. Reads past the end poison the reader (ok()
/// becomes false and every subsequent read returns zero values), so
/// callers can decode a whole message and check ok() once.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::string str();
  std::vector<std::uint64_t> u64_vec();
  /// `n` raw bytes as a string (no length prefix — for bodies whose length
  /// was decoded separately). Poisons the reader if fewer remain, so a
  /// hostile length field can never trigger an allocation past the frame.
  std::string bytes_str(std::size_t n);

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
  /// Bytes not yet consumed — validate untrusted length fields against
  /// this before allocating.
  [[nodiscard]] std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

 private:
  [[nodiscard]] bool take(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace netcl::net
