#include "obs/flightrec.hpp"

#include <csignal>
#include <cstdlib>
#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace netcl::obs {

namespace {

/// SIGUSR2 latch. The handler must be async-signal-safe, so it only flips
/// this lock-free flag; a poll loop performs the actual dump later.
std::atomic<bool> g_signal_dump_requested{false};

void handle_sigusr2(int) { FlightRecorder::request_signal_dump(); }

/// Filename-safe version of a dump reason ("retries exhausted" →
/// "retries_exhausted").
std::string sanitize_reason(std::string_view reason) {
  std::string out;
  out.reserve(reason.size());
  for (char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "dump";
  return out;
}

}  // namespace

const char* to_string(FlightKind kind) {
  switch (kind) {
    case FlightKind::kNone: return "none";
    case FlightKind::kBatchSend: return "batch_send";
    case FlightKind::kBatchRecv: return "batch_recv";
    case FlightKind::kGsoSend: return "gso_send";
    case FlightKind::kSendmmsg: return "sendmmsg";
    case FlightKind::kSendPartial: return "send_partial";
    case FlightKind::kSendError: return "send_error";
    case FlightKind::kPollCycle: return "poll_cycle";
    case FlightKind::kControlRequest: return "control_request";
    case FlightKind::kControlRetry: return "control_retry";
    case FlightKind::kControlBackoff: return "control_backoff";
    case FlightKind::kControlReconnect: return "control_reconnect";
    case FlightKind::kRetransmit: return "retransmit";
    case FlightKind::kRetriesExhausted: return "retries_exhausted";
    case FlightKind::kHeartbeatOk: return "heartbeat_ok";
    case FlightKind::kHeartbeatMiss: return "heartbeat_miss";
    case FlightKind::kDeviceDown: return "device_down";
    case FlightKind::kDeviceUp: return "device_up";
    case FlightKind::kGenerationChange: return "generation_change";
    case FlightKind::kFallback: return "fallback";
    case FlightKind::kQueueFlush: return "queue_flush";
    case FlightKind::kResync: return "resync";
    case FlightKind::kDump: return "dump";
    case FlightKind::kKernelLoad: return "kernel_load";
    case FlightKind::kKernelUnload: return "kernel_unload";
    case FlightKind::kKernelSwap: return "kernel_swap";
    case FlightKind::kUnknownComputation: return "unknown_computation";
    case FlightKind::kMalformedDatagram: return "malformed_datagram";
    case FlightKind::kPolicerShed: return "policer_shed";
    case FlightKind::kQueueShed: return "queue_shed";
    case FlightKind::kControlMalformed: return "control_malformed";
    case FlightKind::kSlowReadReap: return "slow_read_reap";
    case FlightKind::kSloFastBurn: return "slo_fast_burn";
    case FlightKind::kSloRecovered: return "slo_recovered";
    case FlightKind::kProfileDump: return "profile_dump";
  }
  return "unknown";
}

std::uint64_t flight_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One writer (the owning thread), readers only under the Impl mutex at
/// snapshot time. `head` counts events ever written; slot = seq & mask.
struct FlightRecorder::Ring {
  std::atomic<std::uint64_t> head{0};
  std::uint64_t last_read = 0;  // guarded by Impl::mutex
  std::uint64_t dropped = 0;    // guarded by Impl::mutex
  std::uint16_t id = 0;
  FlightEvent slots[kRingCapacity];
};

struct FlightRecorder::Impl {
  std::mutex mutex;
  std::vector<std::unique_ptr<Ring>> rings;  // never shrinks; ids are stable
  std::string label = "host";
};

FlightRecorder::FlightRecorder() : impl_(new Impl) {
  if (const char* env = std::getenv("NETCL_FLIGHT"); env != nullptr) {
    enabled_.store(!(env[0] == '0' && env[1] == '\0'), std::memory_order_relaxed);
  }
}

FlightRecorder& FlightRecorder::instance() {
  // Leaked on purpose: instrumentation sites may fire during static
  // destruction (registry teardown, transport destructors) and must never
  // touch a destroyed recorder.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::Ring& FlightRecorder::ring_for_this_thread() {
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto owned = std::make_unique<Ring>();
    owned->id = static_cast<std::uint16_t>(impl_->rings.size());
    ring = owned.get();
    impl_->rings.push_back(std::move(owned));
  }
  return *ring;
}

void FlightRecorder::record(FlightKind kind, std::uint64_t a, std::uint64_t b) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring& ring = ring_for_this_thread();
  const std::uint64_t seq = ring.head.load(std::memory_order_relaxed);
  FlightEvent& slot = ring.slots[seq & (kRingCapacity - 1)];
  slot.ts_ns = flight_now_ns();
  slot.kind = static_cast<std::uint16_t>(kind);
  slot.ring = ring.id;
  slot.seq = static_cast<std::uint32_t>(seq);
  slot.a = a;
  slot.b = b;
  // Publish the slot. Release pairs with the acquire in snapshot(); on
  // x86 this compiles to a plain store — the "single atomic bump".
  ring.head.store(seq + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot(std::uint64_t window_ns) const {
  const std::uint64_t now = flight_now_ns();
  const std::uint64_t cutoff = now > window_ns ? now - window_ns : 0;
  std::vector<FlightEvent> out;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& owned : impl_->rings) {
    Ring& ring = *owned;
    const std::uint64_t h1 = ring.head.load(std::memory_order_acquire);
    const std::uint64_t begin = h1 > kRingCapacity ? h1 - kRingCapacity : 0;
    const std::size_t first = out.size();
    for (std::uint64_t s = begin; s < h1; ++s) {
      out.push_back(ring.slots[s & (kRingCapacity - 1)]);
    }
    // The writer may have lapped us mid-copy; any sequence older than
    // h2 - capacity was (possibly) overwritten while we read it, so the
    // copy is discarded rather than risk a torn event.
    const std::uint64_t h2 = ring.head.load(std::memory_order_acquire);
    const std::uint64_t valid_begin = h2 > kRingCapacity ? h2 - kRingCapacity : 0;
    std::size_t keep = first;
    for (std::uint64_t s = begin; s < h1; ++s) {
      const FlightEvent& event = out[first + static_cast<std::size_t>(s - begin)];
      if (s < valid_begin || event.ts_ns < cutoff) continue;
      out[keep++] = event;
    }
    out.resize(keep);
    // Wrap accounting: everything that scrolled past unread since the
    // last snapshot is lost, counted, and never blocks the writer.
    const std::uint64_t unread = h2 - ring.last_read;
    if (unread > kRingCapacity) ring.dropped += unread - kRingCapacity;
    ring.last_read = h2;
  }
  std::stable_sort(out.begin(), out.end(), [](const FlightEvent& x, const FlightEvent& y) {
    if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
    if (x.ring != y.ring) return x.ring < y.ring;
    return x.seq < y.seq;
  });
  return out;
}

std::uint64_t FlightRecorder::dropped_events() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& owned : impl_->rings) {
    const Ring& ring = *owned;
    total += ring.dropped;
    const std::uint64_t unread =
        ring.head.load(std::memory_order_acquire) - ring.last_read;
    if (unread > kRingCapacity) total += unread - kRingCapacity;
  }
  return total;
}

std::size_t FlightRecorder::ring_count() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->rings.size();
}

void FlightRecorder::set_process_label(std::string label) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->label = std::move(label);
}

std::string FlightRecorder::process_label() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->label;
}

namespace {

/// (aligned timestamp, stream index, event) — the merged timeline unit.
struct MergedEvent {
  std::int64_t ts_ns = 0;
  std::size_t stream = 0;
  FlightEvent event;
};

void write_event_object(JsonWriter& w, const MergedEvent& m, const std::string& process) {
  w.begin_object();
  w.key("ts_ns");
  w.value(m.ts_ns);
  w.key("process");
  w.value(process);
  w.key("ring");
  w.value(static_cast<std::uint64_t>(m.event.ring));
  w.key("seq");
  w.value(static_cast<std::uint64_t>(m.event.seq));
  w.key("kind");
  w.value(to_string(static_cast<FlightKind>(m.event.kind)));
  w.key("a");
  w.value(m.event.a);
  w.key("b");
  w.value(m.event.b);
  w.end_object();
}

}  // namespace

bool FlightRecorder::write_postmortem(const std::string& path_base,
                                      const std::vector<FlightStream>& extra_streams,
                                      std::uint64_t window_ns) const {
  // Stream 0 is always the local recorder, already on the flight clock.
  std::vector<std::string> names;
  names.push_back(process_label());
  std::vector<MergedEvent> merged;
  for (const FlightEvent& event : snapshot(window_ns)) {
    merged.push_back({static_cast<std::int64_t>(event.ts_ns), 0, event});
  }
  for (std::size_t i = 0; i < extra_streams.size(); ++i) {
    const FlightStream& stream = extra_streams[i];
    names.push_back(stream.process.empty() ? "stream" + std::to_string(i + 1)
                                           : stream.process);
    for (const FlightEvent& event : stream.events) {
      const double aligned = static_cast<double>(event.ts_ns) + stream.offset_ns;
      merged.push_back({static_cast<std::int64_t>(aligned), i + 1, event});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const MergedEvent& x, const MergedEvent& y) {
                     if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
                     if (x.stream != y.stream) return x.stream < y.stream;
                     return x.event.seq < y.event.seq;
                   });

  // JSONL: one object per line, already clock-aligned and merged.
  {
    std::ofstream file(path_base + ".jsonl", std::ios::trunc);
    if (!file) return false;
    for (const MergedEvent& m : merged) {
      JsonWriter w;
      write_event_object(w, m, names[m.stream]);
      file << std::move(w).str() << '\n';
    }
    if (!file.good()) return false;
  }

  // Chrome trace: instant events, one pid lane per process stream, one
  // tid per ring, so chrome://tracing / Perfetto shows host and daemon
  // activity side by side on one timeline.
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (std::size_t i = 0; i < names.size(); ++i) {
    w.begin_object();
    w.key("ph");
    w.value("M");
    w.key("name");
    w.value("process_name");
    w.key("pid");
    w.value(static_cast<std::uint64_t>(i));
    w.key("args");
    w.begin_object();
    w.key("name");
    w.value(names[i]);
    w.end_object();
    w.end_object();
  }
  for (const MergedEvent& m : merged) {
    w.begin_object();
    w.key("name");
    w.value(to_string(static_cast<FlightKind>(m.event.kind)));
    w.key("ph");
    w.value("i");
    w.key("s");
    w.value("t");
    w.key("ts");
    w.value(static_cast<double>(m.ts_ns) / 1000.0);  // trace ts is in µs
    w.key("pid");
    w.value(static_cast<std::uint64_t>(m.stream));
    w.key("tid");
    w.value(static_cast<std::uint64_t>(m.event.ring));
    w.key("args");
    w.begin_object();
    w.key("a");
    w.value(m.event.a);
    w.key("b");
    w.value(m.event.b);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream trace(path_base + ".trace.json", std::ios::trunc);
  if (!trace) return false;
  trace << std::move(w).str() << '\n';
  return trace.good();
}

std::string FlightRecorder::trigger_dump(std::string_view reason,
                                         const std::vector<FlightStream>& extra_streams) {
  if (!enabled()) {
    dumps_suppressed_.fetch_add(1, std::memory_order_relaxed);
    return "";
  }
  const std::uint64_t now = flight_now_ns();
  std::uint64_t last = last_dump_ns_.load(std::memory_order_relaxed);
  // One writer wins per rate-limit window; a burst of anomalies (a DOWN
  // storm, retries exhausting across many slots) yields one postmortem.
  do {
    if (last != 0 && now - last < kDumpIntervalNs) {
      dumps_suppressed_.fetch_add(1, std::memory_order_relaxed);
      return "";
    }
  } while (!last_dump_ns_.compare_exchange_weak(last, now, std::memory_order_relaxed));

  const std::uint64_t ordinal = dump_seq_.fetch_add(1, std::memory_order_relaxed);
  record(FlightKind::kDump, ordinal, reason.size());
  const char* dir = std::getenv("NETCL_FLIGHT_DIR");
  const std::string base = std::string(dir != nullptr ? dir : ".") + "/flightdump_" +
                           process_label() + "_" + sanitize_reason(reason) + "_" +
                           std::to_string(ordinal);
  if (!write_postmortem(base, extra_streams)) return "";
  dumps_written_.fetch_add(1, std::memory_order_relaxed);
  registry().counter("flight.dumps").inc();
  registry().gauge("flight.dropped_events").set(static_cast<double>(dropped_events()));
  return base;
}

void FlightRecorder::install_signal_handler() {
  struct sigaction action = {};
  action.sa_handler = &handle_sigusr2;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGUSR2, &action, nullptr);
}

void FlightRecorder::request_signal_dump() {
  g_signal_dump_requested.store(true, std::memory_order_relaxed);
}

bool FlightRecorder::consume_signal_dump() {
  return g_signal_dump_requested.exchange(false, std::memory_order_relaxed);
}

}  // namespace netcl::obs
