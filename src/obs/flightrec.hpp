// Always-on flight recorder (ISSUE 6): allocation-free event journal with
// anomaly-triggered postmortem dumps.
//
// Every hot-path layer (UdpTransport batches, SwdServer poll cycles, the
// control plane's retry/backoff machinery, RetransmitWindow timers, the
// FailureDetector/HostRuntime state machines) stamps compact fixed-size
// binary events into per-thread SPSC ring buffers. Recording is one clock
// read, a 32-byte store, and a release bump of the ring head — no
// allocation, no locks, no formatting — so the recorder can stay on in
// production (bench/bench_obs_overhead.cpp gates the cost at ≤5% pps on
// the batched loopback path). When a ring wraps before anyone reads it the
// oldest events are overwritten and counted in dropped_events(); the hot
// path never blocks.
//
// Dumps are *triggered*, not periodic: a DOWN transition, an exhausted
// retry budget, fallback entry, SIGUSR2, the kFlightDump control op, or
// the `d` key in ncl-top all snapshot the last N seconds from every ring
// into a merged, timestamp-sorted JSONL + Chrome-trace pair. A dump can
// splice in streams from other processes (the netcl-swd daemon ships its
// rings over kFlightDump); per-stream clock offsets from
// obs::align_clocks() land every stream on the local flight clock, so the
// postmortem shows host sends, daemon polls, heartbeat misses, and the
// DOWN transition in one causally ordered timeline.
//
// The per-thread ring-ownership shape here is deliberately the one the
// sharded runtime (ROADMAP #1) will inherit: one writer per ring, readers
// only at snapshot time.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace netcl::obs {

/// What happened. Values are wire-visible (the kFlightDump control op
/// ships them as u16), so only append — never renumber.
enum class FlightKind : std::uint16_t {
  kNone = 0,
  // UdpTransport data plane.
  kBatchSend = 1,     // a=packets requested, b=packets sent
  kBatchRecv = 2,     // a=packets delivered this drain
  kGsoSend = 3,       // a=segments in the GSO super-datagram, b=payload bytes
  kSendmmsg = 4,      // a=datagrams accepted by sendmmsg, b=batch size
  kSendPartial = 5,   // a=accepted so far, b=remaining (EAGAIN/partial completion)
  kSendError = 6,     // a=errno
  // netcl-swd daemon.
  kPollCycle = 7,     // a=fds ready, b=datagrams drained this cycle
  // Control plane (net::ControlClient).
  kControlRequest = 8,    // a=ControlOp, b=request payload bytes
  kControlRetry = 9,      // a=ControlOp, b=attempt number
  kControlBackoff = 10,   // a=backoff ms, b=attempt number
  kControlReconnect = 11, // a=1 on success, 0 on failure
  // runtime::RetransmitWindow.
  kRetransmit = 12,        // a=slot, b=attempt number
  kRetriesExhausted = 13,  // a=slot, b=attempts spent
  // runtime::FailureDetector / HostRuntime.
  kHeartbeatOk = 14,      // a=device generation
  kHeartbeatMiss = 15,    // a=consecutive misses, b=miss threshold
  kDeviceDown = 16,       // a=consecutive misses, b=last known generation
  kDeviceUp = 17,         // a=device generation, b=outage duration ns
  kGenerationChange = 18, // a=old generation, b=new generation
  kFallback = 19,         // a=FallbackPolicy, b=queued packets
  kQueueFlush = 20,       // a=packets flushed, b=packets dropped
  kResync = 21,           // a=packets replayed, b=new generation
  // The recorder itself.
  kDump = 22,  // a=trigger ordinal (see FlightRecorder::trigger_dump)
  // Multi-tenant kernel lifecycle (ISSUE 7).
  kKernelLoad = 23,           // a=tenant id, b=stages used
  kKernelUnload = 24,         // a=tenant id
  kKernelSwap = 25,           // a=tenant id, b=stages used (new program)
  kUnknownComputation = 26,   // a=computation id, b=device id
  // Hostile-wire hardening and overload control (ISSUE 8).
  kMalformedDatagram = 27,    // a=source IPv4 (host order), b=source port
  kPolicerShed = 28,          // a=tenant id, b=packets shed from it so far
  kQueueShed = 29,            // a=tenant id of the dropped-oldest packet, b=queue capacity
  kControlMalformed = 30,     // a=buffered bytes when the stream went bad
  kSlowReadReap = 31,         // a=buffered bytes of the stalled frame, b=stall seconds
  // Continuous profiling + per-tenant SLOs (ISSUE 9).
  kSloFastBurn = 32,   // a=tenant id, b=short-window burn rate × 100
  kSloRecovered = 33,  // a=tenant id, b=previous state (SloState)
  kProfileDump = 34,   // a=samples captured so far, b=distinct stacks
};

/// Stable snake_case name for JSONL/trace output ("device_down", ...).
[[nodiscard]] const char* to_string(FlightKind kind);

/// One journal entry. 32 bytes, fixed layout; `ring` identifies the
/// writing thread (registration order), `seq` disambiguates events that
/// share a timestamp within a ring.
struct FlightEvent {
  std::uint64_t ts_ns = 0;  // flight_now_ns() at record time
  std::uint16_t kind = 0;   // FlightKind
  std::uint16_t ring = 0;
  std::uint32_t seq = 0;    // low 32 bits of the ring sequence number
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};
static_assert(sizeof(FlightEvent) == 32, "events must stay compact and fixed-size");

/// The flight clock: raw steady_clock nanoseconds. Every process on one
/// machine shares this clock base, and netcl-swd's device_clock_ns() is
/// this clock minus the server epoch — which is what lets kFlightDump
/// responses be re-aligned with obs::align_clocks().
[[nodiscard]] std::uint64_t flight_now_ns();

/// Events from another process (or another recorder), to be merged into a
/// postmortem. `offset_ns` maps the stream's clock onto the local flight
/// clock: local_ts ≈ stream_ts + offset_ns.
struct FlightStream {
  std::string process;
  double offset_ns = 0.0;
  std::vector<FlightEvent> events;
};

/// Process-wide recorder. Threads register a ring lazily on their first
/// record(); rings are never freed (bounded by thread count), so a ring
/// pointer cached in a thread_local stays valid for the process lifetime.
class FlightRecorder {
 public:
  /// Events per ring (power of two). 4096 × 32 B = 128 KiB per thread —
  /// several seconds of history at data-plane event rates.
  static constexpr std::uint64_t kRingCapacity = 1u << 12;
  /// Default postmortem window: the last 30 s of events.
  static constexpr std::uint64_t kDefaultWindowNs = 30ull * 1000 * 1000 * 1000;
  /// Minimum spacing between triggered dumps; a storm of DOWN transitions
  /// produces one postmortem, not hundreds.
  static constexpr std::uint64_t kDumpIntervalNs = 2ull * 1000 * 1000 * 1000;

  /// The singleton. Never destroyed (intentionally leaked) so records from
  /// static-destruction-time code are safe.
  static FlightRecorder& instance();

  /// Hot path. With the recorder disabled this is one relaxed load.
  void record(FlightKind kind, std::uint64_t a = 0, std::uint64_t b = 0);

  /// The recorder is on by default (always-on is the point); the
  /// NETCL_FLIGHT=0 environment variable pre-disables it at process start
  /// and set_enabled() flips it at runtime (bench uses this).
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Label stamped into postmortems as the local stream's process name
  /// ("host", "netcl-swd", ...). Defaults to "host".
  void set_process_label(std::string label);
  [[nodiscard]] std::string process_label() const;

  /// Merged, timestamp-sorted copy of every ring's events from the last
  /// `window_ns` nanoseconds. Lock-free with respect to writers: a slot
  /// overwritten mid-copy is detected by re-reading the ring head and the
  /// torn events are discarded (counted as dropped).
  [[nodiscard]] std::vector<FlightEvent> snapshot(
      std::uint64_t window_ns = kDefaultWindowNs) const;

  /// Cumulative events lost to ring wrap (overwritten before any snapshot
  /// read them) across all rings.
  [[nodiscard]] std::uint64_t dropped_events() const;
  /// Rings registered so far (== distinct recording threads).
  [[nodiscard]] std::size_t ring_count() const;

  /// Writes `<path_base>.jsonl` (one event object per line) and
  /// `<path_base>.trace.json` (chrome://tracing instant events, one pid
  /// lane per process stream, one tid per ring). Extra streams are merged
  /// after applying their clock offsets. Returns false on I/O failure.
  bool write_postmortem(const std::string& path_base,
                        const std::vector<FlightStream>& extra_streams = {},
                        std::uint64_t window_ns = kDefaultWindowNs) const;

  /// Anomaly hook: rate-limited write_postmortem into the directory named
  /// by NETCL_FLIGHT_DIR (default "."), file stem
  /// `flightdump_<label>_<n>`. Returns the path base written, or "" when
  /// suppressed (rate limit / recorder disabled / I/O failure). Safe to
  /// call from any thread; `reason` lands in the kDump event and the
  /// postmortem filename is logged by the caller, not here.
  std::string trigger_dump(std::string_view reason,
                           const std::vector<FlightStream>& extra_streams = {});

  /// Postmortems written / suppressed by trigger_dump (rate limiting).
  [[nodiscard]] std::uint64_t dumps_written() const {
    return dumps_written_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dumps_suppressed() const {
    return dumps_suppressed_.load(std::memory_order_relaxed);
  }

  // -- SIGUSR2 ------------------------------------------------------------
  // The handler only sets an atomic flag (async-signal-safe); some poll
  // loop (netcl-swd's, or any caller's) consumes the flag and performs the
  // dump outside signal context.

  /// Installs the SIGUSR2 handler (idempotent).
  static void install_signal_handler();
  /// What the handler does; exposed for tests (raise-free).
  static void request_signal_dump();
  /// True exactly once per requested signal dump.
  [[nodiscard]] static bool consume_signal_dump();

 private:
  struct Ring;

  FlightRecorder();
  ~FlightRecorder() = delete;

  Ring& ring_for_this_thread();

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> last_dump_ns_{0};
  std::atomic<std::uint64_t> dumps_written_{0};
  std::atomic<std::uint64_t> dumps_suppressed_{0};
  std::atomic<std::uint64_t> dump_seq_{0};

  // Registration/snapshot bookkeeping (cold path only).
  struct Impl;
  Impl* impl_;  // leaked with the singleton
};

/// Convenience: FlightRecorder::instance().record(...). This is the call
/// instrumentation sites use.
inline void flight(FlightKind kind, std::uint64_t a = 0, std::uint64_t b = 0) {
  FlightRecorder::instance().record(kind, a, b);
}

}  // namespace netcl::obs
