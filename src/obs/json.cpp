#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace netcl::obs {

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::begin_object() {
  separate();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  needs_comma_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  separate();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  needs_comma_.pop_back();
  out_ += ']';
}

void JsonWriter::key(std::string_view name) {
  separate();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::value(std::string_view text) {
  separate();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
}

void JsonWriter::value(bool flag) {
  separate();
  out_ += flag ? "true" : "false";
}

void JsonWriter::value(double number) {
  if (!std::isfinite(number)) {
    null();
    return;
  }
  separate();
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.12g", number);
  out_ += buffer;
}

void JsonWriter::value(std::uint64_t number) {
  separate();
  out_ += std::to_string(number);
}

void JsonWriter::value(std::int64_t number) {
  separate();
  out_ += std::to_string(number);
}

void JsonWriter::null() {
  separate();
  out_ += "null";
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- validation --------------------------------------------------------------

namespace {

/// Recursive-descent JSON recognizer over [cursor, end).
struct Validator {
  const char* cursor;
  const char* end;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  void skip_ws() {
    while (cursor != end &&
           (*cursor == ' ' || *cursor == '\t' || *cursor == '\n' || *cursor == '\r')) {
      ++cursor;
    }
  }
  [[nodiscard]] bool consume(char c) {
    if (cursor == end || *cursor != c) return false;
    ++cursor;
    return true;
  }
  [[nodiscard]] bool literal(std::string_view word) {
    if (static_cast<std::size_t>(end - cursor) < word.size()) return false;
    if (std::string_view(cursor, word.size()) != word) return false;
    cursor += word.size();
    return true;
  }

  [[nodiscard]] bool string() {
    if (!consume('"')) return false;
    while (cursor != end) {
      const unsigned char c = static_cast<unsigned char>(*cursor++);
      if (c == '"') return true;
      if (c < 0x20) return false;  // control characters must be escaped
      if (c == '\\') {
        if (cursor == end) return false;
        const char esc = *cursor++;
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (cursor == end || !std::isxdigit(static_cast<unsigned char>(*cursor))) {
              return false;
            }
            ++cursor;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' && esc != 'f' &&
                   esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  [[nodiscard]] bool digits() {
    if (cursor == end || !std::isdigit(static_cast<unsigned char>(*cursor))) return false;
    while (cursor != end && std::isdigit(static_cast<unsigned char>(*cursor))) ++cursor;
    return true;
  }

  [[nodiscard]] bool number() {
    (void)consume('-');
    if (consume('0')) {
      // leading zero may not be followed by more digits
    } else if (!digits()) {
      return false;
    }
    if (consume('.') && !digits()) return false;
    if (cursor != end && (*cursor == 'e' || *cursor == 'E')) {
      ++cursor;
      if (cursor != end && (*cursor == '+' || *cursor == '-')) ++cursor;
      if (!digits()) return false;
    }
    return true;
  }

  [[nodiscard]] bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    bool ok = false;
    if (cursor == end) {
      ok = false;
    } else if (*cursor == '{') {
      ++cursor;
      skip_ws();
      if (consume('}')) {
        ok = true;
      } else {
        while (true) {
          skip_ws();
          if (!string()) return false;
          skip_ws();
          if (!consume(':') || !value()) return false;
          skip_ws();
          if (consume('}')) {
            ok = true;
            break;
          }
          if (!consume(',')) return false;
        }
      }
    } else if (*cursor == '[') {
      ++cursor;
      skip_ws();
      if (consume(']')) {
        ok = true;
      } else {
        while (true) {
          if (!value()) return false;
          skip_ws();
          if (consume(']')) {
            ok = true;
            break;
          }
          if (!consume(',')) return false;
        }
      }
    } else if (*cursor == '"') {
      ok = string();
    } else if (*cursor == 't') {
      ok = literal("true");
    } else if (*cursor == 'f') {
      ok = literal("false");
    } else if (*cursor == 'n') {
      ok = literal("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool is_valid_json(std::string_view text) {
  Validator v{text.data(), text.data() + text.size()};
  if (!v.value()) return false;
  v.skip_ws();
  return v.cursor == v.end;
}

}  // namespace netcl::obs
