// Minimal JSON emission and validation for the observability subsystem.
//
// Everything netcl::obs serializes (metrics dumps, Chrome traces, compile
// reports) goes through JsonWriter so escaping and separator handling live
// in exactly one place. is_valid_json() is a strict RFC 8259 recognizer
// used by tests to assert well-formedness without an external parser.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace netcl::obs {

/// Streaming writer for compact (no-whitespace) JSON. Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("count"); w.value(std::uint64_t{3});
///   w.end_object();
///   std::string text = std::move(w).str();
///
/// The writer tracks separators; callers only sequence begin/key/value
/// calls. Doubles are emitted with enough precision to round-trip; NaN and
/// infinities (not representable in JSON) become null.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(bool flag);
  void value(double number);
  void value(std::uint64_t number);
  void value(std::int64_t number);
  void value(int number) { value(static_cast<std::int64_t>(number)); }
  void null();

  [[nodiscard]] const std::string& str() const& { return out_; }
  [[nodiscard]] std::string str() && { return std::move(out_); }

 private:
  /// Emits the element separator when needed and marks a value as written.
  void separate();

  std::string out_;
  std::vector<bool> needs_comma_;  // one flag per open container
  bool after_key_ = false;
};

/// Escapes `text` for inclusion inside a JSON string literal (no quotes).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Strict recognizer for one complete JSON value (object, array, string,
/// number, true/false/null) with nothing but whitespace around it.
[[nodiscard]] bool is_valid_json(std::string_view text);

}  // namespace netcl::obs
