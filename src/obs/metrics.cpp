#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <vector>

#include "obs/json.hpp"

namespace netcl::obs {

// --- Histogram ---------------------------------------------------------------

int Histogram::bucket_for(double sample) {
  if (!(sample >= 1.0)) return 0;  // negatives, NaN, and [0,1) land in bucket 0
  if (sample >= std::ldexp(1.0, kBuckets - 1)) return kBuckets - 1;
  const int bucket = std::bit_width(static_cast<std::uint64_t>(sample)) - 1;
  return std::min(bucket, kBuckets - 1);
}

double Histogram::bucket_floor(int bucket) {
  return bucket <= 0 ? 0.0 : std::ldexp(1.0, bucket);
}

void Histogram::record(double sample) {
  if (std::isnan(sample)) return;
  if (sample < 0.0) sample = 0.0;
  ++buckets_[bucket_for(sample)];
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() { *this = Histogram(); }

double Histogram::percentile(double p) const { return quantile(p / 100.0); }

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= rank) {
      const double lo = bucket_floor(i);
      const double hi = i + 1 >= kBuckets ? max_ : bucket_floor(i + 1);
      const double fraction =
          std::clamp((rank - before) / static_cast<double>(buckets_[i]), 0.0, 1.0);
      return std::clamp(lo + fraction * (hi - lo), min(), max());
    }
  }
  return max();
}

void Histogram::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("count");
  w.value(count_);
  w.key("sum");
  w.value(sum_);
  w.key("min");
  w.value(min());
  w.key("max");
  w.value(max());
  w.key("mean");
  w.value(mean());
  w.key("p50");
  w.value(percentile(50));
  w.key("p90");
  w.value(percentile(90));
  w.key("p99");
  w.value(percentile(99));
  w.key("buckets");
  w.begin_object();
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f", bucket_floor(i));
    w.key(label);
    w.value(buckets_[i]);
  }
  w.end_object();
  w.end_object();
}

// --- registry bookkeeping ----------------------------------------------------

namespace {

struct GlobalState {
  std::mutex mutex;
  std::vector<MetricsRegistry*> live;
  /// Final values of destroyed registries, merged by registry name.
  std::map<std::string, RegistrySnapshot> retained;
};

GlobalState& state() {
  static GlobalState s;
  return s;
}

void merge_into(RegistrySnapshot& into, const MetricsRegistry& from) {
  for (const auto& [name, counter] : from.counters()) into.counters[name] += counter->value();
  for (const auto& [name, gauge] : from.gauges()) into.gauges[name] = gauge->value();
  for (const auto& [name, histogram] : from.histograms()) {
    into.histograms[name].merge(*histogram);
  }
}

/// retained + everything still live, merged by name. Caller holds s.mutex.
std::map<std::string, RegistrySnapshot> merged_snapshot(GlobalState& s) {
  std::map<std::string, RegistrySnapshot> merged = s.retained;
  for (const MetricsRegistry* live : s.live) merge_into(merged[live->name()], *live);
  return merged;
}

void write_registry_json(JsonWriter& w, const RegistrySnapshot& r) {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : r.counters) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : r.gauges) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, histogram] : r.histograms) {
    w.key(name);
    histogram.write_json(w);
  }
  w.end_object();
  w.end_object();
}

}  // namespace

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    if (uc < 0x21 || uc > 0x7e) return false;  // space, control, non-ASCII
    switch (c) {
      case '{':
      case '}':
      case '"':
      case '\\':
        return false;
      default:
        break;
    }
  }
  return true;
}

std::string sanitize_metric_name(std::string_view name) {
  if (name.empty()) return "_";
  std::string out(name);
  for (char& c : out) {
    const auto uc = static_cast<unsigned char>(c);
    if (uc < 0x21 || uc > 0x7e || c == '{' || c == '}' || c == '"' || c == '\\') c = '_';
  }
  return out;
}

MetricsRegistry::MetricsRegistry(std::string name) : name_(std::move(name)) {
  GlobalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.live.push_back(this);
}

MetricsRegistry::~MetricsRegistry() {
  GlobalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  merge_into(s.retained[name_], *this);
  std::erase(s.live, this);
}

Counter& MetricsRegistry::counter(const std::string& metric) {
  auto& slot = counters_[valid_metric_name(metric) ? metric : sanitize_metric_name(metric)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& metric) {
  auto& slot = gauges_[valid_metric_name(metric) ? metric : sanitize_metric_name(metric)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& metric) {
  auto& slot = histograms_[valid_metric_name(metric) ? metric : sanitize_metric_name(metric)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

MetricsRegistry& registry() {
  // Constructed after state() so it is destroyed (and retained) before the
  // global bookkeeping goes away.
  (void)state();
  static MetricsRegistry global("global");
  return global;
}

std::map<std::string, RegistrySnapshot> snapshot_all() {
  GlobalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return merged_snapshot(s);
}

std::string dump_string(const std::map<std::string, std::string>& meta) {
  std::map<std::string, RegistrySnapshot> merged;
  {
    GlobalState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    merged = merged_snapshot(s);
  }

  JsonWriter w;
  w.begin_object();
  w.key("netcl_obs_version");
  w.value(1);
  if (!meta.empty()) {
    w.key("meta");
    w.begin_object();
    for (const auto& [key, value] : meta) {
      w.key(key);
      w.value(value);
    }
    w.end_object();
  }
  w.key("registries");
  w.begin_object();
  for (const auto& [name, r] : merged) {
    w.key(name);
    write_registry_json(w, r);
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

bool dump(const std::string& path, const std::map<std::string, std::string>& meta) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << dump_string(meta) << "\n";
  return file.good();
}

void reset_all() {
  GlobalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.retained.clear();
  for (MetricsRegistry* live : s.live) live->reset();
}

}  // namespace netcl::obs
