#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <vector>

#include "obs/json.hpp"

namespace netcl::obs {

// --- Histogram ---------------------------------------------------------------

int Histogram::bucket_for(double sample) {
  if (!(sample >= 1.0)) return 0;  // negatives, NaN, and [0,1) land in bucket 0
  if (sample >= std::ldexp(1.0, kBuckets - 1)) return kBuckets - 1;
  const int bucket = std::bit_width(static_cast<std::uint64_t>(sample)) - 1;
  return std::min(bucket, kBuckets - 1);
}

double Histogram::bucket_floor(int bucket) {
  return bucket <= 0 ? 0.0 : std::ldexp(1.0, bucket);
}

void Histogram::record(double sample) {
  if (std::isnan(sample)) return;
  if (sample < 0.0) sample = 0.0;
  ++buckets_[bucket_for(sample)];
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() { *this = Histogram(); }

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= rank) {
      const double lo = bucket_floor(i);
      const double hi = i + 1 >= kBuckets ? max_ : bucket_floor(i + 1);
      const double fraction =
          std::clamp((rank - before) / static_cast<double>(buckets_[i]), 0.0, 1.0);
      return std::clamp(lo + fraction * (hi - lo), min(), max());
    }
  }
  return max();
}

void Histogram::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("count");
  w.value(count_);
  w.key("sum");
  w.value(sum_);
  w.key("min");
  w.value(min());
  w.key("max");
  w.value(max());
  w.key("mean");
  w.value(mean());
  w.key("p50");
  w.value(percentile(50));
  w.key("p90");
  w.value(percentile(90));
  w.key("p99");
  w.value(percentile(99));
  w.key("buckets");
  w.begin_object();
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f", bucket_floor(i));
    w.key(label);
    w.value(buckets_[i]);
  }
  w.end_object();
  w.end_object();
}

// --- registry bookkeeping ----------------------------------------------------

namespace {

/// Final values of destroyed registries, merged by registry name.
struct RetainedRegistry {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
};

struct GlobalState {
  std::mutex mutex;
  std::vector<MetricsRegistry*> live;
  std::map<std::string, RetainedRegistry> retained;
};

GlobalState& state() {
  static GlobalState s;
  return s;
}

void merge_into(RetainedRegistry& into, const MetricsRegistry& from) {
  for (const auto& [name, counter] : from.counters()) into.counters[name] += counter->value();
  for (const auto& [name, gauge] : from.gauges()) into.gauges[name] = gauge->value();
  for (const auto& [name, histogram] : from.histograms()) {
    into.histograms[name].merge(*histogram);
  }
}

void write_registry_json(JsonWriter& w, const RetainedRegistry& r) {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : r.counters) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : r.gauges) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, histogram] : r.histograms) {
    w.key(name);
    histogram.write_json(w);
  }
  w.end_object();
  w.end_object();
}

}  // namespace

MetricsRegistry::MetricsRegistry(std::string name) : name_(std::move(name)) {
  GlobalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.live.push_back(this);
}

MetricsRegistry::~MetricsRegistry() {
  GlobalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  merge_into(s.retained[name_], *this);
  std::erase(s.live, this);
}

Counter& MetricsRegistry::counter(const std::string& metric) {
  auto& slot = counters_[metric];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& metric) {
  auto& slot = gauges_[metric];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& metric) {
  auto& slot = histograms_[metric];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

MetricsRegistry& registry() {
  // Constructed after state() so it is destroyed (and retained) before the
  // global bookkeeping goes away.
  (void)state();
  static MetricsRegistry global("global");
  return global;
}

std::string dump_string() {
  GlobalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  // Snapshot = retained values plus everything still live, merged by name.
  std::map<std::string, RetainedRegistry> merged = s.retained;
  for (const MetricsRegistry* live : s.live) merge_into(merged[live->name()], *live);

  JsonWriter w;
  w.begin_object();
  w.key("netcl_obs_version");
  w.value(1);
  w.key("registries");
  w.begin_object();
  for (const auto& [name, r] : merged) {
    w.key(name);
    write_registry_json(w, r);
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

bool dump(const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << dump_string() << "\n";
  return file.good();
}

void reset_all() {
  GlobalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.retained.clear();
  for (MetricsRegistry* live : s.live) live->reset();
}

}  // namespace netcl::obs
