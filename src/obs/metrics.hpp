// netcl::obs metrics: named counters, gauges, and latency histograms.
//
// Design goals (ISSUE 1):
//  * lock-cheap — incrementing a Counter or recording into a Histogram is a
//    plain integer operation on a handle obtained once; the only locking
//    is around the process-wide registry list, touched at registry
//    construction/destruction and dump() time;
//  * survives teardown — a MetricsRegistry folds its final values into a
//    process-wide retained store when destroyed, so benches can run a
//    whole simulation (fabric + hosts scoped inside the run) and still
//    obs::dump() everything afterwards into a BENCH_*.json;
//  * ns-scale latency — Histogram uses power-of-two buckets spanning
//    sub-nanosecond to ~2^63 ns, fitting both the fabric's simulated-time
//    latencies and wall-clock pack/unpack costs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace netcl::obs {

class JsonWriter;

/// Monotonic event count. Implicitly converts to its value so existing
/// `stats.sent`-style reads keep working.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  Counter& operator++() {
    ++value_;
    return *this;
  }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  operator std::uint64_t() const { return value_; }  // NOLINT(google-explicit-constructor)
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value (e.g. stages used, occupancy percentages).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Power-of-two-bucketed histogram for non-negative samples (latencies in
/// ns). Bucket i counts samples in [2^i, 2^(i+1)); bucket 0 additionally
/// absorbs everything below 1. Exact count/sum/min/max are kept alongside
/// the buckets, so means are exact and only percentiles are interpolated.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  /// Bucket index for a sample (clamped to [0, kBuckets-1]).
  [[nodiscard]] static int bucket_for(double sample);
  /// Inclusive lower bound of bucket i (2^i; bucket 0 starts at 0).
  [[nodiscard]] static double bucket_floor(int bucket);

  void record(double sample);
  void merge(const Histogram& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t bucket_count(int bucket) const { return buckets_[bucket]; }

  /// Quantile estimate (q in [0,1]): linear interpolation inside the
  /// power-of-two bucket holding the target rank, clamped to the observed
  /// [min, max]. The estimate is exact for ranks landing on bucket
  /// boundaries and otherwise off by at most one bucket width (≤ 2× in
  /// value) — unit-tested against exact distributions in
  /// tests/obs/test_obs.cpp. Consumers (ncl-top, the SLO engine) use this
  /// instead of reading bucket upper bounds.
  [[nodiscard]] double quantile(double q) const;

  /// percentile(p) == quantile(p / 100) for p in [0,100].
  [[nodiscard]] double percentile(double p) const;

  /// {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,"p90":..,
  ///  "p99":..,"buckets":{"<floor>":count,...}} (nonzero buckets only).
  void write_json(JsonWriter& w) const;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Metric-name hygiene (ISSUE 4): names must stay embeddable in every
/// export format (JSON keys, Prometheus exposition, trace args), so
/// spaces, braces, quotes, backslashes, and control characters are
/// rejected at registration — the offending characters are replaced with
/// '_' and the metric lives under the sanitized name.
[[nodiscard]] bool valid_metric_name(std::string_view name);
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// A named bag of metrics. Registries register themselves in a process-wide
/// list on construction; on destruction their contents are folded into a
/// retained store under the registry name (counters/histograms merge
/// additively — two registries retiring the same counter name sum, never
/// clobber — and gauges keep the last value), so dump() sees completed
/// runs.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::string name);
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Finds or creates. Returned references stay valid for the registry's
  /// lifetime (storage is node-based).
  Counter& counter(const std::string& metric);
  Gauge& gauge(const std::string& metric);
  Histogram& histogram(const std::string& metric);

  [[nodiscard]] const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }

  void reset();

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide default registry (name "global").
MetricsRegistry& registry();

/// Merged (live + retained) values of one registry — the view dump() and
/// the Prometheus exposition (obs/prometheus.hpp) serialize.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
};

/// Snapshot of every registry by name, same-named registries (live or
/// retained) merged additively.
[[nodiscard]] std::map<std::string, RegistrySnapshot> snapshot_all();

/// JSON snapshot of every live registry plus the retained store:
/// {"netcl_obs_version":1,"registries":{name:{"counters":{...},
///  "gauges":{...},"histograms":{...}},...}}. Same-named registries
/// (live or retained) are merged additively. A non-empty `meta` map is
/// emitted as a "meta" object before "registries" — benches stamp git
/// SHA / timestamp / transport kind there (ISSUE 4).
[[nodiscard]] std::string dump_string(const std::map<std::string, std::string>& meta = {});

/// Writes dump_string(meta) to `path`. Returns false on I/O failure. This
/// is what benches call to emit BENCH_*.json.
bool dump(const std::string& path, const std::map<std::string, std::string>& meta = {});

/// Clears the retained store and resets every live registry — used by
/// tests and benches that need a clean slate between runs.
void reset_all();

}  // namespace netcl::obs
