#include "obs/profiler.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <pthread.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>
// SIGEV_THREAD_ID delivery and its sigevent field predate their glibc
// spellings (sigev_notify_thread_id appeared in glibc 2.35); fall back to
// the raw union member on older libcs.
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#define NETCL_PROFILER_LINUX 1
#endif

namespace netcl::obs {

namespace {

/// SIGUSR1 latch, mirroring the flight recorder's SIGUSR2 one.
std::atomic<bool> g_profile_dump_requested{false};

void handle_sigusr1(int) { Profiler::request_signal_dump(); }

/// One raw stack sample: leaf-first program counters.
struct RawSample {
  std::uint32_t depth = 0;
  std::uint32_t truncated = 0;
  std::uintptr_t pc[Profiler::kMaxFrames];
};

}  // namespace

/// One writer per ring — the SIGPROF handler interrupting the owning
/// thread — readers only under Impl::mutex at snapshot time. `head`
/// counts samples ever written; slot = seq & mask.
struct Profiler::Ring {
  std::atomic<std::uint64_t> head{0};
  std::uint64_t last_read = 0;  // guarded by Impl::mutex
  std::uint64_t dropped = 0;    // guarded by Impl::mutex
  // Stack bounds cached at registration; the handler validates every
  // frame pointer against them before dereferencing.
  std::uintptr_t stack_lo = 0;
  std::uintptr_t stack_hi = 0;
#if defined(NETCL_PROFILER_LINUX)
  pid_t tid = 0;
  timer_t timer{};
#endif
  bool armed = false;
  std::vector<RawSample> slots;

  Ring() : slots(kRingCapacity) {}
};

struct Profiler::Impl {
  std::mutex mutex;
  std::vector<std::unique_ptr<Ring>> rings;  // never shrinks
  // Cumulative profile (guarded by mutex, cold path only).
  std::map<std::string, std::uint64_t> folded;
  std::uint64_t samples = 0;
  std::uint64_t dropped = 0;
  std::uint64_t truncated = 0;
  std::map<std::uintptr_t, std::string> symbol_cache;
};

namespace {

/// The handler's route to its ring. Written once at registration (before
/// the thread's timer is ever armed), so the TLS slot is materialized and
/// the read in signal context is safe.
thread_local Profiler::Ring* t_ring = nullptr;

#if defined(NETCL_PROFILER_LINUX)

/// Async-signal-safe frame-pointer unwind from the interrupted context.
/// Every candidate frame pointer is bounds-checked against the thread's
/// stack and required to be aligned and strictly increasing, so a
/// clobbered rbp (leaf frames of -fomit-* code in libc) terminates the
/// walk instead of faulting.
std::uint32_t unwind(void* ucontext, const Profiler::Ring& ring,
                     std::uintptr_t* out, std::uint32_t max_frames,
                     std::uint32_t* truncated) {
  std::uintptr_t pc = 0;
  std::uintptr_t fp = 0;
  auto* uc = static_cast<ucontext_t*>(ucontext);
#if defined(__x86_64__)
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  (void)uc;
  // No per-arch register access: attribute the sample to the handler's
  // caller chain (skips signal frames imprecisely but never faults).
  pc = reinterpret_cast<std::uintptr_t>(__builtin_return_address(0));
  fp = reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0));
#endif
  std::uint32_t depth = 0;
  if (pc != 0 && depth < max_frames) out[depth++] = pc;
  while (depth < max_frames) {
    if (fp < ring.stack_lo || fp + 2 * sizeof(std::uintptr_t) > ring.stack_hi ||
        (fp & (sizeof(std::uintptr_t) - 1)) != 0) {
      break;
    }
    const auto* frame = reinterpret_cast<const std::uintptr_t*>(fp);
    const std::uintptr_t next_fp = frame[0];
    const std::uintptr_t ret = frame[1];
    if (ret == 0) break;
    out[depth++] = ret;
    if (next_fp <= fp) break;  // frames must move toward the stack base
    fp = next_fp;
  }
  if (depth == max_frames) *truncated = 1;
  return depth;
}

std::atomic<std::uint64_t>* g_captured = nullptr;

/// SIGPROF handler: one unwind, one ring-slot store, one release bump.
/// Nothing here allocates, locks, or calls non-async-signal-safe code.
void handle_sigprof(int, siginfo_t*, void* ucontext) {
  Profiler::Ring* ring = t_ring;
  if (ring == nullptr) return;
  const int saved_errno = errno;
  const std::uint64_t seq = ring->head.load(std::memory_order_relaxed);
  RawSample& slot = ring->slots[seq & (Profiler::kRingCapacity - 1)];
  slot.truncated = 0;
  slot.depth =
      unwind(ucontext, *ring, slot.pc, Profiler::kMaxFrames, &slot.truncated);
  ring->head.store(seq + 1, std::memory_order_release);
  if (g_captured != nullptr) g_captured->fetch_add(1, std::memory_order_relaxed);
  errno = saved_errno;
}

/// Stack bounds for the calling thread (works for the main thread too on
/// glibc: pthread_getattr_np reports the main stack region).
void thread_stack_bounds(std::uintptr_t* lo, std::uintptr_t* hi) {
  *lo = 0;
  *hi = 0;
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) != 0) return;
  void* addr = nullptr;
  std::size_t size = 0;
  if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
    *lo = reinterpret_cast<std::uintptr_t>(addr);
    *hi = *lo + size;
  }
  pthread_attr_destroy(&attr);
}

bool arm_ring(Profiler::Ring& ring, int hz) {
  if (ring.armed) return true;
  struct sigevent sev = {};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = ring.tid;
  if (timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &ring.timer) != 0) return false;
  const long period_ns = 1000000000L / hz;
  struct itimerspec spec = {};
  spec.it_interval.tv_sec = period_ns / 1000000000L;
  spec.it_interval.tv_nsec = period_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  if (timer_settime(ring.timer, 0, &spec, nullptr) != 0) {
    timer_delete(ring.timer);
    return false;
  }
  ring.armed = true;
  return true;
}

void disarm_ring(Profiler::Ring& ring) {
  if (!ring.armed) return;
  timer_delete(ring.timer);
  ring.armed = false;
}

void install_sigprof_handler() {
  struct sigaction action = {};
  action.sa_sigaction = &handle_sigprof;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  ::sigaction(SIGPROF, &action, nullptr);
}

/// Cold-path symbolization: dladdr finds the enclosing dynamic symbol
/// (executables export theirs via CMAKE_ENABLE_EXPORTS), the Itanium
/// demangler prettifies it, and the parameter list is stripped so folded
/// stacks stay one-token-per-frame. Characters that would corrupt the
/// folded format (';', whitespace-adjacent control chars) are replaced.
std::string symbolize_pc(std::uintptr_t pc) {
  Dl_info info = {};
  std::string name;
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 && info.dli_sname != nullptr) {
    int status = -1;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
    // Drop the parameter list ("foo(unsigned long)" → "foo"), keeping
    // operator() intact.
    const std::size_t paren = name.find('(');
    if (paren != std::string::npos && paren > 0 &&
        !(paren >= 8 && name.compare(paren - 8, 8, "operator") == 0)) {
      name.erase(paren);
    }
  } else if (info.dli_fname != nullptr) {
    // Unknown symbol inside a known object: attribute to the object.
    const char* base = std::strrchr(info.dli_fname, '/');
    name = std::string("[") + (base != nullptr ? base + 1 : info.dli_fname) + "]";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%zx", static_cast<std::size_t>(pc));
    name = buf;
  }
  for (char& c : name) {
    if (c == ';' || c == '\n' || c == '\r' || c == '"') c = ':';
  }
  return name;
}

#endif  // NETCL_PROFILER_LINUX

}  // namespace

Profiler::Profiler() : impl_(new Impl) {
#if defined(NETCL_PROFILER_LINUX)
  g_captured = &captured_;
#endif
}

Profiler& Profiler::instance() {
  // Leaked on purpose, like the flight recorder: timers may still fire
  // during static destruction and the handler must never touch a
  // destroyed profiler.
  static Profiler* profiler = new Profiler();
  return *profiler;
}

void Profiler::maybe_register_this_thread() {
  if (t_ring != nullptr) return;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto owned = std::make_unique<Ring>();
#if defined(NETCL_PROFILER_LINUX)
  owned->tid = static_cast<pid_t>(::syscall(SYS_gettid));
  thread_stack_bounds(&owned->stack_lo, &owned->stack_hi);
#endif
  Ring* ring = owned.get();
  impl_->rings.push_back(std::move(owned));
  // Publish the TLS route before any timer can fire on this thread.
  t_ring = ring;
#if defined(NETCL_PROFILER_LINUX)
  if (running_.load(std::memory_order_acquire)) {
    arm_ring(*ring, hz_.load(std::memory_order_relaxed));
  }
#endif
}

bool Profiler::start(int hz) {
#if defined(NETCL_PROFILER_LINUX)
  hz = std::clamp(hz, 1, 10000);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  hz_.store(hz, std::memory_order_relaxed);
  if (running_.load(std::memory_order_acquire)) return true;
  install_sigprof_handler();
  running_.store(true, std::memory_order_release);
  for (auto& ring : impl_->rings) arm_ring(*ring, hz);
  return true;
#else
  (void)hz;
  return false;
#endif
}

void Profiler::stop() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!running_.load(std::memory_order_acquire)) return;
  running_.store(false, std::memory_order_release);
#if defined(NETCL_PROFILER_LINUX)
  for (auto& ring : impl_->rings) disarm_ring(*ring);
#endif
}

std::size_t Profiler::thread_count() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->rings.size();
}

ProfileSnapshot Profiler::snapshot() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
#if defined(NETCL_PROFILER_LINUX)
  const std::string process = FlightRecorder::instance().process_label();
  std::string stack;
  for (auto& owned : impl_->rings) {
    Ring& ring = *owned;
    const std::uint64_t h1 = ring.head.load(std::memory_order_acquire);
    std::uint64_t begin = ring.last_read;
    if (h1 - begin > kRingCapacity) {
      impl_->dropped += (h1 - begin) - kRingCapacity;
      begin = h1 - kRingCapacity;
    }
    for (std::uint64_t s = begin; s < h1; ++s) {
      RawSample sample = ring.slots[s & (kRingCapacity - 1)];
      // The writer may have lapped this slot mid-copy (it writes the slot
      // for sequence s + capacity before publishing); discard torn copies.
      const std::uint64_t h2 = ring.head.load(std::memory_order_acquire);
      if (h2 >= s + kRingCapacity) {
        ++impl_->dropped;
        continue;
      }
      if (sample.depth == 0 || sample.depth > static_cast<std::uint32_t>(kMaxFrames)) {
        continue;
      }
      // Fold root-first under the process label. Return addresses (every
      // frame but the sampled leaf) point *after* their call instruction;
      // back up one byte so they symbolize to the calling function even
      // at a tail boundary.
      stack.assign(process);
      for (std::uint32_t i = sample.depth; i-- > 0;) {
        const std::uintptr_t pc = i + 1 == sample.depth ? sample.pc[i] : sample.pc[i] - 1;
        auto cached = impl_->symbol_cache.find(pc);
        if (cached == impl_->symbol_cache.end()) {
          cached = impl_->symbol_cache.emplace(pc, symbolize_pc(pc)).first;
        }
        stack += ';';
        stack += cached->second;
      }
      ++impl_->folded[stack];
      ++impl_->samples;
      impl_->truncated += sample.truncated;
    }
    ring.last_read = h1;
  }
#endif
  ProfileSnapshot out;
  out.samples = impl_->samples;
  out.dropped = impl_->dropped;
  out.truncated = impl_->truncated;
  out.folded = impl_->folded;
  return out;
}

std::string Profiler::folded_string() {
  const ProfileSnapshot snap = snapshot();
  std::string out;
  for (const auto& [stack, count] : snap.folded) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

bool Profiler::write_folded(const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << folded_string();
  return file.good();
}

std::string Profiler::trigger_profile_dump() {
  const std::uint64_t ordinal = dump_seq_.fetch_add(1, std::memory_order_relaxed);
  const char* dir = std::getenv("NETCL_FLIGHT_DIR");
  const std::string path = std::string(dir != nullptr ? dir : ".") + "/profile_" +
                           FlightRecorder::instance().process_label() + "_" +
                           std::to_string(ordinal) + ".folded";
  if (!write_folded(path)) return "";
  dumps_written_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t stacks = 0;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    stacks = impl_->folded.size();
  }
  flight(FlightKind::kProfileDump, sample_count(), stacks);
  registry().counter("profile.dumps").inc();
  return path;
}

void Profiler::install_signal_handler() {
  struct sigaction action = {};
  action.sa_handler = &handle_sigusr1;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGUSR1, &action, nullptr);
}

void Profiler::request_signal_dump() {
  g_profile_dump_requested.store(true, std::memory_order_relaxed);
}

bool Profiler::consume_signal_dump() {
  return g_profile_dump_requested.exchange(false, std::memory_order_relaxed);
}

}  // namespace netcl::obs
