// Always-available sampling CPU profiler (ISSUE 9): know *where* the
// cycles go, continuously and in production, not in one-off bench runs.
//
// Sampling discipline: every registered thread owns a POSIX per-thread
// CPU-time timer (timer_create(CLOCK_THREAD_CPUTIME_ID) with
// SIGEV_THREAD_ID) firing SIGPROF at the configured rate. The handler is
// async-signal-safe by construction: it walks frame pointers from the
// interrupted ucontext (validated against the thread's cached stack
// bounds), stores the raw program counters into the thread's lock-free
// SPSC sample ring — the same one-writer-per-ring discipline as the
// flight recorder (obs/flightrec.hpp) — and returns. No allocation, no
// locks, no symbolization in signal context.
//
// Aggregation is pull-based and cold: snapshot() drains the rings,
// symbolizes each distinct pc once through dladdr (executables link with
// CMAKE_ENABLE_EXPORTS so their symbols are visible), and folds samples
// into the cumulative "flamegraph collapsed" map
// ("proc;caller;...;leaf" -> count). write_folded()/trigger_profile_dump()
// render that map in the standard folded-stack format that
// flamegraph.pl / speedscope / inferno consume directly.
//
// CPU-time sampling means an idle thread (blocked in poll) costs nothing
// and accumulates no samples — the profile shows where cycles went, not
// where time was waited.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace netcl::obs {

/// Cumulative profile state as of the last drain. `folded` maps a
/// root-first semicolon-joined stack to its sample count.
struct ProfileSnapshot {
  std::uint64_t samples = 0;    // samples aggregated so far
  std::uint64_t dropped = 0;    // lost to ring wrap or torn reads
  std::uint64_t truncated = 0;  // stacks cut at kMaxFrames
  std::map<std::string, std::uint64_t> folded;
};

/// Process-wide sampling profiler. Threads register lazily (their event
/// loops call maybe_register_this_thread(), which is one thread_local
/// test once registered); rings are never freed, so a ring pointer cached
/// in a thread_local stays valid for the process lifetime.
class Profiler {
 public:
  /// Deepest stack recorded per sample. 48 frames × 8 B keeps a sample
  /// slot under 400 B; deeper stacks are truncated (counted).
  static constexpr int kMaxFrames = 48;
  /// Samples per ring (power of two). 2048 slots ≈ 20 s of history at the
  /// default rate before wrap.
  static constexpr std::uint64_t kRingCapacity = 1u << 11;
  /// Default sampling rate. 99 Hz (not 100) so samples do not phase-lock
  /// with 10 ms-periodic work — the classic profiler-bias dodge.
  static constexpr int kDefaultHz = 99;

  /// The singleton. Never destroyed (intentionally leaked), mirroring
  /// FlightRecorder.
  static Profiler& instance();

  /// Installs the SIGPROF handler and arms per-thread timers on every
  /// registered thread (and on threads that register later). Returns false
  /// when per-thread CPU-time timers are unavailable (non-Linux builds).
  /// hz is clamped to [1, 10000].
  bool start(int hz = kDefaultHz);
  /// Disarms all timers. Samples already in the rings stay drainable.
  void stop();
  [[nodiscard]] bool running() const { return running_.load(std::memory_order_acquire); }
  [[nodiscard]] int hz() const { return hz_.load(std::memory_order_relaxed); }

  /// Registers the calling thread for sampling (idempotent; one
  /// thread_local test when already registered). Event loops call this at
  /// the top of their poll cycle.
  void maybe_register_this_thread();

  /// Raw samples captured since process start (signal-handler counter).
  [[nodiscard]] std::uint64_t sample_count() const {
    return captured_.load(std::memory_order_relaxed);
  }
  /// Threads registered so far.
  [[nodiscard]] std::size_t thread_count() const;

  /// Drains every ring into the cumulative folded map and returns a copy.
  [[nodiscard]] ProfileSnapshot snapshot();

  /// snapshot() rendered in folded-stack format: one "stack count" line
  /// per distinct stack, sorted by stack for deterministic output.
  [[nodiscard]] std::string folded_string();

  /// Writes folded_string() to `path`. Returns false on I/O failure.
  bool write_folded(const std::string& path);

  /// Dump hook (kProfileDump control op, SIGUSR1, ncl-top): writes
  /// `profile_<label>_<n>.folded` into the directory named by
  /// NETCL_FLIGHT_DIR (default "."), next to the flight recorder's
  /// postmortems. Returns the path written, or "" on I/O failure.
  std::string trigger_profile_dump();

  /// Folded files written by trigger_profile_dump().
  [[nodiscard]] std::uint64_t dumps_written() const {
    return dumps_written_.load(std::memory_order_relaxed);
  }

  // -- SIGUSR1 ------------------------------------------------------------
  // Same latch shape as the flight recorder's SIGUSR2: the handler only
  // sets an atomic flag; a poll loop consumes it and dumps outside signal
  // context.

  /// Installs the SIGUSR1 handler (idempotent).
  static void install_signal_handler();
  /// What the handler does; exposed for tests (raise-free).
  static void request_signal_dump();
  /// True exactly once per requested signal dump.
  [[nodiscard]] static bool consume_signal_dump();

  /// Public so the file-scope SIGPROF handler can reach its thread's ring
  /// through a thread_local pointer; defined in profiler.cpp.
  struct Ring;

 private:
  struct Impl;

  Profiler();
  ~Profiler() = delete;

  std::atomic<bool> running_{false};
  std::atomic<int> hz_{kDefaultHz};
  std::atomic<std::uint64_t> captured_{0};
  std::atomic<std::uint64_t> dumps_written_{0};
  std::atomic<std::uint64_t> dump_seq_{0};

  Impl* impl_;  // leaked with the singleton
};

/// Convenience for event-loop instrumentation sites:
/// Profiler::instance().maybe_register_this_thread().
inline void profile_register_thread() { Profiler::instance().maybe_register_this_thread(); }

}  // namespace netcl::obs
