#include "obs/prometheus.hpp"

#include <cstdio>
#include <set>
#include <string_view>
#include <utility>
#include <vector>

// Only src/obs is compiled with the definition; a stale object file
// elsewhere must not silently claim a SHA.
#ifndef NETCL_GIT_SHA
#define NETCL_GIT_SHA "unknown"
#endif

namespace netcl::obs {

const char* netcl_git_sha() { return NETCL_GIT_SHA; }

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// One rendered sample line, grouped under a family so each family's
/// # TYPE header is emitted exactly once even when several registries
/// export the same metric name.
struct Family {
  std::string type;  // "counter" | "gauge" | "histogram"
  std::vector<std::string> lines;
};

void add_line(std::map<std::string, Family>& families, const std::string& family,
              const std::string& type, std::string line) {
  Family& f = families[family];
  f.type = type;
  f.lines.push_back(std::move(line));
}

}  // namespace

std::string prometheus_metric_name(const std::string& name) {
  std::string out = "netcl_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prometheus_string(const std::map<std::string, RegistrySnapshot>& snapshot) {
  std::map<std::string, Family> families;
  std::uint64_t packets_total = 0;

  for (const auto& [registry_name, r] : snapshot) {
    // Structured registry names carry labels as "/key/value" suffixes:
    // "<base>/tenant/<id>" (ISSUE 7), "<base>/source/<endpoint>"
    // (ISSUE 8), "<base>/tenant/<id>/window/<name>" (ISSUE 9). Split each
    // recognized pair into a proper label so PromQL can aggregate or
    // slice without string surgery; an unrecognized key keeps the raw
    // name (values like "ip:port" contain no '/', so the scan is
    // unambiguous left-to-right).
    std::string base_name = registry_name;
    std::string inner_labels;
    static constexpr std::string_view kLabelKeys[] = {"tenant", "source", "window"};
    for (bool matched = true; matched;) {
      matched = false;
      for (const std::string_view key : kLabelKeys) {
        const std::string needle = "/" + std::string(key) + "/";
        const std::size_t at = base_name.find(needle);
        if (at == std::string::npos) continue;
        std::string value = base_name.substr(at + needle.size());
        const std::size_t next = value.find('/');
        if (next != std::string::npos) value.resize(next);
        base_name.erase(at, needle.size() + value.size());
        inner_labels += "," + std::string(key) + "=\"" + value + "\"";
        matched = true;
      }
    }
    inner_labels = "registry=\"" + base_name + "\"" + inner_labels;
    const std::string label = "{" + inner_labels + "}";

    for (const auto& [name, value] : r.counters) {
      std::string family = prometheus_metric_name(name);
      if (family.size() < 6 || family.compare(family.size() - 6, 6, "_total") != 0) {
        family += "_total";
      }
      add_line(families, family, "counter", family + label + " " + std::to_string(value));
      if (name == "packets_received" || name == "packets_delivered") packets_total += value;
    }

    for (const auto& [name, value] : r.gauges) {
      const std::string family = prometheus_metric_name(name);
      add_line(families, family, "gauge", family + label + " " + format_double(value));
    }

    for (const auto& [name, histogram] : r.histograms) {
      const std::string family = prometheus_metric_name(name);
      Family& f = families[family];
      f.type = "histogram";
      // Cumulative buckets at the power-of-two ceilings actually hit.
      std::uint64_t cumulative = 0;
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        if (histogram.bucket_count(i) == 0) continue;
        cumulative += histogram.bucket_count(i);
        const double ceiling =
            i + 1 >= Histogram::kBuckets ? histogram.max() : Histogram::bucket_floor(i + 1);
        f.lines.push_back(family + "_bucket{" + inner_labels + ",le=\"" +
                          format_double(ceiling) + "\"} " + std::to_string(cumulative));
      }
      f.lines.push_back(family + "_bucket{" + inner_labels + ",le=\"+Inf\"} " +
                        std::to_string(histogram.count()));
      f.lines.push_back(family + "_sum" + label + " " + format_double(histogram.sum()));
      f.lines.push_back(family + "_count" + label + " " + std::to_string(histogram.count()));
    }
  }

  // Aggregate traffic line the CI smoke test asserts on without knowing
  // registry names.
  add_line(families, "netcl_packets_total", "counter",
           "netcl_packets_total " + std::to_string(packets_total));

  // Build identity (value is always 1; the information is in the labels),
  // the standard Prometheus idiom for joining metrics to a version.
  add_line(families, "netcl_build_info", "gauge",
           "netcl_build_info{git_sha=\"" + std::string(netcl_git_sha()) +
               "\",version=\"" + std::string(kNetclVersion) + "\"} 1");

  std::string out;
  for (const auto& [family, f] : families) {
    out += "# TYPE " + family + " " + f.type + "\n";
    for (const std::string& line : f.lines) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

std::string prometheus_string() { return prometheus_string(snapshot_all()); }

}  // namespace netcl::obs
