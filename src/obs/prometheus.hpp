// Prometheus text exposition (format 0.0.4) of the metrics snapshot
// (ISSUE 4). netcl-swd serves this from --metrics-port; ncl-top and the
// CI smoke test scrape it.
//
// Mapping from the netcl metric model:
//  * every family is prefixed "netcl_" and the metric name is sanitized
//    to [a-zA-Z0-9_] (dots and dashes become underscores);
//  * counters gain a "_total" suffix and TYPE counter;
//  * gauges keep their name and get TYPE gauge;
//  * histograms become cumulative "_bucket{le=...}" series plus "_sum"
//    and "_count", with le bounds at the power-of-two bucket ceilings;
//  * every series carries a registry="<name>" label identifying which
//    MetricsRegistry it came from;
//  * one aggregate, unlabelled "netcl_packets_total" line sums every
//    "*packets_received*"-style counter so a scraper can assert traffic
//    without knowing registry names.
#pragma once

#include <map>
#include <string>

#include "obs/metrics.hpp"

namespace netcl::obs {

/// The netcl release version, as in `ncc --version`.
inline constexpr const char* kNetclVersion = "0.2.0";

/// Short git SHA the build was configured from ("unknown" outside a git
/// checkout). Stamped at compile time via the NETCL_GIT_SHA definition —
/// the same stamp bench_util.hpp puts in BENCH_*.json metadata.
[[nodiscard]] const char* netcl_git_sha();

/// Prometheus-legal metric name: "netcl_" + name with every character
/// outside [a-zA-Z0-9_] replaced by '_'.
[[nodiscard]] std::string prometheus_metric_name(const std::string& name);

/// Renders one snapshot (as produced by snapshot_all()) as Prometheus
/// text. Ends with a trailing newline as the format requires.
[[nodiscard]] std::string prometheus_string(
    const std::map<std::string, RegistrySnapshot>& snapshot);

/// prometheus_string(snapshot_all()) — the full live+retained view.
[[nodiscard]] std::string prometheus_string();

}  // namespace netcl::obs
