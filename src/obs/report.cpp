#include "obs/report.hpp"

#include <cstdio>

#include "obs/json.hpp"

namespace netcl::obs {

namespace {

void append_row(std::string& out, const PassStat& pass) {
  char line[160];
  std::snprintf(line, sizeof(line), "  %-32s %10.1f us %6d -> %-6d (%+d)\n",
                pass.name.c_str(), pass.seconds * 1e6, pass.insts_before, pass.insts_after,
                pass.delta());
  out += line;
}

void append_kv(std::string& out, const char* key, const std::string& value) {
  char line[160];
  std::snprintf(line, sizeof(line), "%-18s %s\n", key, value.c_str());
  out += line;
}

std::string format_double(const char* fmt, double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), fmt, v);
  return buffer;
}

std::string usage_row(const std::map<std::string, int>& usage) {
  std::string out;
  for (const auto& [resource, amount] : usage) {
    if (!out.empty()) out += ' ';
    out += resource + "=" + std::to_string(amount);
  }
  return out;
}

}  // namespace

double CompileReport::total_pass_seconds() const {
  double total = 0.0;
  for (const PassStat& pass : passes) total += pass.seconds;
  return total;
}

std::string CompileReport::to_text() const {
  std::string out;
  append_kv(out, "status:", ok ? "ok" : "failed");
  append_kv(out, "netcl loc:", std::to_string(netcl_loc));
  append_kv(out, "generated p4 loc:", std::to_string(p4_loc));
  append_kv(out, "stages used:", std::to_string(stages_used));
  append_kv(out, "phv:",
            std::to_string(phv_bits) + " bits (" + format_double("%.1f", phv_occupancy_pct) +
                "%)");
  append_kv(out, "latency (worst):", format_double("%.1f", worst_latency_ns) + " ns");
  append_kv(out, "pipe total:", usage_row(pipe_total));
  append_kv(out, "worst stage:", usage_row(worst_stage));
  for (std::size_t s = 0; s < per_stage.size(); ++s) {
    append_kv(out, ("  stage " + std::to_string(s) + ":").c_str(), usage_row(per_stage[s]));
  }
  append_kv(out, "frontend:", format_double("%.3f", frontend_seconds * 1e3) + " ms");
  append_kv(out, "backend:", format_double("%.3f", backend_seconds * 1e3) + " ms");
  out += "passes (" + std::to_string(passes.size()) + "):\n";
  for (const PassStat& pass : passes) append_row(out, pass);
  if (!diagnostics.empty()) {
    out += "diagnostics:\n";
    for (const std::string& diagnostic : diagnostics) out += "  " + diagnostic + "\n";
  }
  return out;
}

std::string CompileReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("ok");
  w.value(ok);
  w.key("netcl_loc");
  w.value(netcl_loc);
  w.key("p4_loc");
  w.value(p4_loc);
  w.key("frontend_seconds");
  w.value(frontend_seconds);
  w.key("backend_seconds");
  w.value(backend_seconds);
  w.key("stages_used");
  w.value(stages_used);
  w.key("phv_bits");
  w.value(phv_bits);
  w.key("phv_occupancy_pct");
  w.value(phv_occupancy_pct);
  w.key("worst_latency_ns");
  w.value(worst_latency_ns);
  w.key("pipe_total");
  w.begin_object();
  for (const auto& [resource, amount] : pipe_total) {
    w.key(resource);
    w.value(amount);
  }
  w.end_object();
  w.key("worst_stage");
  w.begin_object();
  for (const auto& [resource, amount] : worst_stage) {
    w.key(resource);
    w.value(amount);
  }
  w.end_object();
  w.key("per_stage");
  w.begin_array();
  for (const auto& stage : per_stage) {
    w.begin_object();
    for (const auto& [resource, amount] : stage) {
      w.key(resource);
      w.value(amount);
    }
    w.end_object();
  }
  w.end_array();
  w.key("passes");
  w.begin_array();
  for (const PassStat& pass : passes) {
    w.begin_object();
    w.key("name");
    w.value(pass.name);
    w.key("seconds");
    w.value(pass.seconds);
    w.key("insts_before");
    w.value(pass.insts_before);
    w.key("insts_after");
    w.value(pass.insts_after);
    w.key("delta");
    w.value(pass.delta());
    w.end_object();
  }
  w.end_array();
  w.key("diagnostics");
  w.begin_array();
  for (const std::string& diagnostic : diagnostics) w.value(diagnostic);
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

}  // namespace netcl::obs
