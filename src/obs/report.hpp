// Structured compile report (the paper's Fig. 12 / Tables IV–VI data, per
// compile): per-pass wall time and IR-size deltas, backend resource and
// PHV usage, and any diagnostics — rendered as aligned human text
// (ncc --stats) or JSON (ncc --stats=json, bench ingestion).
//
// The report is deliberately flat (strings and numbers only) so obs stays
// below every other library: the driver and passes fill it in, nothing
// here depends on the IR or the P4 backend.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace netcl::obs {

/// One instrumented phase of the compilation pipeline.
struct PassStat {
  std::string name;
  double seconds = 0.0;
  int insts_before = 0;  // module instruction count entering the pass
  int insts_after = 0;   // ... and leaving it
  [[nodiscard]] int delta() const { return insts_after - insts_before; }
};

struct CompileReport {
  bool ok = false;

  // Source / artifact sizes.
  int netcl_loc = 0;
  int p4_loc = 0;

  // Phase timings (frontend = parse+sema+lower+passes, backend = emission
  // + linearization + allocation, matching CompileResult's split).
  double frontend_seconds = 0.0;
  double backend_seconds = 0.0;

  // Backend placement results.
  int stages_used = 0;
  int phv_bits = 0;
  double phv_occupancy_pct = 0.0;
  double worst_latency_ns = 0.0;
  std::map<std::string, int> pipe_total;   // resource -> whole-pipe usage
  std::map<std::string, int> worst_stage;  // resource -> worst single stage
  /// Per-stage resource usage (index = stage; same keys as pipe_total) —
  /// exactly the accounting the runtime admission controller charges, so
  /// offline reports and admission decisions can be diffed (ISSUE 7).
  std::vector<std::map<std::string, int>> per_stage;

  std::vector<PassStat> passes;
  std::vector<std::string> diagnostics;  // rendered, one per entry

  void add_pass(std::string name, double seconds, int insts_before, int insts_after) {
    passes.push_back({std::move(name), seconds, insts_before, insts_after});
  }
  [[nodiscard]] double total_pass_seconds() const;

  /// Aligned human-readable rendering (ncc --stats).
  [[nodiscard]] std::string to_text() const;
  /// JSON rendering (ncc --stats=json); always valid JSON, also for
  /// failed compiles (ok=false plus diagnostics).
  [[nodiscard]] std::string to_json() const;
};

}  // namespace netcl::obs
