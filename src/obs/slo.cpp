#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>

namespace netcl::obs {

const char* to_string(SloState state) {
  switch (state) {
    case SloState::kOk: return "ok";
    case SloState::kSlowBurn: return "slow_burn";
    case SloState::kFastBurn: return "fast_burn";
  }
  return "unknown";
}

SloTracker::Bucket& SloTracker::bucket_at(double now_s) {
  const auto second = static_cast<std::int64_t>(std::floor(now_s));
  Bucket& bucket = buckets_[static_cast<std::size_t>(second % kBuckets)];
  if (bucket.second != second) {
    bucket.second = second;
    bucket.good = 0;
    bucket.bad = 0;
  }
  return bucket;
}

void SloTracker::record_latency(double latency_ns, double now_s) {
  const bool good = objective_.latency_threshold_ns <= 0.0 ||
                    latency_ns <= objective_.latency_threshold_ns;
  if (good) {
    record_good(now_s);
  } else {
    record_bad(now_s);
  }
}

void SloTracker::record_good(double now_s) {
  ++bucket_at(now_s).good;
  ++good_total_;
}

void SloTracker::record_bad(double now_s) {
  ++bucket_at(now_s).bad;
  ++bad_total_;
}

void SloTracker::sum_window(double window_s, double now_s, std::uint64_t* good,
                            std::uint64_t* bad) const {
  *good = 0;
  *bad = 0;
  const auto now_second = static_cast<std::int64_t>(std::floor(now_s));
  const int span = std::min(kBuckets, static_cast<int>(std::ceil(window_s)));
  for (int i = 0; i < span; ++i) {
    const std::int64_t second = now_second - i;
    if (second < 0) break;
    const Bucket& bucket = buckets_[static_cast<std::size_t>(second % kBuckets)];
    if (bucket.second != second) continue;  // stale slot from a past hour
    *good += bucket.good;
    *bad += bucket.bad;
  }
}

double SloTracker::burn_rate(double window_s, double now_s) const {
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  sum_window(window_s, now_s, &good, &bad);
  const std::uint64_t total = good + bad;
  if (total == 0) return 0.0;
  const double bad_fraction = static_cast<double>(bad) / static_cast<double>(total);
  return bad_fraction / objective_.error_budget();
}

double SloTracker::budget_remaining(double now_s) const {
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  sum_window(kBudgetWindowS, now_s, &good, &bad);
  const std::uint64_t total = good + bad;
  if (total == 0) return 1.0;
  // Of the bad events the budget allows over this horizon, how many are
  // unspent?
  const double allowed = objective_.error_budget() * static_cast<double>(total);
  const double remaining = 1.0 - static_cast<double>(bad) / allowed;
  return std::clamp(remaining, 0.0, 1.0);
}

SloState SloTracker::evaluate(double now_s) {
  const double burn_short = burn_rate(kShortWindowS, now_s);
  const double burn_long = burn_rate(kLongWindowS, now_s);
  const double burn_slow = burn_rate(kSlowWindowS, now_s);
  if (burn_short >= kFastBurnThreshold && burn_long >= kFastBurnThreshold) {
    state_ = SloState::kFastBurn;
  } else if (burn_long >= kSlowBurnThreshold && burn_slow >= kSlowBurnThreshold) {
    state_ = SloState::kSlowBurn;
  } else {
    state_ = SloState::kOk;
  }
  return state_;
}

// ---------------------------------------------------------------------------
// SloEngine

void SloEngine::set_objective(std::uint32_t tenant, SloObjective objective) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.try_emplace(tenant, objective);
  if (!inserted) {
    // Re-targeting resets accounting: the old windows measured a
    // different promise.
    it->second.tracker = SloTracker(objective);
  }
  if (it->second.registry == nullptr) {
    it->second.registry = std::make_unique<MetricsRegistry>(
        base_ + "/tenant/" + std::to_string(tenant));
  }
}

bool SloEngine::has_objective(std::uint32_t tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(tenant) != entries_.end();
}

bool SloEngine::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.empty();
}

std::vector<std::uint32_t> SloEngine::tenants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint32_t> out;
  out.reserve(entries_.size());
  for (const auto& [tenant, entry] : entries_) out.push_back(tenant);
  return out;
}

void SloEngine::set_fast_burn_callback(FastBurnCallback callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_fast_burn_ = std::move(callback);
}

void SloEngine::record_latency(std::uint32_t tenant, double latency_ns, double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(tenant);
  if (it == entries_.end()) return;
  it->second.tracker.record_latency(latency_ns, now_s);
  it->second.registry->histogram("slo.latency_ns").record(latency_ns);
}

void SloEngine::record_bad(std::uint32_t tenant, double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(tenant);
  if (it == entries_.end()) return;
  it->second.tracker.record_bad(now_s);
}

void SloEngine::export_entry(std::uint32_t tenant, Entry& entry, double now_s) {
  SloTracker& tracker = entry.tracker;
  MetricsRegistry& reg = *entry.registry;
  reg.gauge("slo.budget_remaining").set(tracker.budget_remaining(now_s));
  reg.gauge("slo.state").set(static_cast<double>(tracker.state()));
  reg.gauge("slo.objective_availability").set(tracker.objective().availability_target);
  reg.gauge("slo.objective_latency_ns").set(tracker.objective().latency_threshold_ns);
  reg.gauge("slo.observed_p99_ns").set(reg.histogram("slo.latency_ns").quantile(0.99));
  // Monotonic event totals as proper counters (delta since last export).
  Counter& good = reg.counter("slo.good_events");
  Counter& bad = reg.counter("slo.bad_events");
  good.inc(tracker.good_total() - good.value());
  bad.inc(tracker.bad_total() - bad.value());

  struct Window {
    const char* name;
    double seconds;
  };
  static constexpr Window kWindows[] = {{"short", SloTracker::kShortWindowS},
                                        {"long", SloTracker::kLongWindowS},
                                        {"slow", SloTracker::kSlowWindowS}};
  for (const Window& window : kWindows) {
    auto& owned = entry.windows[window.name];
    if (owned == nullptr) {
      owned = std::make_unique<MetricsRegistry>(base_ + "/tenant/" +
                                                std::to_string(tenant) + "/window/" +
                                                window.name);
    }
    owned->gauge("slo.burn_rate").set(tracker.burn_rate(window.seconds, now_s));
    owned->gauge("slo.window_seconds").set(window.seconds);
  }
  (void)tenant;
}

void SloEngine::tick(double now_s) {
  struct Fired {
    std::uint32_t tenant;
    double burn_short;
  };
  std::vector<Fired> fired;
  FastBurnCallback callback;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    callback = on_fast_burn_;
    for (auto& [tenant, entry] : entries_) {
      const SloState before = entry.tracker.state();
      const SloState after = entry.tracker.evaluate(now_s);
      if (after == SloState::kFastBurn && before != SloState::kFastBurn) {
        ++fast_burn_transitions_;
        fired.push_back(
            {tenant, entry.tracker.burn_rate(SloTracker::kShortWindowS, now_s)});
      }
      export_entry(tenant, entry, now_s);
    }
  }
  // Callbacks run unlocked: the daemon's hook writes a flight-recorder
  // postmortem, which must not nest inside the engine mutex.
  if (callback) {
    for (const Fired& f : fired) callback(f.tenant, f.burn_short);
  }
}

SloState SloEngine::state(std::uint32_t tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(tenant);
  return it == entries_.end() ? SloState::kOk : it->second.tracker.state();
}

double SloEngine::burn_rate(std::uint32_t tenant, double window_s, double now_s) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(tenant);
  return it == entries_.end() ? 0.0 : it->second.tracker.burn_rate(window_s, now_s);
}

double SloEngine::budget_remaining(std::uint32_t tenant, double now_s) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(tenant);
  return it == entries_.end() ? 1.0 : it->second.tracker.budget_remaining(now_s);
}

std::uint64_t SloEngine::good_total(std::uint32_t tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(tenant);
  return it == entries_.end() ? 0 : it->second.tracker.good_total();
}

std::uint64_t SloEngine::bad_total(std::uint32_t tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(tenant);
  return it == entries_.end() ? 0 : it->second.tracker.bad_total();
}

std::uint64_t SloEngine::fast_burn_transitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fast_burn_transitions_;
}

}  // namespace netcl::obs
