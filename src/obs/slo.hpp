// Per-tenant SLO engine (ISSUE 9): configurable latency/availability
// objectives per computation id, sliding-window good/bad accounting, and
// multi-window burn-rate alerting.
//
// Semantics follow the SRE-workbook recipe. An *event* is one unit of
// served work (a packet through the daemon, a round trip on the host). An
// event is *good* when it was served and met the latency threshold (when
// one is configured); shed, dropped, or over-threshold events are *bad*.
// The error budget is (1 − availability_target): the fraction of events
// allowed to be bad. The *burn rate* over a window is
//     (bad fraction in window) / error budget
// so burn 1.0 spends the budget exactly at the sustainable pace, and burn
// 14.4 exhausts a 30-day budget in ~2 days. Alerting is multi-window to be
// both fast and flap-free: FAST_BURN requires the fast threshold in the
// short *and* long windows (a real sustained flood, not one bad batch);
// SLOW_BURN requires the slow threshold in the long *and* slow windows.
//
// Events land in per-second buckets of a fixed ring (one hour deep — also
// the budget accounting horizon), so recording is O(1) and evaluating a
// window is O(window seconds). All clocks are caller-supplied seconds
// (monotonic), which keeps the engine deterministic under test.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace netcl::obs {

/// What a tenant was promised.
struct SloObjective {
  /// Latency criterion: a served event is bad when it took longer than
  /// this. 0 disables the criterion (availability-only objective).
  double latency_threshold_ns = 0.0;
  /// Required good fraction, in (0, 1). 0.999 = "three nines".
  double availability_target = 0.999;

  [[nodiscard]] double error_budget() const {
    const double budget = 1.0 - availability_target;
    return budget > 1e-9 ? budget : 1e-9;
  }
};

enum class SloState : std::uint8_t { kOk = 0, kSlowBurn = 1, kFastBurn = 2 };
[[nodiscard]] const char* to_string(SloState state);

/// Sliding-window good/bad accounting and the burn-rate state machine for
/// one tenant. Not thread-safe by itself; SloEngine serializes access.
class SloTracker {
 public:
  // Window lengths (seconds). Scaled down from the workbook's hours to a
  // daemon whose lifetime is minutes: the ratios (1:12:60) and thresholds
  // are the standard ones, the absolute spans are not.
  static constexpr double kShortWindowS = 5.0;
  static constexpr double kLongWindowS = 60.0;
  static constexpr double kSlowWindowS = 300.0;
  /// Budget accounting horizon == ring depth.
  static constexpr double kBudgetWindowS = 3600.0;
  static constexpr double kFastBurnThreshold = 14.4;
  static constexpr double kSlowBurnThreshold = 6.0;

  explicit SloTracker(SloObjective objective) : objective_(objective) {}

  [[nodiscard]] const SloObjective& objective() const { return objective_; }

  /// A served event: good iff it met the latency threshold.
  void record_latency(double latency_ns, double now_s);
  void record_good(double now_s);
  /// A shed/dropped/failed event.
  void record_bad(double now_s);

  /// (bad fraction over the trailing window) / error budget; 0 when the
  /// window saw no events.
  [[nodiscard]] double burn_rate(double window_s, double now_s) const;
  /// Fraction of the error budget left over the trailing budget window,
  /// clamped to [0, 1]; 1 when no events were seen.
  [[nodiscard]] double budget_remaining(double now_s) const;

  /// Advances the multi-window state machine and returns the new state.
  SloState evaluate(double now_s);
  [[nodiscard]] SloState state() const { return state_; }

  [[nodiscard]] std::uint64_t good_total() const { return good_total_; }
  [[nodiscard]] std::uint64_t bad_total() const { return bad_total_; }

 private:
  struct Bucket {
    std::int64_t second = -1;  // which wall second this bucket holds
    std::uint64_t good = 0;
    std::uint64_t bad = 0;
  };
  static constexpr int kBuckets = static_cast<int>(kBudgetWindowS);

  Bucket& bucket_at(double now_s);
  void sum_window(double window_s, double now_s, std::uint64_t* good,
                  std::uint64_t* bad) const;

  SloObjective objective_;
  SloState state_ = SloState::kOk;
  std::uint64_t good_total_ = 0;
  std::uint64_t bad_total_ = 0;
  std::vector<Bucket> buckets_ = std::vector<Bucket>(kBuckets);
};

/// Process-side engine: one tracker per tenant, metric export, and the
/// fast-burn anomaly hook. Thread-safe (one mutex; record is a map lookup
/// and two integer bumps, and is only reached when objectives exist).
///
/// Exported series live in registries named
/// "<base>/tenant/<id>" (slo.budget_remaining, slo.state, slo.latency_ns,
/// objective gauges) and "<base>/tenant/<id>/window/<name>"
/// (slo.burn_rate, slo.window_seconds), which the Prometheus layer turns
/// into netcl_slo_budget_remaining{tenant=...} and
/// netcl_slo_burn_rate{tenant=...,window=...}.
class SloEngine {
 public:
  /// Fired on each transition *into* kFastBurn: (tenant, short-window
  /// burn rate). The daemon points this at the flight recorder.
  using FastBurnCallback = std::function<void(std::uint32_t, double)>;

  /// `base_registry` names the registry family the engine exports into —
  /// pass the owner's base metrics name so SLO series share the registry
  /// label with the owner's per-tenant series.
  explicit SloEngine(std::string base_registry) : base_(std::move(base_registry)) {}

  void set_objective(std::uint32_t tenant, SloObjective objective);
  [[nodiscard]] bool has_objective(std::uint32_t tenant) const;
  /// True when no tenant has an objective — the daemon's "skip all SLO
  /// work on the hot path" test.
  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::vector<std::uint32_t> tenants() const;

  void set_fast_burn_callback(FastBurnCallback callback);

  /// A served event for `tenant` (no-op without an objective). Also feeds
  /// the per-tenant slo.latency_ns histogram.
  void record_latency(std::uint32_t tenant, double latency_ns, double now_s);
  /// A shed/dropped/failed event for `tenant` (no-op without an objective).
  void record_bad(std::uint32_t tenant, double now_s);

  /// Evaluates every tracker, refreshes exported gauges, and fires the
  /// fast-burn callback on transitions into kFastBurn (edge-triggered —
  /// a tenant burning for minutes produces one callback, not thousands).
  void tick(double now_s);

  [[nodiscard]] SloState state(std::uint32_t tenant) const;
  [[nodiscard]] double burn_rate(std::uint32_t tenant, double window_s,
                                 double now_s) const;
  [[nodiscard]] double budget_remaining(std::uint32_t tenant, double now_s) const;
  [[nodiscard]] std::uint64_t good_total(std::uint32_t tenant) const;
  [[nodiscard]] std::uint64_t bad_total(std::uint32_t tenant) const;
  /// Transitions into kFastBurn so far (all tenants).
  [[nodiscard]] std::uint64_t fast_burn_transitions() const;

 private:
  struct Entry {
    explicit Entry(SloObjective objective) : tracker(objective) {}
    SloTracker tracker;
    std::unique_ptr<MetricsRegistry> registry;
    std::map<std::string, std::unique_ptr<MetricsRegistry>> windows;
  };

  Entry* entry_for(std::uint32_t tenant);  // nullptr without an objective
  void export_entry(std::uint32_t tenant, Entry& entry, double now_s);

  mutable std::mutex mutex_;
  std::string base_;
  std::map<std::uint32_t, Entry> entries_;
  FastBurnCallback on_fast_burn_;
  std::uint64_t fast_burn_transitions_ = 0;
};

}  // namespace netcl::obs
