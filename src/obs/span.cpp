#include "obs/span.hpp"

#include <algorithm>
#include <string>

namespace netcl::obs {

ClockAlignment align_clocks(double host_send_ns, double host_recv_ns,
                            double device_clock_ns) {
  if (host_recv_ns < host_send_ns) return {};
  return {(host_send_ns + host_recv_ns) / 2.0 - device_clock_ns, true};
}

SpanCollector::SpanCollector(Tracer& tracer, MetricsRegistry& metrics)
    : tracer_(tracer), metrics_(metrics) {}

void SpanCollector::set_clock_offset(std::uint16_t device_id, double offset_ns) {
  offsets_[device_id] = offset_ns;
}

double SpanCollector::clock_offset(std::uint16_t device_id) const {
  const auto it = offsets_.find(device_id);
  return it == offsets_.end() ? 0.0 : it->second;
}

void SpanCollector::record_one_way(const SpanSample& sample) {
  SpanSample adjusted = sample;
  adjusted.pack_ns = 0.0;
  adjusted.send_ns = sample.recv_ns;
  for (const sim::TelemetryHop& hop : sample.hops) {
    const double ingress = static_cast<double>(hop.ingress_ns) + clock_offset(hop.device_id);
    adjusted.send_ns = std::min(adjusted.send_ns, ingress);
  }
  record_span(adjusted);
}

void SpanCollector::record_span(const SpanSample& sample) {
  ++spans_;
  span_ns_.record(sample.recv_ns - sample.send_ns);
  for (const sim::TelemetryHop& hop : sample.hops) {
    ++hops_;
    hop_latency_ns_.record(static_cast<double>(hop.egress_ns - hop.ingress_ns));
    queue_depth_.record(static_cast<double>(hop.queue_depth));
  }
  if (!tracer_.enabled()) return;

  const std::string comp = "comp" + std::to_string(sample.computation);
  const int host_pid = sample.host_id;
  tracer_.set_process_name(host_pid, "host " + std::to_string(sample.host_id));

  // All trace timestamps are on the host transport clock, in microseconds.
  TraceEvent round_trip;
  round_trip.name = comp + " round_trip";
  round_trip.category = "telemetry";
  round_trip.ts_us = sample.send_ns / 1e3;
  round_trip.dur_us = (sample.recv_ns - sample.send_ns) / 1e3;
  round_trip.pid = host_pid;
  round_trip.tid = sample.computation;
  round_trip.args.emplace_back("hops", std::to_string(sample.hops.size()));
  tracer_.record_complete(std::move(round_trip));

  if (sample.pack_ns > 0.0) {
    TraceEvent pack;
    pack.name = comp + " pack";
    pack.category = "telemetry";
    pack.ts_us = (sample.send_ns - sample.pack_ns) / 1e3;
    pack.dur_us = sample.pack_ns / 1e3;
    pack.pid = host_pid;
    pack.tid = sample.computation;
    tracer_.record_complete(std::move(pack));
  }
  if (sample.unpack_ns > 0.0) {
    TraceEvent unpack;
    unpack.name = comp + " unpack";
    unpack.category = "telemetry";
    unpack.ts_us = (sample.recv_ns - sample.unpack_ns) / 1e3;
    unpack.dur_us = sample.unpack_ns / 1e3;
    unpack.pid = host_pid;
    unpack.tid = sample.computation;
    tracer_.record_complete(std::move(unpack));
  }

  for (const sim::TelemetryHop& hop : sample.hops) {
    const double offset = clock_offset(hop.device_id);
    double ingress = static_cast<double>(hop.ingress_ns) + offset;
    double egress = static_cast<double>(hop.egress_ns) + offset;
    // The hop physically happened between send and recv; clamp residual
    // skew so the merged trace stays monotonic.
    const double lo = sample.send_ns;
    const double hi = sample.recv_ns;
    const double clamped_ingress = std::clamp(ingress, lo, hi);
    const double clamped_egress = std::clamp(std::max(egress, ingress), lo, hi);
    if (clamped_ingress != ingress || clamped_egress != egress) ++clamped_;

    const int device_pid = kDevicePidBase + hop.device_id;
    tracer_.set_process_name(device_pid, "device " + std::to_string(hop.device_id));
    TraceEvent event;
    event.name = comp + " hop";
    event.category = "telemetry";
    event.ts_us = clamped_ingress / 1e3;
    event.dur_us = (clamped_egress - clamped_ingress) / 1e3;
    event.pid = device_pid;
    event.tid = sample.computation;
    event.args.emplace_back("generation", std::to_string(hop.generation));
    event.args.emplace_back("queue_depth", std::to_string(hop.queue_depth));
    event.args.emplace_back("stage_ops", std::to_string(hop.stage_ops));
    tracer_.record_complete(std::move(event));
  }
}

}  // namespace netcl::obs
