// End-to-end span reconstruction from in-band telemetry (ISSUE 4).
//
// A SpanCollector receives one SpanSample per completed round trip — the
// host's send/receive timestamps plus the TelemetryHop stamps the devices
// appended in flight — and turns it into:
//
//  * int_span_ns / int_hop_latency_ns / int_queue_depth histograms in the
//    registry it was given (obs::dump() and the Prometheus exposition pick
//    them up), and
//  * merged multi-process Chrome-trace events on the tracer: one pid lane
//    per host and per device, so chrome://tracing shows host pack → device
//    hops → host unpack for the same computation side by side.
//
// Device stamps are on the device's clock (fabric time for a simulated
// switch, daemon wall clock for netcl-swd). align_clocks() estimates the
// host-device offset from one PING/PONG exchange (the existing heartbeat);
// the collector applies the per-device offset and then clamps hops into
// the host's [send, recv] window so emitted spans are always monotonic
// even under residual skew.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/telemetry.hpp"

namespace netcl::obs {

/// host_clock ≈ device_clock + offset_ns.
struct ClockAlignment {
  double offset_ns = 0.0;
  bool valid = false;
};

/// Midpoint estimator over one request/response exchange: the device read
/// its clock once between the host's send and receive, so the best guess
/// places that reading at the midpoint. The error is bounded by half the
/// round-trip time regardless of the actual (constant) skew.
[[nodiscard]] ClockAlignment align_clocks(double host_send_ns, double host_recv_ns,
                                          double device_clock_ns);

/// One completed computation round trip, on the host transport clock.
struct SpanSample {
  std::uint16_t host_id = 0;
  int computation = 0;
  double send_ns = 0.0;    // transport clock when the request left
  double recv_ns = 0.0;    // transport clock when the response arrived
  double pack_ns = 0.0;    // host-side argument pack duration (wall)
  double unpack_ns = 0.0;  // host-side argument unpack duration (wall)
  std::vector<sim::TelemetryHop> hops;
};

class SpanCollector {
 public:
  /// Trace-viewer pid lanes: hosts keep their id, devices live at
  /// kDevicePidBase + device_id (host and device id spaces overlap).
  static constexpr int kDevicePidBase = 10000;

  /// Records into `tracer` (only when it is enabled) and `metrics` (always).
  /// Both must outlive the collector.
  SpanCollector(Tracer& tracer, MetricsRegistry& metrics);

  /// Installs the host→device clock offset for a device (from
  /// align_clocks over a heartbeat PING/PONG). Unknown devices fall back
  /// to offset 0 — correct for the simulator, where every clock is the
  /// fabric clock.
  void set_clock_offset(std::uint16_t device_id, double offset_ns);
  [[nodiscard]] double clock_offset(std::uint16_t device_id) const;

  void record_span(const SpanSample& sample);
  /// One-way traffic (no matching send on this host, e.g. a consensus
  /// delivery): the span window opens at the earliest aligned hop ingress
  /// instead of sample.send_ns, which is ignored along with pack_ns.
  void record_one_way(const SpanSample& sample);
  [[nodiscard]] std::uint64_t spans() const { return spans_.value(); }

 private:
  Tracer& tracer_;
  MetricsRegistry& metrics_;
  std::map<std::uint16_t, double> offsets_;

  Counter& spans_ = metrics_.counter("int_spans");
  Counter& hops_ = metrics_.counter("int_hops");
  /// Hops whose aligned timestamps fell outside the host's [send, recv]
  /// window and were clamped (residual clock skew beyond the estimate).
  Counter& clamped_ = metrics_.counter("int_clock_clamped");
  Histogram& span_ns_ = metrics_.histogram("int_span_ns");
  Histogram& hop_latency_ns_ = metrics_.histogram("int_hop_latency_ns");
  Histogram& queue_depth_ = metrics_.histogram("int_queue_depth");
};

}  // namespace netcl::obs
