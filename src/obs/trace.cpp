#include "obs/trace.hpp"

#include <fstream>

#include "obs/json.hpp"

namespace netcl::obs {

void Tracer::clear() {
  events_.clear();
  process_names_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

std::string Tracer::to_chrome_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ns");
  w.key("traceEvents");
  w.begin_array();
  for (const auto& [pid, name] : process_names_) {
    w.begin_object();
    w.key("name");
    w.value("process_name");
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(pid);
    w.key("tid");
    w.value(1);
    w.key("args");
    w.begin_object();
    w.key("name");
    w.value(name);
    w.end_object();
    w.end_object();
  }
  for (const TraceEvent& event : events_) {
    w.begin_object();
    w.key("name");
    w.value(event.name);
    w.key("cat");
    w.value(event.category);
    w.key("ph");
    w.value("X");
    w.key("ts");
    w.value(event.ts_us);
    w.key("dur");
    w.value(event.dur_us);
    w.key("pid");
    w.value(event.pid);
    w.key("tid");
    w.value(event.tid);
    if (!event.args.empty()) {
      w.key("args");
      w.begin_object();
      for (const auto& [key, value] : event.args) {
        w.key(key);
        w.value(value);
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

bool Tracer::write(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << to_chrome_json() << "\n";
  return file.good();
}

Tracer& tracer() {
  static Tracer global;
  return global;
}

}  // namespace netcl::obs
