// netcl::obs tracing: RAII spans serialized to the Chrome trace-event
// format (load the output in chrome://tracing or https://ui.perfetto.dev).
//
// The tracer is disabled by default and compiled for near-zero overhead in
// that state: TraceSpan's constructor reads one bool; no clock is touched,
// no string is copied, and nothing allocates until a span actually records.
// ncc --trace-out <file> and tests enable it explicitly.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace netcl::obs {

/// One completed ("ph":"X") trace event, in microseconds since the
/// tracer's epoch (the unit Chrome's trace format expects). pid/tid group
/// events into trace-viewer process/thread lanes — cross-process telemetry
/// spans (ISSUE 4) use one pid per host and per device so a merged trace
/// shows every participant side by side.
struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int pid = 1;
  int tid = 1;
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Microseconds since this tracer was constructed (or last cleared).
  [[nodiscard]] double now_us() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  void record_complete(TraceEvent event) { events_.push_back(std::move(event)); }

  /// Names a pid lane ("host 1", "device 3"): emitted as process_name
  /// metadata events so chrome://tracing labels the lanes.
  void set_process_name(int pid, std::string name) { process_names_[pid] = std::move(name); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  void clear();

  /// {"displayTimeUnit":"ns","traceEvents":[...]} — the Chrome/Perfetto
  /// trace-event JSON object form.
  [[nodiscard]] std::string to_chrome_json() const;

  /// Writes to_chrome_json() to `path`; false on I/O failure.
  bool write(const std::string& path) const;

 private:
  bool enabled_ = false;
  std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
  std::vector<TraceEvent> events_;
  std::map<int, std::string> process_names_;
};

/// The process-wide tracer the compiler and runtime instrument against.
Tracer& tracer();

/// RAII scope: records one complete event from construction to
/// destruction. On a disabled tracer every member is a no-op.
class TraceSpan {
 public:
  TraceSpan(Tracer& tracer, std::string_view category, std::string_view name)
      : tracer_(tracer.enabled() ? &tracer : nullptr) {
    if (tracer_ != nullptr) {
      event_.category = category;
      event_.name = name;
      event_.ts_us = tracer_->now_us();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (tracer_ != nullptr) {
      event_.dur_us = tracer_->now_us() - event_.ts_us;
      tracer_->record_complete(std::move(event_));
    }
  }

  /// Attaches a key/value argument shown in the trace viewer.
  void arg(std::string_view key, std::string value) {
    if (tracer_ != nullptr) event_.args.emplace_back(std::string(key), std::move(value));
  }
  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_;
  TraceEvent event_;
};

}  // namespace netcl::obs
