#include "p4/admission.hpp"

#include <algorithm>

namespace netcl::p4 {

namespace {

/// Subtracts the base-program rows a single-program allocation charged, so
/// aggregating N tenants does not count the shared runtime N times.
/// Clamped at zero: a legacy vector that never charged the base rows must
/// not go negative.
StageUsage net_of_base(const StageUsage& usage) {
  const StageUsage base = base_stage_usage();
  StageUsage net = usage;
  net.sram = std::max(0, net.sram - base.sram);
  net.vliw = std::max(0, net.vliw - base.vliw);
  net.tables = std::max(0, net.tables - base.tables);
  return net;
}

void append_resource(std::string& out, const char* name, int used, int limit) {
  out += ' ';
  out += name;
  out += '=';
  out += std::to_string(used);
  out += '/';
  out += std::to_string(limit);
}

std::string over_budget_reason(int stage, const StageUsage& usage, const StageLimits& limits) {
  std::string reason = "stage " + std::to_string(stage) + " over budget:";
  if (usage.sram > limits.sram_blocks) append_resource(reason, "sram", usage.sram, limits.sram_blocks);
  if (usage.tcam > limits.tcam_blocks) append_resource(reason, "tcam", usage.tcam, limits.tcam_blocks);
  if (usage.salus > limits.salus) append_resource(reason, "salu", usage.salus, limits.salus);
  if (usage.vliw > limits.vliw_slots) append_resource(reason, "vliw", usage.vliw, limits.vliw_slots);
  if (usage.hash > limits.hash_units) append_resource(reason, "hash", usage.hash, limits.hash_units);
  if (usage.tables > limits.tables) append_resource(reason, "tables", usage.tables, limits.tables);
  return reason;
}

}  // namespace

std::string AdmissionReport::to_string(const StageLimits& limits) const {
  std::string out = admitted ? "admitted" : "rejected";
  if (!reason.empty()) out += " (" + reason + ")";
  out += "; " + std::to_string(stages_used) + "/" + std::to_string(limits.stages) + " stages\n";
  for (std::size_t s = 0; s < aggregate.size(); ++s) {
    const StageUsage& usage = aggregate[s];
    std::string row = "  stage " + std::to_string(s) + ":";
    append_resource(row, "sram", usage.sram, limits.sram_blocks);
    append_resource(row, "tcam", usage.tcam, limits.tcam_blocks);
    append_resource(row, "salu", usage.salus, limits.salus);
    append_resource(row, "vliw", usage.vliw, limits.vliw_slots);
    append_resource(row, "hash", usage.hash, limits.hash_units);
    append_resource(row, "tables", usage.tables, limits.tables);
    if (!usage.fits(limits)) row += "  <-- over";
    out += row + "\n";
  }
  return out;
}

AdmissionReport AdmissionController::evaluate(const std::vector<StageUsage>* candidate) const {
  AdmissionReport report;
  std::size_t stages = 0;
  for (const auto& [tenant, per_stage] : resident_) stages = std::max(stages, per_stage.size());
  if (candidate != nullptr) stages = std::max(stages, candidate->size());
  stages = std::max<std::size_t>(stages, static_cast<std::size_t>(base_stages_));

  report.aggregate.assign(stages, StageUsage{});
  // The shared base/runtime program occupies its stages exactly once, no
  // matter how many tenants are resident.
  for (int s = 0; s < base_stages_ && static_cast<std::size_t>(s) < stages; ++s) {
    report.aggregate[static_cast<std::size_t>(s)] += base_stage_usage();
  }
  auto add_program = [&](const std::vector<StageUsage>& per_stage) {
    for (std::size_t s = 0; s < per_stage.size(); ++s) {
      report.aggregate[s] += static_cast<int>(s) < base_stages_ ? net_of_base(per_stage[s])
                                                                : per_stage[s];
    }
  };
  for (const auto& [tenant, per_stage] : resident_) add_program(per_stage);
  if (candidate != nullptr) add_program(*candidate);

  report.stages_used = static_cast<int>(stages);
  report.admitted = true;
  for (std::size_t s = 0; s < report.aggregate.size(); ++s) {
    const StageUsage& usage = report.aggregate[s];
    report.worst.sram = std::max(report.worst.sram, usage.sram);
    report.worst.tcam = std::max(report.worst.tcam, usage.tcam);
    report.worst.salus = std::max(report.worst.salus, usage.salus);
    report.worst.vliw = std::max(report.worst.vliw, usage.vliw);
    report.worst.hash = std::max(report.worst.hash, usage.hash);
    report.worst.tables = std::max(report.worst.tables, usage.tables);
    if (report.admitted && !usage.fits(limits_)) {
      report.admitted = false;
      report.reason = over_budget_reason(static_cast<int>(s), usage, limits_);
    }
  }
  if (report.admitted && report.stages_used > limits_.stages) {
    report.admitted = false;
    report.reason = "combined programs need " + std::to_string(report.stages_used) +
                    " stages but the target has " + std::to_string(limits_.stages);
  }
  return report;
}

AdmissionReport AdmissionController::admit(std::uint32_t tenant,
                                           const std::vector<StageUsage>& per_stage) {
  if (resident(tenant)) {
    AdmissionReport report = evaluate(nullptr);
    report.admitted = false;
    report.reason = "tenant " + std::to_string(tenant) + " is already resident";
    return report;
  }
  AdmissionReport report = evaluate(&per_stage);
  if (report.admitted) resident_[tenant] = per_stage;
  return report;
}

void AdmissionController::release(std::uint32_t tenant) { resident_.erase(tenant); }

AdmissionReport AdmissionController::current() const { return evaluate(nullptr); }

std::string AdmissionController::summary() const {
  const AdmissionReport report = evaluate(nullptr);
  std::string out = std::to_string(resident_.size()) +
                    (resident_.size() == 1 ? " tenant, " : " tenants, ") +
                    std::to_string(report.stages_used) + "/" + std::to_string(limits_.stages) +
                    " stages, worst stage";
  append_resource(out, "sram", report.worst.sram, limits_.sram_blocks);
  append_resource(out, "salu", report.worst.salus, limits_.salus);
  append_resource(out, "vliw", report.worst.vliw, limits_.vliw_slots);
  append_resource(out, "tables", report.worst.tables, limits_.tables);
  return out;
}

}  // namespace netcl::p4
