// Runtime admission control for co-resident kernel programs (ROADMAP #3,
// the ClickINC "INC as a service" model).
//
// The stage allocator proves one program fits an empty pipeline; the
// AdmissionController proves the *sum* of all resident programs still fits
// when a new one wants in. It keeps the per-stage StageUsage vector of
// every resident tenant, and admits a candidate only if every stage's
// aggregate — base/runtime program overhead counted once, not once per
// tenant — stays within StageLimits, and the combined stage count stays
// within the pipeline depth.
//
// Rejections carry a full per-stage resource report (the data a typed
// runtime::Error{kRejected} surfaces to operators), so a refused tenant
// knows exactly which stage and which resource ran out.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "p4/resources.hpp"

namespace netcl::p4 {

/// Outcome of one admission attempt. `aggregate` always reflects the
/// attempted placement (residents + candidate), so a rejection report
/// shows the overflow it refused, not the state it kept.
struct AdmissionReport {
  bool admitted = false;
  /// Human-readable cause on rejection ("stage 2 over budget: salus 16 >
  /// 8"); empty when admitted.
  std::string reason;
  /// Stages the attempted placement spans (max over residents + candidate).
  int stages_used = 0;
  /// Per-stage aggregate usage of the attempted placement.
  std::vector<StageUsage> aggregate;
  /// Worst single stage of the aggregate (per resource, independently).
  StageUsage worst;

  /// Multi-line per-stage resource report ("stage 1: sram=12/80 ..."),
  /// the payload a kRejected error carries.
  [[nodiscard]] std::string to_string(const StageLimits& limits) const;
};

class AdmissionController {
 public:
  explicit AdmissionController(StageLimits limits = {}, int base_stages = 1)
      : limits_(limits), base_stages_(base_stages) {}

  /// Attempts to admit `tenant` with the allocator-produced per-stage
  /// usage vector (base rows included, exactly as AllocationResult
  /// reports it). On success the tenant is recorded as resident; on
  /// failure nothing changes. Re-admitting a resident tenant id fails.
  AdmissionReport admit(std::uint32_t tenant, const std::vector<StageUsage>& per_stage);

  /// Forgets a resident tenant (no-op for unknown ids).
  void release(std::uint32_t tenant);

  [[nodiscard]] bool resident(std::uint32_t tenant) const {
    return resident_.count(tenant) != 0;
  }
  [[nodiscard]] std::size_t resident_count() const { return resident_.size(); }
  [[nodiscard]] const StageLimits& limits() const { return limits_; }

  /// Aggregate of the current residents (no candidate).
  [[nodiscard]] AdmissionReport current() const;

  /// One-line headroom summary for operator output:
  /// "2 tenants, 4/12 stages, worst stage sram 14/80 salu 8/8 ...".
  [[nodiscard]] std::string summary() const;

 private:
  /// Aggregates residents plus an optional candidate; fills
  /// admitted/reason from the fit check.
  [[nodiscard]] AdmissionReport evaluate(const std::vector<StageUsage>* candidate) const;

  StageLimits limits_;
  int base_stages_ = 1;
  std::map<std::uint32_t, std::vector<StageUsage>> resident_;
};

}  // namespace netcl::p4
