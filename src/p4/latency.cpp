#include "p4/latency.hpp"

namespace netcl::p4 {

int LatencyModel::worst_case_cycles(int stages_used) const {
  if (stages_used > total_stages) stages_used = total_stages;
  const int occupied = stages_used * cycles_per_stage;
  const int bypassed = (total_stages - stages_used) * bypassed_stage_cycles;
  const int ingress = parser_cycles + occupied + bypassed + deparser_cycles;
  // Worst case: no egress bypass — the packet traverses an (empty) egress
  // pipeline after the traffic manager.
  const int egress =
      parser_cycles + total_stages * bypassed_stage_cycles + deparser_cycles;
  return ingress + traffic_manager_cycles + egress;
}

}  // namespace netcl::p4
