// Per-packet device latency model (Fig. 13 of the paper).
//
// Tofino's pipeline has a fixed per-stage cost; packets traverse the parser,
// the occupied MAU stages, the deparser, the traffic manager, and (unless
// bypassed) the egress pipeline. The paper reports worst-case latency (no
// egress bypass) derived from the compiler's exact cycle counts; we model
// the same structure with public clock-order numbers (1.22 GHz core clock).
#pragma once

namespace netcl::p4 {

struct LatencyModel {
  double clock_ghz = 1.22;
  int parser_cycles = 110;
  int cycles_per_stage = 22;
  int bypassed_stage_cycles = 3;   // unoccupied stages still forward the PHV
  int deparser_cycles = 60;
  int traffic_manager_cycles = 300;
  int total_stages = 12;

  /// Worst-case (no egress bypass) cycles for a program occupying
  /// `stages_used` ingress stages; the egress pass re-traverses parser +
  /// empty stages + deparser.
  [[nodiscard]] int worst_case_cycles(int stages_used) const;
  [[nodiscard]] double worst_case_ns(int stages_used) const {
    return static_cast<double>(worst_case_cycles(stages_used)) / clock_ghz;
  }
};

}  // namespace netcl::p4
