#include <cassert>
#include <unordered_map>

#include "p4/pipeline.hpp"

namespace netcl::p4 {

using namespace netcl::ir;

std::vector<const LinearInst*> KernelProgram::ret_actions() const {
  std::vector<const LinearInst*> result;
  for (const LinearInst& li : insts) {
    if (li.inst->op() == Opcode::RetAction) result.push_back(&li);
  }
  return result;
}

namespace {

class Linearizer {
 public:
  Linearizer(Function& fn, const LinearizeOptions& options) : fn_(fn), options_(options) {}

  KernelProgram run() {
    fn_.recompute_preds();
    program_.fn = &fn_;
    Module& module = *fn_.parent();
    Constant* true_const = module.bool_constant(true);

    for (BasicBlock* block : fn_.reverse_postorder()) {
      // Block predicate: OR of incoming edge predicates.
      Value* pred = nullptr;
      if (block != fn_.entry()) {
        bool always = false;
        Value* acc = nullptr;
        for (BasicBlock* from : block->predecessors()) {
          const auto it = edge_preds_.find({from, block});
          Value* edge = it != edge_preds_.end() ? it->second : nullptr;
          if (edge == nullptr) {
            always = true;
            break;
          }
          acc = acc == nullptr ? edge : emit_bin(BinKind::Or, acc, edge);
        }
        pred = always ? nullptr : acc;
      }
      block_preds_[block] = pred;

      for (const auto& owned : block->instructions()) {
        Instruction* inst = owned.get();
        switch (inst->op()) {
          case Opcode::Phi: {
            // Select chain over incoming edge predicates. The (at most one)
            // unconditional incoming edge provides the base value.
            Value* base = nullptr;
            std::vector<std::pair<Value*, Value*>> guarded;  // (edge pred, value)
            for (std::size_t i = 0; i < inst->num_operands(); ++i) {
              BasicBlock* from = inst->phi_blocks[i];
              const auto it = edge_preds_.find({from, block});
              Value* edge = it != edge_preds_.end() ? it->second : nullptr;
              if (edge == nullptr) {
                base = inst->operand(i);
              } else {
                guarded.emplace_back(edge, inst->operand(i));
              }
            }
            if (base == nullptr && !guarded.empty()) {
              base = guarded.back().second;
              guarded.pop_back();
            }
            Value* value = base != nullptr ? base : module.constant(inst->type(), 0);
            for (const auto& [edge, v] : guarded) {
              value = emit_select(edge, v, value, inst->type());
            }
            phi_values_[inst] = value;
            break;
          }
          case Opcode::Br: {
            edge_preds_[{block, inst->succs[0]}] = pred;
            break;
          }
          case Opcode::CondBr: {
            Value* cond = resolve(inst->operand(0));
            Value* not_cond = emit_bin(BinKind::Xor, cond, true_const);
            edge_preds_[{block, inst->succs[0]}] = and_preds(pred, cond);
            edge_preds_[{block, inst->succs[1]}] = and_preds(pred, not_cond);
            break;
          }
          case Opcode::Ret:
            break;  // net functions only; kernels never carry these
          default: {
            // Rewrite operands that reference phis.
            for (std::size_t i = 0; i < inst->num_operands(); ++i) {
              inst->set_operand(i, resolve(inst->operand(i)));
            }
            const bool stateful = inst->has_side_effects() || inst->accesses_global() ||
                                  inst->op() == Opcode::LookupValue;
            Value* guard = nullptr;
            if (stateful) {
              guard = pred;
            } else if (!options_.speculation) {
              guard = pred;  // keep control dependence: no speculation
            }
            program_.insts.push_back({inst, guard, -1, false});
            break;
          }
        }
      }
    }
    return std::move(program_);
  }

 private:
  Value* resolve(Value* v) {
    if (v->kind() != ValueKind::Instruction) return v;
    const auto it = phi_values_.find(static_cast<Instruction*>(v));
    return it != phi_values_.end() ? it->second : v;
  }

  Value* and_preds(Value* pred, Value* cond) {
    if (pred == nullptr) return cond;
    return emit_bin(BinKind::And, pred, cond);
  }

  Value* emit_bin(BinKind kind, Value* a, Value* b) {
    auto inst = std::make_unique<Instruction>(Opcode::Bin, kBool);
    inst->bin_kind = kind;
    inst->add_operand(resolve(a));
    inst->add_operand(resolve(b));
    Instruction* ptr = inst.get();
    program_.synthesized.push_back(std::move(inst));
    program_.insts.push_back({ptr, nullptr, -1, true});
    return ptr;
  }

  Value* emit_select(Value* cond, Value* a, Value* b, ScalarType type) {
    auto inst = std::make_unique<Instruction>(Opcode::Select, type);
    inst->add_operand(resolve(cond));
    inst->add_operand(resolve(a));
    inst->add_operand(resolve(b));
    Instruction* ptr = inst.get();
    program_.synthesized.push_back(std::move(inst));
    program_.insts.push_back({ptr, nullptr, -1, true});
    return ptr;
  }

  struct EdgeHash {
    std::size_t operator()(const std::pair<BasicBlock*, BasicBlock*>& e) const {
      return std::hash<const void*>()(e.first) * 31 ^ std::hash<const void*>()(e.second);
    }
  };

  Function& fn_;
  const LinearizeOptions& options_;
  KernelProgram program_;
  std::unordered_map<std::pair<BasicBlock*, BasicBlock*>, Value*, EdgeHash> edge_preds_;
  std::unordered_map<BasicBlock*, Value*> block_preds_;
  std::unordered_map<Instruction*, Value*> phi_values_;
};

}  // namespace

KernelProgram linearize(Function& fn, const LinearizeOptions& options) {
  Linearizer linearizer(fn, options);
  return linearizer.run();
}

std::vector<KernelProgram> linearize_module(Module& module, const LinearizeOptions& options) {
  std::vector<KernelProgram> programs;
  for (const auto& fn : module.functions()) {
    programs.push_back(linearize(*fn, options));
  }
  return programs;
}

}  // namespace netcl::p4
