#include "p4/p4_printer.hpp"

#include <sstream>
#include <unordered_map>

#include "ir/dominators.hpp"
#include "support/source.hpp"

namespace netcl::p4 {

using namespace netcl::ir;

namespace {

std::string bit_type(int bits) { return "bit<" + std::to_string(bits < 8 ? 8 : bits) + ">"; }

std::string p4_literal(const Constant& c) {
  const int bits = c.type().bits < 8 ? 8 : c.type().bits;
  return std::to_string(bits) + "w" + std::to_string(c.value());
}

std::string bin_operator(BinKind kind) {
  switch (kind) {
    case BinKind::Add: return "+";
    case BinKind::Sub: return "-";
    case BinKind::Mul: return "*";
    case BinKind::UDiv:
    case BinKind::SDiv: return "/";
    case BinKind::URem:
    case BinKind::SRem: return "%";
    case BinKind::Shl: return "<<";
    case BinKind::LShr:
    case BinKind::AShr: return ">>";
    case BinKind::And: return "&";
    case BinKind::Or: return "|";
    case BinKind::Xor: return "^";
    case BinKind::SAddSat: return "|+|";
    case BinKind::SSubSat: return "|-|";
    default: return "?";
  }
}

std::string icmp_operator(ICmpPred pred) {
  switch (pred) {
    case ICmpPred::EQ: return "==";
    case ICmpPred::NE: return "!=";
    case ICmpPred::ULT:
    case ICmpPred::SLT: return "<";
    case ICmpPred::ULE:
    case ICmpPred::SLE: return "<=";
    case ICmpPred::UGT:
    case ICmpPred::SGT: return ">";
    case ICmpPred::UGE:
    case ICmpPred::SGE: return ">=";
  }
  return "?";
}

class Printer {
 public:
  Printer(Module& module, P4Dialect dialect) : module_(module), dialect_(dialect) {}

  P4Program run() {
    emit_headers();
    emit_parsers();
    emit_globals();
    for (const auto& fn : module_.functions()) emit_kernel(*fn);
    emit_runtime();
    emit_base();
    emit_boilerplate();
    return std::move(out_);
  }

 private:
  // --- value naming ---------------------------------------------------------
  std::string name_of(const Value* v) {
    if (const Constant* c = as_constant(v)) return p4_literal(*c);
    if (v->kind() == ValueKind::Argument) {
      const auto* arg = static_cast<const Argument*>(v);
      return msg_field(arg->index(), 0);
    }
    const auto it = names_.find(v);
    if (it != names_.end()) return it->second;
    const std::string name = "v" + std::to_string(counter_++);
    names_[v] = name;
    decls_ << "    " << bit_type(v->type().bits) << " " << name << ";\n";
    return name;
  }

  std::string msg_field(int arg_index, int element) {
    const ArgSpec& arg = current_fn_->spec.args[static_cast<std::size_t>(arg_index)];
    std::string field = "hdr.c" + std::to_string(current_fn_->computation()) + "." + arg.name;
    if (arg.count > 1) field += "_" + std::to_string(element);
    return field;
  }

  // --- sections --------------------------------------------------------------
  void emit_headers() {
    std::ostringstream os;
    os << "header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }\n";
    os << "header ipv4_t {\n"
          "    bit<4> version; bit<4> ihl; bit<8> tos; bit<16> totalLen;\n"
          "    bit<16> id; bit<3> flags; bit<13> fragOffset;\n"
          "    bit<8> ttl; bit<8> protocol; bit<16> hdrChecksum;\n"
          "    bit<32> srcAddr; bit<32> dstAddr;\n"
          "}\n";
    os << "header udp_t { bit<16> srcPort; bit<16> dstPort; bit<16> len; bit<16> csum; }\n";
    os << "// NetCL shim header (paper Fig. 10)\n";
    os << "header netcl_t {\n"
          "    bit<16> src; bit<16> dst; bit<16> from; bit<16> to;\n"
          "    bit<8> comp; bit<8> flags; bit<16> len;\n"
          "}\n";
    for (const auto& fn : module_.functions()) {
      os << "// computation " << fn->computation() << " data (kernel " << fn->name() << ")\n";
      os << "header c" << fn->computation() << "_t {\n";
      for (const ArgSpec& arg : fn->spec.args) {
        const int bits = arg.type.bits == 1 ? 8 : arg.type.bits;
        if (arg.count == 1) {
          os << "    " << bit_type(bits) << " " << arg.name << ";\n";
        } else {
          for (int i = 0; i < arg.count; ++i) {
            os << "    " << bit_type(bits) << " " << arg.name << "_" << i << ";\n";
          }
        }
      }
      os << "}\n";
    }
    os << "struct headers_t {\n"
          "    ethernet_t eth; ipv4_t ipv4; udp_t udp; netcl_t netcl;\n";
    for (const auto& fn : module_.functions()) {
      os << "    c" << fn->computation() << "_t c" << fn->computation() << ";\n";
    }
    os << "}\n";
    os << "struct metadata_t { bit<8> ncl_act; bit<16> ncl_tgt; bit<9> out_port; }\n";
    out_.headers = os.str();
  }

  void emit_parsers() {
    std::ostringstream os;
    os << "parser NetCLParser(packet_in pkt, out headers_t hdr"
       << (dialect_ == P4Dialect::V1Model
               ? ", inout metadata_t meta, inout standard_metadata_t std_meta"
               : ", out metadata_t meta")
       << ") {\n";
    os << "    state start { pkt.extract(hdr.eth); transition select(hdr.eth.etherType) {\n"
          "        0x0800: parse_ipv4; default: accept; } }\n";
    os << "    state parse_ipv4 { pkt.extract(hdr.ipv4); transition "
          "select(hdr.ipv4.protocol) {\n"
          "        17: parse_udp; default: accept; } }\n";
    os << "    state parse_udp { pkt.extract(hdr.udp); transition select(hdr.udp.dstPort) {\n"
          "        0x4E43 &&& 0xFFF0: parse_netcl; default: accept; } }\n";
    os << "    state parse_netcl { pkt.extract(hdr.netcl); transition "
          "select(hdr.netcl.comp) {\n";
    for (const auto& fn : module_.functions()) {
      os << "        " << fn->computation() << ": parse_c" << fn->computation() << ";\n";
    }
    os << "        default: accept; } }\n";
    for (const auto& fn : module_.functions()) {
      os << "    state parse_c" << fn->computation() << " { pkt.extract(hdr.c"
         << fn->computation() << "); transition accept; }\n";
    }
    os << "}\n";
    os << "control NetCLDeparser(packet_out pkt, in headers_t hdr) {\n"
          "    apply {\n"
          "        pkt.emit(hdr.eth); pkt.emit(hdr.ipv4); pkt.emit(hdr.udp);\n"
          "        pkt.emit(hdr.netcl);\n";
    for (const auto& fn : module_.functions()) {
      os << "        pkt.emit(hdr.c" << fn->computation() << ");\n";
    }
    os << "    }\n}\n";
    out_.parsers = os.str();
  }

  void emit_globals() {
    std::ostringstream os;
    for (const auto& global : module_.globals()) {
      if (global->is_lookup) continue;  // MATs are emitted with their lookups
      const int bits = global->elem_type.bits < 8 ? 8 : global->elem_type.bits;
      const std::int64_t size = global->element_count();
      if (dialect_ == P4Dialect::Tna) {
        os << "Register<" << bit_type(bits) << ", bit<16>>(" << size << ") " << global->name
           << ";\n";
      } else {
        os << "register<" << bit_type(bits) << ">(" << size << ") " << global->name << ";\n";
      }
    }
    out_.registers = os.str();
  }

  // --- per-kernel emission -----------------------------------------------
  void emit_kernel(Function& fn) {
    current_fn_ = &fn;
    decls_.str("");
    actions_.str("");
    tables_.str("");
    registers_.str("");
    body_.str("");

    fn.recompute_preds();
    PostDominatorTree postdom(fn);

    // Pre-name phis so copies can be emitted on edges.
    for (const auto& block : fn.blocks()) {
      for (const auto& inst : block->instructions()) {
        if (inst->op() == Opcode::Phi) (void)name_of(inst.get());
      }
    }

    body_ << "        if (hdr.netcl.comp == " << fn.computation() << ") {\n";
    indent_ = 12;
    emit_region(fn.entry(), nullptr, postdom);
    body_ << "        }\n";

    out_.registers += registers_.str();
    out_.tables += tables_.str();
    out_.actions += decls_.str() + actions_.str();
    out_.control += body_.str();
    current_fn_ = nullptr;
  }

  void pad() {
    for (int i = 0; i < indent_; ++i) body_ << ' ';
  }

  void emit_region(BasicBlock* block, BasicBlock* stop, const PostDominatorTree& postdom) {
    while (block != nullptr && block != stop) {
      for (const auto& inst : block->instructions()) {
        if (inst->op() == Opcode::Phi || inst->is_terminator()) continue;
        emit_inst(*inst);
      }
      Instruction* term = block->terminator();
      if (term == nullptr) return;
      switch (term->op()) {
        case Opcode::RetAction: {
          pad();
          body_ << "meta.ncl_act = 8w" << static_cast<int>(term->action) << ";";
          if (term->num_operands() > 0) {
            body_ << " meta.ncl_tgt = (bit<16>)" << name_of(term->operand(0)) << ";";
          }
          body_ << " // " << netcl::to_string(term->action) << "\n";
          return;
        }
        case Opcode::Br: {
          emit_phi_copies(block, term->succs[0]);
          block = term->succs[0];
          break;
        }
        case Opcode::CondBr: {
          BasicBlock* merge = postdom.ipostdom(block);
          pad();
          body_ << "if (" << name_of(term->operand(0)) << " == 1w1) {\n";
          indent_ += 4;
          emit_phi_copies(block, term->succs[0]);
          if (term->succs[0] != merge) emit_region(term->succs[0], merge, postdom);
          indent_ -= 4;
          pad();
          body_ << "} else {\n";
          indent_ += 4;
          emit_phi_copies(block, term->succs[1]);
          if (term->succs[1] != merge) emit_region(term->succs[1], merge, postdom);
          indent_ -= 4;
          pad();
          body_ << "}\n";
          block = merge;
          break;
        }
        default:
          return;
      }
    }
  }

  void emit_phi_copies(BasicBlock* from, BasicBlock* to) {
    for (const auto& inst : to->instructions()) {
      if (inst->op() != Opcode::Phi) break;
      for (std::size_t i = 0; i < inst->num_operands(); ++i) {
        if (inst->phi_blocks[i] == from) {
          pad();
          body_ << name_of(inst.get()) << " = " << name_of(inst->operand(i)) << ";\n";
        }
      }
    }
  }

  void emit_alu_action(const Instruction& inst, const std::string& statement) {
    const std::string action_name = "a_" + name_of(&inst);
    actions_ << "    action " << action_name << "() { " << statement << " }\n";
    pad();
    body_ << action_name << "();\n";
  }

  void emit_inst(Instruction& inst) {
    switch (inst.op()) {
      case Opcode::Bin:
        emit_alu_action(inst, name_of(&inst) + " = " + name_of(inst.operand(0)) + " " +
                                  bin_operator(inst.bin_kind) + " " +
                                  name_of(inst.operand(1)) + ";");
        break;
      case Opcode::ICmp:
        emit_alu_action(inst, name_of(&inst) + " = (" + name_of(inst.operand(0)) + " " +
                                  icmp_operator(inst.icmp_pred) + " " +
                                  name_of(inst.operand(1)) + ") ? 8w1 : 8w0;");
        break;
      case Opcode::Select:
        emit_alu_action(inst, name_of(&inst) + " = (" + name_of(inst.operand(0)) +
                                  " == 8w1) ? " + name_of(inst.operand(1)) + " : " +
                                  name_of(inst.operand(2)) + ";");
        break;
      case Opcode::Cast:
        pad();
        body_ << name_of(&inst) << " = (" << bit_type(inst.type().bits) << ")"
              << name_of(inst.operand(0)) << ";\n";
        break;
      case Opcode::Bswap:
        emit_alu_action(inst, name_of(&inst) + " = " + name_of(inst.operand(0)) +
                                  "[7:0] ++ " + name_of(inst.operand(0)) + "[15:8];");
        break;
      case Opcode::Clz: {
        // Lowered through an LPM table (§VI-B).
        const std::string table = "t_clz_" + name_of(&inst);
        tables_ << "    table " << table << " {\n        key = { "
                << name_of(inst.operand(0)) << " : lpm; }\n"
                << "        actions = { a_set_" << name_of(&inst) << "; }\n"
                << "        size = " << static_cast<int>(inst.operand(0)->type().bits) + 1
                << ";\n    }\n";
        actions_ << "    action a_set_" << name_of(&inst) << "(" << bit_type(inst.type().bits)
                 << " n) { " << name_of(&inst) << " = n; }\n";
        pad();
        body_ << table << ".apply();\n";
        break;
      }
      case Opcode::Hash: {
        const std::string hash_name = "h_" + name_of(&inst);
        std::string algo;
        switch (inst.hash_kind) {
          case HashKind::Crc16: algo = "CRC16"; break;
          case HashKind::Crc32: algo = "CRC32"; break;
          case HashKind::Xor16: algo = "XOR16"; break;
          case HashKind::Identity: algo = "IDENTITY"; break;
        }
        std::string inputs;
        for (std::size_t i = 0; i < inst.num_operands(); ++i) {
          inputs += (i != 0 ? ", " : "") + name_of(inst.operand(i));
        }
        if (dialect_ == P4Dialect::Tna) {
          registers_ << "Hash<" << bit_type(inst.type().bits) << ">(HashAlgorithm_t." << algo
                     << ") " << hash_name << ";\n";
          pad();
          body_ << name_of(&inst) << " = " << hash_name << ".get({" << inputs << "});\n";
        } else {
          pad();
          body_ << "hash(" << name_of(&inst) << ", HashAlgorithm.crc16, "
                << bit_type(inst.type().bits) << "w0, {" << inputs << "}, "
                << (1ULL << (inst.type().bits >= 32 ? 31 : inst.type().bits)) << ");\n";
        }
        break;
      }
      case Opcode::Rand:
        if (dialect_ == P4Dialect::Tna) {
          registers_ << "Random<" << bit_type(inst.type().bits) << ">() rnd_" << name_of(&inst)
                     << ";\n";
          pad();
          body_ << name_of(&inst) << " = rnd_" << name_of(&inst) << ".get();\n";
        } else {
          pad();
          body_ << "random(" << name_of(&inst) << ", 0, "
                << inst.type().max_unsigned() << ");\n";
        }
        break;
      case Opcode::MsgMeta: {
        static const char* kFields[] = {"src", "dst", "from", "to"};
        pad();
        body_ << name_of(&inst) << " = hdr.netcl." << kFields[inst.arg_index] << ";\n";
        break;
      }
      case Opcode::LoadMsg:
      case Opcode::StoreMsg: {
        const bool is_store = inst.op() == Opcode::StoreMsg;
        const Constant* index = as_constant(inst.operand(0));
        if (index != nullptr) {
          pad();
          const std::string field =
              msg_field(inst.arg_index, static_cast<int>(index->extended()));
          if (is_store) {
            body_ << field << " = " << name_of(inst.operand(1)) << ";\n";
          } else {
            body_ << name_of(&inst) << " = " << field << ";\n";
          }
        } else {
          // Dynamic indexing -> index table over a header stack (Fig. 9).
          emit_index_table(inst, is_store,
                           "hdr.c" + std::to_string(current_fn_->computation()) + "." +
                               current_fn_->spec.args[static_cast<std::size_t>(inst.arg_index)]
                                   .name,
                           current_fn_->spec.args[static_cast<std::size_t>(inst.arg_index)]
                               .count);
        }
        break;
      }
      case Opcode::LoadLocal:
      case Opcode::StoreLocal: {
        const bool is_store = inst.op() == Opcode::StoreLocal;
        const Constant* index = as_constant(inst.operand(0));
        const std::string base = "ls_" + inst.local_array->name;
        if (index != nullptr) {
          pad();
          if (is_store) {
            body_ << base << "_" << index->extended() << " = " << name_of(inst.operand(1))
                  << ";\n";
          } else {
            body_ << name_of(&inst) << " = " << base << "_" << index->extended() << ";\n";
          }
        } else {
          emit_index_table(inst, is_store, base, inst.local_array->size);
        }
        break;
      }
      case Opcode::LoadGlobal:
      case Opcode::StoreGlobal:
      case Opcode::AtomicRMW:
        emit_register_access(inst);
        break;
      case Opcode::Lookup:
        emit_lookup(inst);
        break;
      case Opcode::LookupValue:
        // Folded into the table action of the paired Lookup; copy the
        // default first (the MAT overwrites on hit).
        pad();
        body_ << name_of(&inst) << " = " << name_of(inst.operand(1)) << ";\n";
        break;
      default:
        break;
    }
  }

  void emit_index_table(Instruction& inst, bool is_store, const std::string& base, int count) {
    const std::string table = std::string("t_idx_") + (is_store ? "w" : "r") +
                              std::to_string(counter_++);
    tables_ << "    table " << table << " {\n        key = { "
            << name_of(inst.operand(0)) << " : exact; }\n        actions = {";
    for (int i = 0; i < count; ++i) tables_ << " " << table << "_a" << i << ";";
    tables_ << " }\n        const entries = {\n";
    for (int i = 0; i < count; ++i) {
      tables_ << "            " << i << " : " << table << "_a" << i << "();\n";
    }
    tables_ << "        }\n    }\n";
    for (int i = 0; i < count; ++i) {
      actions_ << "    action " << table << "_a" << i << "() { ";
      if (is_store) {
        actions_ << base << "_" << i << " = " << name_of(inst.operand(1)) << ";";
      } else {
        actions_ << name_of(&inst) << " = " << base << "_" << i << ";";
      }
      actions_ << " }\n";
    }
    pad();
    body_ << table << ".apply();\n";
  }

  void emit_register_access(Instruction& inst) {
    const GlobalVar& global = *inst.global;
    const int bits = global.elem_type.bits < 8 ? 8 : global.elem_type.bits;
    std::string index = global.dims.empty() ? "16w0" : name_of(inst.operand(0));
    if (dialect_ == P4Dialect::Tna) {
      const std::string ra = "ra_" + global.name + "_" + std::to_string(counter_++);
      registers_ << "RegisterAction<" << bit_type(bits) << ", bit<16>, " << bit_type(bits)
                 << ">(" << global.name << ") " << ra << " = {\n"
                 << "    void apply(inout " << bit_type(bits) << " m, out " << bit_type(bits)
                 << " o) {\n";
      switch (inst.op()) {
        case Opcode::LoadGlobal:
          registers_ << "        o = m;\n";
          break;
        case Opcode::StoreGlobal:
          registers_ << "        m = " << operand_placeholder(inst, value_operand_index(inst))
                     << "; o = m;\n";
          break;
        case Opcode::AtomicRMW: {
          const std::string rhs = salu_rhs(inst);
          if (inst.atomic_cond) {
            registers_ << "        if (cond != 0) { m = " << rhs << "; }\n";
          } else {
            registers_ << "        m = " << rhs << ";\n";
          }
          registers_ << "        o = m;\n";  // *_new semantics; old value
                                             // variants swap the two lines
          break;
        }
        default:
          break;
      }
      registers_ << "    }\n};\n";
      pad();
      if (inst.op() == Opcode::StoreGlobal) {
        body_ << ra << ".execute((bit<16>)" << index << ");\n";
      } else {
        body_ << name_of(&inst) << " = " << ra << ".execute((bit<16>)" << index << ");\n";
      }
    } else {
      // v1model register read-modify-write sequence.
      pad();
      switch (inst.op()) {
        case Opcode::LoadGlobal:
          body_ << global.name << ".read(" << name_of(&inst) << ", (bit<32>)" << index
                << ");\n";
          break;
        case Opcode::StoreGlobal:
          body_ << global.name << ".write((bit<32>)" << index << ", "
                << name_of(inst.operand(inst.num_operands() - 1)) << ");\n";
          break;
        case Opcode::AtomicRMW: {
          const std::string tmp = name_of(&inst);
          body_ << global.name << ".read(" << tmp << ", (bit<32>)" << index << ");\n";
          pad();
          body_ << tmp << " = " << salu_rhs(inst) << ";\n";
          pad();
          body_ << global.name << ".write((bit<32>)" << index << ", " << tmp << ");\n";
          break;
        }
        default:
          break;
      }
    }
  }

  std::size_t value_operand_index(const Instruction& inst) const {
    return inst.num_operands() - 1;
  }

  std::string operand_placeholder(Instruction& inst, std::size_t i) {
    return name_of(inst.operand(i));
  }

  /// The right-hand side of a SALU microprogram for an atomic op.
  std::string salu_rhs(Instruction& inst) {
    const std::size_t first_data =
        static_cast<std::size_t>(inst.num_indices) + (inst.atomic_cond ? 1 : 0);
    auto data = [&](std::size_t k) { return name_of(inst.operand(first_data + k)); };
    switch (inst.atomic_op) {
      case AtomicOpKind::Add: return "m + " + data(0);
      case AtomicOpKind::SAdd: return "m |+| " + data(0);
      case AtomicOpKind::Sub: return "m - " + data(0);
      case AtomicOpKind::SSub: return "m |-| " + data(0);
      case AtomicOpKind::Or: return "m | " + data(0);
      case AtomicOpKind::And: return "m & " + data(0);
      case AtomicOpKind::Xor: return "m ^ " + data(0);
      case AtomicOpKind::Inc: return "m + 1";
      case AtomicOpKind::Dec: return "m - 1";
      case AtomicOpKind::Min: return "(m < " + data(0) + ") ? m : " + data(0);
      case AtomicOpKind::Max: return "(m > " + data(0) + ") ? m : " + data(0);
      case AtomicOpKind::Cas:
        return "(m == " + data(0) + ") ? " + data(1) + " : m";
    }
    return "m";
  }

  void emit_lookup(Instruction& inst) {
    const GlobalVar& global = *inst.global;
    const std::string table = "t_" + global.name + "_" + std::to_string(counter_++);
    const std::string hit_var = name_of(&inst);

    std::string value_var;
    // Find the paired LookupValue (if any) to fill in its action.
    for (const auto& block : current_fn_->blocks()) {
      for (const auto& other : block->instructions()) {
        if (other->op() == Opcode::LookupValue && other->operand(0) == &inst) {
          value_var = name_of(other.get());
        }
      }
    }

    const std::string action = table + "_hit";
    actions_ << "    action " << action << "(";
    if (!value_var.empty()) actions_ << bit_type(global.value_type.bits) << " val";
    actions_ << ") { ";
    if (!value_var.empty()) actions_ << value_var << " = val; ";
    actions_ << "}\n";

    const char* match = global.lookup_kind == LookupKind::Range ? "range" : "exact";
    tables_ << "    table " << table << " {\n        key = { "
            << name_of(inst.operand(0)) << " : " << match << "; }\n"
            << "        actions = { " << action << "; @defaultonly NoAction; }\n"
            << "        const default_action = NoAction();\n";
    if (!global.entries.empty()) {
      tables_ << "        const entries = {\n";
      for (const LookupEntry& entry : global.entries) {
        tables_ << "            ";
        if (global.lookup_kind == LookupKind::Range) {
          tables_ << entry.key_lo << " .. " << entry.key_hi;
        } else {
          tables_ << entry.key_lo;
        }
        tables_ << " : " << action << "(";
        if (!value_var.empty()) tables_ << entry.value;
        tables_ << ");\n";
      }
      tables_ << "        }\n";
    }
    tables_ << "        size = " << global.element_count() << ";\n    }\n";

    pad();
    body_ << "if (" << table << ".apply().hit) { " << hit_var << " = 8w1; } else { " << hit_var
          << " = 8w0; }\n";
  }

  void emit_runtime() {
    std::ostringstream os;
    os << "// NetCL device runtime: 4-tuple handling and action resolution.\n"
          "control NetCLRuntime(inout headers_t hdr, inout metadata_t meta) {\n"
          "    apply {\n"
          "        if (hdr.netcl.isValid() && hdr.netcl.to == DEVICE_ID) {\n"
          "            // kernel dispatch happens in NetCLCompute\n"
          "            if (meta.ncl_act == 1) { hdr.netcl.setInvalid(); }          // drop\n"
          "            if (meta.ncl_act == 2) { hdr.netcl.dst = meta.ncl_tgt; }    // send_to_host\n"
          "            if (meta.ncl_act == 3) { hdr.netcl.to = meta.ncl_tgt; }     // send_to_device\n"
          "            if (meta.ncl_act == 4) { meta.out_port = 9w511; }           // multicast\n"
          "            if (meta.ncl_act == 5) { hdr.netcl.dst = hdr.netcl.src; }   // reflect\n"
          "            if (meta.ncl_act == 6) { hdr.netcl.dst = hdr.netcl.from; }  // reflect_long\n"
          "            hdr.netcl.from = DEVICE_ID;\n"
          "        }\n"
          "    }\n"
          "}\n";
    out_.runtime = os.str();
  }

  void emit_base() {
    std::ostringstream os;
    os << "// Base program: link-layer forwarding for NetCL and normal traffic.\n"
          "control BaseForward(inout headers_t hdr, inout metadata_t meta) {\n"
          "    action set_port(bit<9> port) { meta.out_port = port; }\n"
          "    action bcast() { meta.out_port = 9w511; }\n"
          "    table l2 {\n"
          "        key = { hdr.eth.dst : exact; }\n"
          "        actions = { set_port; bcast; }\n"
          "        const default_action = bcast();\n"
          "        size = 4096;\n"
          "    }\n"
          "    table netcl_fwd {\n"
          "        key = { hdr.netcl.dst : exact; hdr.netcl.to : exact; }\n"
          "        actions = { set_port; bcast; }\n"
          "        const default_action = bcast();\n"
          "        size = 1024;\n"
          "    }\n"
          "    apply {\n"
          "        if (hdr.netcl.isValid()) { netcl_fwd.apply(); }\n"
          "        else { l2.apply(); }\n"
          "    }\n"
          "}\n";
    out_.base = os.str();
  }

  void emit_boilerplate() {
    std::ostringstream os;
    if (dialect_ == P4Dialect::Tna) {
      os << "#include <core.p4>\n#include <tna.p4>\n"
         << "#define DEVICE_ID " << module_.device_id() << "\n"
         << "// control NetCLCompute(...) { <registers, tables, actions, apply above> }\n"
         << "Pipeline(NetCLParser(), NetCLIngress(), NetCLDeparser(),\n"
            "         EmptyEgressParser(), EmptyEgress(), EmptyEgressDeparser()) pipe;\n"
         << "Switch(pipe) main;\n";
    } else {
      os << "#include <core.p4>\n#include <v1model.p4>\n"
         << "#define DEVICE_ID " << module_.device_id() << "\n"
         << "V1Switch(NetCLParser(), NetCLVerifyChecksum(), NetCLIngress(), NetCLEgress(),\n"
            "         NetCLComputeChecksum(), NetCLDeparser()) main;\n";
    }
    out_.boilerplate = os.str();
  }

  Module& module_;
  P4Dialect dialect_;
  P4Program out_;
  Function* current_fn_ = nullptr;
  std::unordered_map<const Value*, std::string> names_;
  int counter_ = 0;
  int indent_ = 8;
  std::ostringstream decls_;
  std::ostringstream actions_;
  std::ostringstream tables_;
  std::ostringstream registers_;
  std::ostringstream body_;
};

}  // namespace

std::string P4Program::full() const {
  std::string result;
  result += boilerplate;
  result += headers;
  result += parsers;
  result += registers;
  result += "control NetCLIngress(inout headers_t hdr, inout metadata_t meta) {\n";
  result += actions;
  result += tables;
  result += "    apply {\n";
  result += control;
  result += "    }\n}\n";
  result += runtime;
  result += base;
  return result;
}

int P4Program::loc() const { return count_loc(full()); }

int P4Program::generated_loc() const {
  return count_loc(registers) + count_loc(tables) + count_loc(actions) + count_loc(control);
}

P4Program emit_p4(Module& module, P4Dialect dialect) {
  Printer printer(module, dialect);
  return printer.run();
}

}  // namespace netcl::p4
