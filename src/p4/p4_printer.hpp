// P4_16 code generation from the structured (pre-linearization) IR.
//
// The printer produces a complete P4 program per device module: header
// definitions derived from the kernel specifications, parsers, the
// generated NetCL control (registers / RegisterActions / MATs / actions /
// structured apply body), the NetCL device-runtime control, a base
// forwarding program, and the target boilerplate — for either the TNA or
// the v1model dialect.
//
// Sections are kept separate so the Fig. 12 code-breakdown benchmark can
// attribute lines to constructs exactly as the paper does.
//
// IMPORTANT: run the printer *before* linearization; the linearizer
// rewrites phi uses in place.
#pragma once

#include <string>

#include "ir/ir.hpp"

namespace netcl::p4 {

enum class P4Dialect { V1Model, Tna };

struct P4Program {
  std::string headers;     // header/struct definitions
  std::string parsers;     // parser + deparser states
  std::string registers;   // Register / RegisterAction (or register) decls
  std::string tables;      // MAT definitions (lookup + index tables)
  std::string actions;     // ALU actions
  std::string control;     // apply body (control logic)
  std::string runtime;     // NetCL device runtime control
  std::string base;        // base forwarding program
  std::string boilerplate; // includes, pipeline/switch instantiation

  /// The concatenated compilable-looking program text.
  [[nodiscard]] std::string full() const;
  /// Non-blank non-comment LoC of the full program.
  [[nodiscard]] int loc() const;
  /// LoC of only the kernel-derived sections (headers for kernel data,
  /// registers, tables, actions, control) — what Table III compares.
  [[nodiscard]] int generated_loc() const;
};

/// Emits the program for one device module.
[[nodiscard]] P4Program emit_p4(ir::Module& module, P4Dialect dialect);

}  // namespace netcl::p4
