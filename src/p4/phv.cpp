#include "p4/phv.hpp"

#include <algorithm>
#include <unordered_map>

namespace netcl::p4 {

using namespace netcl::ir;

PhvUsage compute_phv(const std::vector<KernelProgram>& kernels) {
  PhvUsage usage;
  usage.netcl_header_bits = kNetclHeaderBits;
  usage.base_program_bits = kBaseProgramBits;
  usage.metadata_bits = 60;  // device runtime metadata (action, target ids)

  for (const KernelProgram& kernel : kernels) {
    // Kernel arguments are carried as the NetCL data header.
    for (const ArgSpec& arg : kernel.fn->spec.args) {
      const int width = arg.type.bits == 1 ? 8 : arg.type.bits;
      usage.header_bits += width * arg.count;
    }

    // A temporary occupies PHV space if any consumer lives in a later
    // stage than its producer — except values that alias header containers:
    // LoadMsg results *are* header fields, and values whose only consumers
    // are StoreMsg can be written into their header container directly.
    std::unordered_map<const Value*, int> def_stage;
    std::unordered_map<const Value*, bool> non_store_use;
    for (const LinearInst& li : kernel.insts) def_stage[li.inst] = li.stage;
    std::unordered_map<const Value*, bool> crosses;
    for (const LinearInst& li : kernel.insts) {
      auto consider = [&](const Value* v, bool is_store_value) {
        if (v == nullptr || v->kind() != ValueKind::Instruction) return;
        if (!is_store_value) non_store_use[v] = true;
        const auto it = def_stage.find(v);
        if (it == def_stage.end()) return;
        if (li.stage > it->second) crosses[v] = true;
      };
      const bool is_store_msg = li.inst->op() == Opcode::StoreMsg;
      // Synthesized phi-selects model mutually exclusive writers sharing a
      // container; their data operands do not need containers of their own.
      const bool is_phi_select = li.synthesized && li.inst->op() == Opcode::Select;
      for (std::size_t i = 0; i < li.inst->num_operands(); ++i) {
        consider(li.inst->operand(i), (is_store_msg && i == 1) || (is_phi_select && i >= 1));
      }
      consider(li.guard, false);
    }
    for (const auto& [value, does_cross] : crosses) {
      if (!does_cross) continue;
      const auto* inst = static_cast<const Instruction*>(value);
      if (inst->op() == Opcode::LoadMsg) continue;       // aliases a header field
      if (!non_store_use.count(value)) continue;         // written straight to header
      // PHV containers are 8/16/32 bits; round up.
      const int bits = value->type().bits;
      const int container = bits <= 8 ? 8 : bits <= 16 ? 16 : 32;
      usage.local_var_bits += container;
    }
  }
  return usage;
}

}  // namespace netcl::p4
