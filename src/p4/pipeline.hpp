// Executable pipeline representation shared by the backends and the switch
// simulator.
//
// After the middle-end, a kernel's CFG is an acyclic, structured DAG. The
// linearizer (lower_pipeline.cpp) performs the paper's CFG structurization
// and phi elimination in one step, producing the form RMT hardware actually
// executes: a straight-line sequence of operations where control flow has
// become *predication* —
//
//   * every block receives a predicate value (i1); edge predicates combine
//     branch conditions with block predicates,
//   * phis become select chains over edge predicates,
//   * side-effecting operations (stores, atomics, actions) carry their
//     block's predicate as a guard; pure operations are speculated
//     (executed unconditionally) unless speculation is disabled, in which
//     case they carry guards that constrain stage placement.
//
// The TNA stage allocator then maps this linear program onto match-action
// stages under the Tofino resource model.
#pragma once

#include <memory>
#include <vector>

#include "ir/ir.hpp"

namespace netcl::p4 {

/// One linearized operation: a borrowed or synthesized IR instruction plus
/// its guard and (after allocation) its pipeline stage.
struct LinearInst {
  ir::Instruction* inst = nullptr;
  ir::Value* guard = nullptr;  // i1; nullptr = always executes
  int stage = -1;              // filled by the TNA stage allocator
  bool synthesized = false;    // predicate/select machinery
};

/// The linearized form of one kernel.
struct KernelProgram {
  ir::Function* fn = nullptr;
  std::vector<LinearInst> insts;  // topological (execution) order
  // Predicate and phi-select instructions created by the linearizer; they
  // have no parent block.
  std::vector<std::unique_ptr<ir::Instruction>> synthesized;

  /// Returns the instructions that are RetActions, in order; the first one
  /// whose guard evaluates true decides the message's fate.
  [[nodiscard]] std::vector<const LinearInst*> ret_actions() const;
};

struct LinearizeOptions {
  /// When false, pure instructions carry their block predicate as a guard,
  /// adding a scheduling dependence on the predicate computation (this is
  /// the paper's "speculation" flag: on = hoist work before its branch).
  bool speculation = true;
};

/// Linearizes one function. The function must verify (acyclic CFG).
[[nodiscard]] KernelProgram linearize(ir::Function& fn, const LinearizeOptions& options);

/// Linearizes every kernel in a module.
[[nodiscard]] std::vector<KernelProgram> linearize_module(ir::Module& module,
                                                          const LinearizeOptions& options);

}  // namespace netcl::p4
