#include "p4/resources.hpp"

#include <sstream>

namespace netcl::p4 {

int sram_blocks_for(const ir::GlobalVar& global, const StageLimits& limits) {
  const std::int64_t bits = global.bit_size();
  const int blocks = static_cast<int>((bits + limits.sram_block_bits - 1) / limits.sram_block_bits);
  return blocks < 1 ? 1 : blocks;
}

StageUsage table_blocks_for(const ir::GlobalVar& global, const StageLimits& limits) {
  StageUsage usage;
  const std::int64_t entries =
      global.entries.empty() ? global.element_count()
                             : static_cast<std::int64_t>(global.entries.size());
  if (global.lookup_kind == LookupKind::Range) {
    // Range matches burn TCAM.
    const int blocks =
        static_cast<int>((entries + limits.tcam_block_entries - 1) / limits.tcam_block_entries);
    usage.tcam = blocks < 1 ? 1 : blocks;
  } else {
    const std::int64_t entry_bits = global.key_type.bits + global.value_type.bits + 8;
    const std::int64_t bits = entries * entry_bits;
    const int blocks =
        static_cast<int>((bits + limits.sram_block_bits - 1) / limits.sram_block_bits);
    usage.sram = blocks < 1 ? 1 : blocks;
  }
  return usage;
}

std::string to_string(const StageUsage& usage) {
  std::ostringstream os;
  os << "sram=" << usage.sram << " tcam=" << usage.tcam << " salu=" << usage.salus
     << " vliw=" << usage.vliw << " hash=" << usage.hash << " tables=" << usage.tables;
  return os.str();
}

}  // namespace netcl::p4
