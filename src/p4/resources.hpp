// Tofino (RMT) resource model.
//
// Numbers follow the public RMT paper and Tofino 1 documentation orders of
// magnitude: 12 match-action stages, per-stage SRAM and TCAM blocks, 4
// stateful ALUs, a VLIW action engine, and a handful of hash units. The
// absolute values are configurable so tests can shrink them; the defaults
// are what the Table V reproduction uses.
#pragma once

#include <cstdint>
#include <string>

#include "ir/ir.hpp"

namespace netcl::p4 {

struct StageLimits {
  int stages = 12;
  int sram_blocks = 80;         // per stage
  int sram_block_bits = 16 * 1024 * 8;  // 16 KB blocks
  int tcam_blocks = 24;         // per stage
  int tcam_block_entries = 512;
  // Stateful register operations per stage. Tofino exposes 4 SALUs but
  // each operates on up to 64-bit entries ("write two 32-bit values",
  // §VIII), so 8 paired 32-bit register ops per stage is the effective
  // budget SwitchML-class programs schedule against.
  int salus = 8;
  // RMT action engines run one ALU per PHV container in parallel (~224
  // containers on Tofino 1), so per-stage VLIW capacity is large.
  int vliw_slots = 224;
  int hash_units = 6;           // hash engine outputs per stage
  int tables = 16;              // logical tables per stage
  int phv_bits = 4096;          // total PHV capacity (64x8b + 96x16b + 64x32b)
};

struct StageUsage {
  int sram = 0;
  int tcam = 0;
  int salus = 0;
  int vliw = 0;
  int hash = 0;
  int tables = 0;

  StageUsage& operator+=(const StageUsage& other) {
    sram += other.sram;
    tcam += other.tcam;
    salus += other.salus;
    vliw += other.vliw;
    hash += other.hash;
    tables += other.tables;
    return *this;
  }
  [[nodiscard]] bool fits(const StageLimits& limits) const {
    return sram <= limits.sram_blocks && tcam <= limits.tcam_blocks &&
           salus <= limits.salus && vliw <= limits.vliw_slots && hash <= limits.hash_units &&
           tables <= limits.tables;
  }
};

/// Per-stage overhead of the base/runtime program (parser glue, the
/// dispatch table, bridge metadata handling) that occupies every reserved
/// base stage before generated code. The stage allocator charges it when
/// placing one program; the admission controller charges it exactly once
/// when aggregating co-resident programs — both must agree on the number,
/// which is why it lives here.
[[nodiscard]] inline StageUsage base_stage_usage() {
  StageUsage usage;
  usage.tables = 2;
  usage.vliw = 4;
  usage.sram = 2;
  return usage;
}

/// SRAM blocks needed to hold a register array.
[[nodiscard]] int sram_blocks_for(const ir::GlobalVar& global, const StageLimits& limits);

/// SRAM or TCAM blocks needed for a lookup table's entries.
[[nodiscard]] StageUsage table_blocks_for(const ir::GlobalVar& global, const StageLimits& limits);

/// Renders a usage row for reports ("sram=3 tcam=0 salu=2 vliw=9 ...").
[[nodiscard]] std::string to_string(const StageUsage& usage);

}  // namespace netcl::p4
