#include "p4/stage_alloc.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

namespace netcl::p4 {

using namespace netcl::ir;

namespace {

/// Resource demand of one linear op, excluding its register/table group
/// costs (those are charged once per global per stage).
StageUsage op_demand(const Instruction& inst) {
  StageUsage demand;
  switch (inst.op()) {
    case Opcode::Bin:
    case Opcode::ICmp:
    case Opcode::Select:
    case Opcode::Bswap:
    case Opcode::MsgMeta:
    case Opcode::Rand:
    case Opcode::RetAction:
    case Opcode::LookupValue:
      demand.vliw = 1;
      break;
    case Opcode::Clz:
      // Count-leading-zeros maps to an LPM table (§VI-B).
      demand.vliw = 1;
      demand.tables = 1;
      demand.tcam = 1;
      break;
    case Opcode::Hash:
      demand.hash = 1;
      break;
    case Opcode::LoadMsg:
    case Opcode::StoreMsg:
    case Opcode::LoadLocal:
    case Opcode::StoreLocal: {
      demand.vliw = 1;
      // Dynamic indexing into header stacks needs an index table (Fig. 9).
      const bool dynamic = as_constant(inst.operand(0)) == nullptr;
      if (dynamic) demand.tables = 1;
      break;
    }
    default:
      break;
  }
  return demand;
}

/// Per-stage cost of hosting a global (register or lookup table).
StageUsage global_demand(const GlobalVar& global, const StageLimits& limits) {
  StageUsage demand;
  if (global.is_lookup) {
    demand = table_blocks_for(global, limits);
    demand.tables = 1;
  } else {
    demand.sram = sram_blocks_for(global, limits);
    demand.salus = 1;
    demand.tables = 1;  // the MAT invoking the RegisterAction
  }
  return demand;
}

}  // namespace

AllocationResult allocate_stages(std::vector<KernelProgram>& kernels, const ir::Module& module,
                                 const StageLimits& limits, int base_stages) {
  AllocationResult result;
  (void)module;

  // Collect all linear instructions in execution order (kernels are
  // independent alternatives, so concatenation preserves topology).
  std::vector<LinearInst*> all;
  for (KernelProgram& kernel : kernels) {
    for (LinearInst& li : kernel.insts) all.push_back(&li);
  }

  // ---- dependence + group fixpoint (stages only grow) ----
  std::unordered_map<const Value*, int> value_stage;
  std::unordered_map<const GlobalVar*, int> group_stage;
  for (LinearInst* li : all) li->stage = base_stages;

  auto dep_stage = [&](const Value* v) -> int {
    if (v == nullptr || v->kind() != ValueKind::Instruction) return base_stages - 1;
    const auto it = value_stage.find(v);
    return it == value_stage.end() ? base_stages - 1 : it->second;
  };

  // Stage-transparent operations: they add no pipeline delay and consume
  // no action slots.
  //  * predicate combinators synthesized by the linearizer map onto stage
  //    gateway logic;
  //  * synthesized phi-selects model mutually exclusive guarded writers
  //    sharing one PHV container — no instruction exists in hardware;
  //  * width casts are PHV slicing/alignment, folded into whichever ALU op
  //    consumes them.
  // A guard likewise constrains its op to the guard's stage (the gateway
  // re-evaluates the predicate during the match phase), not one later.
  std::unordered_set<const Instruction*> gateway_ops;
  for (const LinearInst* li : all) {
    // Any 1-bit logic — comparisons included — is gateway material,
    // whether the programmer wrote it (&&, ||, ==, <) or the linearizer
    // synthesized it: stages evaluate predicates in their match phase.
    const bool predicate_logic =
        (li->inst->op() == Opcode::Bin && li->inst->type().bits == 1) ||
        li->inst->op() == Opcode::ICmp;
    const bool phi_select = li->synthesized && li->inst->op() == Opcode::Select;
    const bool cast = li->inst->op() == Opcode::Cast;
    if (predicate_logic || phi_select || cast) gateway_ops.insert(li->inst);
  }
  auto min_stage_of = [&](const LinearInst* li) -> int {
    const Instruction* inst = li->inst;
    const bool is_gateway = gateway_ops.count(inst) != 0;
    int min_stage = base_stages;
    for (std::size_t i = 0; i < inst->num_operands(); ++i) {
      // A LookupValue is the value-writing action of its paired Lookup's
      // MAT: same table application, same stage — no +1 on that edge.
      const bool same_stage_edge =
          is_gateway || (inst->op() == Opcode::LookupValue && i == 0);
      min_stage = std::max(min_stage, dep_stage(inst->operand(i)) + (same_stage_edge ? 0 : 1));
    }
    if (li->guard != nullptr) {
      // Stateful ops (tables, SALUs, action selection) are gated by the
      // stage gateway, which recomputes the predicate from PHV inputs in
      // the same stage. A *pure* op that kept its control dependence
      // (speculation disabled) instead consumes the materialized predicate
      // value, one stage later — this is exactly why the paper's
      // speculation flag reduces stage requirements.
      const bool gateway_gated = inst->has_side_effects() || inst->accesses_global() ||
                                 inst->op() == Opcode::LookupValue;
      min_stage = std::max(min_stage, dep_stage(li->guard) + (gateway_gated ? 0 : 1));
    }
    return min_stage;
  };

  const int max_iterations = 64;
  bool changed = true;
  for (int iteration = 0; changed && iteration < max_iterations; ++iteration) {
    changed = false;
    for (LinearInst* li : all) {
      const Instruction* inst = li->inst;
      int min_stage = min_stage_of(li);
      if (inst->global != nullptr) {
        const auto it = group_stage.find(inst->global);
        if (it != group_stage.end()) min_stage = std::max(min_stage, it->second);
      }
      if (min_stage > li->stage) {
        li->stage = min_stage;
        changed = true;
      }
      if (value_stage[inst] != li->stage) {
        value_stage[inst] = li->stage;
        changed = true;
      }
      if (inst->global != nullptr) {
        int& group = group_stage[inst->global];
        if (li->stage > group) {
          group = li->stage;
          changed = true;
        }
      }
    }
    // Pull every group member up to the group stage.
    for (LinearInst* li : all) {
      if (li->inst->global == nullptr) continue;
      const int group = group_stage[li->inst->global];
      if (li->stage < group) {
        li->stage = group;
        value_stage[li->inst] = group;
        changed = true;
      }
    }
  }

  // ---- resource fitting: bump overflowing pure ops to later stages ----
  const int hard_stage_cap = limits.stages * 8;  // detect runaway programs
  for (int attempt = 0; attempt < 8192; ++attempt) {
    // Recompute per-stage usage.
    int max_stage = base_stages - 1;
    for (const LinearInst* li : all) max_stage = std::max(max_stage, li->stage);
    if (max_stage >= hard_stage_cap) break;

    std::vector<StageUsage> usage(static_cast<std::size_t>(max_stage + 1));
    // Model the base/runtime program: one table + a little action work per
    // reserved stage (shared with the admission controller, which must
    // charge the same overhead exactly once across co-resident programs).
    for (int s = 0; s < base_stages && s <= max_stage; ++s) {
      usage[static_cast<std::size_t>(s)] += base_stage_usage();
    }
    std::unordered_set<const GlobalVar*> charged;
    for (const LinearInst* li : all) {
      auto& stage_usage = usage[static_cast<std::size_t>(li->stage)];
      if (gateway_ops.count(li->inst) == 0) stage_usage += op_demand(*li->inst);
      if (li->inst->global != nullptr && charged.insert(li->inst->global).second) {
        stage_usage += global_demand(*li->inst->global, limits);
      }
    }

    // Find the first overflowing stage.
    int overflow = -1;
    for (std::size_t s = 0; s < usage.size(); ++s) {
      if (!usage[s].fits(limits)) {
        overflow = static_cast<int>(s);
        break;
      }
    }
    if (std::getenv("NETCL_ALLOC_DEBUG") != nullptr && overflow >= 0) {
      std::fprintf(stderr, "allocate attempt %d: overflow stage %d: %s\n", attempt, overflow,
                   to_string(usage[static_cast<std::size_t>(overflow)]).c_str());
    }
    if (overflow == -1) {
      // Success: fill in the result.
      result.per_stage = std::move(usage);
      result.stages_used = max_stage + 1;
      for (const StageUsage& s : result.per_stage) {
        result.total += s;
        result.worst.sram = std::max(result.worst.sram, s.sram);
        result.worst.tcam = std::max(result.worst.tcam, s.tcam);
        result.worst.salus = std::max(result.worst.salus, s.salus);
        result.worst.vliw = std::max(result.worst.vliw, s.vliw);
        result.worst.hash = std::max(result.worst.hash, s.hash);
        result.worst.tables = std::max(result.worst.tables, s.tables);
      }
      for (const auto& [global, stage] : group_stage) result.global_stage[global] = stage;
      if (result.stages_used > limits.stages) {
        result.fits = false;
        result.error = "program requires " + std::to_string(result.stages_used) +
                       " stages but the target has " + std::to_string(limits.stages);
        return result;
      }
      result.fits = true;
      return result;
    }

    // Bump one op out of the overflowing stage — specifically one that
    // consumes the over-budget resource, so the move actually relieves the
    // overflow (bumping anything else just drags its dependents upward
    // forever). Register/table groups move atomically: only ">="
    // constraints exist, so delaying a group is always sound.
    const StageUsage& over = usage[static_cast<std::size_t>(overflow)];
    const bool group_bound = over.salus > limits.salus || over.sram > limits.sram_blocks ||
                             over.tcam > limits.tcam_blocks || over.tables > limits.tables;
    bool bumped = false;
    if (group_bound) {
      // Pick the group the fewest other stages depend on: the last one in
      // program order is a decent heuristic (its results are needed
      // latest).
      const GlobalVar* group_victim = nullptr;
      for (LinearInst* li : all) {
        if (li->stage == overflow && li->inst->global != nullptr) {
          group_victim = li->inst->global;  // keep last match
        }
      }
      if (group_victim != nullptr) {
        group_stage[group_victim] = overflow + 1;
        for (LinearInst* li : all) {
          if (li->inst->global == group_victim) {
            li->stage = overflow + 1;
            value_stage[li->inst] = li->stage;
          }
        }
        bumped = true;
      }
    }
    if (!bumped) {
      const bool hash_bound = over.hash > limits.hash_units;
      LinearInst* victim = nullptr;
      for (LinearInst* li : all) {
        if (li->stage != overflow) continue;
        if (li->inst->global != nullptr) continue;
        if (gateway_ops.count(li->inst) != 0) continue;  // costless; moving is useless
        if (hash_bound && li->inst->op() != Opcode::Hash) continue;
        victim = li;
        if (li->inst->is_speculatable()) break;  // prefer pure ALU ops
      }
      if (victim == nullptr) {
        result.fits = false;
        result.error = "stage " + std::to_string(overflow) +
                       " over budget and no movable operation remains";
        return result;
      }
      victim->stage = overflow + 1;
      value_stage[victim->inst] = victim->stage;
    }
    // Re-propagate dependences (stages only grow; reuse the fixpoint loop).
    bool moved = true;
    for (int iteration = 0; moved && iteration < max_iterations; ++iteration) {
      moved = false;
      for (LinearInst* li : all) {
        const Instruction* inst = li->inst;
        int min_stage = std::max(li->stage, min_stage_of(li));
        if (inst->global != nullptr) {
          min_stage = std::max(min_stage, group_stage[inst->global]);
        }
        if (min_stage > li->stage) {
          li->stage = min_stage;
          moved = true;
        }
        if (value_stage[inst] != li->stage) {
          value_stage[inst] = li->stage;
          moved = true;
        }
        if (inst->global != nullptr && li->stage > group_stage[inst->global]) {
          group_stage[inst->global] = li->stage;
          moved = true;
        }
      }
      for (LinearInst* li : all) {
        if (li->inst->global == nullptr) continue;
        const int group = group_stage[li->inst->global];
        if (li->stage < group) {
          li->stage = group;
          value_stage[li->inst] = group;
          moved = true;
        }
      }
    }
  }

  result.fits = false;
  result.error = "stage allocation did not converge (program too large for the target)";
  return result;
}

}  // namespace netcl::p4
