// TNA stage allocator: maps a linearized kernel program onto RMT
// match-action stages.
//
// Constraints honored:
//  * data dependence: an instruction consuming a value (or guard) computed
//    by another must be placed at least one stage later — RMT action
//    engines cannot chain results within one stage;
//  * register locality: a global memory object lives in exactly one stage,
//    so all of its accesses share that stage (the memory-legality pass
//    guarantees they are mutually exclusive);
//  * per-stage resource budgets (SRAM/TCAM blocks, stateful ALUs, VLIW
//    slots, hash units, logical tables).
//
// The allocator is a list scheduler over the topologically ordered linear
// program: each op is placed at the earliest stage satisfying dependences
// and budgets; register-access groups are placed atomically. A program
// needing more stages than the target owns is rejected, mirroring the
// paper's "a certain amount of trial and error cannot be avoided" reality.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "p4/pipeline.hpp"
#include "p4/resources.hpp"

namespace netcl::p4 {

struct AllocationResult {
  bool fits = false;
  std::string error;              // set when !fits
  int stages_used = 0;            // number of MAU stages occupied
  std::vector<StageUsage> per_stage;
  StageUsage total;
  StageUsage worst;               // max across stages, per resource
  std::map<const ir::GlobalVar*, int> global_stage;
};

/// Allocates every kernel of one device module into a single shared
/// pipeline (kernels are alternatives selected by computation id, so their
/// resource usage adds up but their dependence chains are independent).
/// `base_stages` models the stages the base/runtime P4 program occupies
/// before generated code starts (the paper's EMPTY program).
[[nodiscard]] AllocationResult allocate_stages(std::vector<KernelProgram>& kernels,
                                               const ir::Module& module,
                                               const StageLimits& limits, int base_stages = 1);

}  // namespace netcl::p4
