#include <unordered_set>
#include <vector>

#include "passes/passes.hpp"

namespace netcl::passes {

using namespace netcl::ir;

bool dce(Function& fn) {
  bool changed_any = false;
  for (bool changed = true; changed;) {
    changed = false;
    // Collect the set of used values.
    std::unordered_set<const Value*> used;
    for (const auto& block : fn.blocks()) {
      for (const auto& inst : block->instructions()) {
        for (std::size_t i = 0; i < inst->num_operands(); ++i) {
          used.insert(inst->operand(i));
        }
      }
    }
    for (const auto& block : fn.blocks()) {
      std::vector<Instruction*> dead;
      for (const auto& inst : block->instructions()) {
        if (inst->has_side_effects()) continue;
        // Lookup instructions are pure reads, but a LookupValue keeps its
        // Lookup alive through the operand edge, so no special case needed.
        if (used.count(inst.get()) == 0) dead.push_back(inst.get());
      }
      for (Instruction* inst : dead) {
        block->erase(inst);
        changed = true;
      }
    }
    changed_any |= changed;
  }
  return changed_any;
}

void dag_check(Function& fn, DiagnosticEngine& diags) {
  enum class Mark { White, Grey, Black };
  std::unordered_map<const BasicBlock*, Mark> marks;
  for (const auto& block : fn.blocks()) marks[block.get()] = Mark::White;
  auto dfs = [&](auto&& self, const BasicBlock* block) -> bool {
    marks[block] = Mark::Grey;
    for (const BasicBlock* succ : block->successors()) {
      if (marks[succ] == Mark::Grey) return false;
      if (marks[succ] == Mark::White && !self(self, succ)) return false;
    }
    marks[block] = Mark::Black;
    return true;
  };
  if (fn.entry() != nullptr && !dfs(dfs, fn.entry())) {
    diags.error({}, "kernel '" + fn.name() +
                        "': control flow is not a DAG and cannot map to a "
                        "feed-forward P4 pipeline");
  }
}

}  // namespace netcl::passes
