// Common-computation hoisting (GVN-lite).
//
// The paper hoists instructions computing the same value to a common
// dominator when their operands are available there, shortening the
// critical path and the per-stage work. We implement the same: identical
// pure instructions (same opcode, payload and operands) are merged into a
// single instance at the nearest common dominator.
#include <map>
#include <tuple>
#include <vector>

#include "ir/dominators.hpp"
#include "passes/passes.hpp"

namespace netcl::passes {

using namespace netcl::ir;

namespace {

using Key = std::tuple<int /*opcode*/, int /*subkind*/, int /*bits*/,
                       std::vector<const Value*>>;

std::optional<Key> key_of(const Instruction& inst) {
  if (!inst.is_speculatable()) return std::nullopt;
  int subkind = 0;
  switch (inst.op()) {
    case Opcode::Bin: subkind = static_cast<int>(inst.bin_kind); break;
    case Opcode::ICmp: subkind = static_cast<int>(inst.icmp_pred); break;
    case Opcode::Hash: subkind = static_cast<int>(inst.hash_kind); break;
    case Opcode::Cast: subkind = inst.cast_signed ? 1 : 0; break;
    default: break;
  }
  std::vector<const Value*> operands;
  operands.reserve(inst.num_operands());
  for (std::size_t i = 0; i < inst.num_operands(); ++i) operands.push_back(inst.operand(i));
  return Key{static_cast<int>(inst.op()), subkind, inst.type().bits, std::move(operands)};
}

/// True if every instruction operand of `inst` is available at the end of
/// block `target`.
bool operands_available(const Instruction& inst, BasicBlock* target, const DominatorTree& dom) {
  for (std::size_t i = 0; i < inst.num_operands(); ++i) {
    const Value* operand = inst.operand(i);
    if (operand->kind() != ValueKind::Instruction) continue;
    const auto* def = static_cast<const Instruction*>(operand);
    if (!dom.dominates(def->parent(), target)) return false;
  }
  return true;
}

}  // namespace

bool hoist(Function& fn, const PassOptions& options) {
  if (!options.hoisting) return false;
  bool changed_any = false;
  for (bool changed = true; changed;) {
    changed = false;
    fn.recompute_preds();
    DominatorTree dom(fn);

    std::map<Key, std::vector<Instruction*>> groups;
    for (BasicBlock* block : dom.reverse_postorder()) {
      for (const auto& inst : block->instructions()) {
        if (const auto key = key_of(*inst); key.has_value()) {
          groups[*key].push_back(inst.get());
        }
      }
    }

    for (auto& [key, insts] : groups) {
      if (insts.size() < 2) continue;
      Instruction* a = insts[0];
      Instruction* b = insts[1];
      if (a->parent() == b->parent()) {
        // Same block: keep the earlier one (a; groups preserve order).
        fn.replace_all_uses(b, a);
        b->parent()->erase(b);
        changed = true;
        break;  // structures invalidated
      }
      BasicBlock* target = dom.common_dominator(a->parent(), b->parent());
      if (!operands_available(*a, target, dom)) continue;
      if (target != a->parent()) {
        auto owned = a->parent()->detach(a);
        owned->set_parent(target);
        target->insert_before_terminator(std::move(owned));
      }
      fn.replace_all_uses(b, a);
      b->parent()->erase(b);
      changed = true;
      break;  // structures invalidated
    }
    changed_any |= changed;
  }
  return changed_any;
}

}  // namespace netcl::passes
