// Target instruction legalization (§VI-B).
//
// For the Tofino (TNA) target:
//   * Multiplication / division / remainder must be convertible to shifts
//     and masks (power-of-two constants); anything else is rejected with a
//     target error, mirroring the paper's per-target rejection strategy.
//   * Relational comparisons between two dynamic operands are converted to
//     a subtraction followed by an MSB check, the pattern Tofino ALUs
//     support. Comparisons against constants map to MAT ranges and stay.
//
// The v1model software switch executes anything; no transforms apply.
#include <vector>

#include "passes/passes.hpp"

namespace netcl::passes {

using namespace netcl::ir;

namespace {

[[nodiscard]] bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

[[nodiscard]] int log2_of(std::uint64_t v) {
  int result = 0;
  while (v > 1) {
    v >>= 1;
    ++result;
  }
  return result;
}

[[nodiscard]] bool is_relational(ICmpPred pred) {
  return pred != ICmpPred::EQ && pred != ICmpPred::NE;
}

void lower_function(Function& fn, Module& module, const PassOptions& options,
                    DiagnosticEngine& diags) {
  for (const auto& block : fn.blocks()) {
    // Snapshot: we append replacement instructions while iterating.
    std::vector<Instruction*> worklist;
    for (const auto& inst : block->instructions()) worklist.push_back(inst.get());

    for (Instruction* inst : worklist) {
      if (inst->op() == Opcode::Bin) {
        const BinKind kind = inst->bin_kind;
        const bool is_mul_div = kind == BinKind::Mul || kind == BinKind::UDiv ||
                                kind == BinKind::SDiv || kind == BinKind::URem ||
                                kind == BinKind::SRem;
        if (!is_mul_div) continue;
        const Constant* rhs = as_constant(inst->operand(1));
        if (rhs != nullptr && is_pow2(rhs->value())) {
          const int shift = log2_of(rhs->value());
          Constant* amount = module.constant(inst->type(), static_cast<std::uint64_t>(shift));
          switch (kind) {
            case BinKind::Mul:
              inst->bin_kind = BinKind::Shl;
              inst->set_operand(1, amount);
              break;
            case BinKind::UDiv:
              inst->bin_kind = BinKind::LShr;
              inst->set_operand(1, amount);
              break;
            case BinKind::SDiv:
              // Arithmetic shift rounds toward -inf instead of 0; accept the
              // same approximation hardware P4 code uses.
              inst->bin_kind = BinKind::AShr;
              inst->set_operand(1, amount);
              break;
            case BinKind::URem:
            case BinKind::SRem:
              inst->bin_kind = BinKind::And;
              inst->set_operand(1, module.constant(inst->type(), rhs->value() - 1));
              break;
            default:
              break;
          }
        } else {
          diags.error(inst->loc,
                      "kernel '" + fn.name() + "': " + to_string(kind) +
                          (rhs == nullptr ? " with a dynamic operand"
                                          : " by a non-power-of-two constant") +
                          " cannot be converted to shifts on the Tofino target");
        }
        continue;
      }

      if (options.icmp_lowering && inst->op() == Opcode::ICmp && is_relational(inst->icmp_pred)) {
        const bool both_dynamic = as_constant(inst->operand(0)) == nullptr &&
                                  as_constant(inst->operand(1)) == nullptr;
        if (!both_dynamic) continue;  // constant side maps to a MAT range match

        // a < b  ->  MSB(a - b) == 1 ; a <= b -> MSB(b - a) == 0 ; etc.
        Value* a = inst->operand(0);
        Value* b = inst->operand(1);
        bool swap = false;   // compute b - a instead of a - b
        bool msb_set = true; // compare MSB against 1 (else against 0)
        switch (inst->icmp_pred) {
          case ICmpPred::ULT:
          case ICmpPred::SLT: swap = false; msb_set = true; break;
          case ICmpPred::UGT:
          case ICmpPred::SGT: swap = true; msb_set = true; break;
          case ICmpPred::ULE:
          case ICmpPred::SLE: swap = true; msb_set = false; break;
          case ICmpPred::UGE:
          case ICmpPred::SGE: swap = false; msb_set = false; break;
          default: break;
        }
        if (swap) std::swap(a, b);

        // The difference must be computed one step wider, or the MSB check
        // is wrong whenever |a - b| >= 2^(W-1): widen (zero- or
        // sign-extended per the predicate), subtract, then check the MSB
        // of the wide result — MSB(x) == 1 <=> x >= 2^(W'-1) unsigned,
        // which the stage gateway evaluates as a constant range match.
        const ScalarType narrow = a->type();
        if (narrow.bits >= 64) continue;  // cannot widen; leave the icmp
        const ScalarType wide{static_cast<std::uint8_t>(narrow.bits * 2),
                              is_signed_pred(inst->icmp_pred)};
        const bool sign_extend = is_signed_pred(inst->icmp_pred);

        auto widen = [&](Value* v) -> std::unique_ptr<Instruction> {
          auto cast = std::make_unique<Instruction>(Opcode::Cast, wide);
          cast->cast_signed = sign_extend;
          cast->loc = inst->loc;
          cast->add_operand(v);
          return cast;
        };
        auto cast_a = widen(a);
        auto cast_b = widen(b);
        auto sub = std::make_unique<Instruction>(Opcode::Bin, wide);
        sub->bin_kind = BinKind::Sub;
        sub->loc = inst->loc;
        sub->add_operand(cast_a.get());
        sub->add_operand(cast_b.get());
        Instruction* sub_ptr = sub.get();

        auto& insts = block->instructions();
        for (std::size_t i = 0; i < insts.size(); ++i) {
          if (insts[i].get() == inst) {
            cast_a->set_parent(block.get());
            cast_b->set_parent(block.get());
            sub_ptr->set_parent(block.get());
            insts.insert(insts.begin() + static_cast<std::ptrdiff_t>(i), std::move(sub));
            insts.insert(insts.begin() + static_cast<std::ptrdiff_t>(i), std::move(cast_b));
            insts.insert(insts.begin() + static_cast<std::ptrdiff_t>(i), std::move(cast_a));
            break;
          }
        }
        const std::uint64_t msb = 1ULL << (wide.bits - 1);
        inst->icmp_pred = msb_set ? ICmpPred::UGE : ICmpPred::ULT;
        inst->set_operand(0, sub_ptr);
        inst->set_operand(1, module.constant(wide, msb));
      }
    }
  }
}

}  // namespace

void lower_patterns(Module& module, const PassOptions& options, DiagnosticEngine& diags) {
  if (options.target != Target::Tna) return;
  for (const auto& fn : module.functions()) {
    lower_function(*fn, module, options, diags);
  }
}

}  // namespace netcl::passes
