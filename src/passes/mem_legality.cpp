// Tofino stateful-memory legalization (§V-D and §VI-B).
//
// Tofino stateful memory is stage-local: a register lives in exactly one
// hardware stage and is reachable only while the packet is in that stage.
// Consequently a program may touch each memory object at most once per
// packet, unless the accesses are mutually exclusive and close enough to
// share the stage. Before checking, two transformations remove most
// violations:
//
//   * access-based partitioning: a multi-dimensional array whose outer
//     index is always constant is split into per-outer-index objects (the
//     unrolled Agg[i][idx] accesses of SwitchML become independent
//     registers);
//   * lookup duplication: non-managed lookup memory is constant from the
//     data plane's perspective, so each lookup site gets its own MAT copy.
//
// Then three checks run (each failure is a compilation error):
//   1. mutual exclusion  - no two accesses to one object on the same path;
//   2. distance          - mutually exclusive accesses must sit within a
//                          bounded conditional-branch-depth of each other
//                          (approximating same-stage placement);
//   3. ordering          - pairs of objects must be accessed in a single
//                          consistent order across all paths, unless the
//                          conflicting accesses are independent and can be
//                          reordered.
#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/dominators.hpp"
#include "obs/trace.hpp"
#include "passes/passes.hpp"

namespace netcl::passes {

using namespace netcl::ir;

namespace {

struct Access {
  Instruction* inst = nullptr;
  Function* fn = nullptr;
  BasicBlock* block = nullptr;
  int position = 0;  // index within the block
};

struct CfgInfo {
  std::unordered_map<const BasicBlock*, int> index;
  std::vector<std::vector<bool>> reach;  // reach[a][b]: a != b, path a->b
  std::unordered_map<const BasicBlock*, int> depth;  // min CondBrs from entry
};

CfgInfo analyze_cfg(Function& fn) {
  CfgInfo info;
  fn.recompute_preds();
  const std::vector<BasicBlock*> rpo = fn.reverse_postorder();
  for (std::size_t i = 0; i < rpo.size(); ++i) info.index[rpo[i]] = static_cast<int>(i);

  const std::size_t n = rpo.size();
  info.reach.assign(n, std::vector<bool>(n, false));
  // Process in reverse RPO: successors already complete.
  for (std::size_t i = n; i-- > 0;) {
    BasicBlock* block = rpo[i];
    for (BasicBlock* succ : block->successors()) {
      const std::size_t j = static_cast<std::size_t>(info.index.at(succ));
      info.reach[i][j] = true;
      for (std::size_t k = 0; k < n; ++k) {
        if (info.reach[j][k]) info.reach[i][k] = true;
      }
    }
  }

  // "Distance from entry" is measured as control-dependence nesting depth
  // (how many enclosing conditionals an access sits under), which is the
  // conditional-branch count along the path after if-conversion collapses
  // sequential independent conditionals — a fully unrolled loop of guarded
  // statements nests depth 1, not depth N.
  PostDominatorTree postdom(fn);
  auto walk = [&](auto&& self, BasicBlock* block, BasicBlock* stop, int depth) -> void {
    while (block != nullptr && block != stop) {
      auto [it, inserted] = info.depth.try_emplace(block, depth);
      if (!inserted) it->second = std::min(it->second, depth);
      const Instruction* term = block->terminator();
      if (term == nullptr) return;
      if (term->op() == Opcode::Br) {
        block = term->succs[0];
      } else if (term->op() == Opcode::CondBr) {
        BasicBlock* merge = postdom.ipostdom(block);
        if (term->succs[0] != merge) self(self, term->succs[0], merge, depth + 1);
        if (term->succs[1] != merge) self(self, term->succs[1], merge, depth + 1);
        block = merge;
      } else {
        return;  // RetAction / Ret
      }
    }
  };
  if (fn.entry() != nullptr) walk(walk, fn.entry(), nullptr, 0);
  for (BasicBlock* block : rpo) info.depth.try_emplace(block, 0);
  return info;
}

bool reaches(const CfgInfo& info, const BasicBlock* a, const BasicBlock* b) {
  return info.reach[static_cast<std::size_t>(info.index.at(a))]
                   [static_cast<std::size_t>(info.index.at(b))];
}

/// Transitive SSA dependence: does `user` depend on `def`?
bool depends_on(const Instruction* user, const Instruction* def) {
  std::unordered_set<const Instruction*> visited;
  auto dfs = [&](auto&& self, const Instruction* inst) -> bool {
    if (inst == def) return true;
    if (!visited.insert(inst).second) return false;
    for (std::size_t i = 0; i < inst->num_operands(); ++i) {
      const Value* operand = inst->operand(i);
      if (operand->kind() == ValueKind::Instruction &&
          self(self, static_cast<const Instruction*>(operand))) {
        return true;
      }
    }
    return false;
  };
  return dfs(dfs, user);
}

std::vector<Access> collect_accesses(Module& module, const GlobalVar* global) {
  std::vector<Access> accesses;
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      int position = 0;
      for (const auto& inst : block->instructions()) {
        if (inst->accesses_global() && inst->global == global) {
          accesses.push_back({inst.get(), fn.get(), block.get(), position});
        }
        ++position;
      }
    }
  }
  return accesses;
}

// --- partitioning ----------------------------------------------------------

void partition(Module& module) {
  std::vector<GlobalVar*> candidates;
  for (const auto& global : module.globals()) {
    if (!global->is_lookup && global->dims.size() >= 2) candidates.push_back(global.get());
  }
  for (GlobalVar* global : candidates) {
    const std::vector<Access> accesses = collect_accesses(module, global);
    bool splittable = !accesses.empty();
    for (const Access& access : accesses) {
      const Constant* outer = as_constant(access.inst->operand(0));
      if (outer == nullptr || outer->extended() < 0 || outer->extended() >= global->dims[0]) {
        splittable = false;
        break;
      }
    }
    if (!splittable) continue;

    std::vector<GlobalVar*> parts;
    for (std::int64_t k = 0; k < global->dims[0]; ++k) {
      GlobalVar part = *global;
      part.name = global->name + "$" + std::to_string(k);
      part.dims.erase(part.dims.begin());
      parts.push_back(module.add_global(std::move(part)));
    }
    for (const Access& access : accesses) {
      const auto outer =
          static_cast<std::size_t>(as_constant(access.inst->operand(0))->extended());
      access.inst->global = parts[outer];
      access.inst->remove_operand(0);
      --access.inst->num_indices;
    }
    module.erase_global(global);
  }
}

// --- lookup duplication ----------------------------------------------------

void duplicate_lookups(Module& module) {
  std::vector<GlobalVar*> candidates;
  for (const auto& global : module.globals()) {
    // The paper duplicates only non-managed lookup memory: duplication of
    // managed tables would need control-plane bulk atomic updates.
    if (global->is_lookup && !global->is_managed) candidates.push_back(global.get());
  }
  for (GlobalVar* global : candidates) {
    std::vector<Instruction*> lookups;
    std::vector<Instruction*> lookup_values;
    for (const auto& fn : module.functions()) {
      for (const auto& block : fn->blocks()) {
        for (const auto& inst : block->instructions()) {
          if (inst->op() == Opcode::Lookup && inst->global == global) {
            lookups.push_back(inst.get());
          }
          if (inst->op() == Opcode::LookupValue && inst->global == global) {
            lookup_values.push_back(inst.get());
          }
        }
      }
    }
    for (std::size_t i = 1; i < lookups.size(); ++i) {
      GlobalVar copy = *global;
      copy.name = global->name + "$dup" + std::to_string(i);
      GlobalVar* dup = module.add_global(std::move(copy));
      lookups[i]->global = dup;
      for (Instruction* lv : lookup_values) {
        if (lv->operand(0) == lookups[i]) lv->global = dup;
      }
    }
  }
}

// --- checks ----------------------------------------------------------------

void check_module(Module& module, const PassOptions& options, DiagnosticEngine& diags) {
  std::unordered_map<Function*, CfgInfo> cfg_infos;
  for (const auto& fn : module.functions()) cfg_infos.emplace(fn.get(), analyze_cfg(*fn));

  // 1 & 2: per-object mutual exclusion and distance. One report per
  // object (the first violating pair) keeps rejections readable when a
  // fully unrolled loop produces dozens of conflicting accesses.
  for (const auto& global : module.globals()) {
    const std::vector<Access> accesses = collect_accesses(module, global.get());
    bool reported = false;
    for (std::size_t i = 0; i < accesses.size() && !reported; ++i) {
      for (std::size_t j = i + 1; j < accesses.size() && !reported; ++j) {
        const Access& a = accesses[i];
        const Access& b = accesses[j];
        if (a.fn != b.fn) continue;  // different kernels never share a packet
        const CfgInfo& info = cfg_infos.at(a.fn);
        const bool same_path = a.block == b.block || reaches(info, a.block, b.block) ||
                               reaches(info, b.block, a.block);
        if (same_path) {
          diags.error(a.inst->loc,
                      "kernel '" + a.fn->name() + "': memory '" + global->name +
                          "' is accessed more than once on a single path; Tofino "
                          "stateful memory is stage-local (make the accesses "
                          "mutually exclusive)");
          reported = true;
        } else {
          const int distance =
              std::abs(info.depth.at(a.block) - info.depth.at(b.block));
          if (distance > options.distance_threshold) {
            diags.error(a.inst->loc,
                        "kernel '" + a.fn->name() + "': mutually exclusive accesses to '" +
                            global->name + "' are too far apart (branch-depth distance " +
                            std::to_string(distance) + " > " +
                            std::to_string(options.distance_threshold) +
                            ") to share a pipeline stage");
            reported = true;
          }
        }
      }
    }
  }

  // 3: pairwise ordering consistency.
  struct OrderWitness {
    Instruction* first;
    Instruction* second;
  };
  // Key: ordered pair of global ids (first accessed before second).
  std::map<std::pair<int, int>, OrderWitness> orders;
  for (const auto& fn : module.functions()) {
    const CfgInfo& info = cfg_infos.at(fn.get());
    std::vector<Access> accesses;
    for (const auto& global : module.globals()) {
      auto some = collect_accesses(module, global.get());
      for (const Access& a : some) {
        if (a.fn == fn.get()) accesses.push_back(a);
      }
    }
    for (std::size_t i = 0; i < accesses.size(); ++i) {
      for (std::size_t j = 0; j < accesses.size(); ++j) {
        if (i == j) continue;
        const Access& a = accesses[i];
        const Access& b = accesses[j];
        if (a.inst->global == b.inst->global) continue;
        const bool ordered = (a.block == b.block && a.position < b.position) ||
                             (a.block != b.block && reaches(info, a.block, b.block));
        if (!ordered) continue;
        orders.try_emplace({a.inst->global->id, b.inst->global->id},
                           OrderWitness{a.inst, b.inst});
      }
    }
  }
  std::set<std::pair<int, int>> reported;
  for (const auto& [pair, witness] : orders) {
    const auto reversed = std::make_pair(pair.second, pair.first);
    if (orders.count(reversed) == 0) continue;
    if (reported.count(reversed) != 0) continue;
    reported.insert(pair);
    // Conflicting orders exist. Allowed only if both witnesses are
    // independent (then the accesses can be reordered to agree).
    const OrderWitness& w1 = witness;
    const OrderWitness& w2 = orders.at(reversed);
    const bool dependent = depends_on(w1.second, w1.first) || depends_on(w2.second, w2.first);
    if (dependent) {
      diags.error(w1.first->loc,
                  "memory objects '" + w1.first->global->name + "' and '" +
                      w1.second->global->name +
                      "' are accessed in different orders on different paths and the "
                      "accesses cannot be reordered (stage placement is impossible)");
    }
  }
}

}  // namespace

void mem_legality(Module& module, const PassOptions& options, DiagnosticEngine& diags) {
  if (options.target != Target::Tna) return;
  if (options.partitioning) partition(module);
  if (options.duplication) duplicate_lookups(module);
  check_module(module, options, diags);
}

namespace {

/// Total instruction count across the module, for pass-delta reporting.
int module_insts(const Module& module) {
  std::size_t n = 0;
  for (const auto& fn : module.functions()) n += fn->instruction_count();
  return static_cast<int>(n);
}

/// Runs `body` as one observed pass: wall-times it, wraps it in a trace
/// span, and (when requested) records an obs::PassStat with the module's
/// instruction-count delta.
template <typename Body>
void observed_pass(Module& module, const PassOptions& options, const std::string& name,
                   Body&& body) {
  // Fast path: with no report requested and the tracer off, observation
  // must cost nothing — no clocks, no instruction counting.
  if (options.report == nullptr && !obs::tracer().enabled()) {
    body();
    return;
  }
  const int before = module_insts(module);
  obs::TraceSpan span(obs::tracer(), "pass", name);
  const auto start = std::chrono::steady_clock::now();
  body();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  const int after = module_insts(module);
  if (span.active()) span.arg("insts_delta", std::to_string(after - before));
  if (options.report != nullptr) options.report->add_pass(name, seconds, before, after);
}

}  // namespace

void run_pipeline(Module& module, const PassOptions& options, DiagnosticEngine& diags) {
  for (const auto& fn : module.functions()) {
    const std::string suffix = "(" + fn->name() + ")";
    observed_pass(module, options, "simplify+dce" + suffix, [&] {
      for (int i = 0; i < options.max_simplify_iterations; ++i) {
        bool changed = simplify(*fn, module);
        changed |= dce(*fn);
        if (!changed) break;
      }
    });
    observed_pass(module, options, "sroa" + suffix, [&] { sroa(*fn, module); });
    observed_pass(module, options, "simplify+dce.post-sroa" + suffix, [&] {
      for (int i = 0; i < options.max_simplify_iterations; ++i) {
        bool changed = simplify(*fn, module);
        changed |= dce(*fn);
        if (!changed) break;
      }
    });
    observed_pass(module, options, "dag_check" + suffix, [&] { dag_check(*fn, diags); });
    if (diags.has_errors()) return;
    observed_pass(module, options, "hoist" + suffix, [&] { hoist(*fn, options); });
  }
  observed_pass(module, options, "lower_patterns",
                [&] { lower_patterns(module, options, diags); });
  if (diags.has_errors()) return;
  observed_pass(module, options, "simplify+dce.post-lower", [&] {
    for (const auto& fn : module.functions()) {
      simplify(*fn, module);
      dce(*fn);
    }
  });
  observed_pass(module, options, "mem_legality",
                [&] { mem_legality(module, options, diags); });
}

}  // namespace netcl::passes
