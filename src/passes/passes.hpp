// The NetCL middle-end pass pipeline (§VI-B of the paper).
//
// Correspondence with the paper's pass list:
//   inline + unroll + materialize    -> done during AST lowering (ir/lower_ast)
//   peephole / instsimplify / DCE    -> simplify(), dce()
//   CFG-must-be-DAG                  -> dag_check()
//   local-array promotion            -> sroa() (enables register allocation of
//                                      fully-unrolled array temporaries)
//   common-value hoisting            -> hoist() (GVN-lite to common dominators)
//   icmp -> sub+MSB, shift lowering  -> lower_patterns() (TNA only)
//   memory partitioning, lookup
//   duplication, mutual-exclusion /
//   distance / ordering checks       -> mem_legality() (TNA only)
//   CFG structurization + phi-elim   -> performed by the backend linearizer
//                                      (p4/lower_pipeline), which emits the
//                                      predicated straight-line form RMT
//                                      hardware executes.
#pragma once

#include "ir/ir.hpp"
#include "obs/report.hpp"
#include "support/diagnostics.hpp"

namespace netcl::passes {

enum class Target { V1Model, Tna };

struct PassOptions {
  Target target = Target::Tna;
  bool speculation = true;    // §VI-B: aggressive speculation (backend flag)
  bool hoisting = true;       // common-dominator hoisting
  bool duplication = true;    // lookup-memory duplication
  bool partitioning = true;   // access-based memory partitioning
  bool icmp_lowering = true;  // relational icmp -> sub + MSB check
  int distance_threshold = 4; // max conditional-branch-depth gap between
                              // accesses sharing one stage (§VI-B)
  int max_simplify_iterations = 8;
  /// When set, run_pipeline records one obs::PassStat (wall time + module
  /// instruction-count delta) per pass it runs, and each pass executes
  /// under an obs::TraceSpan on the global tracer.
  obs::CompileReport* report = nullptr;
};

/// Folds constants, applies peepholes, folds constant branches, merges
/// straight-line blocks, and simplifies phis. Returns true if anything
/// changed.
bool simplify(ir::Function& fn, ir::Module& module);

/// Removes side-effect-free instructions with no uses and unreachable
/// blocks. Returns true if anything changed.
bool dce(ir::Function& fn);

/// Promotes local arrays whose accesses all use constant indices into SSA
/// values (classic SROA + mem2reg; local arrays that survive become header
/// stacks with index tables in the backend). Returns true if changed.
bool sroa(ir::Function& fn, ir::Module& module);

/// Rejects functions whose CFG is not a DAG (cannot map to a feed-forward
/// P4 pipeline).
void dag_check(ir::Function& fn, DiagnosticEngine& diags);

/// Hoists identical pure computations to their nearest common dominator.
bool hoist(ir::Function& fn, const PassOptions& options);

/// Target legalization of instruction patterns: on TNA converts
/// multiplication/division by powers of two into shifts (rejecting the
/// rest), and lowers dynamic relational comparisons into subtraction + MSB
/// checks, which Tofino ALUs support directly.
void lower_patterns(ir::Module& module, const PassOptions& options, DiagnosticEngine& diags);

/// Tofino stateful-memory legalization (§V-D, §VI-B): access-based
/// partitioning of multi-dimensional arrays, duplication of read-only
/// lookup memory, then the mutual-exclusion, distance, and access-ordering
/// checks. Errors are reported through `diags`.
void mem_legality(ir::Module& module, const PassOptions& options, DiagnosticEngine& diags);

/// Runs the standard pipeline for a target over a whole module. Checks
/// `diags` between phases; stops early on errors.
void run_pipeline(ir::Module& module, const PassOptions& options, DiagnosticEngine& diags);

}  // namespace netcl::passes
