#include <algorithm>
#include <unordered_map>
#include <vector>

#include "ir/eval.hpp"
#include "passes/passes.hpp"

namespace netcl::passes {

using namespace netcl::ir;

namespace {

bool is_commutative(BinKind kind) {
  switch (kind) {
    case BinKind::Add:
    case BinKind::Mul:
    case BinKind::And:
    case BinKind::Or:
    case BinKind::Xor:
    case BinKind::SAddSat:
    case BinKind::UMin:
    case BinKind::UMax:
    case BinKind::SMin:
    case BinKind::SMax:
      return true;
    default:
      return false;
  }
}

/// Removes the phi incomings of edge `from` -> `to`.
void remove_edge_phis(BasicBlock* from, BasicBlock* to) {
  for (const auto& inst : to->instructions()) {
    if (inst->op() != Opcode::Phi) break;
    for (std::size_t i = inst->phi_blocks.size(); i-- > 0;) {
      if (inst->phi_blocks[i] == from) {
        inst->phi_blocks.erase(inst->phi_blocks.begin() + static_cast<std::ptrdiff_t>(i));
        inst->remove_operand(i);
      }
    }
  }
}

/// Attempts to fold one instruction; returns the replacement value or null.
Value* fold(Instruction& inst, Module& module) {
  switch (inst.op()) {
    case Opcode::Bin: {
      Value* a = inst.operand(0);
      Value* b = inst.operand(1);
      const Constant* ca = as_constant(a);
      const Constant* cb = as_constant(b);
      // Canonicalize constants to the right for commutative operations.
      if (ca != nullptr && cb == nullptr && is_commutative(inst.bin_kind)) {
        inst.set_operand(0, b);
        inst.set_operand(1, a);
        std::swap(a, b);
        std::swap(ca, cb);
      }
      if (ca != nullptr && cb != nullptr) {
        return module.constant(inst.type(),
                               eval_bin(inst.bin_kind, ca->value(), cb->value(), inst.type()));
      }
      const std::uint64_t ones = inst.type().max_unsigned();
      if (cb != nullptr) {
        const std::uint64_t c = cb->value();
        switch (inst.bin_kind) {
          case BinKind::Add:
          case BinKind::Sub:
          case BinKind::Or:
          case BinKind::Xor:
          case BinKind::Shl:
          case BinKind::LShr:
          case BinKind::AShr:
            if (c == 0) return a;
            break;
          case BinKind::Mul:
            if (c == 1) return a;
            if (c == 0) return module.constant(inst.type(), 0);
            break;
          case BinKind::UDiv:
            if (c == 1) return a;
            break;
          case BinKind::And:
            if (c == 0) return module.constant(inst.type(), 0);
            if (c == ones) return a;
            break;
          default:
            break;
        }
        if (inst.bin_kind == BinKind::Or && c == ones) return module.constant(inst.type(), ones);
      }
      if (a == b) {
        switch (inst.bin_kind) {
          case BinKind::And:
          case BinKind::Or:
          case BinKind::UMin:
          case BinKind::UMax:
          case BinKind::SMin:
          case BinKind::SMax:
            return a;
          case BinKind::Xor:
          case BinKind::Sub:
            return module.constant(inst.type(), 0);
          default:
            break;
        }
      }
      return nullptr;
    }
    case Opcode::ICmp: {
      const Constant* ca = as_constant(inst.operand(0));
      const Constant* cb = as_constant(inst.operand(1));
      const ScalarType operand_type = inst.operand(0)->type();
      if (ca != nullptr && cb != nullptr) {
        return module.bool_constant(
            eval_icmp(inst.icmp_pred, ca->value(), cb->value(), operand_type));
      }
      if (inst.operand(0) == inst.operand(1)) {
        switch (inst.icmp_pred) {
          case ICmpPred::EQ:
          case ICmpPred::ULE:
          case ICmpPred::UGE:
          case ICmpPred::SLE:
          case ICmpPred::SGE:
            return module.bool_constant(true);
          default:
            return module.bool_constant(false);
        }
      }
      return nullptr;
    }
    case Opcode::Select: {
      if (const Constant* cond = as_constant(inst.operand(0))) {
        return cond->value() != 0 ? inst.operand(1) : inst.operand(2);
      }
      if (inst.operand(1) == inst.operand(2)) return inst.operand(1);
      return nullptr;
    }
    case Opcode::Cast: {
      if (inst.operand(0)->type().bits == inst.type().bits) return inst.operand(0);
      if (const Constant* c = as_constant(inst.operand(0))) {
        const std::uint64_t extended =
            inst.cast_signed ? static_cast<std::uint64_t>(c->extended()) : c->value();
        return module.constant(inst.type(), extended);
      }
      return nullptr;
    }
    case Opcode::Phi: {
      if (inst.num_operands() == 1) return inst.operand(0);
      Value* first = nullptr;
      for (std::size_t i = 0; i < inst.num_operands(); ++i) {
        Value* v = inst.operand(i);
        if (v == &inst) continue;
        if (first == nullptr) {
          first = v;
        } else if (first != v) {
          return nullptr;
        }
      }
      return first;
    }
    case Opcode::Clz: {
      if (const Constant* c = as_constant(inst.operand(0))) {
        const std::uint8_t bits = inst.operand(0)->type().bits;
        std::uint64_t v = c->value();
        int count = 0;
        for (int bit = bits - 1; bit >= 0; --bit) {
          if ((v >> bit) & 1) break;
          ++count;
        }
        return module.constant(inst.type(), static_cast<std::uint64_t>(count));
      }
      return nullptr;
    }
    case Opcode::Bswap: {
      if (const Constant* c = as_constant(inst.operand(0))) {
        const unsigned bytes = inst.type().bits / 8;
        std::uint64_t v = c->value();
        std::uint64_t result = 0;
        for (unsigned i = 0; i < bytes; ++i) {
          result = (result << 8) | ((v >> (8 * i)) & 0xFF);
        }
        return module.constant(inst.type(), result);
      }
      return nullptr;
    }
    default:
      return nullptr;
  }
}

bool fold_branches(Function& fn) {
  bool changed = false;
  for (const auto& block : fn.blocks()) {
    Instruction* term = block->terminator();
    if (term == nullptr || term->op() != Opcode::CondBr) continue;
    BasicBlock* true_succ = term->succs[0];
    BasicBlock* false_succ = term->succs[1];
    const Constant* cond = as_constant(term->operand(0));
    if (cond == nullptr && true_succ != false_succ) continue;

    BasicBlock* taken = cond == nullptr || cond->value() != 0 ? true_succ : false_succ;
    BasicBlock* dropped = taken == true_succ ? false_succ : true_succ;
    if (dropped != taken) remove_edge_phis(block.get(), dropped);
    // Replace the CondBr with a Br.
    term->remove_operand(0);
    term->succs.clear();
    // A block cannot mutate its terminator's opcode, so rebuild it.
    block->erase(term);
    auto br = std::make_unique<Instruction>(Opcode::Br, kBool);
    br->succs.push_back(taken);
    block->append(std::move(br));
    changed = true;
  }
  if (changed) {
    fn.remove_unreachable_blocks();
  }
  return changed;
}

bool merge_blocks(Function& fn) {
  bool changed = false;
  fn.recompute_preds();
  for (bool merged = true; merged;) {
    merged = false;
    for (const auto& block : fn.blocks()) {
      Instruction* term = block->terminator();
      if (term == nullptr || term->op() != Opcode::Br) continue;
      BasicBlock* succ = term->succs[0];
      if (succ == block.get() || succ->predecessors().size() != 1) continue;
      if (succ == fn.entry()) continue;
      // Fold single-incoming phis in succ, then splice.
      std::vector<Instruction*> phis;
      for (const auto& inst : succ->instructions()) {
        if (inst->op() == Opcode::Phi) phis.push_back(inst.get());
      }
      for (Instruction* phi : phis) {
        fn.replace_all_uses(phi, phi->operand(0));
        succ->erase(phi);
      }
      block->erase(term);
      while (!succ->instructions().empty()) {
        auto inst = succ->detach(succ->instructions().front().get());
        inst->set_parent(block.get());
        block->instructions().push_back(std::move(inst));
      }
      // Phi incomings in the successors of succ must now name `block`.
      for (BasicBlock* next : block->successors()) {
        for (const auto& inst : next->instructions()) {
          if (inst->op() != Opcode::Phi) break;
          for (auto& incoming : inst->phi_blocks) {
            if (incoming == succ) incoming = block.get();
          }
        }
      }
      fn.erase_block(succ);
      fn.recompute_preds();
      merged = true;
      changed = true;
      break;  // iterators invalidated
    }
  }
  return changed;
}

}  // namespace

bool simplify(Function& fn, Module& module) {
  bool changed_any = false;
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& block : fn.blocks()) {
      std::vector<Instruction*> dead;
      for (const auto& inst : block->instructions()) {
        if (Value* replacement = fold(*inst, module)) {
          fn.replace_all_uses(inst.get(), replacement);
          dead.push_back(inst.get());
          changed = true;
        }
      }
      for (Instruction* inst : dead) block->erase(inst);
    }
    changed |= fold_branches(fn);
    changed |= merge_blocks(fn);
    changed_any |= changed;
  }
  return changed_any;
}

}  // namespace netcl::passes
