// Scalar replacement of local arrays.
//
// After full unrolling, most local arrays (e.g. the count-min-sketch
// temporaries `c[CMS_HASHES]` in the paper's Figure 4) are only indexed by
// constants. Those are promoted to SSA values here, so they occupy PHV
// containers rather than header stacks. Arrays with any dynamic index are
// left alone; the backend lowers them to header stacks plus index tables
// (Fig. 9, rightmost column).
#include <unordered_map>
#include <vector>

#include "ir/dominators.hpp"
#include "passes/passes.hpp"

namespace netcl::passes {

using namespace netcl::ir;

namespace {

class Promoter {
 public:
  Promoter(Function& fn, Module& module, LocalArray& array)
      : fn_(fn), module_(module), array_(array) {}

  bool run() {
    // Check all accesses use constant, in-bounds indices.
    std::vector<Instruction*> accesses;
    for (const auto& block : fn_.blocks()) {
      for (const auto& inst : block->instructions()) {
        if (inst->local_array != &array_) continue;
        const Constant* index = as_constant(inst->operand(0));
        if (index == nullptr || index->extended() < 0 ||
            index->extended() >= array_.size) {
          return false;
        }
        accesses.push_back(inst.get());
      }
    }

    fn_.recompute_preds();
    std::vector<std::pair<Instruction*, Value*>> load_replacements;
    std::vector<Instruction*> to_erase;

    for (BasicBlock* block : fn_.reverse_postorder()) {
      // Snapshot: read() may insert phis into blocks while we iterate.
      std::vector<Instruction*> insts;
      insts.reserve(block->instructions().size());
      for (const auto& inst : block->instructions()) insts.push_back(inst.get());
      for (Instruction* inst : insts) {
        if (inst->local_array != &array_) continue;
        const int elem = static_cast<int>(as_constant(inst->operand(0))->extended());
        if (inst->op() == Opcode::StoreLocal) {
          defs_[block][elem] = inst->operand(1);
          to_erase.push_back(inst);
        } else {  // LoadLocal
          Value* value = read(block, elem);
          load_replacements.emplace_back(inst, value);
          // Later loads in this block see the same value.
          defs_[block][elem] = value;
        }
      }
    }

    for (const auto& [load, value] : load_replacements) fn_.replace_all_uses(load, value);
    for (Instruction* inst : to_erase) inst->parent()->erase(inst);
    for (const auto& [load, value] : load_replacements) load->parent()->erase(load);
    fn_.erase_local_array(&array_);
    return true;
  }

 private:
  Value* read(BasicBlock* block, int elem) {
    const auto block_it = defs_.find(block);
    if (block_it != defs_.end()) {
      const auto it = block_it->second.find(elem);
      if (it != block_it->second.end()) return it->second;
    }
    const auto& preds = block->predecessors();
    Value* result = nullptr;
    if (preds.empty()) {
      result = module_.constant(array_.elem_type, 0);  // undefined -> 0
    } else if (preds.size() == 1) {
      result = read(preds[0], elem);
    } else {
      auto phi = std::make_unique<Instruction>(Opcode::Phi, array_.elem_type);
      Instruction* phi_ptr = block->insert_after_phis(std::move(phi));
      defs_[block][elem] = phi_ptr;  // break cycles defensively
      for (BasicBlock* pred : preds) {
        phi_ptr->add_operand(read(pred, elem));
        phi_ptr->phi_blocks.push_back(pred);
      }
      result = phi_ptr;
    }
    defs_[block][elem] = result;
    return result;
  }

  Function& fn_;
  Module& module_;
  LocalArray& array_;
  std::unordered_map<BasicBlock*, std::unordered_map<int, Value*>> defs_;
};

}  // namespace

bool sroa(Function& fn, Module& module) {
  bool changed = false;
  // Copy the list: promotion erases arrays.
  std::vector<LocalArray*> arrays;
  for (const auto& array : fn.local_arrays()) arrays.push_back(array.get());
  for (LocalArray* array : arrays) {
    Promoter promoter(fn, module, *array);
    changed |= promoter.run();
  }
  return changed;
}

}  // namespace netcl::passes
