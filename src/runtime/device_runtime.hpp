// NetCL device runtime: the small piece of (in the paper, P4) logic that
// sits between the generated kernel code and the device's base forwarding
// program. It owns the NetCL 4-tuple (src, dst, from, to): after a kernel
// returns an action (Table II), the tuple is rewritten and the base program
// forwards accordingly (§VI-C).
//
// Header-only so both the switch simulator (device side) and the host
// runtime (for documentation/tests) share one implementation.
#pragma once

#include "frontend/ast.hpp"
#include "sim/packet.hpp"

namespace netcl::runtime {

struct ForwardDecision {
  bool drop = false;
  bool multicast = false;
  std::uint16_t multicast_group = 0;
};

/// Applies a kernel's action to the NetCL header on device `device_id`.
/// The previous hop of a message is its source host when `from` is 0, or
/// the last device that computed on it (§IV).
inline ForwardDecision apply_action(sim::NetclHeader& header, ActionKind action,
                                    std::uint16_t target, std::uint16_t device_id) {
  ForwardDecision decision;
  const std::uint16_t previous_device = header.from;
  header.from = device_id;
  switch (action) {
    case ActionKind::Drop:
      decision.drop = true;
      break;
    case ActionKind::SendToHost:
      header.dst = target;
      header.to = 0;
      break;
    case ActionKind::SendToDevice:
      header.to = target;
      break;
    case ActionKind::Multicast:
      decision.multicast = true;
      decision.multicast_group = target;
      header.to = 0;
      break;
    case ActionKind::Reflect:
      // Back to the previous hop: the last computing device, or the source
      // host if no device computed on the message yet.
      if (previous_device != 0 && previous_device != device_id) {
        header.to = previous_device;
      } else {
        header.dst = header.src;
        header.to = 0;
      }
      break;
    case ActionKind::ReflectLong:
      header.dst = header.src;
      header.to = 0;
      break;
    case ActionKind::Pass:
    case ActionKind::None:
      header.to = 0;  // continue to the original destination
      break;
  }
  return decision;
}

}  // namespace netcl::runtime
