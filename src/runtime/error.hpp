// Typed runtime errors (ISSUE 3).
//
// Failure-aware paths — control-plane deadlines, retransmission give-up,
// fail-fast fallback — surface one of these instead of hanging or silently
// dropping. Header-only and dependency-free so the net layer can report
// them too without a link-time cycle (netcl_net sits below netcl_runtime).
#pragma once

#include <string>

namespace netcl::runtime {

enum class ErrorKind : std::uint8_t {
  kNone = 0,
  /// A blocking operation exceeded its deadline (connect, request, probe).
  kTimeout,
  /// The failure detector holds the device DOWN.
  kDeviceDown,
  /// A RetransmitWindow exhausted max_retries for some chunk.
  kRetriesExhausted,
  /// The control-plane stream broke and reconnection failed.
  kDisconnected,
  /// The device answered and refused the operation (unknown memory name,
  /// bad table key, ...) — not a transport failure, so not retryable.
  kRejected,
  /// Bytes off the wire failed validation (bad magic, unsupported version,
  /// truncation, a length field that disagrees with the data). The input is
  /// hostile or corrupt; dropping it is the only safe response (ISSUE 8).
  kMalformed,
};

[[nodiscard]] inline const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kNone: return "none";
    case ErrorKind::kTimeout: return "timeout";
    case ErrorKind::kDeviceDown: return "device_down";
    case ErrorKind::kRetriesExhausted: return "retries_exhausted";
    case ErrorKind::kDisconnected: return "disconnected";
    case ErrorKind::kRejected: return "rejected";
    case ErrorKind::kMalformed: return "malformed";
  }
  return "unknown";
}

struct Error {
  ErrorKind kind = ErrorKind::kNone;
  std::string message;

  Error() = default;
  Error(ErrorKind k, std::string m) : kind(k), message(std::move(m)) {}

  /// True when an error is actually present.
  explicit operator bool() const { return kind != ErrorKind::kNone; }
  /// Success predicate, for readable call sites: `if (!err.ok()) ...`.
  [[nodiscard]] bool ok() const { return kind == ErrorKind::kNone; }

  [[nodiscard]] std::string to_string() const {
    return std::string(runtime::to_string(kind)) + ": " + message;
  }
};

}  // namespace netcl::runtime
