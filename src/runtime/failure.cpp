#include "runtime/failure.hpp"

#include <utility>

#include "obs/flightrec.hpp"

namespace netcl::runtime {

const char* to_string(FailureDetector::State state) {
  return state == FailureDetector::State::kUp ? "up" : "down";
}

FailureDetector::FailureDetector(net::Transport& transport, ProbeFn probe, const Config& config,
                                 obs::MetricsRegistry* metrics)
    : transport_(transport),
      probe_(std::move(probe)),
      config_(config),
      alive_(std::make_shared<bool>(true)) {
  if (metrics != nullptr) {
    device_up_ = &metrics->gauge("device_up");
    device_up_->set(1.0);
    heartbeats_ok_ = &metrics->counter("heartbeats.ok");
    heartbeats_missed_ = &metrics->counter("heartbeats.missed");
    failovers_ = &metrics->counter("failovers");
    recoveries_ = &metrics->counter("recoveries");
    generation_changes_ = &metrics->counter("generation_changes");
    failover_latency_ns_ = &metrics->histogram("failover_latency_ns");
  }
}

FailureDetector::~FailureDetector() {
  if (alive_) *alive_ = false;
}

void FailureDetector::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void FailureDetector::stop() {
  if (!running_) return;
  running_ = false;
  // Invalidate outstanding timers; re-arm the token for a future start().
  *alive_ = false;
  alive_ = std::make_shared<bool>(true);
}

void FailureDetector::schedule_next() {
  std::weak_ptr<bool> alive = alive_;
  transport_.schedule(config_.interval_ns, [this, alive] {
    const std::shared_ptr<bool> token = alive.lock();
    if (!token || !*token) return;
    probe_now();
    if (running_) schedule_next();
  });
}

void FailureDetector::notify(bool generation_changed) {
  for (const TransitionFn& fn : subscribers_) fn(state_, generation_changed);
}

void FailureDetector::probe_now() {
  const ProbeResult result = probe_ ? probe_() : ProbeResult{};
  if (!result.reachable) {
    if (heartbeats_missed_ != nullptr) ++*heartbeats_missed_;
    ++consecutive_misses_;
    obs::flight(obs::FlightKind::kHeartbeatMiss,
                static_cast<std::uint64_t>(consecutive_misses_),
                static_cast<std::uint64_t>(config_.miss_threshold));
    if (state_ == State::kUp && consecutive_misses_ >= config_.miss_threshold) {
      state_ = State::kDown;
      down_since_ns_ = transport_.now_ns();
      if (device_up_ != nullptr) device_up_->set(0.0);
      if (failovers_ != nullptr) ++*failovers_;
      obs::flight(obs::FlightKind::kDeviceDown,
                  static_cast<std::uint64_t>(consecutive_misses_), generation_);
      notify(false);
      // The anomaly the recorder exists for: snapshot the lead-up (the
      // misses above, the batches and retries before them) while it is
      // still in the rings. Subscribers ran first so fallback entry is in
      // the dump too.
      obs::FlightRecorder::instance().trigger_dump("device_down");
    }
    return;
  }

  if (heartbeats_ok_ != nullptr) ++*heartbeats_ok_;
  obs::flight(obs::FlightKind::kHeartbeatOk, result.generation);
  consecutive_misses_ = 0;
  // First contact establishes the baseline generation silently; after
  // that, any change means the device lost its state.
  const bool generation_changed = generation_ != 0 && result.generation != generation_;
  const std::uint32_t previous_generation = generation_;
  generation_ = result.generation;
  if (generation_changed) {
    if (generation_changes_ != nullptr) ++*generation_changes_;
    obs::flight(obs::FlightKind::kGenerationChange, previous_generation, result.generation);
  }

  if (state_ == State::kDown) {
    state_ = State::kUp;
    if (device_up_ != nullptr) device_up_->set(1.0);
    if (recoveries_ != nullptr) ++*recoveries_;
    const double outage_ns = transport_.now_ns() - down_since_ns_;
    if (failover_latency_ns_ != nullptr) {
      failover_latency_ns_->record(outage_ns);
    }
    obs::flight(obs::FlightKind::kDeviceUp, result.generation,
                static_cast<std::uint64_t>(outage_ns < 0.0 ? 0.0 : outage_ns));
    notify(generation_changed);
  } else if (generation_changed) {
    // Restarted between two heartbeats: never observed DOWN, but the
    // offloaded state is just as gone.
    notify(true);
  }
}

void FailureDetector::subscribe(TransitionFn fn) { subscribers_.push_back(std::move(fn)); }

}  // namespace netcl::runtime
