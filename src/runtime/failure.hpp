// Host-side failure detection for an offload device (ISSUE 3).
//
// The runtime's liveness story is heartbeat-based: a FailureDetector probes
// the device on the transport's clock (PING over the control plane for a
// real daemon, a reachability check against the fabric for a simulated
// one), counts consecutive misses, and declares the device DOWN after
// `miss_threshold` of them. Probes also carry the device's *generation* —
// a number that changes every time the device (re)starts — so the detector
// distinguishes "same device came back" from "a fresh process with empty
// state came back" and the runtime knows when offloaded state must be
// resynced.
//
// The detector is deliberately transport-agnostic: it only needs a probe
// function and a Transport for timers, so the same state machine runs in
// simulated time (deterministic tests) and on the wall clock.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace netcl::runtime {

class FailureDetector {
 public:
  enum class State : std::uint8_t { kUp, kDown };

  struct Config {
    /// Heartbeat period on the transport's clock.
    double interval_ns = 50'000'000.0;  // 50 ms
    /// Consecutive missed heartbeats before the device is declared DOWN.
    int miss_threshold = 3;
  };

  /// One probe's outcome. `generation` is only meaningful when reachable.
  struct ProbeResult {
    bool reachable = false;
    std::uint32_t generation = 0;
  };
  using ProbeFn = std::function<ProbeResult()>;
  /// Called on every state transition and on an in-place generation change
  /// (device restarted faster than a heartbeat interval: still Up, but its
  /// state is gone).
  using TransitionFn = std::function<void(State, bool generation_changed)>;

  /// `metrics` may be null; when set, the detector maintains a `device_up`
  /// gauge, heartbeat/failover/recovery counters, and a failover-latency
  /// histogram (time spent DOWN per outage) in it. Pass `Config{}` for the
  /// defaults.
  FailureDetector(net::Transport& transport, ProbeFn probe, const Config& config,
                  obs::MetricsRegistry* metrics = nullptr);
  ~FailureDetector();
  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  /// Schedules the periodic heartbeat (first probe after one interval).
  /// Idempotent.
  void start();
  /// Stops future heartbeats. Probes already scheduled on the transport
  /// become no-ops (weak-token liveness, same idiom as RetransmitWindow).
  void stop();

  /// Runs one probe immediately (also what the heartbeat timer calls).
  void probe_now();

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool up() const { return state_ == State::kUp; }
  /// Last generation observed from a reachable device (0 = never seen).
  [[nodiscard]] std::uint32_t generation() const { return generation_; }
  [[nodiscard]] int consecutive_misses() const { return consecutive_misses_; }

  /// Registers a transition observer; all subscribers see every event in
  /// subscription order. There is no unsubscribe — subscribers outlive the
  /// detector in this runtime (HostRuntime owns both).
  void subscribe(TransitionFn fn);

 private:
  void schedule_next();
  void notify(bool generation_changed);

  net::Transport& transport_;
  ProbeFn probe_;
  Config config_;
  State state_ = State::kUp;
  std::uint32_t generation_ = 0;
  int consecutive_misses_ = 0;
  bool running_ = false;
  /// Transport time when the device went DOWN (failover-latency metric).
  double down_since_ns_ = 0.0;
  std::vector<TransitionFn> subscribers_;
  /// Liveness token for timers in flight after destruction/stop.
  std::shared_ptr<bool> alive_;

  obs::Gauge* device_up_ = nullptr;
  obs::Counter* heartbeats_ok_ = nullptr;
  obs::Counter* heartbeats_missed_ = nullptr;
  obs::Counter* failovers_ = nullptr;
  obs::Counter* recoveries_ = nullptr;
  obs::Counter* generation_changes_ = nullptr;
  obs::Histogram* failover_latency_ns_ = nullptr;
};

[[nodiscard]] const char* to_string(FailureDetector::State state);

}  // namespace netcl::runtime
