#include "runtime/host.hpp"

namespace netcl::runtime {

HostRuntime::HostRuntime(sim::Fabric& fabric, std::uint16_t host_id)
    : fabric_(fabric), host_id_(host_id) {
  fabric_.add_host(host_id);
}

void HostRuntime::register_spec(int computation, KernelSpec spec) {
  specs_[computation] = std::move(spec);
}

const KernelSpec* HostRuntime::spec_for(int computation) const {
  const auto it = specs_.find(computation);
  return it == specs_.end() ? nullptr : &it->second;
}

void HostRuntime::send(Message message, const sim::ArgValues& args) {
  const KernelSpec* spec = spec_for(message.comp);
  if (spec == nullptr) return;
  message.src = host_id_;
  fabric_.send_from_host(host_id_, pack(message, *spec, args));
  ++sent;
}

void HostRuntime::on_receive(Receiver receiver) {
  receiver_ = std::move(receiver);
  fabric_.set_host_handler(
      host_id_, [this](sim::Fabric&, std::uint16_t, const sim::Packet& packet) {
        if (!packet.has_netcl || receiver_ == nullptr) return;
        const KernelSpec* spec = spec_for(packet.netcl.comp);
        if (spec == nullptr) return;
        auto [message, args] = unpack(packet, *spec);
        ++received;
        receiver_(message, args);
      });
}

DeviceConnection::DeviceConnection(sim::Fabric& fabric, std::uint16_t device_id)
    : device_(fabric.device(device_id)) {}

bool DeviceConnection::managed_write(const std::string& name, std::uint64_t value,
                                     const std::vector<std::uint64_t>& indices) {
  return device_ != nullptr && device_->managed_write(name, indices, value);
}

bool DeviceConnection::managed_read(const std::string& name, std::uint64_t& out,
                                    const std::vector<std::uint64_t>& indices) {
  return device_ != nullptr && device_->managed_read(name, indices, out);
}

bool DeviceConnection::insert(const std::string& table, std::uint64_t key,
                              std::uint64_t value) {
  return device_ != nullptr && device_->lookup_insert(table, key, key, value);
}

bool DeviceConnection::insert_range(const std::string& table, std::uint64_t lo,
                                    std::uint64_t hi, std::uint64_t value) {
  return device_ != nullptr && device_->lookup_insert(table, lo, hi, value);
}

bool DeviceConnection::remove(const std::string& table, std::uint64_t key) {
  return device_ != nullptr && device_->lookup_remove(table, key);
}

}  // namespace netcl::runtime
