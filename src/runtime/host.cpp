#include "runtime/host.hpp"

#include <chrono>
#include <iostream>

#include "net/sim_transport.hpp"
#include "obs/flightrec.hpp"
#include "support/diagnostics.hpp"

namespace netcl::runtime {

namespace {

double wall_ns_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

HostRuntime::HostRuntime(net::Transport& transport, std::uint16_t host_id)
    : metrics_("host" + std::to_string(host_id)), transport_(&transport), host_id_(host_id) {
  attach();
}

HostRuntime::HostRuntime(std::unique_ptr<net::Transport> transport, std::uint16_t host_id)
    : metrics_("host" + std::to_string(host_id)),
      owned_transport_(std::move(transport)),
      transport_(owned_transport_.get()),
      host_id_(host_id) {
  attach();
}

HostRuntime::HostRuntime(sim::Fabric& fabric, std::uint16_t host_id)
    : metrics_("host" + std::to_string(host_id)),
      owned_transport_(std::make_unique<net::SimTransport>(fabric, host_id)),
      transport_(owned_transport_.get()),
      host_id_(host_id) {
  attach();
}

const char* to_string(FallbackPolicy policy) {
  switch (policy) {
    case FallbackPolicy::kFailFast:
      return "fail_fast";
    case FallbackPolicy::kHostExecute:
      return "host_execute";
    case FallbackPolicy::kQueueUntilRecovered:
      return "queue_until_recovered";
  }
  return "?";
}

void HostRuntime::attach() {
  // The transport receiver is installed eagerly (not in on_receive) so
  // that arrivals before — or without — a receiver are observed, not lost.
  // Batch-aware: a recvmmsg burst arrives as one span, unpacked in arrival
  // order — identical observable behavior to per-packet delivery.
  transport_->set_batch_receiver([this](std::span<const sim::Packet> batch) {
    for (const sim::Packet& packet : batch) deliver_packet(packet);
  });
}

void HostRuntime::deliver_packet(const sim::Packet& packet) {
  if (!packet.has_netcl) return;
  if (receiver_ == nullptr) {
    ++dropped_no_receiver;
    warn_once("NetCL packet arrived but no receiver is registered; dropping");
    return;
  }
  const int comp = packet.netcl.comp;
  const KernelSpec* spec = spec_for(comp);
  if (spec == nullptr) {
    ++dropped_unknown_computation;
    warn_once("received computation " + std::to_string(comp) +
              " has no registered kernel spec; dropping");
    return;
  }
  const auto unpack_start = std::chrono::steady_clock::now();
  auto [message, args] = unpack(packet, *spec);
  const double unpack_duration_ns = wall_ns_since(unpack_start);
  unpack_ns.record(unpack_duration_ns);
  ++received;
  ++metrics_.counter("comp" + std::to_string(comp) + ".received");
  auto& pending = pending_round_trips_[comp];
  if (!pending.empty()) {
    const PendingSend stamp = pending.front();
    pending.pop_front();
    const double recv_ns = transport_->now_ns();
    round_trip_ns.record(recv_ns - stamp.send_ns);
    if (slo_enabled_) {
      // Round trips are the host-side SLO event stream (ISSUE 9): one
      // served event per matched response, on the transport clock.
      const double now_s = recv_ns / 1e9;
      slo_.record_latency(static_cast<std::uint32_t>(comp), recv_ns - stamp.send_ns,
                          now_s);
      if (now_s - last_slo_tick_s_ >= 0.25) {
        last_slo_tick_s_ = now_s;
        slo_.tick(now_s);
      }
    }
    if (collector_ != nullptr) {
      obs::SpanSample span;
      span.host_id = host_id_;
      span.computation = comp;
      span.send_ns = stamp.send_ns;
      span.recv_ns = recv_ns;
      span.pack_ns = stamp.pack_ns;
      span.unpack_ns = unpack_duration_ns;
      span.hops = packet.telemetry.hops;
      collector_->record_span(span);
    }
  } else if (collector_ != nullptr && !packet.telemetry.hops.empty()) {
    // One-way arrival (this host never sent for this computation — e.g. a
    // consensus delivery): the collector opens the span window at the
    // earliest aligned hop instead of a send stamp.
    obs::SpanSample span;
    span.host_id = host_id_;
    span.computation = comp;
    span.recv_ns = transport_->now_ns();
    span.unpack_ns = unpack_duration_ns;
    span.hops = packet.telemetry.hops;
    collector_->record_one_way(span);
  }
  receiver_(message, args);
}

void HostRuntime::register_spec(int computation, KernelSpec spec) {
  specs_[computation] = std::move(spec);
}

void HostRuntime::set_slo_objective(int computation, const obs::SloObjective& objective) {
  slo_.set_objective(static_cast<std::uint32_t>(computation), objective);
  slo_enabled_ = true;
}

const KernelSpec* HostRuntime::spec_for(int computation) const {
  const auto it = specs_.find(computation);
  return it == specs_.end() ? nullptr : &it->second;
}

bool HostRuntime::prepare_send(Message& message, const sim::ArgValues& args,
                               sim::Packet& out) {
  const KernelSpec* spec = spec_for(message.comp);
  if (spec == nullptr) {
    ++dropped_unregistered_send;
    warn_once("send for computation " + std::to_string(message.comp) +
              " has no registered kernel spec; dropping");
    return false;
  }
  message.src = host_id_;
  const auto pack_start = std::chrono::steady_clock::now();
  out = pack(message, *spec, args);
  const double pack_duration_ns = wall_ns_since(pack_start);
  pack_ns.record(pack_duration_ns);
  // With a collector attached, ask devices on the path to stamp INT hops
  // (sets the wire flag bit and appends the trailer at serialization).
  if (collector_ != nullptr) out.telemetry.requested = true;
  if (detector_ != nullptr && !detector_->up() && handle_down_send(out, message.comp)) {
    return false;
  }
  auto& pending = pending_round_trips_[message.comp];
  if (pending.size() >= kMaxPendingRoundTrips) {
    // The response for the oldest stamp was presumably lost; expire it so
    // one-way or lossy traffic cannot grow the queue forever.
    pending.pop_front();
    ++dropped_stale_round_trip;
    if (slo_enabled_) {
      slo_.record_bad(static_cast<std::uint32_t>(message.comp),
                      transport_->now_ns() / 1e9);
    }
  }
  pending.push_back({transport_->now_ns(), pack_duration_ns});
  ++sent;
  ++metrics_.counter("comp" + std::to_string(message.comp) + ".sent");
  return true;
}

void HostRuntime::send(Message message, const sim::ArgValues& args) {
  sim::Packet packet;
  if (prepare_send(message, args, packet)) transport_->send(std::move(packet));
}

void HostRuntime::send_batch(std::span<Outbound> batch) {
  tx_batch_.clear();
  if (tx_batch_.capacity() < batch.size()) tx_batch_.reserve(batch.size());
  for (Outbound& outbound : batch) {
    sim::Packet packet;
    if (prepare_send(outbound.message, outbound.args, packet)) {
      tx_batch_.push_back(std::move(packet));
    }
  }
  if (!tx_batch_.empty()) transport_->send_batch(tx_batch_);
  tx_batch_.clear();
}

bool HostRuntime::handle_down_send(sim::Packet& packet, int computation) {
  obs::flight(obs::FlightKind::kFallback, static_cast<std::uint64_t>(fallback_policy_),
              send_queue_.size());
  if (fallback_dump_armed_) {
    // First send of this outage: snapshot the lead-up while the heartbeat
    // misses and DOWN transition are still in the rings.
    fallback_dump_armed_ = false;
    obs::FlightRecorder::instance().trigger_dump("fallback");
  }
  switch (fallback_policy_) {
    case FallbackPolicy::kFailFast:
      ++fallback_fail_fast;
      fail_send(ErrorKind::kDeviceDown,
                "device down; send for computation " + std::to_string(computation) +
                    " rejected (fail_fast)");
      return true;
    case FallbackPolicy::kHostExecute: {
      if (host_executor_ == nullptr) {
        ++fallback_fail_fast;
        fail_send(ErrorKind::kDeviceDown,
                  "device down and no host executor attached; send for computation " +
                      std::to_string(computation) + " rejected");
        return true;
      }
      ++fallback_host_executed;
      ++sent;
      ++metrics_.counter("comp" + std::to_string(computation) + ".sent");
      pending_round_trips_[computation].push_back({transport_->now_ns(), 0.0});
      std::optional<sim::Packet> response = host_executor_->execute(packet, host_id_);
      if (response.has_value()) deliver_packet(*response);
      return true;
    }
    case FallbackPolicy::kQueueUntilRecovered:
      if (send_queue_.size() >= kMaxQueuedSends) {
        send_queue_.pop_front();
        ++fallback_dropped_overflow;
        warn_once("fallback queue overflowed; dropping oldest packet");
      }
      send_queue_.push_back(std::move(packet));
      ++fallback_queued;
      return true;
  }
  return false;
}

void HostRuntime::flush_queue() {
  const std::uint64_t flushed_before = fallback_flushed.value();
  const bool had_queue = !send_queue_.empty();
  while (!send_queue_.empty()) {
    sim::Packet packet = std::move(send_queue_.front());
    send_queue_.pop_front();
    const int comp = packet.netcl.comp;
    auto& pending = pending_round_trips_[comp];
    if (pending.size() >= kMaxPendingRoundTrips) {
      pending.pop_front();
      ++dropped_stale_round_trip;
      if (slo_enabled_) {
        slo_.record_bad(static_cast<std::uint32_t>(comp), transport_->now_ns() / 1e9);
      }
    }
    // Pack happened back when the send was queued; its duration was
    // recorded then and is not re-attributed to this span.
    pending.push_back({transport_->now_ns(), 0.0});
    transport_->send(std::move(packet));
    ++sent;
    ++fallback_flushed;
    ++metrics_.counter("comp" + std::to_string(comp) + ".sent");
  }
  if (had_queue) {
    obs::flight(obs::FlightKind::kQueueFlush, fallback_flushed.value() - flushed_before);
  }
}

void HostRuntime::attach_failure_detector(FailureDetector& detector) {
  detector_ = &detector;
  detector.subscribe([this](FailureDetector::State state, bool generation_changed) {
    if (state != FailureDetector::State::kUp) {
      fallback_dump_armed_ = true;
      return;
    }
    // Order matters on recovery: re-offload managed state first, then let
    // buffered traffic loose against the restored device.
    if (generation_changed && on_resync_) {
      on_resync_();
      obs::flight(obs::FlightKind::kResync, 0,
                  detector_ != nullptr ? detector_->generation() : 0);
    }
    flush_queue();
  });
}

void HostRuntime::set_host_executor(std::unique_ptr<HostExecutor> executor) {
  host_executor_ = std::move(executor);
}

void HostRuntime::fail_send(ErrorKind kind, std::string message) {
  error_ = Error{kind, std::move(message)};
  warn_once(error_.message);
  if (on_error_) on_error_(error_);
}

void HostRuntime::on_receive(Receiver receiver) { receiver_ = std::move(receiver); }

void HostRuntime::warn_once(const std::string& cause) {
  if (!warned_.insert(cause).second) return;
  std::cerr << to_string(Severity::Warning) << ": host " << host_id_ << ": " << cause << "\n";
}

DeviceConnection::DeviceConnection(sim::Fabric& fabric, std::uint16_t device_id)
    : fabric_(&fabric), device_(fabric.device(device_id)), device_id_(device_id) {}

DeviceConnection::DeviceConnection(const std::string& host, std::uint16_t control_port,
                                   const net::ControlClientOptions& options)
    : remote_(std::make_unique<net::ControlClient>(host, control_port, options)) {
  if (!remote_->ping(device_id_)) remote_.reset();
}

DeviceConnection::~DeviceConnection() = default;

bool DeviceConnection::valid() const {
  return device_ != nullptr || (remote_ != nullptr && remote_->connected());
}

Error DeviceConnection::op_error(const std::string& what) const {
  if (remote_ != nullptr) {
    // The transport error, when one is pending, is the real cause; an op
    // the daemon answered-and-refused leaves it empty.
    if (Error err = remote_->last_error()) return err;
    return {ErrorKind::kRejected, what + " rejected by device"};
  }
  if (device_ == nullptr) return {ErrorKind::kDisconnected, what + ": no device attached"};
  if (fabric_ != nullptr && fabric_->device_down(device_id_)) {
    return {ErrorKind::kDeviceDown, what + ": device is down"};
  }
  return {ErrorKind::kRejected, what + " rejected by device"};
}

Error DeviceConnection::ping_e(PingInfo& info) {
  if (remote_ != nullptr) {
    std::uint16_t id = 0;
    if (remote_->ping(id, info.generation, info.device_clock_ns)) return {};
    return op_error("ping");
  }
  if (fabric_ == nullptr || device_ == nullptr) {
    return {ErrorKind::kDisconnected, "ping: no device attached"};
  }
  if (fabric_->device_down(device_id_)) return {ErrorKind::kDeviceDown, "ping: device is down"};
  info.generation = device_->generation();
  // Sim devices stamp hops in fabric time, which is also what a
  // SimTransport's now_ns() reports — one shared clock, offset zero by
  // construction, and this readback lets callers verify that.
  info.device_clock_ns = static_cast<std::uint64_t>(fabric_->now());
  return {};
}

Error DeviceConnection::last_error() const {
  return remote_ != nullptr ? remote_->last_error() : Error{};
}

Error DeviceConnection::managed_write_e(const std::string& name, std::uint64_t value,
                                        const std::vector<std::uint64_t>& indices) {
  const bool ok = remote_ != nullptr
                      ? remote_->managed_write(name, indices, value)
                      : device_ != nullptr && device_->managed_write(name, indices, value);
  if (!ok) return op_error("managed_write '" + name + "'");
  journal_writes_[{name, indices}] = value;
  return {};
}

Error DeviceConnection::managed_read_e(const std::string& name, std::uint64_t& out,
                                       const std::vector<std::uint64_t>& indices) {
  const bool ok = remote_ != nullptr
                      ? remote_->managed_read(name, indices, out)
                      : device_ != nullptr && device_->managed_read(name, indices, out);
  return ok ? Error{} : op_error("managed_read '" + name + "'");
}

Error DeviceConnection::insert_e(const std::string& table, std::uint64_t key,
                                 std::uint64_t value) {
  return insert_range_e(table, key, key, value);
}

Error DeviceConnection::insert_range_e(const std::string& table, std::uint64_t lo,
                                       std::uint64_t hi, std::uint64_t value) {
  const bool ok = remote_ != nullptr
                      ? remote_->insert(table, lo, hi, value)
                      : device_ != nullptr && device_->lookup_insert(table, lo, hi, value);
  if (!ok) return op_error("insert into '" + table + "'");
  journal_inserts_[{table, lo, hi}] = value;
  return {};
}

Error DeviceConnection::remove_e(const std::string& table, std::uint64_t key) {
  const bool ok = remote_ != nullptr ? remote_->remove(table, key)
                                     : device_ != nullptr && device_->lookup_remove(table, key);
  if (!ok) return op_error("remove from '" + table + "'");
  // The device removes the entry covering `key`; forget journaled
  // entries the removal covered so resync does not resurrect them.
  std::erase_if(journal_inserts_, [&](const auto& entry) {
    const auto& [table_name, lo, hi] = entry.first;
    return table_name == table && lo <= key && key <= hi;
  });
  return {};
}

Error DeviceConnection::set_multicast_group_e(std::uint16_t group,
                                              const std::vector<std::uint16_t>& hosts) {
  bool ok = false;
  if (remote_ != nullptr) {
    ok = remote_->set_multicast_group(group, hosts);
  } else if (fabric_ != nullptr && device_ != nullptr) {
    std::vector<sim::NodeRef> members;
    members.reserve(hosts.size());
    for (const std::uint16_t host : hosts) members.push_back(sim::host_ref(host));
    fabric_->set_multicast_group(device_id_, group, std::move(members));
    ok = true;
  }
  if (!ok) return op_error("set_multicast_group " + std::to_string(group));
  journal_groups_[group] = hosts;
  return {};
}

Error DeviceConnection::resync_e() {
  ++resyncs_;
  bool ok = true;
  // Replay straight through the underlying device/client, not the public
  // methods — re-journaling what is already journaled would be harmless
  // but remove()-during-replay bookkeeping is simpler to reason about this
  // way.
  for (const auto& [cell, value] : journal_writes_) {
    const auto& [name, indices] = cell;
    ok &= remote_ != nullptr ? remote_->managed_write(name, indices, value)
                             : device_ != nullptr && device_->managed_write(name, indices, value);
  }
  for (const auto& [range, value] : journal_inserts_) {
    const auto& [table, lo, hi] = range;
    ok &= remote_ != nullptr ? remote_->insert(table, lo, hi, value)
                             : device_ != nullptr && device_->lookup_insert(table, lo, hi, value);
  }
  for (const auto& [group, hosts] : journal_groups_) {
    if (remote_ != nullptr) {
      ok &= remote_->set_multicast_group(group, hosts);
    } else if (fabric_ != nullptr && device_ != nullptr) {
      std::vector<sim::NodeRef> members;
      members.reserve(hosts.size());
      for (const std::uint16_t host : hosts) members.push_back(sim::host_ref(host));
      fabric_->set_multicast_group(device_id_, group, std::move(members));
    } else {
      ok = false;
    }
  }
  return ok ? Error{} : op_error("resync (some journal replays failed)");
}

Error DeviceConnection::load_or_swap(std::uint32_t tenant, const std::string& name,
                                     const std::string& source,
                                     const std::map<std::string, std::uint64_t>& defines,
                                     bool replace, std::uint16_t* stages,
                                     std::string* summary) {
  const char* const what = replace ? "hot_swap_kernel" : "load_kernel";
  if (remote_ != nullptr) {
    return remote_->load_kernel(tenant, name, source, defines, replace, stages, summary);
  }
  if (device_ == nullptr) return {ErrorKind::kDisconnected, std::string(what) + ": no device attached"};
  if (fabric_ != nullptr && fabric_->device_down(device_id_)) {
    return {ErrorKind::kDeviceDown, std::string(what) + ": device is down"};
  }
  if (!compiler_) {
    return {ErrorKind::kRejected,
            std::string(what) + ": connection has no kernel compiler installed "
                                "(set_compiler with driver::artifact_compiler)"};
  }
  sim::ProgramArtifact artifact;
  if (Error err = compiler_(source, defines, device_id_, artifact)) return err;
  if (!name.empty()) artifact.name = name;
  const std::uint16_t used = static_cast<std::uint16_t>(artifact.stages_used);
  Error err = replace ? device_->swap_program(tenant, std::move(artifact))
                      : device_->load_program(tenant, std::move(artifact));
  if (err) return err;
  if (stages != nullptr) *stages = used;
  if (summary != nullptr) *summary = device_->admission().summary();
  return {};
}

Error DeviceConnection::load_kernel_e(std::uint32_t tenant, const std::string& name,
                                      const std::string& source,
                                      const std::map<std::string, std::uint64_t>& defines,
                                      std::uint16_t* stages, std::string* summary) {
  return load_or_swap(tenant, name, source, defines, /*replace=*/false, stages, summary);
}

Error DeviceConnection::hot_swap_kernel_e(std::uint32_t tenant, const std::string& name,
                                          const std::string& source,
                                          const std::map<std::string, std::uint64_t>& defines,
                                          std::uint16_t* stages, std::string* summary) {
  if (Error err = load_or_swap(tenant, name, source, defines, /*replace=*/true, stages,
                               summary)) {
    return err;
  }
  // The swap installed a fresh register file for this tenant; replay the
  // journal so managed state the host offloaded survives the generation.
  return resync_e();
}

Error DeviceConnection::unload_kernel_e(std::uint32_t tenant) {
  if (remote_ != nullptr) return remote_->unload_kernel(tenant);
  if (device_ == nullptr) return {ErrorKind::kDisconnected, "unload_kernel: no device attached"};
  if (fabric_ != nullptr && fabric_->device_down(device_id_)) {
    return {ErrorKind::kDeviceDown, "unload_kernel: device is down"};
  }
  return device_->unload_program(tenant);
}

Error DeviceConnection::list_kernels_e(std::vector<net::KernelInfo>& out) {
  out.clear();
  if (remote_ != nullptr) return remote_->list_kernels(out);
  if (device_ == nullptr) return {ErrorKind::kDisconnected, "list_kernels: no device attached"};
  for (const sim::TenantInfo& info : device_->tenant_table()) {
    net::KernelInfo entry;
    entry.tenant = info.id;
    entry.name = info.name;
    entry.stages_used = static_cast<std::uint16_t>(info.stages_used);
    entry.computations.reserve(info.computations.size());
    for (const int comp : info.computations) {
      entry.computations.push_back(static_cast<std::uint32_t>(comp));
    }
    entry.usage = info.usage;
    entry.packets_processed = info.stats.packets_processed;
    entry.kernels_executed = info.stats.kernels_executed;
    entry.drops_action = info.stats.drops_action;
    out.push_back(std::move(entry));
  }
  return {};
}

const sim::DeviceStats* DeviceConnection::stats() {
  if (remote_ != nullptr) {
    return remote_->stats(remote_stats_) ? &remote_stats_ : nullptr;
  }
  return device_ == nullptr ? nullptr : &device_->stats;
}

std::map<std::string, sim::RegisterAccess> DeviceConnection::register_access() const {
  if (remote_ != nullptr) {
    std::map<std::string, sim::RegisterAccess> access;
    return remote_->register_access(access) ? access
                                            : std::map<std::string, sim::RegisterAccess>{};
  }
  return device_ == nullptr ? std::map<std::string, sim::RegisterAccess>{}
                            : device_->register_access();
}

}  // namespace netcl::runtime
