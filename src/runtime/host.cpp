#include "runtime/host.hpp"

#include <chrono>
#include <iostream>

#include "net/sim_transport.hpp"
#include "support/diagnostics.hpp"

namespace netcl::runtime {

namespace {

double wall_ns_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

HostRuntime::HostRuntime(net::Transport& transport, std::uint16_t host_id)
    : metrics_("host" + std::to_string(host_id)), transport_(&transport), host_id_(host_id) {
  attach();
}

HostRuntime::HostRuntime(sim::Fabric& fabric, std::uint16_t host_id)
    : metrics_("host" + std::to_string(host_id)),
      owned_transport_(std::make_unique<net::SimTransport>(fabric, host_id)),
      transport_(owned_transport_.get()),
      host_id_(host_id) {
  attach();
}

void HostRuntime::attach() {
  // The transport receiver is installed eagerly (not in on_receive) so
  // that arrivals before — or without — a receiver are observed, not lost.
  transport_->set_receiver([this](const sim::Packet& packet) {
    if (!packet.has_netcl) return;
    if (receiver_ == nullptr) {
      ++dropped_no_receiver;
      warn_once("NetCL packet arrived but no receiver is registered; dropping");
      return;
    }
    const int comp = packet.netcl.comp;
    const KernelSpec* spec = spec_for(comp);
    if (spec == nullptr) {
      ++dropped_unknown_computation;
      warn_once("received computation " + std::to_string(comp) +
                " has no registered kernel spec; dropping");
      return;
    }
    const auto unpack_start = std::chrono::steady_clock::now();
    auto [message, args] = unpack(packet, *spec);
    unpack_ns.record(wall_ns_since(unpack_start));
    ++received;
    ++metrics_.counter("comp" + std::to_string(comp) + ".received");
    auto& pending = pending_round_trips_[comp];
    if (!pending.empty()) {
      round_trip_ns.record(transport_->now_ns() - pending.front());
      pending.pop_front();
    }
    receiver_(message, args);
  });
}

void HostRuntime::register_spec(int computation, KernelSpec spec) {
  specs_[computation] = std::move(spec);
}

const KernelSpec* HostRuntime::spec_for(int computation) const {
  const auto it = specs_.find(computation);
  return it == specs_.end() ? nullptr : &it->second;
}

void HostRuntime::send(Message message, const sim::ArgValues& args) {
  const KernelSpec* spec = spec_for(message.comp);
  if (spec == nullptr) {
    ++dropped_unregistered_send;
    warn_once("send for computation " + std::to_string(message.comp) +
              " has no registered kernel spec; dropping");
    return;
  }
  message.src = host_id_;
  const auto pack_start = std::chrono::steady_clock::now();
  sim::Packet packet = pack(message, *spec, args);
  pack_ns.record(wall_ns_since(pack_start));
  auto& pending = pending_round_trips_[message.comp];
  if (pending.size() >= kMaxPendingRoundTrips) {
    // The response for the oldest stamp was presumably lost; expire it so
    // one-way or lossy traffic cannot grow the queue forever.
    pending.pop_front();
    ++dropped_stale_round_trip;
  }
  pending.push_back(transport_->now_ns());
  transport_->send(std::move(packet));
  ++sent;
  ++metrics_.counter("comp" + std::to_string(message.comp) + ".sent");
}

void HostRuntime::on_receive(Receiver receiver) { receiver_ = std::move(receiver); }

void HostRuntime::warn_once(const std::string& cause) {
  if (!warned_.insert(cause).second) return;
  std::cerr << to_string(Severity::Warning) << ": host " << host_id_ << ": " << cause << "\n";
}

DeviceConnection::DeviceConnection(sim::Fabric& fabric, std::uint16_t device_id)
    : fabric_(&fabric), device_(fabric.device(device_id)), device_id_(device_id) {}

DeviceConnection::DeviceConnection(const std::string& host, std::uint16_t control_port)
    : remote_(std::make_unique<net::ControlClient>(host, control_port)) {
  if (!remote_->ping(device_id_)) remote_.reset();
}

DeviceConnection::~DeviceConnection() = default;

bool DeviceConnection::valid() const {
  return device_ != nullptr || (remote_ != nullptr && remote_->connected());
}

bool DeviceConnection::managed_write(const std::string& name, std::uint64_t value,
                                     const std::vector<std::uint64_t>& indices) {
  if (remote_ != nullptr) return remote_->managed_write(name, indices, value);
  return device_ != nullptr && device_->managed_write(name, indices, value);
}

bool DeviceConnection::managed_read(const std::string& name, std::uint64_t& out,
                                    const std::vector<std::uint64_t>& indices) {
  if (remote_ != nullptr) return remote_->managed_read(name, indices, out);
  return device_ != nullptr && device_->managed_read(name, indices, out);
}

bool DeviceConnection::insert(const std::string& table, std::uint64_t key,
                              std::uint64_t value) {
  if (remote_ != nullptr) return remote_->insert(table, key, key, value);
  return device_ != nullptr && device_->lookup_insert(table, key, key, value);
}

bool DeviceConnection::insert_range(const std::string& table, std::uint64_t lo,
                                    std::uint64_t hi, std::uint64_t value) {
  if (remote_ != nullptr) return remote_->insert(table, lo, hi, value);
  return device_ != nullptr && device_->lookup_insert(table, lo, hi, value);
}

bool DeviceConnection::remove(const std::string& table, std::uint64_t key) {
  if (remote_ != nullptr) return remote_->remove(table, key);
  return device_ != nullptr && device_->lookup_remove(table, key);
}

bool DeviceConnection::set_multicast_group(std::uint16_t group,
                                           const std::vector<std::uint16_t>& hosts) {
  if (remote_ != nullptr) return remote_->set_multicast_group(group, hosts);
  if (fabric_ == nullptr || device_ == nullptr) return false;
  std::vector<sim::NodeRef> members;
  members.reserve(hosts.size());
  for (const std::uint16_t host : hosts) members.push_back(sim::host_ref(host));
  fabric_->set_multicast_group(device_id_, group, std::move(members));
  return true;
}

const sim::DeviceStats* DeviceConnection::stats() {
  if (remote_ != nullptr) {
    return remote_->stats(remote_stats_) ? &remote_stats_ : nullptr;
  }
  return device_ == nullptr ? nullptr : &device_->stats;
}

std::map<std::string, sim::RegisterAccess> DeviceConnection::register_access() const {
  if (remote_ != nullptr) {
    std::map<std::string, sim::RegisterAccess> access;
    return remote_->register_access(access) ? access
                                            : std::map<std::string, sim::RegisterAccess>{};
  }
  return device_ == nullptr ? std::map<std::string, sim::RegisterAccess>{}
                            : device_->register_access();
}

}  // namespace netcl::runtime
