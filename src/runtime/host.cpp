#include "runtime/host.hpp"

#include <chrono>
#include <iostream>

#include "support/diagnostics.hpp"

namespace netcl::runtime {

namespace {

/// Outstanding sim-time send stamps kept per computation for round-trip
/// matching; bounded so one-way traffic cannot grow the queue forever.
constexpr std::size_t kMaxPendingRoundTrips = 4096;

double wall_ns_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

HostRuntime::HostRuntime(sim::Fabric& fabric, std::uint16_t host_id)
    : metrics_("host" + std::to_string(host_id)), fabric_(fabric), host_id_(host_id) {
  fabric_.add_host(host_id);
  // The fabric handler is installed eagerly (not in on_receive) so that
  // arrivals before — or without — a receiver are observed, not lost.
  fabric_.set_host_handler(
      host_id_, [this](sim::Fabric&, std::uint16_t, const sim::Packet& packet) {
        if (!packet.has_netcl) return;
        if (receiver_ == nullptr) {
          ++dropped_no_receiver;
          warn_once("NetCL packet arrived but no receiver is registered; dropping");
          return;
        }
        const int comp = packet.netcl.comp;
        const KernelSpec* spec = spec_for(comp);
        if (spec == nullptr) {
          ++dropped_unknown_computation;
          warn_once("received computation " + std::to_string(comp) +
                    " has no registered kernel spec; dropping");
          return;
        }
        const auto unpack_start = std::chrono::steady_clock::now();
        auto [message, args] = unpack(packet, *spec);
        unpack_ns.record(wall_ns_since(unpack_start));
        ++received;
        ++metrics_.counter("comp" + std::to_string(comp) + ".received");
        auto& pending = pending_round_trips_[comp];
        if (!pending.empty()) {
          round_trip_ns.record(fabric_.now() - pending.front());
          pending.pop_front();
        }
        receiver_(message, args);
      });
}

void HostRuntime::register_spec(int computation, KernelSpec spec) {
  specs_[computation] = std::move(spec);
}

const KernelSpec* HostRuntime::spec_for(int computation) const {
  const auto it = specs_.find(computation);
  return it == specs_.end() ? nullptr : &it->second;
}

void HostRuntime::send(Message message, const sim::ArgValues& args) {
  const KernelSpec* spec = spec_for(message.comp);
  if (spec == nullptr) {
    ++dropped_unregistered_send;
    warn_once("send for computation " + std::to_string(message.comp) +
              " has no registered kernel spec; dropping");
    return;
  }
  message.src = host_id_;
  const auto pack_start = std::chrono::steady_clock::now();
  sim::Packet packet = pack(message, *spec, args);
  pack_ns.record(wall_ns_since(pack_start));
  auto& pending = pending_round_trips_[message.comp];
  if (pending.size() < kMaxPendingRoundTrips) pending.push_back(fabric_.now());
  fabric_.send_from_host(host_id_, std::move(packet));
  ++sent;
  ++metrics_.counter("comp" + std::to_string(message.comp) + ".sent");
}

void HostRuntime::on_receive(Receiver receiver) { receiver_ = std::move(receiver); }

void HostRuntime::warn_once(const std::string& cause) {
  if (!warned_.insert(cause).second) return;
  std::cerr << to_string(Severity::Warning) << ": host " << host_id_ << ": " << cause << "\n";
}

DeviceConnection::DeviceConnection(sim::Fabric& fabric, std::uint16_t device_id)
    : device_(fabric.device(device_id)) {}

bool DeviceConnection::managed_write(const std::string& name, std::uint64_t value,
                                     const std::vector<std::uint64_t>& indices) {
  return device_ != nullptr && device_->managed_write(name, indices, value);
}

bool DeviceConnection::managed_read(const std::string& name, std::uint64_t& out,
                                    const std::vector<std::uint64_t>& indices) {
  return device_ != nullptr && device_->managed_read(name, indices, out);
}

bool DeviceConnection::insert(const std::string& table, std::uint64_t key,
                              std::uint64_t value) {
  return device_ != nullptr && device_->lookup_insert(table, key, key, value);
}

bool DeviceConnection::insert_range(const std::string& table, std::uint64_t lo,
                                    std::uint64_t hi, std::uint64_t value) {
  return device_ != nullptr && device_->lookup_insert(table, lo, hi, value);
}

bool DeviceConnection::remove(const std::string& table, std::uint64_t key) {
  return device_ != nullptr && device_->lookup_remove(table, key);
}

const sim::DeviceStats* DeviceConnection::stats() const {
  return device_ == nullptr ? nullptr : &device_->stats;
}

std::map<std::string, sim::RegisterAccess> DeviceConnection::register_access() const {
  return device_ == nullptr ? std::map<std::string, sim::RegisterAccess>{}
                            : device_->register_access();
}

}  // namespace netcl::runtime
