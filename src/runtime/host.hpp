// NetCL host runtime bound to the simulated fabric.
//
// HostRuntime is the equivalent of the paper's UDP-socket backend: it
// packs messages with the kernel specifications the compiler recorded and
// injects them at the host's fabric port; received NetCL packets are
// unpacked and handed to a user callback.
//
// Every host owns a metrics registry ("host<id>") with per-computation
// send/receive counters, pack/unpack wall-clock histograms, and a
// round-trip latency histogram in simulated time (FIFO request/response
// matching per computation). Packets that would previously vanish — sends
// without a registered spec, arrivals with no receiver installed or an
// unknown computation — are counted and logged once per cause with
// DiagnosticEngine-style severity.
//
// DeviceConnection is the control-plane handle behind ncl::managed_read /
// ncl::managed_write and the _managed_ _lookup_ entry operations (§V-B) —
// the reliable slow path that bypasses kernels entirely.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <set>

#include "obs/metrics.hpp"
#include "runtime/message.hpp"
#include "sim/fabric.hpp"

namespace netcl::runtime {

class HostRuntime {
  // Declared before the public counter references below so it is
  // constructed first.
  obs::MetricsRegistry metrics_;

 public:
  HostRuntime(sim::Fabric& fabric, std::uint16_t host_id);

  [[nodiscard]] std::uint16_t host_id() const { return host_id_; }
  [[nodiscard]] sim::Fabric& fabric() { return fabric_; }

  /// Registers the message layout of a computation (done by the compiler's
  /// host-side rewrites in the paper; by the driver here).
  void register_spec(int computation, KernelSpec spec);
  [[nodiscard]] const KernelSpec* spec_for(int computation) const;

  /// Packs and sends. The message's src is forced to this host.
  void send(Message message, const sim::ArgValues& args);

  /// Invoked for every NetCL packet arriving at this host.
  using Receiver = std::function<void(const Message&, sim::ArgValues&)>;
  void on_receive(Receiver receiver);

  // --- statistics (registry-backed; obs::dump() includes them) --------------
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  obs::Counter& sent = metrics_.counter("sent");
  obs::Counter& received = metrics_.counter("received");
  /// send() without a registered spec for the computation.
  obs::Counter& dropped_unregistered_send = metrics_.counter("dropped.unregistered_send");
  /// NetCL packet arrived but on_receive() was never installed.
  obs::Counter& dropped_no_receiver = metrics_.counter("dropped.no_receiver");
  /// NetCL packet arrived for a computation with no registered spec.
  obs::Counter& dropped_unknown_computation =
      metrics_.counter("dropped.unknown_computation");
  obs::Histogram& pack_ns = metrics_.histogram("pack_ns");            // wall clock
  obs::Histogram& unpack_ns = metrics_.histogram("unpack_ns");        // wall clock
  obs::Histogram& round_trip_ns = metrics_.histogram("round_trip_ns");  // simulated time

 private:
  /// Warns on stderr with DiagnosticEngine severity labels, once per
  /// distinct cause (so lossy workloads do not flood the log).
  void warn_once(const std::string& cause);

  sim::Fabric& fabric_;
  std::uint16_t host_id_;
  std::map<int, KernelSpec> specs_;
  Receiver receiver_;
  /// Simulated send times awaiting a response, per computation (FIFO).
  std::map<int, std::deque<double>> pending_round_trips_;
  std::set<std::string> warned_;
};

/// Control-plane connection to one device.
class DeviceConnection {
 public:
  DeviceConnection(sim::Fabric& fabric, std::uint16_t device_id);

  [[nodiscard]] bool valid() const { return device_ != nullptr; }

  /// ncl::managed_write / ncl::managed_read. Indices address the memory as
  /// declared in the NetCL source (partitioning renames are transparent).
  bool managed_write(const std::string& name, std::uint64_t value,
                     const std::vector<std::uint64_t>& indices = {});
  bool managed_read(const std::string& name, std::uint64_t& out,
                    const std::vector<std::uint64_t>& indices = {});

  /// _managed_ _lookup_ entry management (insert replaces same-key entries).
  bool insert(const std::string& table, std::uint64_t key, std::uint64_t value);
  bool insert_range(const std::string& table, std::uint64_t lo, std::uint64_t hi,
                    std::uint64_t value);
  bool remove(const std::string& table, std::uint64_t key);

  /// Telemetry read-back over the control plane: the device's packet /
  /// drop / per-stage counters and per-register-array access totals.
  [[nodiscard]] const sim::DeviceStats* stats() const;
  [[nodiscard]] std::map<std::string, sim::RegisterAccess> register_access() const;

 private:
  sim::SwitchDevice* device_;
};

}  // namespace netcl::runtime
