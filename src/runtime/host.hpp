// NetCL host runtime bound to the simulated fabric.
//
// HostRuntime is the equivalent of the paper's UDP-socket backend: it
// packs messages with the kernel specifications the compiler recorded and
// injects them at the host's fabric port; received NetCL packets are
// unpacked and handed to a user callback.
//
// DeviceConnection is the control-plane handle behind ncl::managed_read /
// ncl::managed_write and the _managed_ _lookup_ entry operations (§V-B) —
// the reliable slow path that bypasses kernels entirely.
#pragma once

#include <functional>
#include <map>

#include "runtime/message.hpp"
#include "sim/fabric.hpp"

namespace netcl::runtime {

class HostRuntime {
 public:
  HostRuntime(sim::Fabric& fabric, std::uint16_t host_id);

  [[nodiscard]] std::uint16_t host_id() const { return host_id_; }
  [[nodiscard]] sim::Fabric& fabric() { return fabric_; }

  /// Registers the message layout of a computation (done by the compiler's
  /// host-side rewrites in the paper; by the driver here).
  void register_spec(int computation, KernelSpec spec);
  [[nodiscard]] const KernelSpec* spec_for(int computation) const;

  /// Packs and sends. The message's src is forced to this host.
  void send(Message message, const sim::ArgValues& args);

  /// Invoked for every NetCL packet arriving at this host.
  using Receiver = std::function<void(const Message&, sim::ArgValues&)>;
  void on_receive(Receiver receiver);

  // Statistics.
  std::uint64_t sent = 0;
  std::uint64_t received = 0;

 private:
  sim::Fabric& fabric_;
  std::uint16_t host_id_;
  std::map<int, KernelSpec> specs_;
  Receiver receiver_;
};

/// Control-plane connection to one device.
class DeviceConnection {
 public:
  DeviceConnection(sim::Fabric& fabric, std::uint16_t device_id);

  [[nodiscard]] bool valid() const { return device_ != nullptr; }

  /// ncl::managed_write / ncl::managed_read. Indices address the memory as
  /// declared in the NetCL source (partitioning renames are transparent).
  bool managed_write(const std::string& name, std::uint64_t value,
                     const std::vector<std::uint64_t>& indices = {});
  bool managed_read(const std::string& name, std::uint64_t& out,
                    const std::vector<std::uint64_t>& indices = {});

  /// _managed_ _lookup_ entry management (insert replaces same-key entries).
  bool insert(const std::string& table, std::uint64_t key, std::uint64_t value);
  bool insert_range(const std::string& table, std::uint64_t lo, std::uint64_t hi,
                    std::uint64_t value);
  bool remove(const std::string& table, std::uint64_t key);

 private:
  sim::SwitchDevice* device_;
};

}  // namespace netcl::runtime
