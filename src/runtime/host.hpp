// NetCL host runtime.
//
// HostRuntime is the paper's host-side message backend (§V-B): it packs
// messages with the kernel specifications the compiler recorded and hands
// them to a net::Transport; received NetCL packets are unpacked and handed
// to a user callback. The transport decides what the network is — a
// SimTransport injects at a fabric port, a UdpTransport speaks real
// sockets to a device daemon — and the host code is identical either way.
//
// Every host owns a metrics registry ("host<id>") with per-computation
// send/receive counters, pack/unpack wall-clock histograms, and a
// round-trip latency histogram on the transport's clock (FIFO
// request/response matching per computation). Packets that would
// previously vanish — sends without a registered spec, arrivals with no
// receiver installed or an unknown computation — are counted and logged
// once per cause with DiagnosticEngine-style severity.
//
// DeviceConnection is the control-plane handle behind ncl::managed_read /
// ncl::managed_write and the _managed_ _lookup_ entry operations (§V-B) —
// the reliable slow path that bypasses kernels entirely. It speaks either
// to an in-fabric sim::SwitchDevice or, over the length-prefixed TCP
// protocol, to a netcl-swd daemon; callers cannot tell the difference.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "net/control.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "runtime/message.hpp"
#include "sim/fabric.hpp"

namespace netcl::runtime {

class HostRuntime {
  // Declared before the public counter references below so it is
  // constructed first.
  obs::MetricsRegistry metrics_;

 public:
  /// Outstanding send stamps kept per computation for round-trip matching.
  /// When responses are lost the FIFO would grow without bound; at this
  /// depth the oldest stamp is expired and counted in
  /// dropped.stale_round_trip.
  static constexpr std::size_t kMaxPendingRoundTrips = 1024;

  /// Binds to a transport (not owned; must outlive this runtime).
  HostRuntime(net::Transport& transport, std::uint16_t host_id);
  /// Convenience: attaches to the simulated fabric through an owned
  /// SimTransport (the pre-ISSUE-2 constructor, behavior-preserving).
  HostRuntime(sim::Fabric& fabric, std::uint16_t host_id);

  [[nodiscard]] std::uint16_t host_id() const { return host_id_; }
  [[nodiscard]] net::Transport& transport() { return *transport_; }

  /// Registers the message layout of a computation (done by the compiler's
  /// host-side rewrites in the paper; by the driver here).
  void register_spec(int computation, KernelSpec spec);
  [[nodiscard]] const KernelSpec* spec_for(int computation) const;

  /// Packs and sends. The message's src is forced to this host.
  void send(Message message, const sim::ArgValues& args);

  /// Invoked for every NetCL packet arriving at this host.
  using Receiver = std::function<void(const Message&, sim::ArgValues&)>;
  void on_receive(Receiver receiver);

  // --- statistics (registry-backed; obs::dump() includes them) --------------
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  obs::Counter& sent = metrics_.counter("sent");
  obs::Counter& received = metrics_.counter("received");
  /// send() without a registered spec for the computation.
  obs::Counter& dropped_unregistered_send = metrics_.counter("dropped.unregistered_send");
  /// NetCL packet arrived but on_receive() was never installed.
  obs::Counter& dropped_no_receiver = metrics_.counter("dropped.no_receiver");
  /// NetCL packet arrived for a computation with no registered spec.
  obs::Counter& dropped_unknown_computation =
      metrics_.counter("dropped.unknown_computation");
  /// Round-trip stamps expired at the kMaxPendingRoundTrips cap (their
  /// responses were presumably lost).
  obs::Counter& dropped_stale_round_trip = metrics_.counter("dropped.stale_round_trip");
  obs::Histogram& pack_ns = metrics_.histogram("pack_ns");      // wall clock
  obs::Histogram& unpack_ns = metrics_.histogram("unpack_ns");  // wall clock
  obs::Histogram& round_trip_ns = metrics_.histogram("round_trip_ns");  // transport clock

 private:
  /// Installs the transport receiver (shared by both constructors).
  void attach();
  /// Warns on stderr with DiagnosticEngine severity labels, once per
  /// distinct cause (so lossy workloads do not flood the log).
  void warn_once(const std::string& cause);

  std::unique_ptr<net::Transport> owned_transport_;  // Fabric convenience ctor
  net::Transport* transport_;
  std::uint16_t host_id_;
  std::map<int, KernelSpec> specs_;
  Receiver receiver_;
  /// Transport-clock send times awaiting a response, per computation (FIFO).
  std::map<int, std::deque<double>> pending_round_trips_;
  std::set<std::string> warned_;
};

/// Control-plane connection to one device (in-fabric or netcl-swd).
class DeviceConnection {
 public:
  /// In-fabric device.
  DeviceConnection(sim::Fabric& fabric, std::uint16_t device_id);
  /// Real device: connects to a netcl-swd control endpoint (IPv4 literal)
  /// and pings it for the device id.
  DeviceConnection(const std::string& host, std::uint16_t control_port);
  ~DeviceConnection();

  [[nodiscard]] bool valid() const;
  [[nodiscard]] std::uint16_t device_id() const { return device_id_; }

  /// ncl::managed_write / ncl::managed_read. Indices address the memory as
  /// declared in the NetCL source (partitioning renames are transparent).
  bool managed_write(const std::string& name, std::uint64_t value,
                     const std::vector<std::uint64_t>& indices = {});
  bool managed_read(const std::string& name, std::uint64_t& out,
                    const std::vector<std::uint64_t>& indices = {});

  /// _managed_ _lookup_ entry management (insert replaces same-key entries).
  bool insert(const std::string& table, std::uint64_t key, std::uint64_t value);
  bool insert_range(const std::string& table, std::uint64_t lo, std::uint64_t hi,
                    std::uint64_t value);
  bool remove(const std::string& table, std::uint64_t key);

  /// Configures a multicast group on the device (fabric groups for sim
  /// devices; learned-endpoint groups on a netcl-swd daemon).
  bool set_multicast_group(std::uint16_t group, const std::vector<std::uint16_t>& hosts);

  /// Telemetry read-back over the control plane: the device's packet /
  /// drop / per-stage counters and per-register-array access totals. The
  /// pointer stays valid until the next stats() call.
  [[nodiscard]] const sim::DeviceStats* stats();
  [[nodiscard]] std::map<std::string, sim::RegisterAccess> register_access() const;

 private:
  sim::Fabric* fabric_ = nullptr;          // sim mode
  sim::SwitchDevice* device_ = nullptr;    // sim mode
  std::unique_ptr<net::ControlClient> remote_;  // netcl-swd mode
  std::uint16_t device_id_ = 0;
  sim::DeviceStats remote_stats_;
};

}  // namespace netcl::runtime
