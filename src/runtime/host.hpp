// NetCL host runtime.
//
// HostRuntime is the paper's host-side message backend (§V-B): it packs
// messages with the kernel specifications the compiler recorded and hands
// them to a net::Transport; received NetCL packets are unpacked and handed
// to a user callback. The transport decides what the network is — a
// SimTransport injects at a fabric port, a UdpTransport speaks real
// sockets to a device daemon — and the host code is identical either way.
//
// Every host owns a metrics registry ("host<id>") with per-computation
// send/receive counters, pack/unpack wall-clock histograms, and a
// round-trip latency histogram on the transport's clock (FIFO
// request/response matching per computation). Packets that would
// previously vanish — sends without a registered spec, arrivals with no
// receiver installed or an unknown computation — are counted and logged
// once per cause with DiagnosticEngine-style severity.
//
// DeviceConnection is the control-plane handle behind ncl::managed_read /
// ncl::managed_write and the _managed_ _lookup_ entry operations (§V-B) —
// the reliable slow path that bypasses kernels entirely. It speaks either
// to an in-fabric sim::SwitchDevice or, over the length-prefixed TCP
// protocol, to a netcl-swd daemon; callers cannot tell the difference.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "net/control.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "runtime/error.hpp"
#include "runtime/failure.hpp"
#include "runtime/host_exec.hpp"
#include "runtime/message.hpp"
#include "sim/fabric.hpp"

namespace netcl::runtime {

/// What send() does while the failure detector says the device is DOWN
/// (ISSUE 3). Without an attached detector the policy never engages.
enum class FallbackPolicy : std::uint8_t {
  /// Surface a typed kDeviceDown error immediately; the message is not sent.
  kFailFast,
  /// Run the packet through the attached HostExecutor's shadow pipeline
  /// and loop the (byte-identical) response into the receive path.
  kHostExecute,
  /// Buffer the packed packet (bounded) and transmit it when the detector
  /// reports the device UP again.
  kQueueUntilRecovered,
};

[[nodiscard]] const char* to_string(FallbackPolicy policy);

class HostRuntime {
  // Declared before the public counter references below so it is
  // constructed first.
  obs::MetricsRegistry metrics_;

 public:
  /// Outstanding send stamps kept per computation for round-trip matching.
  /// When responses are lost the FIFO would grow without bound; at this
  /// depth the oldest stamp is expired and counted in
  /// dropped.stale_round_trip.
  static constexpr std::size_t kMaxPendingRoundTrips = 1024;
  /// kQueueUntilRecovered buffers at most this many packets; beyond it the
  /// oldest is dropped (and counted) — an outage is not infinite memory.
  static constexpr std::size_t kMaxQueuedSends = 4096;

  /// Binds to a transport (not owned; must outlive this runtime).
  HostRuntime(net::Transport& transport, std::uint16_t host_id);
  /// Takes ownership of a transport — the natural pairing with
  /// net::make_transport(uri) (ISSUE 5). The transport must be non-null.
  HostRuntime(std::unique_ptr<net::Transport> transport, std::uint16_t host_id);
  /// Convenience: attaches to the simulated fabric through an owned
  /// SimTransport (the pre-ISSUE-2 constructor, behavior-preserving).
  HostRuntime(sim::Fabric& fabric, std::uint16_t host_id);

  [[nodiscard]] std::uint16_t host_id() const { return host_id_; }
  [[nodiscard]] net::Transport& transport() { return *transport_; }

  /// Registers the message layout of a computation (done by the compiler's
  /// host-side rewrites in the paper; by the driver here).
  void register_spec(int computation, KernelSpec spec);
  [[nodiscard]] const KernelSpec* spec_for(int computation) const;

  /// Packs and sends. The message's src is forced to this host.
  void send(Message message, const sim::ArgValues& args);

  /// One message of a batched send.
  struct Outbound {
    Message message;
    sim::ArgValues args;
  };
  /// Packs a window of messages and hands them to the transport in one
  /// send_batch call (ISSUE 5) — one syscall per 32 packets on the UDP
  /// fast path instead of one per message. Per-message accounting
  /// (round-trip stamps, counters, fallback policy while the device is
  /// DOWN) is identical to calling send() per element, and so is the wire
  /// ordering: element 0 goes out first.
  void send_batch(std::span<Outbound> batch);

  /// Invoked for every NetCL packet arriving at this host.
  using Receiver = std::function<void(const Message&, sim::ArgValues&)>;
  void on_receive(Receiver receiver);

  // --- in-band telemetry (ISSUE 4) ------------------------------------------
  /// While a collector is attached (not owned; must outlive this runtime,
  /// nullptr detaches), every send sets the packet's telemetry flag —
  /// devices on the path append INT hop stamps — and every matched
  /// response is folded into the collector as one end-to-end span (host
  /// pack → device hops → host unpack). Off by default: without a
  /// collector the wire bytes are exactly the pre-telemetry layout.
  void enable_telemetry(obs::SpanCollector* collector) { collector_ = collector; }
  [[nodiscard]] obs::SpanCollector* telemetry_collector() { return collector_; }

  // --- per-computation SLOs (ISSUE 9) ---------------------------------------
  /// Declares a latency/availability objective for one computation id (the
  /// computation id is the host-side tenant key). Matched round trips feed
  /// the engine as served events — good iff under the latency threshold —
  /// and stamps expired at the pending cap count as bad events (their
  /// responses were presumably lost). The engine exports into registries
  /// "host<id>/tenant/<comp>" and ".../window/<name>", which Prometheus
  /// exposition renders as netcl_slo_* series. Zero receive-path overhead
  /// until the first objective is set.
  void set_slo_objective(int computation, const obs::SloObjective& objective);
  [[nodiscard]] obs::SloEngine& slo() { return slo_; }

  // --- failure handling (ISSUE 3) -------------------------------------------
  /// Wires a detector (not owned; must outlive this runtime). While it
  /// reports DOWN, send() applies the fallback policy; on recovery queued
  /// packets flush, and on a generation change the resync callback fires
  /// first (re-offload state, then traffic).
  void attach_failure_detector(FailureDetector& detector);
  void set_fallback_policy(FallbackPolicy policy) { fallback_policy_ = policy; }
  [[nodiscard]] FallbackPolicy fallback_policy() const { return fallback_policy_; }
  /// Required for kHostExecute; the shadow device that stands in for the
  /// real one.
  void set_host_executor(std::unique_ptr<HostExecutor> executor);
  [[nodiscard]] HostExecutor* host_executor() { return host_executor_.get(); }
  /// Invoked whenever send() fails a message (kFailFast, missing executor,
  /// or queue overflow). Also retrievable via last_error().
  void on_error(std::function<void(const Error&)> fn) { on_error_ = std::move(fn); }
  [[nodiscard]] const Error& last_error() const { return error_; }
  /// Invoked when the device comes back with a different generation (its
  /// offloaded state is gone) — re-offload managed state here, e.g. via
  /// DeviceConnection::resync().
  void on_resync(std::function<void()> fn) { on_resync_ = std::move(fn); }

  // --- statistics (registry-backed; obs::dump() includes them) --------------
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  obs::Counter& sent = metrics_.counter("sent");
  obs::Counter& received = metrics_.counter("received");
  /// send() without a registered spec for the computation.
  obs::Counter& dropped_unregistered_send = metrics_.counter("dropped.unregistered_send");
  /// NetCL packet arrived but on_receive() was never installed.
  obs::Counter& dropped_no_receiver = metrics_.counter("dropped.no_receiver");
  /// NetCL packet arrived for a computation with no registered spec.
  obs::Counter& dropped_unknown_computation =
      metrics_.counter("dropped.unknown_computation");
  /// Round-trip stamps expired at the kMaxPendingRoundTrips cap (their
  /// responses were presumably lost).
  obs::Counter& dropped_stale_round_trip = metrics_.counter("dropped.stale_round_trip");
  obs::Histogram& pack_ns = metrics_.histogram("pack_ns");      // wall clock
  obs::Histogram& unpack_ns = metrics_.histogram("unpack_ns");  // wall clock
  obs::Histogram& round_trip_ns = metrics_.histogram("round_trip_ns");  // transport clock
  // Fallback-path accounting (ISSUE 3).
  obs::Counter& fallback_fail_fast = metrics_.counter("fallback.fail_fast");
  obs::Counter& fallback_host_executed = metrics_.counter("fallback.host_executed");
  obs::Counter& fallback_queued = metrics_.counter("fallback.queued");
  obs::Counter& fallback_flushed = metrics_.counter("fallback.flushed");
  obs::Counter& fallback_dropped_overflow = metrics_.counter("fallback.dropped_overflow");

 private:
  /// Installs the transport receiver (shared by all constructors).
  void attach();
  /// The shared pack half of send()/send_batch(): spec lookup, pack,
  /// telemetry flag, DOWN-state fallback, round-trip stamp, counters.
  /// True when `out` holds a packet the caller must transmit.
  bool prepare_send(Message& message, const sim::ArgValues& args, sim::Packet& out);
  /// The receive path: unpack, account, hand to the user's receiver. Both
  /// transport arrivals and host-executed responses come through here, so
  /// fallback results are indistinguishable from device results.
  void deliver_packet(const sim::Packet& packet);
  /// Routes one packed packet while the device is DOWN. True when handled
  /// (caller must not transmit).
  bool handle_down_send(sim::Packet& packet, int computation);
  void flush_queue();
  void fail_send(ErrorKind kind, std::string message);
  /// Warns on stderr with DiagnosticEngine severity labels, once per
  /// distinct cause (so lossy workloads do not flood the log).
  void warn_once(const std::string& cause);

  std::unique_ptr<net::Transport> owned_transport_;  // owning ctors
  net::Transport* transport_;
  /// Packed packets for the send_batch in flight, reused across calls so
  /// the host layer allocates nothing at steady state. Safe as a member:
  /// transports never invoke receive callbacks from inside send_batch
  /// (fabric delivery is event-queued; UDP delivery happens in poll).
  std::vector<sim::Packet> tx_batch_;
  std::uint16_t host_id_;
  std::map<int, KernelSpec> specs_;
  Receiver receiver_;
  obs::SpanCollector* collector_ = nullptr;  // not owned
  /// One outstanding send awaiting its response: the transport-clock send
  /// time (round-trip matching) plus the wall-clock pack duration
  /// (telemetry spans).
  struct PendingSend {
    double send_ns = 0.0;
    double pack_ns = 0.0;
  };
  /// Send stamps awaiting a response, per computation (FIFO).
  std::map<int, std::deque<PendingSend>> pending_round_trips_;
  // Per-computation SLO engine (ISSUE 9). slo_enabled_ keeps the receive
  // path free of engine calls until an objective exists.
  obs::SloEngine slo_{metrics_.name()};
  bool slo_enabled_ = false;
  double last_slo_tick_s_ = -1.0;
  std::set<std::string> warned_;
  // Failure handling (ISSUE 3).
  FailureDetector* detector_ = nullptr;  // not owned
  FallbackPolicy fallback_policy_ = FallbackPolicy::kFailFast;
  std::unique_ptr<HostExecutor> host_executor_;
  std::deque<sim::Packet> send_queue_;  // kQueueUntilRecovered buffer
  /// Armed on a DOWN transition; the first fallback send of the outage
  /// triggers a flight-recorder postmortem (ISSUE 6), then disarms.
  bool fallback_dump_armed_ = false;
  Error error_;
  std::function<void(const Error&)> on_error_;
  std::function<void()> on_resync_;
};

/// Everything a heartbeat probe learns in one round trip: the device's
/// current generation (bumps on every restart — offloaded state was lost)
/// and its telemetry clock (the clockbase its INT hop stamps use; fabric
/// time for sim devices, daemon uptime for netcl-swd). Bracket the ping
/// with transport timestamps and feed all three to obs::align_clocks() to
/// place device spans on the host clock.
struct PingInfo {
  std::uint32_t generation = 0;
  std::uint64_t device_clock_ns = 0;
};

/// Control-plane connection to one device (in-fabric or netcl-swd).
///
/// Every state-establishing operation (managed writes, lookup inserts /
/// removes, multicast groups) is journaled, so after a device restart
/// resync() can replay the journal and restore the device to the state the
/// host had offloaded — the control-plane half of failover recovery.
///
/// Error reporting (ISSUE 5): every operation has two forms. The `*_e()`
/// form returns a typed runtime::Error — kTimeout / kDisconnected for
/// transport failures, kDeviceDown while the device is crashed, kRejected
/// when the device answered and refused the op. The bool form is a
/// one-line wrapper (`err.ok()`) kept for call sites that only branch.
class DeviceConnection {
 public:
  /// In-fabric device.
  DeviceConnection(sim::Fabric& fabric, std::uint16_t device_id);
  /// Real device: connects to a netcl-swd control endpoint (IPv4 literal)
  /// and pings it for the device id. `options` bounds every control
  /// operation (connect/request deadlines, retry budget).
  DeviceConnection(const std::string& host, std::uint16_t control_port,
                   const net::ControlClientOptions& options = {});
  ~DeviceConnection();

  [[nodiscard]] bool valid() const;
  [[nodiscard]] std::uint16_t device_id() const { return device_id_; }

  /// The heartbeat probe: one round trip fills the PingInfo (generation +
  /// telemetry clock). Sim devices are unreachable while the fabric has
  /// them crashed. This is what a FailureDetector's ProbeFn should call.
  [[nodiscard]] Error ping_e(PingInfo& info);
  bool ping(PingInfo& info) { return ping_e(info).ok(); }
  /// Last transport-level failure from the remote control client (empty
  /// for sim devices, which cannot time out).
  [[nodiscard]] Error last_error() const;

  /// ncl::managed_write / ncl::managed_read. Indices address the memory as
  /// declared in the NetCL source (partitioning renames are transparent).
  [[nodiscard]] Error managed_write_e(const std::string& name, std::uint64_t value,
                                      const std::vector<std::uint64_t>& indices = {});
  [[nodiscard]] Error managed_read_e(const std::string& name, std::uint64_t& out,
                                     const std::vector<std::uint64_t>& indices = {});
  bool managed_write(const std::string& name, std::uint64_t value,
                     const std::vector<std::uint64_t>& indices = {}) {
    return managed_write_e(name, value, indices).ok();
  }
  bool managed_read(const std::string& name, std::uint64_t& out,
                    const std::vector<std::uint64_t>& indices = {}) {
    return managed_read_e(name, out, indices).ok();
  }

  /// _managed_ _lookup_ entry management (insert replaces same-key entries).
  [[nodiscard]] Error insert_e(const std::string& table, std::uint64_t key,
                               std::uint64_t value);
  [[nodiscard]] Error insert_range_e(const std::string& table, std::uint64_t lo,
                                     std::uint64_t hi, std::uint64_t value);
  [[nodiscard]] Error remove_e(const std::string& table, std::uint64_t key);
  bool insert(const std::string& table, std::uint64_t key, std::uint64_t value) {
    return insert_e(table, key, value).ok();
  }
  bool insert_range(const std::string& table, std::uint64_t lo, std::uint64_t hi,
                    std::uint64_t value) {
    return insert_range_e(table, lo, hi, value).ok();
  }
  bool remove(const std::string& table, std::uint64_t key) {
    return remove_e(table, key).ok();
  }

  /// Configures a multicast group on the device (fabric groups for sim
  /// devices; learned-endpoint groups on a netcl-swd daemon).
  [[nodiscard]] Error set_multicast_group_e(std::uint16_t group,
                                            const std::vector<std::uint16_t>& hosts);
  bool set_multicast_group(std::uint16_t group, const std::vector<std::uint16_t>& hosts) {
    return set_multicast_group_e(group, hosts).ok();
  }

  /// Telemetry read-back over the control plane: the device's packet /
  /// drop / per-stage counters and per-register-array access totals. The
  /// pointer stays valid until the next stats() call.
  [[nodiscard]] const sim::DeviceStats* stats();
  [[nodiscard]] std::map<std::string, sim::RegisterAccess> register_access() const;

  /// Replays the journal of managed writes, lookup entries, and multicast
  /// groups against the device — called after a restart (new generation)
  /// restored it to compiled-in defaults. True when every replay landed.
  /// Only control-plane state is restorable this way; register state the
  /// kernels accumulated internally is genuinely lost.
  [[nodiscard]] Error resync_e();
  bool resync() { return resync_e().ok(); }
  [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }

  // --- multi-tenant kernel lifecycle (ISSUE 7) ------------------------------
  /// Sim-mode compile hook. Remote connections compile on the daemon; an
  /// in-fabric connection needs a compiler injected (driver::artifact_compiler)
  /// before load_kernel_e / hot_swap_kernel_e can accept source.
  void set_compiler(sim::ProgramCompiler compiler) { compiler_ = std::move(compiler); }

  /// Compiles `source` and loads it as tenant `tenant` through admission
  /// control. kRejected carries the admission resource report (or the
  /// compile diagnostic). On success `stages`/`summary` (if non-null)
  /// receive the program's stage count and the device's headroom line.
  [[nodiscard]] Error load_kernel_e(std::uint32_t tenant, const std::string& name,
                                    const std::string& source,
                                    const std::map<std::string, std::uint64_t>& defines = {},
                                    std::uint16_t* stages = nullptr,
                                    std::string* summary = nullptr);
  [[nodiscard]] Error unload_kernel_e(std::uint32_t tenant);
  [[nodiscard]] Error list_kernels_e(std::vector<net::KernelInfo>& out);
  /// Hitless swap (drain -> swap -> replay): replaces the resident tenant's
  /// program, then resyncs the journal so managed state the host offloaded
  /// survives the new program's fresh register file. Co-resident tenants
  /// keep serving packets throughout.
  [[nodiscard]] Error hot_swap_kernel_e(std::uint32_t tenant, const std::string& name,
                                        const std::string& source,
                                        const std::map<std::string, std::uint64_t>& defines = {},
                                        std::uint16_t* stages = nullptr,
                                        std::string* summary = nullptr);
  bool load_kernel(std::uint32_t tenant, const std::string& name, const std::string& source) {
    return load_kernel_e(tenant, name, source).ok();
  }
  bool unload_kernel(std::uint32_t tenant) { return unload_kernel_e(tenant).ok(); }

 private:
  /// Shared body of load_kernel_e / hot_swap_kernel_e (the `replace` bit).
  [[nodiscard]] Error load_or_swap(std::uint32_t tenant, const std::string& name,
                                   const std::string& source,
                                   const std::map<std::string, std::uint64_t>& defines,
                                   bool replace, std::uint16_t* stages,
                                   std::string* summary);
  /// The typed error for a failed op: the remote client's transport error
  /// when one is pending, kDeviceDown for a crashed sim device,
  /// kDisconnected with no device at all, else kRejected.
  [[nodiscard]] Error op_error(const std::string& what) const;
  sim::Fabric* fabric_ = nullptr;          // sim mode
  sim::SwitchDevice* device_ = nullptr;    // sim mode
  std::unique_ptr<net::ControlClient> remote_;  // netcl-swd mode
  sim::ProgramCompiler compiler_;          // sim-mode kernel loads
  std::uint16_t device_id_ = 0;
  sim::DeviceStats remote_stats_;
  // Resync journal: last value per managed cell / key range / group.
  std::map<std::pair<std::string, std::vector<std::uint64_t>>, std::uint64_t>
      journal_writes_;
  std::map<std::tuple<std::string, std::uint64_t, std::uint64_t>, std::uint64_t>
      journal_inserts_;
  std::map<std::uint16_t, std::vector<std::uint16_t>> journal_groups_;
  std::uint64_t resyncs_ = 0;
};

}  // namespace netcl::runtime
