#include "runtime/host_exec.hpp"

#include <utility>

#include "runtime/device_runtime.hpp"

namespace netcl::runtime {

HostExecutor::HostExecutor(std::unique_ptr<sim::SwitchDevice> device)
    : device_(std::move(device)) {}

std::optional<sim::Packet> HostExecutor::execute(sim::Packet packet, std::uint16_t self_host) {
  // Mirrors SwdServer::handle_datagram / Fabric device delivery: decode,
  // execute the compiled kernel, re-encode, apply the action.
  sim::ComputeOutcome outcome;
  const KernelSpec* spec = device_->spec_for(packet.netcl.comp);
  if (spec != nullptr) {
    sim::ArgValues args = sim::decode_args(*spec, packet.payload);
    outcome = device_->execute(packet.netcl.comp, args, packet.netcl);
    packet.payload = sim::encode_args(*spec, args);
    packet.netcl.len = static_cast<std::uint16_t>(packet.payload.size());
  }
  const ForwardDecision decision =
      apply_action(packet.netcl, outcome.executed ? outcome.action : ActionKind::Pass,
                   outcome.target, device_->device_id());
  if (decision.drop) return std::nullopt;
  if (decision.multicast) ++device_->stats.multicasts;
  // SendToDevice has nowhere to go on a host; like multicast, the best a
  // shadow can do is deliver this host's copy of the outcome.
  packet.netcl.dst = decision.multicast ? self_host : packet.netcl.dst;
  packet.netcl.to = 0;
  return packet;
}

}  // namespace netcl::runtime
