// Host-side kernel execution: the FallbackPolicy::kHostExecute engine
// (ISSUE 3).
//
// A HostExecutor owns a *shadow* sim::SwitchDevice built from the same
// compiled artifact as the offload target. When the failure detector
// declares the real device DOWN, HostRuntime routes would-be sends through
// execute() instead of the transport: the packet runs through the identical
// predicated linear program against the shadow's register/table state and
// the resulting response packet is looped straight back into the host's
// receive path. Because device and shadow execute the same compiled
// kernels over the same wire encoding, results are byte-identical to the
// offloaded path — only the latency differs.
//
// Scope: a shadow can stand in for single-host request/response workloads
// (CALC-style). Cross-host aggregation cannot be host-executed faithfully
// from one worker's viewpoint — that is what kQueueUntilRecovered and the
// retransmission path are for.
#pragma once

#include <memory>
#include <optional>

#include "sim/switch.hpp"

namespace netcl::runtime {

class HostExecutor {
 public:
  /// Takes ownership of the shadow device (typically a second
  /// driver::make_device() from the same CompileResult recipe).
  explicit HostExecutor(std::unique_ptr<sim::SwitchDevice> device);

  [[nodiscard]] sim::SwitchDevice& device() { return *device_; }

  /// Runs one would-be-offloaded packet through the shadow pipeline and
  /// applies the Table II action, exactly as the device daemon would.
  /// Returns the response packet addressed back to `self_host`, or nullopt
  /// when the kernel dropped it. Multicast collapses to the one copy this
  /// host would have received — the shadow has no other members to serve.
  std::optional<sim::Packet> execute(sim::Packet packet, std::uint16_t self_host);

 private:
  std::unique_ptr<sim::SwitchDevice> device_;
};

}  // namespace netcl::runtime
