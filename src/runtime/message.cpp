#include "runtime/message.hpp"

namespace netcl::runtime {

sim::Packet pack(const Message& message, const KernelSpec& spec, const sim::ArgValues& args) {
  sim::Packet packet;
  packet.has_netcl = true;
  packet.netcl.src = message.src;
  packet.netcl.dst = message.dst;
  packet.netcl.from = 0;  // no device has computed on it yet
  packet.netcl.to = message.device;
  packet.netcl.comp = message.comp;
  packet.payload = sim::encode_args(spec, args);
  packet.netcl.len = static_cast<std::uint16_t>(packet.payload.size());
  return packet;
}

std::pair<Message, sim::ArgValues> unpack(const sim::Packet& packet, const KernelSpec& spec) {
  Message message;
  message.src = packet.netcl.src;
  message.dst = packet.netcl.dst;
  message.comp = packet.netcl.comp;
  message.device = packet.netcl.to;
  return {message, sim::decode_args(spec, packet.payload)};
}

}  // namespace netcl::runtime
