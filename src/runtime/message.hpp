// NetCL host-side messages and pack/unpack (§V-A, Fig. 6).
//
// A Message names the communication: "send from host src to host dst
// through device `device`, performing computation comp". pack/unpack
// translate between user values and the wire layout dictated by the
// kernel specification — the "device code records" the compiler embeds in
// host programs.
#pragma once

#include <cstdint>
#include <optional>

#include "frontend/sema.hpp"
#include "sim/packet.hpp"

namespace netcl::runtime {

struct Message {
  std::uint16_t src = 0;
  std::uint16_t dst = 0;
  std::uint8_t comp = 0;
  std::uint16_t device = 0;  // the device asked to compute (the `to` field)

  Message() = default;
  Message(std::uint16_t src_host, std::uint16_t dst_host, std::uint8_t computation,
          std::uint16_t through_device)
      : src(src_host), dst(dst_host), comp(computation), device(through_device) {}
};

/// Builds the on-wire packet for a message: NetCL header + encoded args.
[[nodiscard]] sim::Packet pack(const Message& message, const KernelSpec& spec,
                               const sim::ArgValues& args);

/// Splits a received packet back into (message, argument values).
[[nodiscard]] std::pair<Message, sim::ArgValues> unpack(const sim::Packet& packet,
                                                        const KernelSpec& spec);

}  // namespace netcl::runtime
