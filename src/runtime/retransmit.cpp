#include "runtime/retransmit.hpp"

#include <algorithm>
#include <memory>

#include "obs/flightrec.hpp"

namespace netcl::runtime {

RetransmitWindow::RetransmitWindow(net::Transport& transport, const Config& config,
                                   SendFn send)
    : transport_(transport), config_(config), send_(std::move(send)) {
  stride_ = std::max(1, std::min(config_.window, config_.chunks));
  slot_chunk_.assign(static_cast<std::size_t>(stride_), -1);
  done_.assign(static_cast<std::size_t>(std::max(config_.chunks, 0)), false);
  retries_.assign(static_cast<std::size_t>(std::max(config_.chunks, 0)), 0);
}

void RetransmitWindow::start() {
  const int initial = std::min(stride_, config_.chunks);
  if (!batch_start_ || initial <= 0) {
    for (int chunk = 0; chunk < initial; ++chunk) {
      launch(chunk, /*is_retransmission=*/false);
    }
    return;
  }
  // Batched emission: mark the whole window in flight, hand every chunk to
  // the owner in one call (slot c holds chunk c at start), then arm the
  // retry timers. Sends stay ahead of timer arming, matching the per-chunk
  // path's send-then-schedule order.
  std::vector<int> chunks(static_cast<std::size_t>(initial));
  for (int chunk = 0; chunk < initial; ++chunk) {
    slot_chunk_[static_cast<std::size_t>(chunk % stride_)] = chunk;
    chunks[static_cast<std::size_t>(chunk)] = chunk;
  }
  batch_start_(chunks);
  for (int chunk = 0; chunk < initial; ++chunk) arm_timer(chunk);
}

int RetransmitWindow::chunk_for_slot(int slot) const {
  if (slot < 0 || slot >= stride_) return -1;
  return slot_chunk_[static_cast<std::size_t>(slot)];
}

bool RetransmitWindow::is_done(int chunk) const {
  return chunk >= 0 && chunk < config_.chunks && done_[static_cast<std::size_t>(chunk)];
}

bool RetransmitWindow::acknowledge_slot(int slot) {
  const int chunk = chunk_for_slot(slot);
  if (chunk < 0 || is_done(chunk)) return false;
  done_[static_cast<std::size_t>(chunk)] = true;
  ++completed_;
  // Per-slot pipelining (SwitchML's alternating-bit rule): the next chunk
  // on this slot may go out only now that this one finished.
  const int next = chunk + stride_;
  if (next < config_.chunks) launch(next, /*is_retransmission=*/false);
  return true;
}

double RetransmitWindow::retry_delay_ns(int retries_done) const {
  double delay = config_.retransmit_ns;
  for (int i = 0; i < retries_done; ++i) {
    delay *= config_.backoff_factor;
    if (config_.backoff_max_ns > 0.0 && delay >= config_.backoff_max_ns) {
      return config_.backoff_max_ns;
    }
  }
  return delay;
}

void RetransmitWindow::give_up(int chunk) {
  failed_ = true;
  error_ = {ErrorKind::kRetriesExhausted,
            "chunk " + std::to_string(chunk) + " unacknowledged after " +
                std::to_string(config_.max_retries) + " retransmissions"};
  obs::flight(obs::FlightKind::kRetriesExhausted, static_cast<std::uint64_t>(chunk),
              static_cast<std::uint64_t>(config_.max_retries));
  // Drain: chunk_for_slot() answers -1 everywhere, so late responses are
  // ignored and no slot chains a further launch.
  std::fill(slot_chunk_.begin(), slot_chunk_.end(), -1);
  if (on_error_) on_error_(error_);
  // Postmortem of the retries that spent the budget (and whatever the
  // error handler just did about it).
  obs::FlightRecorder::instance().trigger_dump("retries_exhausted");
}

void RetransmitWindow::launch(int chunk, bool is_retransmission) {
  if (failed_) return;
  slot_chunk_[static_cast<std::size_t>(chunk % stride_)] = chunk;
  if (is_retransmission) {
    ++retransmissions_;
    ++retries_[static_cast<std::size_t>(chunk)];
    obs::flight(obs::FlightKind::kRetransmit, static_cast<std::uint64_t>(chunk),
                static_cast<std::uint64_t>(retries_[static_cast<std::size_t>(chunk)]));
  }
  send_(chunk, chunk % stride_, is_retransmission);
  arm_timer(chunk);
}

void RetransmitWindow::arm_timer(int chunk) {
  transport_.schedule(retry_delay_ns(retries_[static_cast<std::size_t>(chunk)]),
                      [this, chunk, alive = std::weak_ptr<int>(alive_)] {
                        if (alive.expired()) return;  // window destroyed first
                        if (failed_ || is_done(chunk)) return;
                        if (config_.max_retries > 0 &&
                            retries_[static_cast<std::size_t>(chunk)] >= config_.max_retries) {
                          give_up(chunk);
                          return;
                        }
                        launch(chunk, /*is_retransmission=*/true);
                      });
}

}  // namespace netcl::runtime
