#include "runtime/retransmit.hpp"

#include <algorithm>
#include <memory>

namespace netcl::runtime {

RetransmitWindow::RetransmitWindow(net::Transport& transport, const Config& config,
                                   SendFn send)
    : transport_(transport), config_(config), send_(std::move(send)) {
  stride_ = std::max(1, std::min(config_.window, config_.chunks));
  slot_chunk_.assign(static_cast<std::size_t>(stride_), -1);
  done_.assign(static_cast<std::size_t>(std::max(config_.chunks, 0)), false);
}

void RetransmitWindow::start() {
  for (int chunk = 0; chunk < stride_ && chunk < config_.chunks; ++chunk) {
    launch(chunk, /*is_retransmission=*/false);
  }
}

int RetransmitWindow::chunk_for_slot(int slot) const {
  if (slot < 0 || slot >= stride_) return -1;
  return slot_chunk_[static_cast<std::size_t>(slot)];
}

bool RetransmitWindow::is_done(int chunk) const {
  return chunk >= 0 && chunk < config_.chunks && done_[static_cast<std::size_t>(chunk)];
}

bool RetransmitWindow::acknowledge_slot(int slot) {
  const int chunk = chunk_for_slot(slot);
  if (chunk < 0 || is_done(chunk)) return false;
  done_[static_cast<std::size_t>(chunk)] = true;
  ++completed_;
  // Per-slot pipelining (SwitchML's alternating-bit rule): the next chunk
  // on this slot may go out only now that this one finished.
  const int next = chunk + stride_;
  if (next < config_.chunks) launch(next, /*is_retransmission=*/false);
  return true;
}

void RetransmitWindow::launch(int chunk, bool is_retransmission) {
  slot_chunk_[static_cast<std::size_t>(chunk % stride_)] = chunk;
  if (is_retransmission) ++retransmissions_;
  send_(chunk, chunk % stride_, is_retransmission);
  transport_.schedule(config_.retransmit_ns,
                      [this, chunk, alive = std::weak_ptr<int>(alive_)] {
                        if (alive.expired()) return;  // window destroyed first
                        if (!is_done(chunk)) launch(chunk, /*is_retransmission=*/true);
                      });
}

}  // namespace netcl::runtime
