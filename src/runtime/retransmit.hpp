// SwitchML-style reliability, extracted from the AGG workload (§VII) so
// any host program can reuse it against any transport.
//
// A RetransmitWindow delivers `chunks` numbered chunks through `window`
// slots: chunk c occupies slot c % stride, chunks c and c + stride share a
// slot with alternating versions (the alternating-bit rule — the version
// bit is (c / stride) & 1, available to the send callback via version()).
// Every send arms a one-shot retransmission timer on the transport's
// clock; an unacknowledged chunk is re-sent when it fires. Acknowledging a
// slot retires its chunk and immediately launches the next chunk chained
// on that slot.
//
// The window does not touch packets itself — the owner's SendFn builds and
// sends the actual message — so it works for AGG contributions today and
// any future windowed workload.
//
// Failure semantics (ISSUE 3): by default a chunk is retried forever (the
// original SwitchML behavior — fine when the device is known to be up).
// With max_retries set, a chunk that stays unacknowledged through its
// retry budget fails the whole window: failed() flips, last_error() holds
// a typed kRetriesExhausted error, the error callback fires once, and all
// slots drain so no further timers send. Successive retries of one chunk
// can back off exponentially (backoff_factor > 1), capped at
// backoff_max_ns.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/transport.hpp"
#include "runtime/error.hpp"

namespace netcl::runtime {

class RetransmitWindow {
 public:
  struct Config {
    int chunks = 0;                   // total chunks to deliver
    int window = 1;                   // max outstanding slots
    double retransmit_ns = 200000.0;  // retransmission timeout
    /// Retransmissions allowed per chunk before the window gives up
    /// (0 = retry forever, the pre-ISSUE-3 behavior).
    int max_retries = 0;
    /// Timeout multiplier per successive retry of the same chunk
    /// (1.0 = fixed timeout, behavior-preserving for existing workloads).
    double backoff_factor = 1.0;
    /// Cap on the backed-off timeout (0 = uncapped).
    double backoff_max_ns = 0.0;
  };

  /// Called for every (re)transmission. `slot` is chunk % stride().
  using SendFn = std::function<void(int chunk, int slot, bool is_retransmission)>;

  /// The transport must outlive the window. Timers armed on the transport
  /// hold a weak liveness token, not a bare `this`: if the window is
  /// destroyed first, late firings become no-ops instead of dangling.
  RetransmitWindow(net::Transport& transport, const Config& config, SendFn send);

  /// Launches the initial window: one in-flight chunk per active slot.
  void start();

  /// Batched window emission (ISSUE 5): when set, start() marks the whole
  /// initial window in flight and hands every chunk to this callback in
  /// one call — the owner typically packs them into a single
  /// HostRuntime::send_batch / Transport::send_batch — then arms the
  /// per-chunk retry timers. Retransmissions and the chunks chained by
  /// acknowledge_slot() still go through the per-chunk SendFn.
  using BatchStartFn = std::function<void(std::span<const int> chunks)>;
  void set_batch_start(BatchStartFn fn) { batch_start_ = std::move(fn); }

  /// Active slots: min(window, chunks).
  [[nodiscard]] int stride() const { return stride_; }
  /// Version bit of a chunk (the alternating-bit rule).
  [[nodiscard]] int version(int chunk) const { return (chunk / stride_) & 1; }
  /// The chunk currently in flight on `slot`; -1 when none (or the slot is
  /// out of range — slots often arrive off the wire, so this is guarded).
  [[nodiscard]] int chunk_for_slot(int slot) const;
  [[nodiscard]] bool is_done(int chunk) const;
  [[nodiscard]] bool complete() const { return completed_ == config_.chunks; }
  [[nodiscard]] int completed() const { return completed_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }

  /// True once a chunk exhausted its retry budget; the window is inert
  /// afterwards (no sends, acknowledge_slot() returns false).
  [[nodiscard]] bool failed() const { return failed_; }
  /// kRetriesExhausted with the failing chunk when failed(); empty before.
  [[nodiscard]] const Error& last_error() const { return error_; }
  /// Invoked exactly once, at the moment the window fails.
  void on_error(std::function<void(const Error&)> fn) { on_error_ = std::move(fn); }

  /// The retransmission timeout after `retries_done` retries of a chunk:
  /// retransmit_ns * backoff_factor^retries_done, capped at backoff_max_ns.
  /// Public so tests can assert the schedule without faking a transport.
  [[nodiscard]] double retry_delay_ns(int retries_done) const;

  /// Retires the chunk in flight on `slot` and launches the next chunk
  /// chained on the slot. No-op (returns false) when nothing is in flight
  /// there or it already completed — retransmitted responses arrive late.
  bool acknowledge_slot(int slot);

 private:
  void launch(int chunk, bool is_retransmission);
  /// Arms the retransmission timer for a chunk just (re)sent.
  void arm_timer(int chunk);
  void give_up(int chunk);

  net::Transport& transport_;
  Config config_;
  SendFn send_;
  BatchStartFn batch_start_;
  /// Sentinel captured (weakly) by armed timers; expires with the window.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
  int stride_ = 1;
  std::vector<int> slot_chunk_;  // slot -> in-flight chunk (-1 none)
  std::vector<bool> done_;       // per chunk
  std::vector<int> retries_;     // per chunk: retransmissions so far
  int completed_ = 0;
  std::uint64_t retransmissions_ = 0;
  bool failed_ = false;
  Error error_;
  std::function<void(const Error&)> on_error_;
};

}  // namespace netcl::runtime
